#include <gtest/gtest.h>

#include "atlas/controller.hpp"
#include "dhcp/server.hpp"
#include "isp/outage_model.hpp"
#include "isp/presets.hpp"
#include "netcore/error.hpp"

namespace dynaddr::isp {
namespace {

using net::Duration;
using net::TimeInterval;
using net::TimePoint;

TimeInterval year() {
    return {TimePoint::from_date(2015, 1, 1), TimePoint::from_date(2016, 1, 1)};
}

/// Minimal CPE target for outage scheduling (the injector only needs the
/// four fail/restore entry points, exercised via a real Cpe in
/// integration tests; here we only check the schedule itself).
struct ScheduleProbe {
    sim::Simulation sim{TimePoint::from_date(2015, 1, 1)};
};

TEST(OutageModel, RatesRoughlyMatchConfiguration) {
    OutageRates rates;
    rates.power_per_year = 10.0;
    rates.net_per_year = 20.0;
    // Aggregate over many schedules for a stable mean.
    int power = 0, net = 0;
    const int trials = 60;
    for (int i = 0; i < trials; ++i) {
        ScheduleProbe probe;
        // A dummy CPE is required by the signature; build a tiny real one.
        pool::AddressPool pool(
            pool::PoolConfig{{net::IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                             pool::AllocationStrategy::Sticky, 0.0, 0.0},
            rng::Stream(1));
        dhcp::Server server({}, pool, probe.sim);
        atlas::Controller controller(probe.sim, rng::Stream(2));
        atlas::Timeline timeline(1);
        atlas::ProbeConfig probe_config;
        probe_config.id = 1;
        atlas::Probe device(probe_config, probe.sim, rng::Stream(3), controller,
                            timeline);
        atlas::CpeConfig cpe_config;
        atlas::Cpe cpe(cpe_config, 1, probe.sim, rng::Stream(4), device,
                       timeline, &server, nullptr);
        const auto planned = schedule_outages(probe.sim, cpe, rates, year(),
                                              rng::Stream(std::uint64_t(i)));
        for (const auto& outage : planned)
            (outage.kind == PlannedOutage::Kind::Power ? power : net)++;
    }
    EXPECT_NEAR(power / double(trials), 10.0, 1.5);
    EXPECT_NEAR(net / double(trials), 20.0, 2.5);
}

TEST(OutageModel, SameKindOutagesNeverOverlapAndStayInWindow) {
    OutageRates rates;
    rates.power_per_year = 40.0;
    rates.net_per_year = 40.0;
    rates.short_fraction = 0.3;  // plenty of long ones
    ScheduleProbe probe;
    pool::AddressPool pool(
        pool::PoolConfig{{net::IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                         pool::AllocationStrategy::Sticky, 0.0, 0.0},
        rng::Stream(1));
    dhcp::Server server({}, pool, probe.sim);
    atlas::Controller controller(probe.sim, rng::Stream(2));
    atlas::Timeline timeline(1);
    atlas::ProbeConfig probe_config;
    probe_config.id = 1;
    atlas::Probe device(probe_config, probe.sim, rng::Stream(3), controller,
                        timeline);
    atlas::Cpe cpe({}, 1, probe.sim, rng::Stream(4), device, timeline, &server,
                   nullptr);
    const auto planned =
        schedule_outages(probe.sim, cpe, rates, year(), rng::Stream(77));
    ASSERT_GT(planned.size(), 30u);
    net::TimePoint last_power_end = year().begin;
    net::TimePoint last_net_end = year().begin;
    for (const auto& outage : planned) {
        EXPECT_GE(outage.when.begin, year().begin);
        EXPECT_LE(outage.when.end, year().end);
        EXPECT_LT(outage.when.begin, outage.when.end);
        auto& last_end = outage.kind == PlannedOutage::Kind::Power
                             ? last_power_end
                             : last_net_end;
        EXPECT_GE(outage.when.begin, last_end) << "same-kind overlap";
        last_end = outage.when.end;
    }
    // Duration cap honoured.
    for (const auto& outage : planned)
        EXPECT_LE(outage.when.length(), rates.max_duration);
}

TEST(OutageModel, MixtureCoversShortAndLongBins) {
    OutageRates rates;
    rates.power_per_year = 120.0;
    rates.net_per_year = 120.0;
    ScheduleProbe probe;
    pool::AddressPool pool(
        pool::PoolConfig{{net::IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                         pool::AllocationStrategy::Sticky, 0.0, 0.0},
        rng::Stream(1));
    dhcp::Server server({}, pool, probe.sim);
    atlas::Controller controller(probe.sim, rng::Stream(2));
    atlas::Timeline timeline(1);
    atlas::ProbeConfig probe_config;
    probe_config.id = 1;
    atlas::Probe device(probe_config, probe.sim, rng::Stream(3), controller,
                        timeline);
    atlas::Cpe cpe({}, 1, probe.sim, rng::Stream(4), device, timeline, &server,
                   nullptr);
    const auto planned =
        schedule_outages(probe.sim, cpe, rates, year(), rng::Stream(5));
    int sub_10m = 0, over_6h = 0;
    for (const auto& outage : planned) {
        if (outage.when.length() < Duration::minutes(10)) ++sub_10m;
        if (outage.when.length() > Duration::hours(6)) ++over_6h;
    }
    EXPECT_GT(sub_10m, 20) << "short blips populate Figure 9's left bins";
    EXPECT_GT(over_6h, 5) << "long-tail outages populate the right bins";
}

TEST(Presets, ScenarioSubsetsAreSelfConsistent) {
    const auto outage = presets::outage_scenario();
    EXPECT_GE(outage.isps.size(), 10u);
    ASSERT_TRUE(outage.kroot.has_value());
    for (const auto& isp : outage.isps)
        for (const auto& cohort : isp.cohorts)
            EXPECT_GE(cohort.outages.power_per_year +
                          cohort.outages.net_per_year,
                      20.0)
                << isp.name << " must clear the >=3-outages bar";

    const auto quick = presets::quick_scenario();
    EXPECT_LT(quick.window.length().count(), 100 * 86400);
    EXPECT_EQ(quick.isps.size(), 4u);
}

TEST(Presets, PaperWorldPeriodicIspsHavePeriodicCohorts) {
    const auto world = presets::paper_world();
    auto has_period = [&](std::uint32_t asn, double hours) {
        for (const auto& isp : world) {
            if (isp.asn != asn) continue;
            for (const auto& cohort : isp.cohorts)
                if (cohort.session_timeout &&
                    cohort.session_timeout->to_hours() == hours)
                    return true;
        }
        return false;
    };
    EXPECT_TRUE(has_period(3215, 168.0));  // Orange
    EXPECT_TRUE(has_period(3320, 24.0));   // DTAG
    EXPECT_TRUE(has_period(2856, 337.0));  // BT
    EXPECT_TRUE(has_period(6057, 12.0));   // ANTEL
    EXPECT_TRUE(has_period(5617, 22.0));   // Orange Polska
    EXPECT_TRUE(has_period(5617, 24.0));
    EXPECT_TRUE(has_period(12714, 47.0));  // Net by Net
}

TEST(Scenario, ValidatesBrokenSpecs) {
    ScenarioConfig config;
    config.window = {TimePoint::from_date(2015, 1, 1),
                     TimePoint::from_date(2015, 2, 1)};
    IspSpec bad;
    bad.asn = 0;
    bad.name = "NoAsn";
    bad.pool_prefixes = {net::IPv4Prefix::parse_or_throw("10.0.0.0/24")};
    bad.announced_prefixes = {net::IPv4Prefix::parse_or_throw("10.0.0.0/16")};
    bad.cohorts = {Cohort{}};
    config.isps = {bad};
    EXPECT_THROW(run_scenario(config), Error);

    config.isps[0].asn = 1;
    config.isps[0].announced_prefixes.clear();  // pool not covered
    EXPECT_THROW(run_scenario(config), Error);

    config.isps[0].announced_prefixes = {
        net::IPv4Prefix::parse_or_throw("10.0.0.0/16")};
    AdminRenumbering event;
    event.when = TimePoint::from_date(2015, 1, 15);
    event.retire_pool_index = 0;
    event.enable_pool_index = 0;  // same index: invalid
    config.isps[0].admin_events = {event};
    EXPECT_THROW(run_scenario(config), Error);
}

}  // namespace
}  // namespace dynaddr::isp

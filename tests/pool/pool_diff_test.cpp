// Differential property tests: the bitmap AddressPool and the
// open-addressing LeaseDb against the original map-based implementations
// (src/pool/reference_pool.hpp), the same oracle pattern PR 2 used for
// the event queue. The reference defines every rng draw and every
// ordering decision; the fast implementations must reproduce them bit for
// bit across strategies, seeds and arbitrary operation interleavings.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "netcore/obs/metrics.hpp"
#include "pool/address_pool.hpp"
#include "pool/lease_db.hpp"
#include "pool/reference_pool.hpp"

namespace dynaddr::pool {
namespace {

using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

PoolConfig diff_config(AllocationStrategy strategy) {
    PoolConfig config;
    config.prefixes = {IPv4Prefix::parse_or_throw("10.0.0.0/26"),
                       IPv4Prefix::parse_or_throw("172.16.4.0/27"),
                       IPv4Prefix::parse_or_throw("192.168.1.0/28")};
    config.strategy = strategy;
    config.churn_per_hour = 0.05;
    config.locality_bias = strategy == AllocationStrategy::RandomSpread ? 0.6 : 0.0;
    config.initially_disabled = {2};
    return config;
}

/// Runs an identical random operation sequence through both pools and
/// compares every observable after every step. The driver stream is
/// independent of the pools' shared seed so op choice never perturbs the
/// draws under test.
void run_pool_differential(AllocationStrategy strategy, std::uint64_t seed) {
    const auto config = diff_config(strategy);
    AddressPool fast(config, rng::Stream(seed));
    ReferenceAddressPool oracle(config, rng::Stream(seed));
    rng::Stream driver(seed * 7919 + 17);

    const ClientId kClients = 96;
    std::vector<bool> enabled = {true, true, false};
    std::int64_t now_s = 0;

    for (int step = 0; step < 4000; ++step) {
        now_s += driver.uniform_int(0, 1800);
        const TimePoint now{now_s};
        const auto client = ClientId(driver.uniform_int(1, kClients));
        switch (driver.uniform_int(0, 9)) {
            case 0: case 1: case 2: case 3: {  // allocate, plain or hinted
                std::optional<IPv4Address> hint;
                if (driver.bernoulli(0.3)) {
                    // Hints range over configured space, foreign space and
                    // (sometimes) the disabled prefix.
                    const auto& p = config.prefixes[std::size_t(
                        driver.uniform_int(0, 3))% config.prefixes.size()];
                    hint = IPv4Address(std::uint32_t(
                        p.base().value() +
                        std::uint64_t(driver.uniform_int(0, 40))));
                }
                std::optional<TimePoint> absent;
                if (driver.bernoulli(0.4))
                    absent = TimePoint{now_s - driver.uniform_int(0, 400000)};
                const auto a = fast.allocate(client, now, hint, absent);
                const auto b = oracle.allocate(client, now, hint, absent);
                ASSERT_EQ(a, b) << "allocate diverged at step " << step
                                << " seed " << seed;
                break;
            }
            case 4: case 5: case 6: {
                fast.release(client);
                oracle.release(client);
                break;
            }
            case 7: {
                fast.forget_binding(client);
                oracle.forget_binding(client);
                break;
            }
            case 8: {  // flip one prefix's enablement
                const auto p = std::size_t(driver.uniform_int(0, 2));
                if (enabled[p]) {
                    fast.retire_prefix(p);
                    oracle.retire_prefix(p);
                } else {
                    fast.enable_prefix(p);
                    oracle.enable_prefix(p);
                }
                enabled[p] = !enabled[p];
                break;
            }
            case 9: {  // exhaustion fault window
                const bool on = driver.bernoulli(0.5);
                fast.set_fault_exhausted(on);
                oracle.set_fault_exhausted(on);
                break;
            }
        }
        ASSERT_EQ(fast.free_count(), oracle.free_count()) << "step " << step;
        ASSERT_EQ(fast.allocated_count(), oracle.allocated_count());
        ASSERT_EQ(fast.capacity(), oracle.capacity());
        const auto probe = ClientId(driver.uniform_int(1, kClients));
        ASSERT_EQ(fast.address_of(probe), oracle.address_of(probe));
        const auto addr_probe = IPv4Address(std::uint32_t(
            config.prefixes[0].base().value() +
            std::uint64_t(driver.uniform_int(0, 63))));
        ASSERT_EQ(fast.is_retired(addr_probe), oracle.is_retired(addr_probe));
    }
    // Conservation must hold at the end regardless of retire history.
    ASSERT_EQ(fast.free_count() + fast.allocated_count(), fast.capacity());
}

TEST(PoolDifferential, StickyMatchesReference) {
    for (std::uint64_t seed : {1u, 2u, 3u})
        run_pool_differential(AllocationStrategy::Sticky, seed);
}

TEST(PoolDifferential, SequentialMatchesReference) {
    for (std::uint64_t seed : {4u, 5u, 6u})
        run_pool_differential(AllocationStrategy::Sequential, seed);
}

TEST(PoolDifferential, RandomSpreadMatchesReference) {
    for (std::uint64_t seed : {7u, 8u, 9u})
        run_pool_differential(AllocationStrategy::RandomSpread, seed);
}

TEST(PoolDifferential, PrefixHopMatchesReference) {
    for (std::uint64_t seed : {10u, 11u, 12u})
        run_pool_differential(AllocationStrategy::PrefixHop, seed);
}

// -- LeaseDb vs ReferenceLeaseDb ------------------------------------------

std::vector<Lease> sorted_by_client(std::vector<Lease> leases) {
    std::sort(leases.begin(), leases.end(),
              [](const Lease& a, const Lease& b) { return a.client < b.client; });
    return leases;
}

void expect_same_lease(const std::optional<Lease>& a,
                       const std::optional<Lease>& b) {
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) return;
    EXPECT_EQ(a->client, b->client);
    EXPECT_EQ(a->address, b->address);
    EXPECT_EQ(a->granted, b->granted);
    EXPECT_EQ(a->expiry, b->expiry);
}

TEST(LeaseDbDifferential, RandomOpsMatchReference) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        LeaseDb fast;
        ReferenceLeaseDb oracle;
        rng::Stream driver(seed);
        std::int64_t now_s = 0;
        for (int step = 0; step < 6000; ++step) {
            now_s += driver.uniform_int(0, 600);
            const auto client = ClientId(driver.uniform_int(1, 48));
            switch (driver.uniform_int(0, 5)) {
                case 0: case 1: case 2: {  // grant / refresh
                    Lease lease;
                    lease.client = client;
                    // Address keyed by client: grants never collide across
                    // clients, matching how the DHCP server uses the db.
                    lease.address = IPv4Address(std::uint32_t(
                        0x0A000000u + client));
                    lease.granted = TimePoint{now_s};
                    lease.expiry =
                        TimePoint{now_s + driver.uniform_int(60, 7200)};
                    fast.grant(lease);
                    oracle.grant(lease);
                    break;
                }
                case 3: {
                    const auto a = fast.revoke(client);
                    const auto b = oracle.revoke(client);
                    expect_same_lease(a, b);
                    break;
                }
                case 4: {  // batch expiry: same leases, same order
                    const auto horizon =
                        TimePoint{now_s - driver.uniform_int(0, 3600)};
                    const auto a = fast.expire_until(horizon);
                    const auto b = oracle.expire_until(horizon);
                    ASSERT_EQ(a.size(), b.size()) << "step " << step;
                    for (std::size_t i = 0; i < a.size(); ++i)
                        expect_same_lease(a[i], b[i]);
                    break;
                }
                case 5: {
                    const auto addr = IPv4Address(std::uint32_t(
                        0x0A000000u + driver.uniform_int(1, 48)));
                    expect_same_lease(fast.find_by_address(addr),
                                      oracle.find_by_address(addr));
                    break;
                }
            }
            ASSERT_EQ(fast.size(), oracle.size()) << "step " << step;
            ASSERT_EQ(fast.next_expiry(), oracle.next_expiry());
            expect_same_lease(fast.find(client), oracle.find(client));
        }
        const auto a = sorted_by_client(fast.all());
        const auto b = sorted_by_client(oracle.all());
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) expect_same_lease(a[i], b[i]);
    }
}

// Ties in expiry time must come back in grant order — the multimap
// semantics the heap's (expiry, sequence) key exists to preserve.
TEST(LeaseDbDifferential, ExpiryTiesBreakInGrantOrder) {
    LeaseDb db;
    const TimePoint expiry{1000};
    for (ClientId c : {ClientId(5), ClientId(2), ClientId(9), ClientId(7)}) {
        Lease lease;
        lease.client = c;
        lease.address = IPv4Address(std::uint32_t(0x0A000000u + c));
        lease.granted = TimePoint{0};
        lease.expiry = expiry;
        db.grant(lease);
    }
    const auto expired = db.expire_until(expiry);
    ASSERT_EQ(expired.size(), 4u);
    EXPECT_EQ(expired[0].client, 5u);
    EXPECT_EQ(expired[1].client, 2u);
    EXPECT_EQ(expired[2].client, 9u);
    EXPECT_EQ(expired[3].client, 7u);
}

// -- shared gauge consistency ---------------------------------------------

// Pools batch their gauge updates (kMetricsFlushOps); destruction must
// flush and then unwind exactly, leaving the process-wide gauges where
// they started no matter how many ops were pending.
TEST(PoolGauges, UnwindExactlyOnDestruction) {
    auto& occupancy = obs::gauge("pool.occupancy");
    auto& free_addresses = obs::gauge("pool.free");
    auto& active = obs::gauge("lease.active");
    const auto occ_before = occupancy.value();
    const auto free_before = free_addresses.value();
    const auto active_before = active.value();
    {
        AddressPool pool(diff_config(AllocationStrategy::Sticky),
                         rng::Stream(42));
        LeaseDb db;
        for (ClientId c = 1; c <= 40; ++c) {
            const auto addr = pool.allocate(c, TimePoint{std::int64_t(c)});
            ASSERT_TRUE(addr);
            db.grant(Lease{c, *addr, TimePoint{std::int64_t(c)},
                           TimePoint{std::int64_t(c) + 3600}});
        }
        // An odd, non-multiple-of-64 number of further ops so a flush is
        // guaranteed to be pending at destruction.
        for (ClientId c = 1; c <= 17; ++c) {
            pool.release(c);
            db.revoke(c);
        }
    }
    EXPECT_EQ(occupancy.value(), occ_before);
    EXPECT_EQ(free_addresses.value(), free_before);
    EXPECT_EQ(active.value(), active_before);
}

}  // namespace
}  // namespace dynaddr::pool

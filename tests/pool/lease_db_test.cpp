#include "pool/lease_db.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::pool {
namespace {

using net::IPv4Address;
using net::TimePoint;

Lease make_lease(ClientId client, IPv4Address addr, std::int64_t granted,
                 std::int64_t expiry) {
    return Lease{client, addr, TimePoint{granted}, TimePoint{expiry}};
}

TEST(LeaseDb, GrantFindRevoke) {
    LeaseDb db;
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 1), 0, 100));
    EXPECT_EQ(db.size(), 1u);
    auto lease = db.find(1);
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->address, IPv4Address(10, 0, 0, 1));
    EXPECT_EQ(lease->duration().count(), 100);
    auto by_addr = db.find_by_address(IPv4Address(10, 0, 0, 1));
    ASSERT_TRUE(by_addr);
    EXPECT_EQ(by_addr->client, 1u);
    auto revoked = db.revoke(1);
    ASSERT_TRUE(revoked);
    EXPECT_EQ(db.size(), 0u);
    EXPECT_FALSE(db.revoke(1));
    EXPECT_FALSE(db.find(1));
    EXPECT_FALSE(db.find_by_address(IPv4Address(10, 0, 0, 1)));
}

TEST(LeaseDb, RefreshReplacesExpiry) {
    LeaseDb db;
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 1), 0, 100));
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 1), 50, 200));
    EXPECT_EQ(db.size(), 1u);
    EXPECT_EQ(db.next_expiry()->unix_seconds(), 200);
    // Nothing expires at the old expiry.
    EXPECT_TRUE(db.expire_until(TimePoint{150}).empty());
    EXPECT_EQ(db.expire_until(TimePoint{200}).size(), 1u);
}

TEST(LeaseDb, RefreshCanMoveClientToNewAddress) {
    LeaseDb db;
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 1), 0, 100));
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 2), 10, 110));
    EXPECT_EQ(db.size(), 1u);
    EXPECT_FALSE(db.find_by_address(IPv4Address(10, 0, 0, 1)));
    ASSERT_TRUE(db.find_by_address(IPv4Address(10, 0, 0, 2)));
}

TEST(LeaseDb, RejectsAddressConflict) {
    LeaseDb db;
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 1), 0, 100));
    EXPECT_THROW(db.grant(make_lease(2, IPv4Address(10, 0, 0, 1), 0, 100)),
                 Error);
}

TEST(LeaseDb, ExpireUntilReturnsEarliestFirst) {
    LeaseDb db;
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 1), 0, 300));
    db.grant(make_lease(2, IPv4Address(10, 0, 0, 2), 0, 100));
    db.grant(make_lease(3, IPv4Address(10, 0, 0, 3), 0, 200));
    EXPECT_EQ(db.next_expiry()->unix_seconds(), 100);
    const auto expired = db.expire_until(TimePoint{250});
    ASSERT_EQ(expired.size(), 2u);
    EXPECT_EQ(expired[0].client, 2u);
    EXPECT_EQ(expired[1].client, 3u);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_EQ(db.next_expiry()->unix_seconds(), 300);
}

TEST(LeaseDb, SharedExpirySecond) {
    LeaseDb db;
    db.grant(make_lease(1, IPv4Address(10, 0, 0, 1), 0, 100));
    db.grant(make_lease(2, IPv4Address(10, 0, 0, 2), 0, 100));
    db.revoke(1);  // must remove only client 1's expiry index entry
    const auto expired = db.expire_until(TimePoint{100});
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].client, 2u);
}

TEST(LeaseDb, EmptyDbQueries) {
    LeaseDb db;
    EXPECT_FALSE(db.next_expiry());
    EXPECT_TRUE(db.expire_until(TimePoint{1000}).empty());
    EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace dynaddr::pool

#include "pool/address_pool.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "netcore/error.hpp"

namespace dynaddr::pool {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

PoolConfig small_pool(AllocationStrategy strategy, double churn = 0.0,
                      double locality = 0.0) {
    PoolConfig config;
    config.prefixes = {IPv4Prefix::parse_or_throw("10.0.0.0/28"),
                       IPv4Prefix::parse_or_throw("20.0.0.0/28")};
    config.strategy = strategy;
    config.churn_per_hour = churn;
    config.locality_bias = locality;
    return config;
}

TEST(AddressPool, RejectsBadConfig) {
    EXPECT_THROW(AddressPool(PoolConfig{}, rng::Stream(1)), Error);
    PoolConfig overlapping;
    overlapping.prefixes = {IPv4Prefix::parse_or_throw("10.0.0.0/8"),
                            IPv4Prefix::parse_or_throw("10.1.0.0/16")};
    EXPECT_THROW(AddressPool(overlapping, rng::Stream(1)), Error);
}

TEST(AddressPool, CapacityAndUtilization) {
    AddressPool pool(small_pool(AllocationStrategy::Sequential), rng::Stream(1));
    EXPECT_EQ(pool.capacity(), 32u);
    EXPECT_EQ(pool.free_count(), 32u);
    EXPECT_DOUBLE_EQ(pool.utilization(), 0.0);
    pool.allocate(1, TimePoint{0});
    EXPECT_EQ(pool.allocated_count(), 1u);
    EXPECT_DOUBLE_EQ(pool.utilization(), 1.0 / 32.0);
}

TEST(AddressPool, SequentialTakesLowestFree) {
    AddressPool pool(small_pool(AllocationStrategy::Sequential), rng::Stream(1));
    EXPECT_EQ(pool.allocate(1, TimePoint{0}), IPv4Address(10, 0, 0, 0));
    EXPECT_EQ(pool.allocate(2, TimePoint{0}), IPv4Address(10, 0, 0, 1));
}

TEST(AddressPool, ReallocateWhileHoldingKeepsAddress) {
    AddressPool pool(small_pool(AllocationStrategy::RandomSpread), rng::Stream(1));
    const auto first = pool.allocate(1, TimePoint{0});
    const auto second = pool.allocate(1, TimePoint{100});
    EXPECT_EQ(first, second);
    EXPECT_EQ(pool.allocated_count(), 1u);
}

TEST(AddressPool, StickyReturnsPreviousAddressAfterRelease) {
    AddressPool pool(small_pool(AllocationStrategy::Sticky), rng::Stream(1));
    const auto first = pool.allocate(1, TimePoint{0});
    ASSERT_TRUE(first);
    pool.release(1);
    const auto second = pool.allocate(1, TimePoint{3600});
    EXPECT_EQ(first, second);
}

TEST(AddressPool, StickyHonoursExplicitHint) {
    AddressPool pool(small_pool(AllocationStrategy::Sticky), rng::Stream(1));
    const auto hint = IPv4Address(20, 0, 0, 5);
    const auto got = pool.allocate(7, TimePoint{0}, hint);
    EXPECT_EQ(got, hint);
}

TEST(AddressPool, StickyIgnoresForeignHint) {
    AddressPool pool(small_pool(AllocationStrategy::Sticky), rng::Stream(1));
    const auto got = pool.allocate(7, TimePoint{0}, IPv4Address(99, 0, 0, 1));
    ASSERT_TRUE(got);
    EXPECT_NE(*got, IPv4Address(99, 0, 0, 1));
}

TEST(AddressPool, ChurnReclaimsBindingsAfterLongAbsence) {
    // With 1.0 reclaims/hour, a week-long absence loses the binding
    // essentially always; zero absence never does.
    auto config = small_pool(AllocationStrategy::Sticky, /*churn=*/1.0);
    AddressPool pool(config, rng::Stream(5));
    const auto first = pool.allocate(1, TimePoint{0});
    pool.release(1);
    const auto after_week = pool.allocate(
        1, TimePoint{7 * 86400}, std::nullopt, TimePoint{0});
    ASSERT_TRUE(after_week);
    EXPECT_NE(first, after_week);

    AddressPool pool2(config, rng::Stream(5));
    const auto a = pool2.allocate(1, TimePoint{0});
    pool2.release(1);
    const auto b = pool2.allocate(1, TimePoint{0}, std::nullopt, TimePoint{0});
    EXPECT_EQ(a, b);
}

TEST(AddressPool, ChurnRateMatchesExponentialModel) {
    // P(taken) = 1 - exp(-churn * hours); churn=0.1, absence 10h -> ~0.63.
    auto config = small_pool(AllocationStrategy::Sticky, /*churn=*/0.1);
    int lost = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        AddressPool pool(config, rng::Stream(std::uint64_t(i)));
        const auto first = pool.allocate(1, TimePoint{0});
        pool.release(1);
        const auto again =
            pool.allocate(1, TimePoint{36000}, std::nullopt, TimePoint{0});
        if (first != again) ++lost;
    }
    EXPECT_NEAR(lost / double(trials), 1.0 - std::exp(-1.0), 0.04);
}

TEST(AddressPool, RandomSpreadCoversBothPrefixes) {
    AddressPool pool(small_pool(AllocationStrategy::RandomSpread), rng::Stream(3));
    std::set<int> prefixes_seen;
    for (ClientId c = 1; c <= 20; ++c) {
        const auto addr = pool.allocate(c, TimePoint{0});
        ASSERT_TRUE(addr);
        prefixes_seen.insert(addr->octet(0));
    }
    EXPECT_EQ(prefixes_seen, (std::set<int>{10, 20}));
}

TEST(AddressPool, LocalityBiasKeepsAllocationsInPrefix) {
    auto config = small_pool(AllocationStrategy::RandomSpread, 0.0,
                             /*locality=*/1.0);
    AddressPool pool(config, rng::Stream(4));
    const auto first = pool.allocate(1, TimePoint{0});
    ASSERT_TRUE(first);
    for (int i = 0; i < 10; ++i) {
        pool.release(1);
        const auto next = pool.allocate(1, TimePoint{0});
        ASSERT_TRUE(next);
        EXPECT_EQ(next->octet(0), first->octet(0)) << "left home prefix";
    }
}

TEST(AddressPool, PrefixHopAvoidsPreviousPrefix) {
    AddressPool pool(small_pool(AllocationStrategy::PrefixHop), rng::Stream(5));
    auto previous = pool.allocate(1, TimePoint{0});
    ASSERT_TRUE(previous);
    for (int i = 0; i < 10; ++i) {
        pool.release(1);
        const auto next = pool.allocate(1, TimePoint{0});
        ASSERT_TRUE(next);
        EXPECT_NE(next->octet(0), previous->octet(0));
        previous = next;
    }
}

TEST(AddressPool, ExhaustionReturnsNullopt) {
    AddressPool pool(small_pool(AllocationStrategy::Sequential), rng::Stream(6));
    for (ClientId c = 1; c <= 32; ++c)
        EXPECT_TRUE(pool.allocate(c, TimePoint{0}));
    EXPECT_FALSE(pool.allocate(33, TimePoint{0}));
    pool.release(1);
    EXPECT_TRUE(pool.allocate(33, TimePoint{0}));
}

TEST(AddressPool, ForgetBindingBreaksStickiness) {
    // Use a bigger pool so a random re-draw of the same address is
    // unlikely; sticky would otherwise guarantee it.
    PoolConfig config;
    config.prefixes = {IPv4Prefix::parse_or_throw("10.0.0.0/20")};
    config.strategy = AllocationStrategy::Sticky;
    AddressPool pool(config, rng::Stream(7));
    const auto first = pool.allocate(1, TimePoint{0});
    pool.release(1);
    pool.forget_binding(1);
    const auto second = pool.allocate(1, TimePoint{0});
    EXPECT_NE(first, second);
}

TEST(AddressPool, FreeCountInvariantUnderChurn) {
    AddressPool pool(small_pool(AllocationStrategy::RandomSpread), rng::Stream(8));
    rng::Stream rng(9);
    std::set<ClientId> holding;
    for (int step = 0; step < 500; ++step) {
        const ClientId client = ClientId(rng.uniform_int(1, 40));
        if (holding.contains(client)) {
            pool.release(client);
            holding.erase(client);
        } else if (pool.allocate(client, TimePoint{step})) {
            holding.insert(client);
        }
        EXPECT_EQ(pool.allocated_count(), holding.size());
        EXPECT_EQ(pool.free_count() + pool.allocated_count(), pool.capacity());
    }
}

TEST(AddressPool, RetireAbandonsFreeAddressesAndBlocksAllocation) {
    AddressPool pool(small_pool(AllocationStrategy::RandomSpread), rng::Stream(11));
    const auto held = pool.allocate(1, TimePoint{0});
    ASSERT_TRUE(held);
    const int held_prefix = held->octet(0) == 10 ? 0 : 1;
    pool.retire_prefix(std::size_t(held_prefix));
    EXPECT_TRUE(pool.is_retired(*held));
    // Held address stays held; capacity shrinks to the other prefix.
    EXPECT_EQ(pool.allocated_count(), 1u);
    EXPECT_EQ(pool.free_count(), 16u);
    // New allocations land in the surviving prefix only.
    for (ClientId c = 2; c <= 10; ++c) {
        const auto addr = pool.allocate(c, TimePoint{0});
        ASSERT_TRUE(addr);
        EXPECT_NE(addr->octet(0), held->octet(0));
    }
    // Releasing the retired address abandons it.
    pool.release(1);
    EXPECT_EQ(pool.free_count(), 16u - 9u);
    // Sticky cannot hand it back.
    AddressPool sticky(small_pool(AllocationStrategy::Sticky), rng::Stream(12));
    const auto a = sticky.allocate(1, TimePoint{0});
    sticky.retire_prefix(std::size_t(a->octet(0) == 10 ? 0 : 1));
    sticky.release(1);
    const auto b = sticky.allocate(1, TimePoint{0});
    ASSERT_TRUE(b);
    EXPECT_NE(*a, *b);
}

TEST(AddressPool, InitiallyDisabledPrefixOpensOnEnable) {
    auto config = small_pool(AllocationStrategy::RandomSpread);
    config.initially_disabled = {1};  // 20.0.0.0/28 starts dark
    AddressPool pool(config, rng::Stream(13));
    EXPECT_EQ(pool.free_count(), 16u);
    for (ClientId c = 1; c <= 5; ++c) {
        const auto addr = pool.allocate(c, TimePoint{0});
        ASSERT_TRUE(addr);
        EXPECT_EQ(addr->octet(0), 10);
    }
    EXPECT_TRUE(pool.is_retired(IPv4Address(20, 0, 0, 1)));
    pool.enable_prefix(1);
    EXPECT_EQ(pool.free_count(), 16u - 5u + 16u);
    EXPECT_FALSE(pool.is_retired(IPv4Address(20, 0, 0, 1)));
    // And a full swap: retire 0, everything new comes from 20/28.
    pool.retire_prefix(0);
    for (ClientId c = 10; c <= 14; ++c) {
        const auto addr = pool.allocate(c, TimePoint{0});
        ASSERT_TRUE(addr);
        EXPECT_EQ(addr->octet(0), 20);
    }
    EXPECT_THROW(pool.retire_prefix(7), Error);
    EXPECT_THROW(pool.enable_prefix(7), Error);
}

TEST(AddressPool, NoDoubleAssignment) {
    AddressPool pool(small_pool(AllocationStrategy::RandomSpread), rng::Stream(10));
    std::set<std::uint32_t> assigned;
    for (ClientId c = 1; c <= 32; ++c) {
        const auto addr = pool.allocate(c, TimePoint{0});
        ASSERT_TRUE(addr);
        EXPECT_TRUE(assigned.insert(addr->value()).second)
            << "address assigned twice: " << addr->to_string();
    }
}

// Regression: a DHCP REQUEST hinting at an address inside a retired
// (renumbered-away) prefix must be declined before the pool touches any
// free-list state — honouring it would hand out an abandoned address.
TEST(AddressPool, StickyHintIntoRetiredPrefixIsDeclined) {
    AddressPool pool(small_pool(AllocationStrategy::Sticky), rng::Stream(21));
    pool.retire_prefix(1);
    const auto addr =
        pool.allocate(1, TimePoint{0}, IPv4Address(20, 0, 0, 5));
    ASSERT_TRUE(addr);
    EXPECT_EQ(addr->octet(0), 10);
    EXPECT_FALSE(pool.is_retired(*addr));
}

// Regression: a remembered sticky binding into a prefix that was retired
// after the release must likewise be skipped, not resurrected.
TEST(AddressPool, StickyRememberedBindingIntoRetiredPrefixIsSkipped) {
    AddressPool pool(small_pool(AllocationStrategy::Sticky), rng::Stream(22));
    ClientId in_twenty = 0;
    // Park clients until one lands in 20/28, then release it.
    for (ClientId c = 1; c <= 32 && in_twenty == 0; ++c) {
        const auto addr = pool.allocate(c, TimePoint{0});
        ASSERT_TRUE(addr);
        if (addr->octet(0) == 20) in_twenty = c;
    }
    ASSERT_NE(in_twenty, 0u);
    pool.release(in_twenty);
    pool.retire_prefix(1);
    const auto again = pool.allocate(in_twenty, TimePoint{3600});
    ASSERT_TRUE(again);
    EXPECT_EQ(again->octet(0), 10);
}

// Regression: releasing a client that never held an address (or releasing
// twice) must be a no-op, not an out-of-bounds free-list write.
TEST(AddressPool, ReleaseOfForeignClientIsNoOp) {
    AddressPool pool(small_pool(AllocationStrategy::RandomSpread), rng::Stream(23));
    pool.release(12345);  // never allocated
    EXPECT_EQ(pool.free_count(), 32u);
    EXPECT_EQ(pool.allocated_count(), 0u);
    const auto addr = pool.allocate(1, TimePoint{0});
    ASSERT_TRUE(addr);
    pool.release(1);
    pool.release(1);  // double release
    EXPECT_EQ(pool.free_count(), 32u);
    EXPECT_EQ(pool.allocated_count(), 0u);
    // The pool must still function normally afterwards.
    EXPECT_TRUE(pool.allocate(2, TimePoint{0}));
}

// Satellite: remembered (client, previous address) bindings must not grow
// without bound. With a tight explicit cap and a churn rate that makes
// every binding stale within seconds, old bindings are pruned.
TEST(AddressPool, RememberedBindingsStayBounded) {
    auto config = small_pool(AllocationStrategy::Sticky, /*churn=*/1000.0);
    config.max_remembered_bindings = 8;
    AddressPool pool(config, rng::Stream(24));
    for (ClientId c = 1; c <= 4096; ++c) {
        // Each client appears once, holds briefly, and never returns; time
        // advances so every binding ages past the survival horizon.
        const auto now = TimePoint{std::int64_t(c) * 100};
        const auto addr = pool.allocate(c, now);
        ASSERT_TRUE(addr);
        pool.release(c);
        ASSERT_LE(pool.remembered_binding_count(), 64u)
            << "bindings not pruned by client " << c;
    }
    EXPECT_LE(pool.remembered_binding_count(), 64u);
}

// With churn disabled, bindings survive forever under the model and the
// pruning bound must leave them alone regardless of the configured cap.
TEST(AddressPool, NoChurnMeansNoPruning) {
    auto config = small_pool(AllocationStrategy::Sticky);
    config.max_remembered_bindings = 4;
    AddressPool pool(config, rng::Stream(25));
    for (ClientId c = 1; c <= 16; ++c) {
        ASSERT_TRUE(pool.allocate(c, TimePoint{std::int64_t(c) * 1000}));
        pool.release(c);
    }
    EXPECT_EQ(pool.remembered_binding_count(), 16u);
}

}  // namespace
}  // namespace dynaddr::pool

#include <span>
#include <stdexcept>

#include "netcore/error.hpp"
#include "ppp/pppoe_wire.hpp"
#include "fuzz_targets.hpp"

namespace dynaddr::fuzz {

int pppoe_wire_one(const std::uint8_t* data, std::size_t size) {
    const std::span<const std::uint8_t> bytes(data, size);
    ppp::PppoePacket packet;
    try {
        packet = ppp::decode(bytes);
    } catch (const ParseError&) {
        return 0;
    }
    // Accepted packets round-trip; the End-Of-List tag and trailing junk
    // past the length field are allowed to disappear, the tags are not.
    const auto reencoded = ppp::encode(packet);
    if (!(ppp::decode(reencoded) == packet))
        throw std::logic_error("PPPoE wire round-trip mismatch");
    return 0;
}

}  // namespace dynaddr::fuzz

#ifdef DYNADDR_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    return dynaddr::fuzz::pppoe_wire_one(data, size);
}
#endif

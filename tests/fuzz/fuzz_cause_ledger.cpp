#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "netcore/error.hpp"
#include "sim/cause_ledger.hpp"
#include "fuzz_targets.hpp"

namespace dynaddr::fuzz {
namespace {

/// Strict decode; whatever it accepts must survive encode → decode
/// unchanged (round-trip oracle; a violation is a logic_error, a
/// crash-equivalent). Lenient decode of the same bytes must never throw:
/// damaged rows/blocks degrade to dropped-and-counted, which is what
/// `dynaddr explain` and `analyze --audit` rely on for arbitrary files.
template <typename Decode, typename Encode>
void check_codec(std::string_view bytes, Decode decode, Encode encode) {
    try {
        const std::vector<sim::CauseRecord> records =
            decode(bytes, true, nullptr);
        const std::string again = encode(records);
        const std::vector<sim::CauseRecord> reparsed =
            decode(again, true, nullptr);
        if (reparsed != records)
            throw std::logic_error("cause ledger round trip changed records");
    } catch (const ParseError&) {
        // Malformed input is the expected rejection path.
    }
    sim::CauseDecodeStats stats;
    (void)decode(bytes, false, &stats);
}

}  // namespace

int cause_ledger_one(const std::uint8_t* data, std::size_t size) {
    const std::string_view bytes(reinterpret_cast<const char*>(data), size);
    check_codec(
        bytes,
        [](std::string_view b, bool strict, sim::CauseDecodeStats* s) {
            return sim::cause_ledger_from_csv(b, strict, s);
        },
        [](const std::vector<sim::CauseRecord>& r) {
            return sim::cause_ledger_to_csv(r);
        });
    check_codec(
        bytes,
        [](std::string_view b, bool strict, sim::CauseDecodeStats* s) {
            return sim::decode_cause_ledger(b, strict, s);
        },
        [](const std::vector<sim::CauseRecord>& r) {
            return sim::encode_cause_ledger(r);
        });
    return 0;
}

}  // namespace dynaddr::fuzz

#ifdef DYNADDR_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    return dynaddr::fuzz::cause_ledger_one(data, size);
}
#endif

#include <sstream>
#include <string>

#include "netcore/csv.hpp"
#include "netcore/error.hpp"
#include "fuzz_targets.hpp"

namespace dynaddr::fuzz {

int csv_one(const std::uint8_t* data, std::size_t size) {
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(data), size));
    try {
        csv::ScanReader reader(in);
        // Drain every row the way the lenient dataset readers do: a
        // malformed row throws after the reader has advanced past it, so
        // skipping and continuing must always terminate.
        for (;;) {
            try {
                if (reader.next_row() == nullptr) break;
            } catch (const ParseError&) {
            }
        }
    } catch (const ParseError&) {
        // An unparseable header rejects the whole stream.
    }
    return 0;
}

}  // namespace dynaddr::fuzz

#ifdef DYNADDR_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    return dynaddr::fuzz::csv_one(data, size);
}
#endif

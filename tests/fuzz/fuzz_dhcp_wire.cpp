#include <span>
#include <stdexcept>

#include "dhcp/wire.hpp"
#include "netcore/error.hpp"
#include "fuzz_targets.hpp"

namespace dynaddr::fuzz {

int dhcp_wire_one(const std::uint8_t* data, std::size_t size) {
    const std::span<const std::uint8_t> bytes(data, size);
    dhcp::WireMessage message;
    try {
        message = dhcp::decode(bytes);
    } catch (const ParseError&) {
        return 0;  // rejecting malformed input is the correct outcome
    }
    // Anything decode accepts must round-trip losslessly; unknown options
    // and padding are allowed to disappear, the parsed fields are not.
    const auto reencoded = dhcp::encode(message);
    if (!(dhcp::decode(reencoded) == message))
        throw std::logic_error("DHCP wire round-trip mismatch");
    return 0;
}

}  // namespace dynaddr::fuzz

#ifdef DYNADDR_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    return dynaddr::fuzz::dhcp_wire_one(data, size);
}
#endif

#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "atlas/binary_bundle.hpp"
#include "netcore/error.hpp"
#include "fuzz_targets.hpp"

namespace dynaddr::fuzz {
namespace {

using atlas::ConnectionLogEntry;
using atlas::KRootPingRecord;
using atlas::ProbeMetadata;
using atlas::UptimeRecord;

bool same(const ConnectionLogEntry& a, const ConnectionLogEntry& b) {
    return a.probe == b.probe && a.start == b.start && a.end == b.end &&
           a.address == b.address;
}
bool same(const KRootPingRecord& a, const KRootPingRecord& b) {
    return a.probe == b.probe && a.timestamp == b.timestamp &&
           a.sent == b.sent && a.success == b.success &&
           a.lts_seconds == b.lts_seconds;
}
bool same(const UptimeRecord& a, const UptimeRecord& b) {
    return a.probe == b.probe && a.timestamp == b.timestamp &&
           a.uptime_seconds == b.uptime_seconds;
}
bool same(const ProbeMetadata& a, const ProbeMetadata& b) {
    return a.probe == b.probe && a.version == b.version &&
           a.country_code == b.country_code && a.tags == b.tags;
}

/// Strict decode; whatever it accepts must survive encode → decode
/// unchanged (the round-trip oracle — a violation is a logic_error, a
/// crash-equivalent for the fuzzer). Lenient decode of the same bytes
/// must never throw: every malformed container or block degrades to
/// dropped-and-counted, because that is what the fault-injected dataset
/// readers rely on.
template <typename Record, typename Decode, typename Encode>
void check_kind(std::string_view bytes, Decode decode, Encode encode) {
    try {
        const std::vector<Record> records = decode(bytes, false, nullptr);
        const std::string again = encode(records);
        const std::vector<Record> reparsed = decode(again, false, nullptr);
        if (reparsed.size() != records.size())
            throw std::logic_error("binary round trip changed record count");
        for (std::size_t i = 0; i < records.size(); ++i)
            if (!same(records[i], reparsed[i]))
                throw std::logic_error("binary round trip changed a record");
    } catch (const ParseError&) {
        // Malformed input is the expected rejection path.
    }
    atlas::BinaryDecodeStats stats;
    (void)decode(bytes, true, &stats);
}

}  // namespace

int binary_bundle_one(const std::uint8_t* data, std::size_t size) {
    const std::string_view bytes(reinterpret_cast<const char*>(data), size);
    check_kind<ConnectionLogEntry>(
        bytes,
        [](std::string_view b, bool l, atlas::BinaryDecodeStats* s) {
            return atlas::decode_connection_log_binary(b, l, s);
        },
        [](const std::vector<ConnectionLogEntry>& r) {
            return atlas::encode_connection_log_binary(r);
        });
    check_kind<KRootPingRecord>(
        bytes,
        [](std::string_view b, bool l, atlas::BinaryDecodeStats* s) {
            return atlas::decode_kroot_binary(b, l, s);
        },
        [](const std::vector<KRootPingRecord>& r) {
            return atlas::encode_kroot_binary(r);
        });
    check_kind<UptimeRecord>(
        bytes,
        [](std::string_view b, bool l, atlas::BinaryDecodeStats* s) {
            return atlas::decode_uptime_binary(b, l, s);
        },
        [](const std::vector<UptimeRecord>& r) {
            return atlas::encode_uptime_binary(r);
        });
    check_kind<ProbeMetadata>(
        bytes,
        [](std::string_view b, bool l, atlas::BinaryDecodeStats* s) {
            return atlas::decode_probes_binary(b, l, s);
        },
        [](const std::vector<ProbeMetadata>& r) {
            return atlas::encode_probes_binary(r);
        });
    return 0;
}

}  // namespace dynaddr::fuzz

#ifdef DYNADDR_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    return dynaddr::fuzz::binary_bundle_one(data, size);
}
#endif

// Corpus replay + deterministic mutation regression for the fuzz targets.
//
// This runs on every ctest invocation with any compiler (no libFuzzer
// needed): it replays each checked-in corpus file through its harness,
// then feeds every parser 10 000 deterministically mutated descendants of
// the corpus seeds. A harness signals a bug by letting an exception other
// than ParseError escape (crash-equivalents under libFuzzer), which gtest
// reports here. Inputs that once crashed a parser belong in
// tests/fuzz/corpus/<target>/ so they are replayed forever.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "fuzz_targets.hpp"
#include "netcore/rng.hpp"

namespace dynaddr::fuzz {
namespace {

using Harness = int (*)(const std::uint8_t*, std::size_t);

constexpr int kMutatedInputs = 10000;

std::filesystem::path corpus_dir(const std::string& target) {
    return std::filesystem::path(DYNADDR_FUZZ_CORPUS_DIR) / target;
}

std::vector<std::vector<std::uint8_t>> load_corpus(const std::string& target) {
    std::vector<std::vector<std::uint8_t>> seeds;
    std::vector<std::filesystem::path> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(corpus_dir(target)))
        if (entry.is_regular_file()) paths.push_back(entry.path());
    std::sort(paths.begin(), paths.end());  // deterministic replay order
    for (const auto& path : paths) {
        std::ifstream in(path, std::ios::binary);
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        seeds.push_back(std::move(bytes));
    }
    return seeds;
}

void replay_corpus(const std::string& target, Harness harness) {
    const auto seeds = load_corpus(target);
    ASSERT_FALSE(seeds.empty()) << "no corpus files for " << target;
    for (const auto& seed : seeds)
        ASSERT_EQ(harness(seed.data(), seed.size()), 0);
}

/// Applies 1-4 random mutations (bit flip, byte set, truncate, extend,
/// splice) to a copy of a corpus seed. All draws come from `stream`, so
/// the whole campaign is reproducible.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed,
                                 rng::Stream& stream) {
    std::vector<std::uint8_t> bytes = seed;
    const int mutations = int(stream.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) {
        switch (stream.uniform_int(0, 4)) {
            case 0:  // flip one bit
                if (!bytes.empty()) {
                    auto& b = bytes[std::size_t(
                        stream.uniform_int(0, std::int64_t(bytes.size()) - 1))];
                    b ^= std::uint8_t(1u << stream.uniform_int(0, 7));
                }
                break;
            case 1:  // overwrite one byte
                if (!bytes.empty())
                    bytes[std::size_t(stream.uniform_int(
                        0, std::int64_t(bytes.size()) - 1))] =
                        std::uint8_t(stream.uniform_int(0, 255));
                break;
            case 2:  // truncate
                if (!bytes.empty())
                    bytes.resize(std::size_t(
                        stream.uniform_int(0, std::int64_t(bytes.size()) - 1)));
                break;
            case 3: {  // extend with random bytes
                const int extra = int(stream.uniform_int(1, 16));
                for (int i = 0; i < extra; ++i)
                    bytes.push_back(std::uint8_t(stream.uniform_int(0, 255)));
                break;
            }
            case 4: {  // splice random bytes mid-buffer
                const std::size_t at = bytes.empty()
                                           ? 0
                                           : std::size_t(stream.uniform_int(
                                                 0, std::int64_t(bytes.size())));
                const int extra = int(stream.uniform_int(1, 8));
                std::vector<std::uint8_t> junk;
                for (int i = 0; i < extra; ++i)
                    junk.push_back(std::uint8_t(stream.uniform_int(0, 255)));
                bytes.insert(bytes.begin() + std::ptrdiff_t(at), junk.begin(),
                             junk.end());
                break;
            }
        }
    }
    return bytes;
}

void mutation_campaign(const std::string& target, Harness harness) {
    const auto seeds = load_corpus(target);
    ASSERT_FALSE(seeds.empty());
    rng::Stream stream(0xF0220EDu);
    auto campaign = stream.child(target);
    for (int i = 0; i < kMutatedInputs; ++i) {
        const auto& seed =
            seeds[std::size_t(campaign.uniform_int(0, std::int64_t(seeds.size()) - 1))];
        const auto input = mutate(seed, campaign);
        ASSERT_EQ(harness(input.data(), input.size()), 0)
            << target << " mutation #" << i;
    }
}

TEST(FuzzRegress, DhcpWireCorpus) { replay_corpus("dhcp_wire", dhcp_wire_one); }
TEST(FuzzRegress, PppoeWireCorpus) {
    replay_corpus("pppoe_wire", pppoe_wire_one);
}
TEST(FuzzRegress, CsvCorpus) { replay_corpus("csv", csv_one); }
TEST(FuzzRegress, BinaryBundleCorpus) {
    replay_corpus("binary_bundle", binary_bundle_one);
}
TEST(FuzzRegress, CauseLedgerCorpus) {
    replay_corpus("cause_ledger", cause_ledger_one);
}

TEST(FuzzRegress, DhcpWireMutations) {
    mutation_campaign("dhcp_wire", dhcp_wire_one);
}
TEST(FuzzRegress, PppoeWireMutations) {
    mutation_campaign("pppoe_wire", pppoe_wire_one);
}
TEST(FuzzRegress, CsvMutations) { mutation_campaign("csv", csv_one); }
TEST(FuzzRegress, BinaryBundleMutations) {
    mutation_campaign("binary_bundle", binary_bundle_one);
}
TEST(FuzzRegress, CauseLedgerMutations) {
    mutation_campaign("cause_ledger", cause_ledger_one);
}

}  // namespace
}  // namespace dynaddr::fuzz

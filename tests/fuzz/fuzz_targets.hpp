#pragma once

// Fuzz entry points for the external-input parsers. Each takes an
// arbitrary byte buffer and must neither crash nor hang: malformed input
// raises ParseError (swallowed by the harness), and anything decode
// accepts must survive an encode/decode round trip unchanged — a
// violation throws std::logic_error, which gtest (fuzz_regress) reports
// and libFuzzer treats as a crash.
//
// The same functions serve both drivers: fuzz_regress replays the
// checked-in corpus plus deterministic mutations on every ctest run with
// any compiler, while -DDYNADDR_FUZZ=ON (Clang only) links each file's
// LLVMFuzzerTestOneInput against libFuzzer for open-ended exploration.

#include <cstddef>
#include <cstdint>

namespace dynaddr::fuzz {

int dhcp_wire_one(const std::uint8_t* data, std::size_t size);
int pppoe_wire_one(const std::uint8_t* data, std::size_t size);
int csv_one(const std::uint8_t* data, std::size_t size);
int binary_bundle_one(const std::uint8_t* data, std::size_t size);
int cause_ledger_one(const std::uint8_t* data, std::size_t size);

}  // namespace dynaddr::fuzz

#include "netcore/ascii_chart.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::chart {
namespace {

TEST(CdfChart, RendersSeriesAndLegend) {
    Series s1{"alpha", {{1.0, 0.2}, {2.0, 0.6}, {3.0, 1.0}}};
    Series s2{"beta", {{1.5, 1.0}}};
    ChartOptions options;
    options.x_label = "hours";
    const std::string out = render_cdf_chart({s1, s2}, options);
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("*=alpha"), std::string::npos);
    EXPECT_NE(out.find("+=beta"), std::string::npos);
    EXPECT_NE(out.find("hours"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(CdfChart, HandlesEmptyAndLogScale) {
    EXPECT_EQ(render_cdf_chart({}, {}), "(no series)\n");
    Series s{"x", {{1.0, 0.5}, {1000.0, 1.0}}};
    ChartOptions options;
    options.log_x = true;
    const std::string out = render_cdf_chart({s}, options);
    EXPECT_NE(out.find("1000"), std::string::npos);
}

TEST(BarChart, ScalesToLargestValue) {
    const std::string out =
        render_bar_chart({{"a", 10.0}, {"bb", 5.0}, {"c", 0.0}});
    // "a" has twice the hashes of "bb".
    const auto line_a = out.substr(0, out.find('\n'));
    const auto rest = out.substr(out.find('\n') + 1);
    const auto line_b = rest.substr(0, rest.find('\n'));
    const auto hashes = [](const std::string& line) {
        return std::count(line.begin(), line.end(), '#');
    };
    EXPECT_EQ(hashes(line_a), 2 * hashes(line_b));
    EXPECT_EQ(render_bar_chart({}), "(no data)\n");
}

TEST(FractionChart, ShowsPercentages) {
    const std::string out = render_fraction_chart({{"row", 1.0, 4.0}});
    EXPECT_NE(out.find("25.0%"), std::string::npos);
    EXPECT_NE(out.find("(1/4)"), std::string::npos);
}

TEST(Table, AlignsAndValidates) {
    const std::string out = render_table({"Name", "N"}, {{"alpha", "10"},
                                                         {"b", "5"}});
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Numeric column right-aligned: " 5" under "10".
    EXPECT_THROW(render_table({"a"}, {{"1", "2"}}), Error);
    EXPECT_THROW(render_table({}, {}), Error);
}

}  // namespace
}  // namespace dynaddr::chart

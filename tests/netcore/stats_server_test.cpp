#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>

#include "netcore/obs/json.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/progress.hpp"
#include "netcore/obs/stats_server.hpp"
#include "netcore/obs/timeseries.hpp"

namespace dynaddr::obs {
namespace {

struct HttpResponse {
    std::string status_line;
    std::string body;
};

/// Minimal HTTP/1.0 client: one GET, read to EOF.
HttpResponse http_get(std::uint16_t port, const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                        sizeof address),
              0);
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              ssize_t(request.size()));
    std::string raw;
    char buffer[4096];
    for (;;) {
        const auto got = ::recv(fd, buffer, sizeof buffer, 0);
        if (got <= 0) break;
        raw.append(buffer, std::size_t(got));
    }
    ::close(fd);
    HttpResponse response;
    const auto line_end = raw.find("\r\n");
    response.status_line = raw.substr(0, line_end);
    const auto head_end = raw.find("\r\n\r\n");
    if (head_end != std::string::npos) response.body = raw.substr(head_end + 4);
    return response;
}

TEST(StatsServer, BindsEphemeralPortWhenAskedForZero) {
    StatsServer server(0);
    EXPECT_GT(server.port(), 0);
}

TEST(StatsServer, HealthzAnswersOkWithBuildInfoAndUptime) {
    StatsServer server(0);
    const auto response = http_get(server.port(), "/healthz");
    EXPECT_EQ(response.status_line, "HTTP/1.0 200 OK");
    // First line stays "ok" — existing probes key on it — followed by the
    // build-identity lines.
    EXPECT_EQ(response.body.rfind("ok\n", 0), 0u) << response.body;
    EXPECT_NE(response.body.find("git_sha: "), std::string::npos);
    EXPECT_NE(response.body.find("build_type: "), std::string::npos);
    EXPECT_NE(response.body.find("compiler: "), std::string::npos);
    EXPECT_NE(response.body.find("uptime_s: "), std::string::npos);
    EXPECT_GE(server.requests_served(), 1u);
}

TEST(StatsServer, NonGetMethodsAre405) {
    StatsServer server(0);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                        sizeof address),
              0);
    const std::string request = "POST /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              ssize_t(request.size()));
    std::string raw;
    char buffer[1024];
    for (;;) {
        const auto got = ::recv(fd, buffer, sizeof buffer, 0);
        if (got <= 0) break;
        raw.append(buffer, std::size_t(got));
    }
    ::close(fd);
    EXPECT_EQ(raw.rfind("HTTP/1.0 405 Method Not Allowed", 0), 0u) << raw;
}

TEST(StatsServer, TopServesProgressAndMemoryJson) {
    MemRegistration source("statstest.top");
    source.report(512, 2);
    progress_begin_plan(net::TimePoint::from_date(2015, 1, 1),
                        net::TimePoint::from_date(2015, 3, 1));
    progress_note_events(99);

    StatsServer server(0);
    const auto response = http_get(server.port(), "/top");
    progress_end_plan();
    EXPECT_EQ(response.status_line, "HTTP/1.0 200 OK");
    ASSERT_TRUE(json_valid(response.body)) << response.body;
    const auto parsed = json_parse(response.body);
    ASSERT_TRUE(parsed.has_value());
    const JsonValue* progress = parsed->find("progress");
    ASSERT_NE(progress, nullptr);
    EXPECT_EQ(progress->number_or("events_executed", 0), 99);
    const JsonValue* memory = parsed->find("memory");
    ASSERT_NE(memory, nullptr);
    EXPECT_GT(memory->number_or("process_rss_bytes", 0), 0);
    EXPECT_GE(memory->number_or("accounted_bytes", -1), 512);
}

TEST(StatsServer, UnknownPathIs404) {
    StatsServer server(0);
    EXPECT_EQ(http_get(server.port(), "/nope").status_line,
              "HTTP/1.0 404 Not Found");
}

TEST(StatsServer, MetricsEndpointSpeaksPrometheusTextFormat) {
    counter("stats_test.requests").inc(3);
    gauge("stats_test.depth").set(-2);
    latency_histogram("stats_test.latency").observe(0.005);

    StatsServer server(0);
    const auto response = http_get(server.port(), "/metrics");
    EXPECT_EQ(response.status_line, "HTTP/1.0 200 OK");
    const std::string& body = response.body;

    // Dotted names become underscore names with a TYPE line each.
    EXPECT_NE(body.find("# TYPE stats_test_requests counter\n"
                        "stats_test_requests 3\n"),
              std::string::npos);
    EXPECT_NE(body.find("# TYPE stats_test_depth gauge\n"
                        "stats_test_depth -2\n"),
              std::string::npos);
    EXPECT_NE(body.find("# TYPE stats_test_latency histogram\n"),
              std::string::npos);
    EXPECT_NE(body.find("stats_test_latency_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(body.find("stats_test_latency_count 1"), std::string::npos);
    EXPECT_NE(body.find("stats_test_latency_sum 0.005"), std::string::npos);

    // Every exposition line is either a comment or `name[{labels}] value`,
    // and histogram buckets are cumulative (non-decreasing).
    std::istringstream lines(body);
    std::string line;
    std::uint64_t previous_bucket = 0;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#') continue;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        // Label values (`le="0.005"`) may contain dots; the name must not.
        const std::string name =
            line.substr(0, std::min(space, line.find('{')));
        EXPECT_EQ(name.find('.'), std::string::npos) << line;
        if (name.rfind("stats_test_latency_bucket", 0) == 0) {
            const auto value = std::stoull(line.substr(space + 1));
            EXPECT_GE(value, previous_bucket) << line;
            previous_bucket = value;
        }
    }
}

TEST(StatsServer, SeriesEndpointServesRecorderJson) {
    auto& recorder = SeriesRecorder::instance();
    recorder.disable();
    recorder.configure({1.0, 16});
    recorder.enable();
    counter("stats_test.series").inc();
    recorder.sample(42.0);
    recorder.disable();

    StatsServer server(0);
    const auto response = http_get(server.port(), "/series");
    EXPECT_EQ(response.status_line, "HTTP/1.0 200 OK");
    EXPECT_TRUE(json_valid(response.body)) << response.body;
    EXPECT_NE(response.body.find("\"stats_test.series\""), std::string::npos);
}

TEST(StatsServer, StopIsIdempotentAndJoinsThread) {
    StatsServer server(0);
    server.stop();
    server.stop();  // second stop must be a no-op, destructor a third
}

}  // namespace
}  // namespace dynaddr::obs

// Memory accounting: registration lifecycle, aggregation, the process-RSS
// reconciliation view, and the end-of-plan capture --mem-report relies on.
// The registry is process-global, so tests use unique source names and
// look rows up by name instead of asserting exact registry contents.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "netcore/obs/json.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::obs {
namespace {

const MemSubsystem* find_row(const MemReport& report, std::string_view name) {
    for (const auto& row : report.subsystems)
        if (row.name == name) return &row;
    return nullptr;
}

TEST(MemAccount, RegistrationPublishesAndSameNameSourcesAggregate) {
    MemRegistration a("memtest.alpha");
    MemRegistration b("memtest.alpha");
    MemRegistration c("memtest.beta");
    a.report(1000, 10);
    b.report(234, 2);
    c.report(50, 1);

    const MemReport report = mem_report();
    const MemSubsystem* alpha = find_row(report, "memtest.alpha");
    ASSERT_NE(alpha, nullptr);
    EXPECT_EQ(alpha->bytes, 1234u);
    EXPECT_EQ(alpha->items, 12u);
    EXPECT_EQ(alpha->sources, 2u);
    const MemSubsystem* beta = find_row(report, "memtest.beta");
    ASSERT_NE(beta, nullptr);
    EXPECT_EQ(beta->bytes, 50u);
    EXPECT_GE(report.accounted_bytes, 1284u);

    // Rows come sorted by bytes, descending.
    EXPECT_TRUE(std::is_sorted(
        report.subsystems.begin(), report.subsystems.end(),
        [](const auto& x, const auto& y) { return x.bytes >= y.bytes; }));
}

TEST(MemAccount, DestructionRemovesTheSource) {
    {
        MemRegistration gone("memtest.transient");
        gone.report(77);
        EXPECT_NE(find_row(mem_report(), "memtest.transient"), nullptr);
    }
    EXPECT_EQ(find_row(mem_report(), "memtest.transient"), nullptr);
}

TEST(MemAccount, DefaultRegistrationIsEmptyAndReportIsNoop) {
    MemRegistration none;
    EXPECT_TRUE(none.empty());
    none.report(123, 4);  // must not crash, must not register anything
    EXPECT_EQ(find_row(mem_report(), ""), nullptr);
}

TEST(MemAccount, MoveTransfersTheSource) {
    MemRegistration from("memtest.moved");
    from.report(10);
    MemRegistration to(std::move(from));
    EXPECT_TRUE(from.empty());
    EXPECT_FALSE(to.empty());
    to.report(20);
    const MemReport report = mem_report();
    const MemSubsystem* row = find_row(report, "memtest.moved");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->bytes, 20u);
    EXPECT_EQ(row->sources, 1u);
}

TEST(MemAccount, ProcessFiguresAreLiveAndPeakCoversCurrent) {
    const std::uint64_t rss = process_rss_bytes();
    const std::uint64_t peak = process_peak_rss_bytes();
    EXPECT_GT(rss, 1u << 20);   // a test binary is at least a MiB resident
    EXPECT_GT(peak, 1u << 20);
    // ru_maxrss is a lifetime high-water mark; allow page-granularity slack
    // between the two different kernel accounting sources.
    EXPECT_GE(peak + (1u << 20), rss);
}

TEST(MemAccount, ResidualIsRssMinusAccounted) {
    MemReport report;
    report.accounted_bytes = 300;
    report.process_rss_bytes = 1000;
    EXPECT_EQ(report.residual_bytes(), 700);
    report.accounted_bytes = 1500;  // over-accounting shows up negative
    EXPECT_EQ(report.residual_bytes(), -500);
}

TEST(MemAccount, JsonExportIsWellFormedAndCarriesTheRows) {
    MemRegistration source("memtest.json");
    source.report(4096, 8);
    std::ostringstream out;
    write_mem_report_json(out, mem_report());
    const std::string text = std::move(out).str();
    ASSERT_TRUE(json_valid(text)) << text;

    const auto parsed = json_parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_GT(parsed->number_or("process_rss_bytes", 0), 0);
    EXPECT_GE(parsed->number_or("accounted_bytes", -1), 4096);
    const JsonValue* subsystems = parsed->find("subsystems");
    ASSERT_NE(subsystems, nullptr);
    const auto row = std::find_if(
        subsystems->array.begin(), subsystems->array.end(),
        [](const JsonValue& v) { return v.string_or("name", "") == "memtest.json"; });
    ASSERT_NE(row, subsystems->array.end());
    EXPECT_EQ(row->number_or("bytes", 0), 4096);
    EXPECT_EQ(row->number_or("items", 0), 8);
}

TEST(MemAccount, FinalCaptureSurvivesSourceTeardown) {
    {
        MemRegistration source("memtest.capture");
        source.report(9999, 1);
        mem_capture_final();
    }
    // Live report no longer has the row; the capture still does.
    EXPECT_EQ(find_row(mem_report(), "memtest.capture"), nullptr);
    const auto captured = mem_final_report();
    ASSERT_TRUE(captured.has_value());
    const MemSubsystem* row = find_row(*captured, "memtest.capture");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->bytes, 9999u);
}

TEST(MemAccount, GaugesPublishPerSubsystemAndProcessFigures) {
    MemRegistration source("memtest.gauges");
    source.report(2048, 4);
    publish_mem_gauges();
    const MetricsSnapshot snapshot = metrics_snapshot();
    ASSERT_TRUE(snapshot.gauges.contains("mem.memtest.gauges.bytes"));
    EXPECT_EQ(snapshot.gauges.at("mem.memtest.gauges.bytes"), 2048);
    EXPECT_EQ(snapshot.gauges.at("mem.memtest.gauges.items"), 4);
    EXPECT_GT(snapshot.gauges.at("mem.process.rss_bytes"), 0);
    EXPECT_GT(snapshot.gauges.at("mem.process.peak_rss_bytes"), 0);
    ASSERT_TRUE(snapshot.gauges.contains("mem.accounted_bytes"));
    ASSERT_TRUE(snapshot.gauges.contains("mem.residual_bytes"));
}

}  // namespace
}  // namespace dynaddr::obs

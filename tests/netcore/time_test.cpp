#include "netcore/time.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::net {
namespace {

TEST(Duration, FactoryUnits) {
    EXPECT_EQ(Duration::seconds(5).count(), 5);
    EXPECT_EQ(Duration::minutes(2).count(), 120);
    EXPECT_EQ(Duration::hours(3).count(), 10800);
    EXPECT_EQ(Duration::days(1).count(), 86400);
    EXPECT_EQ(Duration::weeks(2).count(), 14 * 86400);
}

TEST(Duration, Arithmetic) {
    const Duration d = Duration::hours(1) + Duration::minutes(30);
    EXPECT_EQ(d.count(), 5400);
    EXPECT_EQ((d - Duration::minutes(90)).count(), 0);
    EXPECT_EQ((d * 2).count(), 10800);
    EXPECT_EQ((d / 2).count(), 2700);
    EXPECT_DOUBLE_EQ(d.to_hours(), 1.5);
}

TEST(Duration, ToStringRendersComponents) {
    EXPECT_EQ(Duration{0}.to_string(), "0s");
    EXPECT_EQ(Duration::seconds(59).to_string(), "59s");
    EXPECT_EQ(Duration::seconds(3723).to_string(), "1h 2m 3s");
    EXPECT_EQ(Duration::days(2).to_string(), "2d");
    EXPECT_EQ((Duration::days(1) + Duration::hours(1)).to_string(), "1d 1h");
    EXPECT_EQ(Duration::seconds(-90).to_string(), "-1m 30s");
}

TEST(TimePoint, EpochIsZero) {
    const TimePoint epoch = TimePoint::from_date(1970, 1, 1);
    EXPECT_EQ(epoch.unix_seconds(), 0);
}

TEST(TimePoint, KnownUnixTimes) {
    // 2015-01-01 00:00:00 UTC = 1420070400.
    EXPECT_EQ(TimePoint::from_date(2015, 1, 1).unix_seconds(), 1420070400);
    // 2016-01-01 00:00:00 UTC = 1451606400 (2015 has 365 days).
    EXPECT_EQ(TimePoint::from_date(2016, 1, 1).unix_seconds(), 1451606400);
}

TEST(TimePoint, CivilRoundTrip) {
    const CivilTime civil{2015, 7, 14, 13, 45, 59};
    const TimePoint t = TimePoint::from_civil(civil);
    const CivilTime back = t.to_civil();
    EXPECT_EQ(back.year, 2015);
    EXPECT_EQ(back.month, 7);
    EXPECT_EQ(back.day, 14);
    EXPECT_EQ(back.hour, 13);
    EXPECT_EQ(back.minute, 45);
    EXPECT_EQ(back.second, 59);
}

TEST(TimePoint, LeapYearHandling) {
    EXPECT_NO_THROW(TimePoint::from_date(2016, 2, 29));
    EXPECT_THROW(TimePoint::from_date(2015, 2, 29), Error);
    EXPECT_THROW(TimePoint::from_date(1900, 2, 29), Error);  // not a leap year
    EXPECT_NO_THROW(TimePoint::from_date(2000, 2, 29));      // is a leap year
}

TEST(TimePoint, RejectsBadFields) {
    EXPECT_THROW(TimePoint::from_date(2015, 0, 1), Error);
    EXPECT_THROW(TimePoint::from_date(2015, 13, 1), Error);
    EXPECT_THROW(TimePoint::from_date(2015, 4, 31), Error);
    EXPECT_THROW(TimePoint::from_civil({2015, 1, 1, 24, 0, 0}), Error);
    EXPECT_THROW(TimePoint::from_civil({2015, 1, 1, 0, 60, 0}), Error);
}

TEST(TimePoint, ParsesIsoLikeText) {
    auto t = TimePoint::parse("2015-03-04 05:06:07");
    ASSERT_TRUE(t);
    EXPECT_EQ(t->to_string(), "2015-03-04 05:06:07");
    EXPECT_TRUE(TimePoint::parse("2015-03-04T05:06:07"));
    EXPECT_FALSE(TimePoint::parse("2015-3-4 05:06:07"));
    EXPECT_FALSE(TimePoint::parse("2015-03-04 05:06"));
    EXPECT_FALSE(TimePoint::parse("2015-13-04 05:06:07"));
    EXPECT_FALSE(TimePoint::parse("garbage-in-here!!"));
}

TEST(TimePoint, HourOfDayAndDayOfYear) {
    const TimePoint t = TimePoint::from_civil({2015, 1, 2, 17, 50, 36});
    EXPECT_EQ(t.hour_of_day(), 17);
    EXPECT_EQ(t.day_of_year(), 1);  // Jan 2 -> index 1
    EXPECT_EQ(TimePoint::from_date(2015, 12, 31).day_of_year(), 364);
    EXPECT_EQ(TimePoint::from_date(2016, 12, 31).day_of_year(), 365);  // leap
}

TEST(TimePoint, LogStringMatchesPaperStyle) {
    EXPECT_EQ(TimePoint::from_civil({2015, 1, 5, 2, 38, 39}).to_log_string(),
              "Jan  5 02:38:39");
    EXPECT_EQ(TimePoint::from_civil({2015, 12, 31, 23, 59, 0}).to_log_string(),
              "Dec 31 23:59:00");
}

TEST(TimePoint, ArithmeticWithDurations) {
    const TimePoint t = TimePoint::from_date(2015, 1, 1);
    EXPECT_EQ((t + Duration::days(31)).to_string(), "2015-02-01 00:00:00");
    EXPECT_EQ((t + Duration::days(59)).to_string(), "2015-03-01 00:00:00");
    EXPECT_EQ((t + Duration::days(365)).to_string(), "2016-01-01 00:00:00");
    EXPECT_EQ(((t + Duration::hours(5)) - t).count(), 5 * 3600);
}

TEST(TimePoint, PreEpochCivil) {
    const TimePoint t = TimePoint::from_date(1969, 12, 31);
    EXPECT_EQ(t.unix_seconds(), -86400);
    EXPECT_EQ(t.to_civil().day, 31);
    EXPECT_EQ(t.hour_of_day(), 0);
}

TEST(TimeInterval, BasicPredicates) {
    const TimeInterval ivl{TimePoint{100}, TimePoint{200}};
    EXPECT_EQ(ivl.length().count(), 100);
    EXPECT_FALSE(ivl.empty());
    EXPECT_TRUE(ivl.contains(TimePoint{100}));
    EXPECT_TRUE(ivl.contains(TimePoint{199}));
    EXPECT_FALSE(ivl.contains(TimePoint{200}));
    EXPECT_TRUE((TimeInterval{TimePoint{5}, TimePoint{5}}).empty());
}

TEST(TimeInterval, Overlap) {
    const TimeInterval a{TimePoint{0}, TimePoint{10}};
    EXPECT_TRUE(a.overlaps({TimePoint{9}, TimePoint{20}}));
    EXPECT_FALSE(a.overlaps({TimePoint{10}, TimePoint{20}}));  // half-open
    EXPECT_TRUE(a.overlaps({TimePoint{-5}, TimePoint{1}}));
    EXPECT_FALSE(a.overlaps({TimePoint{-5}, TimePoint{0}}));
}

// Round-trip property across a year's worth of odd instants.
class CivilRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CivilRoundTrip, UnixCivilUnix) {
    const TimePoint t{GetParam()};
    EXPECT_EQ(TimePoint::from_civil(t.to_civil()), t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CivilRoundTrip,
    ::testing::Values(0, 1, -1, 1420070400, 1420070400 + 86399, 1456704000,
                      951782399 /* 2000-02-28 23:59:59 */,
                      951782400 /* 2000-02-29 */, 2147483647, -2147483648));

}  // namespace
}  // namespace dynaddr::net

// Sampling self-profiler: registration lifecycle, the synchronous
// sample_once hook, sampler-thread operation, and folded-stack export.
// Tests prefer profiler_sample_once() (deterministic, no timing) over the
// free-running sampler wherever possible; the one sampler-thread test
// asserts only "collected something", never a rate, so it stays stable on
// a loaded single-core CI box.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>

#include "netcore/obs/profiler.hpp"

namespace dynaddr::obs {
namespace {

std::string folded_text() {
    std::ostringstream out;
    write_profile_folded(out);
    return std::move(out).str();
}

TEST(Profiler, DisabledByDefaultAndStopIsIdempotent) {
    EXPECT_FALSE(profiler_enabled());
    stop_profiler();  // no-op when not running
    stop_profiler();
    EXPECT_FALSE(profiler_enabled());
}

TEST(Profiler, SampleOnceCapturesTheCallingThreadInline) {
    clear_profile();
    profiler_register_current_thread("prof-test-main");
    const std::uint64_t captured = profiler_sample_once();
    profiler_unregister_current_thread();
    EXPECT_GE(captured, 1u);
    EXPECT_GE(profiler_samples_taken(), 1u);

    const std::string folded = folded_text();
    EXPECT_NE(folded.find("prof-test-main;"), std::string::npos) << folded;
    // Folded lines end in a count.
    std::istringstream lines(folded);
    std::string line;
    while (std::getline(lines, line)) {
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    }
    clear_profile();
}

TEST(Profiler, SampleOnceReachesOtherRegisteredThreadsViaSignal) {
    clear_profile();
    std::atomic<bool> ready{false};
    std::atomic<bool> quit{false};
    std::thread worker([&] {
        ScopedProfiledThread profiled("prof-test-worker");
        ready.store(true);
        while (!quit.load(std::memory_order_relaxed)) {
        }
    });
    while (!ready.load()) std::this_thread::yield();

    // A few sweeps; each interrupts the spinning worker with SIGPROF.
    std::uint64_t captured = 0;
    for (int i = 0; i < 5; ++i) captured += profiler_sample_once();
    quit.store(true);
    worker.join();

    EXPECT_GE(captured, 1u);
    EXPECT_NE(folded_text().find("prof-test-worker;"), std::string::npos);
    clear_profile();
}

TEST(Profiler, UnregisteredThreadIsNotSampled) {
    clear_profile();
    std::atomic<bool> quit{false};
    std::thread bystander([&] {
        while (!quit.load(std::memory_order_relaxed)) {
        }
    });
    profiler_register_current_thread("prof-test-only");
    profiler_sample_once();
    profiler_unregister_current_thread();
    quit.store(true);
    bystander.join();

    const std::string folded = folded_text();
    // Exactly the registered thread shows up.
    EXPECT_NE(folded.find("prof-test-only;"), std::string::npos);
    std::istringstream lines(folded);
    std::string line;
    while (std::getline(lines, line))
        EXPECT_EQ(line.rfind("prof-test-only;", 0), 0u) << line;
    clear_profile();
}

TEST(Profiler, SamplerThreadCollectsWhileEnabled) {
    clear_profile();
    profiler_register_current_thread("prof-test-timed");
    start_profiler(500.0);
    EXPECT_TRUE(profiler_enabled());
    start_profiler(500.0);  // idempotent while running

    // Burn wall time so several ticks elapse; the loop is the sampled work.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    volatile std::uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < deadline) sink = sink + 1;

    stop_profiler();
    profiler_unregister_current_thread();
    EXPECT_FALSE(profiler_enabled());
    EXPECT_GE(profiler_samples_taken() + profiler_samples_missed(), 1u);
    EXPECT_FALSE(folded_text().empty());
    clear_profile();
}

TEST(Profiler, ClearProfileDropsAggregateAndCounters) {
    profiler_register_current_thread("prof-test-clear");
    profiler_sample_once();
    profiler_unregister_current_thread();
    EXPECT_FALSE(folded_text().empty());
    clear_profile();
    EXPECT_TRUE(folded_text().empty());
    EXPECT_EQ(profiler_samples_taken(), 0u);
    EXPECT_EQ(profiler_samples_missed(), 0u);
}

}  // namespace
}  // namespace dynaddr::obs

#include "netcore/ipv6.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::net {
namespace {

TEST(IPv6Address, ParsesFullForm) {
    auto addr = IPv6Address::parse("2001:0db8:0000:0000:0000:ff00:0042:8329");
    ASSERT_TRUE(addr);
    EXPECT_EQ(addr->hi(), 0x20010db800000000ULL);
    EXPECT_EQ(addr->lo(), 0x0000ff0000428329ULL);
}

TEST(IPv6Address, ParsesCompressedForms) {
    EXPECT_EQ(IPv6Address::parse("::")->hi(), 0u);
    EXPECT_EQ(IPv6Address::parse("::")->lo(), 0u);
    EXPECT_EQ(IPv6Address::parse("::1")->lo(), 1u);
    EXPECT_EQ(IPv6Address::parse("1::")->hi(), 0x0001000000000000ULL);
    auto mid = IPv6Address::parse("2001:db8::ff00:42:8329");
    ASSERT_TRUE(mid);
    EXPECT_EQ(mid->hi(), 0x20010db800000000ULL);
    EXPECT_EQ(mid->lo(), 0x0000ff0000428329ULL);
    auto fe80 = IPv6Address::parse("fe80::1");
    ASSERT_TRUE(fe80);
    EXPECT_EQ(fe80->hi(), 0xfe80000000000000ULL);
}

TEST(IPv6Address, RejectsMalformed) {
    const char* bad[] = {"",
                         ":",
                         ":::",
                         "1:2:3:4:5:6:7",        // 7 groups, no gap
                         "1:2:3:4:5:6:7:8:9",    // 9 groups
                         "::1:2:3:4:5:6:7:8",    // gap + 8
                         "1::2::3",              // two gaps
                         "12345::",              // group too wide
                         "g::1",                 // bad hex
                         "1:2:3:4:5:6:7:",       // trailing colon
                         "1.2.3.4"};             // v4 text
    for (const char* text : bad)
        EXPECT_FALSE(IPv6Address::parse(text)) << "accepted '" << text << "'";
}

TEST(IPv6Address, Rfc5952Formatting) {
    EXPECT_EQ(IPv6Address(0, 0).to_string(), "::");
    EXPECT_EQ(IPv6Address(0, 1).to_string(), "::1");
    EXPECT_EQ(IPv6Address(0x0001000000000000ULL, 0).to_string(), "1::");
    EXPECT_EQ(IPv6Address(0x20010db800000000ULL, 1).to_string(), "2001:db8::1");
    // Longest run wins; first run breaks ties.
    EXPECT_EQ(
        IPv6Address::parse("2001:0:0:1:0:0:0:1")->to_string(),
        "2001:0:0:1::1");
    // A single zero group is not compressed.
    EXPECT_EQ(IPv6Address::parse("2001:db8:0:1:1:1:1:1")->to_string(),
              "2001:db8:0:1:1:1:1:1");
    // Lowercase hex.
    EXPECT_EQ(IPv6Address::parse("2001:DB8::FF")->to_string(), "2001:db8::ff");
}

TEST(IPv6Address, RoundTripsThroughText) {
    const IPv6Address cases[] = {
        {0, 0},
        {0, 1},
        {0x20010db800010000ULL, 0xdeadbeefcafef00dULL},
        {0xfe80000000000000ULL, 0x0200aafffeBB0001ULL},
        {0xffffffffffffffffULL, 0xffffffffffffffffULL},
        {0x0000000100000000ULL, 0},
    };
    for (const auto& addr : cases) {
        auto parsed = IPv6Address::parse(addr.to_string());
        ASSERT_TRUE(parsed) << addr.to_string();
        EXPECT_EQ(*parsed, addr) << addr.to_string();
    }
}

TEST(IPv6Address, GroupsAndPrefix64) {
    const auto addr = IPv6Address::parse_or_throw("2001:db8:aaaa:bbbb:1:2:3:4");
    EXPECT_EQ(addr.group(0), 0x2001);
    EXPECT_EQ(addr.group(3), 0xbbbb);
    EXPECT_EQ(addr.group(7), 0x4);
    EXPECT_EQ(addr.prefix64().to_string(), "2001:db8:aaaa:bbbb::");
    EXPECT_EQ(addr.interface_id(), 0x0001000200030004ULL);
    EXPECT_THROW(IPv6Address::parse_or_throw("nope"), ParseError);
}

TEST(IPv6Prefix, ContainsAcrossHalves) {
    const auto p48 = IPv6Prefix::parse_or_throw("2001:db8:aaaa::/48");
    EXPECT_TRUE(p48.contains(IPv6Address::parse_or_throw("2001:db8:aaaa:1::5")));
    EXPECT_FALSE(p48.contains(IPv6Address::parse_or_throw("2001:db8:aaab::5")));
    const auto p64 = IPv6Prefix::parse_or_throw("2001:db8::/64");
    EXPECT_TRUE(p64.contains(IPv6Address::parse_or_throw("2001:db8::ffff")));
    EXPECT_FALSE(p64.contains(IPv6Address::parse_or_throw("2001:db8:0:1::1")));
    const auto p96 = IPv6Prefix::parse_or_throw("2001:db8::1:0:0/96");
    EXPECT_TRUE(p96.contains(IPv6Address::parse_or_throw("2001:db8::1:dead:beef")));
    EXPECT_FALSE(p96.contains(IPv6Address::parse_or_throw("2001:db8::2:0:1")));
    const IPv6Prefix all{};
    EXPECT_TRUE(all.contains(IPv6Address::parse_or_throw("ffff::")));
}

TEST(IPv6Prefix, CanonicalizesAndValidates) {
    const auto prefix = IPv6Prefix(
        IPv6Address::parse_or_throw("2001:db8:aaaa:bbbb:1:2:3:4"), 48);
    EXPECT_EQ(prefix.to_string(), "2001:db8:aaaa::/48");
    EXPECT_THROW(IPv6Prefix(IPv6Address{}, 129), Error);
    EXPECT_FALSE(IPv6Prefix::parse("2001:db8::/200"));
    EXPECT_FALSE(IPv6Prefix::parse("2001:db8::"));
}

}  // namespace
}  // namespace dynaddr::net

#include "netcore/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dynaddr::par {
namespace {

TEST(ResolveThreads, ZeroMeansHardware) {
    EXPECT_GE(resolve_threads(0), 1u);
    EXPECT_EQ(resolve_threads(1), 1u);
    EXPECT_EQ(resolve_threads(5), 5u);
}

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.thread_count(), threads);
        std::vector<std::atomic<int>> hits(100);
        pool.parallel_for_shards(hits.size(),
                                 [&](std::size_t shard) { ++hits[shard]; });
        for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ThreadPool, MoreThreadsThanShards) {
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallel_for_shards(hits.size(),
                             [&](std::size_t shard) { ++hits[shard]; });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroShardsIsANoOp) {
    ThreadPool pool(4);
    pool.parallel_for_shards(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ReusableAcrossCalls) {
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallel_for_shards(10, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, DeterministicMergeViaSlots) {
    // The contract the pipeline relies on: per-shard slots concatenated in
    // shard order are identical for any thread count.
    auto run = [](std::size_t threads) {
        ThreadPool pool(threads);
        std::vector<std::vector<int>> slots(64);
        pool.parallel_for_shards(slots.size(), [&](std::size_t shard) {
            for (int i = 0; i < int(shard); ++i)
                slots[shard].push_back(int(shard) * 1000 + i);
        });
        std::vector<int> merged;
        for (const auto& slot : slots)
            merged.insert(merged.end(), slot.begin(), slot.end());
        return merged;
    };
    const auto sequential = run(1);
    EXPECT_EQ(run(2), sequential);
    EXPECT_EQ(run(8), sequential);
}

TEST(ThreadPool, FirstExceptionRethrownAfterAllShardsRan) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(32);
    EXPECT_THROW(pool.parallel_for_shards(hits.size(),
                                          [&](std::size_t shard) {
                                              ++hits[shard];
                                              if (shard == 7)
                                                  throw std::runtime_error("x");
                                          }),
                 std::runtime_error);
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
    // The pool survives a throwing job.
    std::atomic<int> total{0};
    pool.parallel_for_shards(8, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 8);
}

TEST(ParallelForShards, FreeFunction) {
    std::vector<int> slots(16, 0);
    parallel_for_shards(slots.size(), 4,
                        [&](std::size_t shard) { slots[shard] = int(shard); });
    std::vector<int> expected(16);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(slots, expected);
}

}  // namespace
}  // namespace dynaddr::par

#include "netcore/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netcore/error.hpp"

namespace dynaddr::rng {
namespace {

TEST(Stream, DeterministicPerSeed) {
    Stream a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next_u64();
        EXPECT_EQ(va, b.next_u64());
        (void)c;
    }
    Stream d(42), e(43);
    int differing = 0;
    for (int i = 0; i < 100; ++i)
        if (d.next_u64() != e.next_u64()) ++differing;
    EXPECT_GT(differing, 90);
}

TEST(Stream, ZeroSeedIsValid) {
    Stream s(0);
    std::uint64_t x = 0;
    for (int i = 0; i < 10; ++i) x |= s.next_u64();
    EXPECT_NE(x, 0u);
}

TEST(Stream, ChildStreamsAreIndependentOfDerivationOrder) {
    Stream parent(7);
    Stream a1 = parent.child("alpha");
    Stream b1 = parent.child("beta");
    // Re-derive in the opposite order: children must be identical.
    Stream parent2(7);
    Stream b2 = parent2.child("beta");
    Stream a2 = parent2.child("alpha");
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(a1.next_u64(), a2.next_u64());
        EXPECT_EQ(b1.next_u64(), b2.next_u64());
    }
}

TEST(Stream, ChildrenDifferByLabelAndIndex) {
    Stream parent(7);
    auto a = parent.child("x");
    auto b = parent.child("y");
    auto c = parent.child(std::uint64_t{1});
    auto d = parent.child(std::uint64_t{2});
    EXPECT_NE(a.next_u64(), b.next_u64());
    EXPECT_NE(c.next_u64(), d.next_u64());
}

TEST(Stream, NextDoubleInUnitInterval) {
    Stream s(1);
    for (int i = 0; i < 10000; ++i) {
        const double v = s.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Stream, UniformIntRespectsBounds) {
    Stream s(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = s.uniform_int(-3, 4);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 4);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(s.uniform_int(9, 9), 9);
    EXPECT_THROW(s.uniform_int(1, 0), Error);
}

TEST(Stream, BernoulliEdges) {
    Stream s(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(s.bernoulli(0.0));
        EXPECT_TRUE(s.bernoulli(1.0));
    }
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += s.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Stream, ExponentialMean) {
    Stream s(4);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += s.exponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 3.0);
    EXPECT_THROW(s.exponential(0.0), Error);
}

TEST(Stream, LognormalMedian) {
    Stream s(5);
    std::vector<double> draws;
    for (int i = 0; i < 10001; ++i) draws.push_back(s.lognormal(50.0, 1.5));
    std::nth_element(draws.begin(), draws.begin() + 5000, draws.end());
    EXPECT_NEAR(draws[5000], 50.0, 5.0);
    EXPECT_THROW(s.lognormal(0.0, 1.0), Error);
    EXPECT_THROW(s.lognormal(1.0, -1.0), Error);
}

TEST(Stream, NormalMoments) {
    Stream s(6);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = s.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

TEST(Stream, ParetoStaysInBounds) {
    Stream s(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = s.pareto(10.0, 1000.0, 1.2);
        EXPECT_GE(v, 10.0);
        EXPECT_LE(v, 1000.0);
    }
    EXPECT_THROW(s.pareto(0.0, 1.0, 1.0), Error);
    EXPECT_THROW(s.pareto(2.0, 1.0, 1.0), Error);
    EXPECT_THROW(s.pareto(1.0, 2.0, 0.0), Error);
}

TEST(Stream, ParetoIsHeavyTailed) {
    Stream s(8);
    int below_100 = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        if (s.pareto(10.0, 100000.0, 1.0) < 100.0) ++below_100;
    // With alpha=1 over [10, 1e5], ~90% of mass is below 100.
    EXPECT_NEAR(below_100 / double(n), 0.90, 0.03);
}

TEST(Stream, WeightedIndexFollowsWeights) {
    Stream s(9);
    const double weights[] = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 20000; ++i) ++counts[s.weighted_index(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
    EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
    EXPECT_THROW(s.weighted_index(std::span<const double>{}), Error);
    const double zeros[] = {0.0, 0.0};
    EXPECT_THROW(s.weighted_index(zeros), Error);
}

TEST(Stream, ShuffleIsAPermutation) {
    Stream s(10);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = items;
    s.shuffle(shuffled);
    auto sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, items);
}

}  // namespace
}  // namespace dynaddr::rng

#include "netcore/ipv4.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::net {
namespace {

TEST(IPv4Address, ParsesDottedQuad) {
    auto addr = IPv4Address::parse("192.0.2.7");
    ASSERT_TRUE(addr);
    EXPECT_EQ(addr->value(), 0xC0000207u);
    EXPECT_EQ(addr->octet(0), 192);
    EXPECT_EQ(addr->octet(3), 7);
}

TEST(IPv4Address, FormatsDottedQuad) {
    EXPECT_EQ(IPv4Address(192, 0, 2, 7).to_string(), "192.0.2.7");
    EXPECT_EQ(IPv4Address{}.to_string(), "0.0.0.0");
    EXPECT_EQ(IPv4Address(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(IPv4Address, RejectsMalformedText) {
    const char* bad[] = {"",          "1.2.3",      "1.2.3.4.5", "256.1.1.1",
                         "1.2.3.256", "a.b.c.d",    "1..2.3",    "1.2.3.4 ",
                         " 1.2.3.4",  "01.2.3.4",   "+1.2.3.4",  "1.2.3.-4",
                         "1,2,3,4",   "1.2.3.4x"};
    for (const char* text : bad)
        EXPECT_FALSE(IPv4Address::parse(text)) << "accepted '" << text << "'";
}

TEST(IPv4Address, ParseOrThrowThrowsOnBadInput) {
    EXPECT_THROW(IPv4Address::parse_or_throw("nope"), ParseError);
    EXPECT_EQ(IPv4Address::parse_or_throw("10.0.0.1"), IPv4Address(10, 0, 0, 1));
}

TEST(IPv4Address, OrdersNumerically) {
    EXPECT_LT(IPv4Address(1, 2, 3, 4), IPv4Address(1, 2, 3, 5));
    EXPECT_LT(IPv4Address(9, 255, 255, 255), IPv4Address(10, 0, 0, 0));
}

TEST(IPv4Address, ClassifiesRfc1918) {
    EXPECT_TRUE(IPv4Address(10, 1, 2, 3).is_rfc1918());
    EXPECT_TRUE(IPv4Address(172, 16, 0, 1).is_rfc1918());
    EXPECT_TRUE(IPv4Address(172, 31, 255, 255).is_rfc1918());
    EXPECT_FALSE(IPv4Address(172, 32, 0, 0).is_rfc1918());
    EXPECT_TRUE(IPv4Address(192, 168, 5, 5).is_rfc1918());
    EXPECT_FALSE(IPv4Address(192, 169, 0, 0).is_rfc1918());
    EXPECT_FALSE(IPv4Address(11, 0, 0, 0).is_rfc1918());
}

TEST(IPv4Address, ClassifiesLoopbackAndUnspecified) {
    EXPECT_TRUE(IPv4Address(127, 0, 0, 1).is_loopback());
    EXPECT_FALSE(IPv4Address(128, 0, 0, 1).is_loopback());
    EXPECT_TRUE(IPv4Address{}.is_unspecified());
}

// Round-trip property over a deterministic sweep of values.
class IPv4RoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IPv4RoundTrip, TextRoundTrips) {
    const IPv4Address addr{GetParam()};
    auto parsed = IPv4Address::parse(addr.to_string());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, addr);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IPv4RoundTrip,
                         ::testing::Values(0u, 1u, 0x01020304u, 0x7F000001u,
                                           0xC0A80101u, 0xDEADBEEFu, 0xFFFFFFFFu,
                                           0x0A0B0C0Du, 0x80000000u, 0x00FFFF00u));

TEST(IPv4Prefix, CanonicalizesHostBits) {
    IPv4Prefix prefix{IPv4Address(192, 0, 2, 77), 24};
    EXPECT_EQ(prefix.base(), IPv4Address(192, 0, 2, 0));
    EXPECT_EQ(prefix.to_string(), "192.0.2.0/24");
}

TEST(IPv4Prefix, RejectsBadLength) {
    EXPECT_THROW((IPv4Prefix{IPv4Address{}, 33}), Error);
    EXPECT_THROW((IPv4Prefix{IPv4Address{}, -1}), Error);
}

TEST(IPv4Prefix, ParsesAndRejects) {
    auto p = IPv4Prefix::parse("10.0.0.0/8");
    ASSERT_TRUE(p);
    EXPECT_EQ(p->length(), 8);
    EXPECT_FALSE(IPv4Prefix::parse("10.0.0.0"));
    EXPECT_FALSE(IPv4Prefix::parse("10.0.0.0/33"));
    EXPECT_FALSE(IPv4Prefix::parse("10.0.0.0/-1"));
    EXPECT_FALSE(IPv4Prefix::parse("10.0.0.0/8x"));
    EXPECT_FALSE(IPv4Prefix::parse("/8"));
}

TEST(IPv4Prefix, ContainsAddresses) {
    const auto prefix = IPv4Prefix::parse_or_throw("192.0.2.0/24");
    EXPECT_TRUE(prefix.contains(IPv4Address(192, 0, 2, 0)));
    EXPECT_TRUE(prefix.contains(IPv4Address(192, 0, 2, 255)));
    EXPECT_FALSE(prefix.contains(IPv4Address(192, 0, 3, 0)));
    EXPECT_FALSE(prefix.contains(IPv4Address(192, 0, 1, 255)));
}

TEST(IPv4Prefix, ContainsPrefixes) {
    const auto p16 = IPv4Prefix::parse_or_throw("10.1.0.0/16");
    const auto p24 = IPv4Prefix::parse_or_throw("10.1.2.0/24");
    EXPECT_TRUE(p16.contains(p24));
    EXPECT_FALSE(p24.contains(p16));
    EXPECT_TRUE(p16.contains(p16));
    EXPECT_FALSE(p16.contains(IPv4Prefix::parse_or_throw("10.2.0.0/24")));
}

TEST(IPv4Prefix, SizeFirstLastAt) {
    const auto prefix = IPv4Prefix::parse_or_throw("192.0.2.0/30");
    EXPECT_EQ(prefix.size(), 4u);
    EXPECT_EQ(prefix.first(), IPv4Address(192, 0, 2, 0));
    EXPECT_EQ(prefix.last(), IPv4Address(192, 0, 2, 3));
    EXPECT_EQ(prefix.at(2), IPv4Address(192, 0, 2, 2));
    EXPECT_THROW((void)prefix.at(4), Error);
}

TEST(IPv4Prefix, ZeroLengthCoversEverything) {
    const IPv4Prefix all{};
    EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
    EXPECT_TRUE(all.contains(IPv4Address(255, 255, 255, 255)));
    EXPECT_EQ(all.mask(), 0u);
}

TEST(IPv4Prefix, EnclosingHelpers) {
    const IPv4Address addr(91, 55, 174, 103);
    EXPECT_EQ(IPv4Prefix::slash16_of(addr).to_string(), "91.55.0.0/16");
    EXPECT_EQ(IPv4Prefix::slash8_of(addr).to_string(), "91.0.0.0/8");
}

// Property: every address inside a prefix maps back into it; the one past
// last() does not.
class PrefixContainment : public ::testing::TestWithParam<const char*> {};

TEST_P(PrefixContainment, BoundariesAreTight) {
    const auto prefix = IPv4Prefix::parse_or_throw(GetParam());
    EXPECT_TRUE(prefix.contains(prefix.first()));
    EXPECT_TRUE(prefix.contains(prefix.last()));
    if (prefix.first().value() != 0) {
        EXPECT_FALSE(
            prefix.contains(IPv4Address{prefix.first().value() - 1}));
    }
    if (prefix.last().value() != 0xFFFFFFFFu) {
        EXPECT_FALSE(prefix.contains(IPv4Address{prefix.last().value() + 1}));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefixContainment,
                         ::testing::Values("10.0.0.0/8", "172.16.0.0/12",
                                           "192.168.1.0/24", "81.128.0.0/12",
                                           "87.128.0.0/14", "1.2.3.4/32",
                                           "128.0.0.0/1", "230.1.44.0/22"));

}  // namespace
}  // namespace dynaddr::net

// Run-progress telemetry: plan lifecycle, watermark publishing, derived
// rates, the frozen final snapshot, and the /top JSON shape. Progress
// state is process-global and begin_plan resets it, so each test opens
// with its own begin_plan.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "netcore/obs/json.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/progress.hpp"

namespace dynaddr::obs {
namespace {

using net::Duration;
using net::TimePoint;

const TimePoint kBegin = TimePoint::from_date(2015, 1, 1);
const TimePoint kEnd = kBegin + Duration::days(100);

TEST(Progress, BeginPlanResetsAndSnapshotTracksWatermarks) {
    progress_begin_plan(kBegin, kEnd);
    ProgressSnapshot snap = progress_snapshot();
    EXPECT_TRUE(snap.plan_active);
    EXPECT_EQ(snap.sim_now, kBegin);
    EXPECT_EQ(snap.events_executed, 0u);
    EXPECT_DOUBLE_EQ(snap.fraction_done, 0.0);
    EXPECT_EQ(snap.sealed_probe, -1);

    progress_note_sim_time(kBegin + Duration::days(25));
    progress_note_events(5000);
    progress_note_sealed_probe(42);
    snap = progress_snapshot();
    EXPECT_EQ(snap.sim_now, kBegin + Duration::days(25));
    EXPECT_EQ(snap.events_executed, 5000u);
    EXPECT_EQ(snap.sealed_probe, 42);
    EXPECT_NEAR(snap.fraction_done, 0.25, 1e-9);
    EXPECT_GT(snap.wall_elapsed_s, 0.0);
    EXPECT_GT(snap.events_per_s, 0.0);
    EXPECT_GT(snap.sim_rate, 0.0);
    // 75 sim-days left at a finite sim rate: the ETA is known and finite.
    EXPECT_GE(snap.eta_s, 0.0);
    progress_end_plan();
}

TEST(Progress, FractionClampsAtTheHorizon) {
    progress_begin_plan(kBegin, kEnd);
    progress_note_sim_time(kEnd + Duration::days(5));  // overshoot
    EXPECT_DOUBLE_EQ(progress_snapshot().fraction_done, 1.0);
    progress_end_plan();
}

TEST(Progress, EndPlanFreezesTheWallClock) {
    progress_begin_plan(kBegin, kEnd);
    progress_note_events(100);
    progress_end_plan();
    const ProgressSnapshot first = progress_snapshot();
    EXPECT_FALSE(first.plan_active);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const ProgressSnapshot second = progress_snapshot();
    // Frozen: wall time (and thus the rates) stop advancing at end_plan.
    EXPECT_DOUBLE_EQ(first.wall_elapsed_s, second.wall_elapsed_s);
    EXPECT_DOUBLE_EQ(first.events_per_s, second.events_per_s);
}

TEST(Progress, JsonExportIsWellFormedAndRoundTrips) {
    progress_begin_plan(kBegin, kEnd);
    progress_note_sim_time(kBegin + Duration::days(50));
    progress_note_events(1234);
    std::ostringstream out;
    write_progress_json(out, progress_snapshot());
    progress_end_plan();

    const std::string text = std::move(out).str();
    ASSERT_TRUE(json_valid(text)) << text;
    const auto parsed = json_parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->string_or("sim_now", ""), "2015-02-20 00:00:00");
    EXPECT_EQ(parsed->string_or("plan_end", ""), "2015-04-11 00:00:00");
    EXPECT_EQ(parsed->number_or("events_executed", 0), 1234);
    EXPECT_NEAR(parsed->number_or("fraction_done", 0), 0.5, 1e-9);
    const JsonValue* active = parsed->find("plan_active");
    ASSERT_NE(active, nullptr);
    EXPECT_EQ(active->type, JsonValue::Type::Bool);
    EXPECT_TRUE(active->boolean);
}

TEST(Progress, GaugesPublishTheSnapshot) {
    progress_begin_plan(kBegin, kEnd);
    progress_note_sim_time(kBegin + Duration::days(10));
    progress_note_events(777);
    publish_progress_gauges();
    progress_end_plan();

    const MetricsSnapshot snapshot = metrics_snapshot();
    EXPECT_EQ(snapshot.gauges.at("progress.plan_active"), 1);
    EXPECT_EQ(snapshot.gauges.at("progress.events_executed"), 777);
    EXPECT_EQ(snapshot.gauges.at("progress.fraction_done_pct"), 10);
    EXPECT_EQ(snapshot.gauges.at("progress.sim_now_unix"),
              (kBegin + Duration::days(10)).unix_seconds());
    ASSERT_TRUE(snapshot.gauges.contains("progress.eta_s"));
    ASSERT_TRUE(snapshot.gauges.contains("progress.sealed_probe"));
}

}  // namespace
}  // namespace dynaddr::obs

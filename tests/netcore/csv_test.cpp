#include "netcore/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netcore/error.hpp"

namespace dynaddr::csv {
namespace {

TEST(SplitLine, PlainFields) {
    EXPECT_EQ(split_line("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split_line(""), (std::vector<std::string>{""}));
    EXPECT_EQ(split_line("a,,c"), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split_line(","), (std::vector<std::string>{"", ""}));
}

TEST(SplitLine, QuotedFields) {
    EXPECT_EQ(split_line(R"("a,b",c)"), (std::vector<std::string>{"a,b", "c"}));
    EXPECT_EQ(split_line(R"("say ""hi""")"),
              (std::vector<std::string>{"say \"hi\""}));
    EXPECT_THROW(split_line(R"("unterminated)"), ParseError);
}

TEST(JoinLine, QuotesOnlyWhenNeeded) {
    EXPECT_EQ(join_line({"a", "b"}), "a,b");
    EXPECT_EQ(join_line({"a,b", "c"}), R"("a,b",c)");
    EXPECT_EQ(join_line({"say \"hi\""}), R"("say ""hi""")");
}

TEST(JoinSplit, RoundTripsArbitraryFields) {
    const std::vector<std::string> fields = {"plain", "with,comma",
                                             "with\"quote", "", "a,b\",c\"\""};
    EXPECT_EQ(split_line(join_line(fields)), fields);
}

TEST(WriterReader, RoundTrip) {
    std::stringstream buffer;
    {
        Writer writer(buffer, {"id", "name"});
        writer.write_row({"1", "alpha"});
        writer.write_row({"2", "beta,comma"});
        EXPECT_EQ(writer.rows_written(), 2u);
    }
    Reader reader(buffer);
    EXPECT_EQ(reader.header(), (std::vector<std::string>{"id", "name"}));
    EXPECT_EQ(reader.column("name"), 1u);
    EXPECT_THROW((void)reader.column("nope"), Error);
    auto row1 = reader.next_row();
    ASSERT_TRUE(row1);
    EXPECT_EQ((*row1)[1], "alpha");
    auto row2 = reader.next_row();
    ASSERT_TRUE(row2);
    EXPECT_EQ((*row2)[1], "beta,comma");
    EXPECT_FALSE(reader.next_row());
}

TEST(Writer, EnforcesWidth) {
    std::stringstream buffer;
    Writer writer(buffer, {"a", "b"});
    EXPECT_THROW(writer.write_row({"only-one"}), Error);
    EXPECT_THROW(Writer(buffer, {}), Error);
}

TEST(Reader, RejectsEmptyStreamAndBadRows) {
    std::stringstream empty;
    EXPECT_THROW(Reader{empty}, ParseError);

    std::stringstream bad("a,b\n1,2,3\n");
    Reader reader(bad);
    EXPECT_THROW(reader.next_row(), ParseError);
}

TEST(Reader, SkipsBlankLinesAndCarriageReturns) {
    std::stringstream buffer("a,b\r\n\r\n1,2\r\n\n3,4\n");
    Reader reader(buffer);
    auto row1 = reader.next_row();
    ASSERT_TRUE(row1);
    EXPECT_EQ((*row1)[0], "1");
    auto row2 = reader.next_row();
    ASSERT_TRUE(row2);
    EXPECT_EQ((*row2)[1], "4");
    EXPECT_FALSE(reader.next_row());
}

TEST(ScanReader, MatchesReaderSemantics) {
    // Plain rows, blank lines, CRLF, missing trailing newline.
    std::stringstream buffer("probe,addr\r\n\r\n101,10.0.0.1\r\n\n102,10.0.0.2");
    ScanReader reader(buffer);
    EXPECT_EQ(reader.column("probe"), 0u);
    EXPECT_EQ(reader.column("addr"), 1u);
    EXPECT_THROW((void)reader.column("nope"), Error);
    const auto* row1 = reader.next_row();
    ASSERT_NE(row1, nullptr);
    EXPECT_EQ((*row1)[0], "101");
    EXPECT_EQ((*row1)[1], "10.0.0.1");
    const auto* row2 = reader.next_row();
    ASSERT_NE(row2, nullptr);
    EXPECT_EQ((*row2)[1], "10.0.0.2");
    EXPECT_EQ(reader.next_row(), nullptr);
}

TEST(ScanReader, QuotedRowsFallBackToFullParser) {
    std::stringstream buffer(
        "a,b\n\"beta,comma\",plain\n\"esc\"\"quote\",2\n");
    ScanReader reader(buffer);
    const auto* row1 = reader.next_row();
    ASSERT_NE(row1, nullptr);
    EXPECT_EQ((*row1)[0], "beta,comma");
    EXPECT_EQ((*row1)[1], "plain");
    const auto* row2 = reader.next_row();
    ASSERT_NE(row2, nullptr);
    EXPECT_EQ((*row2)[0], "esc\"quote");
    EXPECT_EQ(reader.next_row(), nullptr);
}

TEST(ScanReader, RejectsEmptyStreamAndBadRows) {
    std::stringstream empty;
    EXPECT_THROW(ScanReader{empty}, ParseError);

    std::stringstream bad("a,b\n1,2,3\n");
    ScanReader reader(bad);
    EXPECT_THROW(reader.next_row(), ParseError);
}

TEST(ScanReader, EmptyFieldsSurvive) {
    std::stringstream buffer("a,b,c\n,,\nx,,z\n");
    ScanReader reader(buffer);
    const auto* row1 = reader.next_row();
    ASSERT_NE(row1, nullptr);
    EXPECT_EQ((*row1)[0], "");
    EXPECT_EQ((*row1)[2], "");
    const auto* row2 = reader.next_row();
    ASSERT_NE(row2, nullptr);
    EXPECT_EQ((*row2)[1], "");
    EXPECT_EQ((*row2)[2], "z");
}

}  // namespace
}  // namespace dynaddr::csv

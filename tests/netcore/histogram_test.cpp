#include "netcore/histogram.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::stats {
namespace {

TEST(Cdf, EmptyBehaviour) {
    Cdf cdf;
    EXPECT_EQ(cdf.sample_count(), 0u);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fraction_at(1.0), 0.0);
    EXPECT_THROW((void)cdf.quantile(0.5), Error);
    EXPECT_TRUE(cdf.points().empty());
}

TEST(Cdf, UnweightedFractions) {
    Cdf cdf;
    for (double v : {1.0, 2.0, 2.0, 3.0}) cdf.add(v);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.75);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.fraction_at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fraction_at(1.5), 0.0);
}

TEST(Cdf, WeightedFractionsMatchPaperExample) {
    // The paper's Table 1: six interior durations, in hours:
    // 14.2, 0.7, 7.2, 23.6, 23.6, 23.6 (we use the quantized 24s below).
    // "the CPE was assigned 24 hour long addresses for roughly
    // three-quarters of the total measured time."
    Cdf cdf;
    for (double d : {14.0, 1.0, 7.0, 24.0, 24.0, 24.0}) cdf.add(d, d);
    EXPECT_NEAR(cdf.fraction_at(24.0), 72.0 / 94.0, 1e-12);
    EXPECT_GT(cdf.fraction_at(24.0), 0.74);
}

TEST(Cdf, IgnoresNonPositiveWeights) {
    Cdf cdf;
    cdf.add(1.0, 0.0);
    cdf.add(1.0, -2.0);
    EXPECT_EQ(cdf.sample_count(), 0u);
    cdf.add(1.0, 1.0);
    EXPECT_EQ(cdf.sample_count(), 1u);
}

TEST(Cdf, Quantiles) {
    Cdf cdf;
    for (int i = 1; i <= 100; ++i) cdf.add(double(i));
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
    EXPECT_THROW((void)cdf.quantile(1.5), Error);
}

TEST(Cdf, PointsAreMonotone) {
    Cdf cdf;
    for (double v : {5.0, 1.0, 3.0, 3.0, 9.0}) cdf.add(v);
    const auto points = cdf.points();
    ASSERT_EQ(points.size(), 4u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i - 1].x, points[i].x);
        EXPECT_LT(points[i - 1].y, points[i].y);
    }
    EXPECT_DOUBLE_EQ(points.back().y, 1.0);
}

TEST(Cdf, ModesSortedByMass) {
    Cdf cdf;
    for (int i = 0; i < 6; ++i) cdf.add(24.0, 24.0);
    for (int i = 0; i < 2; ++i) cdf.add(48.0, 48.0);
    cdf.add(3.0, 3.0);
    const auto modes = cdf.modes(0.25);
    ASSERT_EQ(modes.size(), 2u);
    EXPECT_DOUBLE_EQ(modes[0].x, 24.0);
    EXPECT_DOUBLE_EQ(modes[1].x, 48.0);
    EXPECT_GT(modes[0].y, modes[1].y);
    EXPECT_TRUE(cdf.modes(0.9).empty());
}

TEST(BinnedHistogram, ValidatesEdges) {
    EXPECT_THROW(BinnedHistogram({1.0}), Error);
    EXPECT_THROW(BinnedHistogram({1.0, 1.0}), Error);
    EXPECT_THROW(BinnedHistogram({2.0, 1.0}), Error);
}

TEST(BinnedHistogram, BinsAndSaturation) {
    BinnedHistogram h({0.0, 10.0, 20.0});
    h.add(-5.0);   // saturates into bin 0
    h.add(0.0);    // bin 0
    h.add(9.999);  // bin 0
    h.add(10.0);   // bin 1
    h.add(25.0);   // saturates into bin 1
    EXPECT_DOUBLE_EQ(h.bin_weight(0), 3.0);
    EXPECT_DOUBLE_EQ(h.bin_weight(1), 2.0);
    EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);
}

TEST(BinnedHistogram, NoSaturationDropsOutliers) {
    BinnedHistogram h({0.0, 1.0}, /*saturate=*/false);
    h.add(-1.0);
    h.add(2.0);
    EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
    EXPECT_FALSE(h.bin_of(2.0));
    EXPECT_TRUE(h.bin_of(0.5));
}

TEST(BinnedHistogram, PaperDurationBins) {
    auto h = BinnedHistogram::outage_duration_bins();
    EXPECT_EQ(h.bin_count(), 12u);
    EXPECT_EQ(h.bin_label(0), "< 5m");
    EXPECT_EQ(h.bin_label(1), "5m-10m");
    EXPECT_EQ(h.bin_label(5), "1h-3h");
    EXPECT_EQ(h.bin_label(9), "1d-3d");
    EXPECT_EQ(h.bin_label(10), "3d-1w");
    EXPECT_EQ(h.bin_label(11), "> 1w");
    EXPECT_EQ(*h.bin_of(4.5 * 60), 0u);
    EXPECT_EQ(*h.bin_of(7 * 60), 1u);
    EXPECT_EQ(*h.bin_of(2 * 86400), 9u);
    EXPECT_EQ(*h.bin_of(30 * 86400.0), 11u);
    EXPECT_THROW(h.bin_label(12), Error);
}

TEST(Summary, WelfordMoments) {
    Summary s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, SingleSampleVarianceIsZero) {
    Summary s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace dynaddr::stats

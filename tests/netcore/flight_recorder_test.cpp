#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "netcore/obs/flight_recorder.hpp"
#include "netcore/obs/json.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/time.hpp"
#include "sim/simulation.hpp"

DYNADDR_LOG_MODULE(flight_test);

namespace dynaddr::obs {
namespace {

/// Tests never install signal handlers — a crashing test should crash
/// the test runner loudly, not write a dump and re-raise.
void enable_capture(std::size_t ring_size = 64) {
    clear_flight_records();
    enable_flight_recorder(ring_size, /*install_handlers=*/false);
}

std::vector<FlightRecordView> records_mentioning(const std::string& needle) {
    std::vector<FlightRecordView> out;
    for (auto& record : flight_records())
        if (record.message.find(needle) != std::string::npos)
            out.push_back(std::move(record));
    return out;
}

TEST(FlightRecorder, CapturesRecordsBelowTheSinkLevel) {
    const auto old_level = log_level();
    std::ostringstream sink;
    set_log_sink(&sink);
    set_log_level(LogLevel::Warn);
    enable_capture();

    DYNADDR_LOG(Debug, flight_test, "below-sink breadcrumb");
    DYNADDR_LOG(Warn, flight_test, "sink-visible warning");

    disable_flight_recorder();
    set_log_level(old_level);
    set_log_sink(nullptr);

    // The sink saw only the warning; the ring saw both.
    EXPECT_EQ(sink.str().find("below-sink breadcrumb"), std::string::npos);
    EXPECT_NE(sink.str().find("sink-visible warning"), std::string::npos);
    ASSERT_EQ(records_mentioning("below-sink breadcrumb").size(), 1u);
    const auto captured = records_mentioning("below-sink breadcrumb").front();
    EXPECT_EQ(captured.level, LogLevel::Debug);
    EXPECT_EQ(captured.module, "flight_test");
    ASSERT_EQ(records_mentioning("sink-visible warning").size(), 1u);
}

TEST(FlightRecorder, DisabledCaptureCostsOneLoadAndStoresNothing) {
    enable_capture();
    disable_flight_recorder();
    flight_capture(LogLevel::Info, "flight_test", "after disable");
    EXPECT_TRUE(records_mentioning("after disable").empty());
}

TEST(FlightRecorder, RingKeepsOnlyTheLastNRecords) {
    // Ring capacity is fixed per thread at first use, so a fresh thread
    // gets a fresh ring at the requested size.
    enable_capture(/*ring_size=*/8);
    std::thread writer([] {
        for (int i = 0; i < 20; ++i)
            flight_record(LogLevel::Info, "flight_test",
                          "ring-test record " + std::to_string(i));
    });
    writer.join();
    disable_flight_recorder();

    const auto kept = records_mentioning("ring-test record");
    ASSERT_EQ(kept.size(), 8u);
    // Oldest 12 were overwritten; seq is the per-thread capture index.
    EXPECT_NE(kept.front().message.find("record 12"), std::string::npos);
    EXPECT_NE(kept.back().message.find("record 19"), std::string::npos);
    EXPECT_EQ(kept.back().seq, 20u);
    for (std::size_t i = 1; i < kept.size(); ++i)
        EXPECT_EQ(kept[i].seq, kept[i - 1].seq + 1);
}

TEST(FlightRecorder, RecordsCarrySimulatedTimeWhenInsideASimulation) {
    enable_capture();
    const net::TimePoint start{1'700'000'000};
    {
        sim::Simulation sim(start);
        sim.at(start + net::Duration::hours(2), [](net::TimePoint) {
            DYNADDR_LOG(Debug, flight_test, "sim-stamped record");
        });
        sim.run_all();
    }
    flight_capture(LogLevel::Info, "flight_test", "wall record");
    disable_flight_recorder();

    const auto stamped = records_mentioning("sim-stamped record");
    ASSERT_EQ(stamped.size(), 1u);
    EXPECT_EQ(stamped.front().sim_time,
              (start + net::Duration::hours(2)).unix_seconds());
    const auto wall = records_mentioning("wall record");
    ASSERT_EQ(wall.size(), 1u);
    EXPECT_EQ(wall.front().sim_time, INT64_MIN);
}

TEST(FlightRecorder, LongMessagesAndModulesAreTruncatedNotCorrupted) {
    enable_capture();
    const std::string long_message(4096, 'x');
    flight_record(LogLevel::Error, "a_module_name_well_past_the_cap",
                  long_message);
    disable_flight_recorder();

    const auto kept = records_mentioning("xxxx");
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_LT(kept.front().message.size(), 256u);
    EXPECT_LT(kept.front().module.size(), 32u);
    EXPECT_EQ(kept.front().module.find("a_module"), 0u);
}

TEST(FlightRecorder, WriteCrashDumpProducesValidatedJson) {
    enable_capture();
    DYNADDR_LOG(Debug, flight_test, "pre-crash breadcrumb");
    counter("flight_test.dump_counter").inc(7);
    const std::string path =
        testing::TempDir() + "flight_recorder_dump_test.json";
    ASSERT_TRUE(write_crash_dump(path.c_str(), "unit-test"));
    disable_flight_recorder();

    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    const std::string dump = content.str();
    std::remove(path.c_str());

    EXPECT_TRUE(json_valid(dump)) << dump;
    EXPECT_NE(dump.find("\"reason\": \"unit-test\""), std::string::npos);
    EXPECT_NE(dump.find("pre-crash breadcrumb"), std::string::npos);
    EXPECT_NE(dump.find("flight_test.dump_counter"), std::string::npos);
    EXPECT_NE(dump.find("\"records\""), std::string::npos);
    EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
    EXPECT_NE(dump.find("\"spans\""), std::string::npos);
}

TEST(FlightRecorder, DumpEscapesControlAndQuoteCharacters) {
    enable_capture();
    flight_record(LogLevel::Info, "flight_test",
                  "tricky \"quoted\"\tand\nnewlined");
    const std::string path =
        testing::TempDir() + "flight_recorder_escape_test.json";
    ASSERT_TRUE(write_crash_dump(path.c_str(), "escape \"test\""));
    disable_flight_recorder();

    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    std::remove(path.c_str());
    EXPECT_TRUE(json_valid(content.str())) << content.str();
}

TEST(FlightRecorder, CrashDumpPathFollowsConfiguredDirectory) {
    set_crash_dump_dir("/some/dir");
    EXPECT_EQ(crash_dump_path().rfind("/some/dir/dynaddr-crash-", 0), 0u);
    set_crash_dump_dir("");
    EXPECT_EQ(crash_dump_path().rfind("./dynaddr-crash-", 0), 0u);
}

}  // namespace
}  // namespace dynaddr::obs

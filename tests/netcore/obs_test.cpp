#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "netcore/obs/json.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/trace.hpp"

DYNADDR_LOG_MODULE(obs_test);

namespace dynaddr::obs {
namespace {

// -- metrics ---------------------------------------------------------------

TEST(Metrics, CounterSemantics) {
    Counter& c = counter("obs_test.counter_semantics");
    const auto before = c.value();
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), before + 42);
    // Same name, same instance.
    EXPECT_EQ(&c, &counter("obs_test.counter_semantics"));
}

TEST(Metrics, GaugeSemantics) {
    Gauge& g = gauge("obs_test.gauge_semantics");
    g.set(10);
    EXPECT_EQ(g.value(), 10);
    g.add(-25);
    EXPECT_EQ(g.value(), -15);
}

TEST(Metrics, HistogramBucketsAndSum) {
    Histogram& h = histogram("obs_test.histogram_semantics", {1.0, 10.0});
    h.observe(0.5);   // bucket 0 (<= 1)
    h.observe(1.0);   // bucket 0 (upper bounds inclusive)
    h.observe(5.0);   // bucket 1 (<= 10)
    h.observe(100.0); // overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket_count(0), 2u);
    EXPECT_EQ(h.bucket_count(1), 1u);
    EXPECT_EQ(h.bucket_count(2), 1u);
    EXPECT_NEAR(h.sum(), 106.5, 1e-6);
}

TEST(Metrics, MultiThreadedCounterSumsExactly) {
    Counter& c = counter("obs_test.mt_counter");
    const auto before = c.value();
    constexpr int kThreads = 8;
    constexpr int kIncrements = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < kIncrements; ++i) c.inc();
        });
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(c.value(), before + std::uint64_t(kThreads) * kIncrements);
}

TEST(Metrics, SnapshotAndDiff) {
    Counter& c = counter("obs_test.diff_counter");
    const auto before = metrics_snapshot();
    c.inc(7);
    const auto after = metrics_snapshot();
    const auto diff = metrics_diff(after, before);
    EXPECT_EQ(diff.counters.at("obs_test.diff_counter"), 7u);
}

TEST(Metrics, JsonExportIsValidAndGroupsBlocks) {
    metrics_block("obs_test_block");
    counter("obs_test_block.alpha").inc(3);
    std::ostringstream out;
    write_metrics_json(out, metrics_snapshot());
    const std::string text = out.str();
    EXPECT_TRUE(json_valid(text)) << text;
    EXPECT_NE(text.find("\"obs_test_block\": {"), std::string::npos);
    EXPECT_NE(text.find("\"alpha\": "), std::string::npos);
}

TEST(Metrics, CsvExportHasHeaderAndRows) {
    counter("obs_test.csv_counter").inc();
    std::ostringstream out;
    write_metrics_csv(out, metrics_snapshot());
    const std::string text = out.str();
    EXPECT_EQ(text.rfind("kind,name,value\n", 0), 0u);
    EXPECT_NE(text.find("counter,obs_test.csv_counter,"), std::string::npos);
}

// -- logging ---------------------------------------------------------------

TEST(Log, LevelParsing) {
    EXPECT_EQ(parse_level("info"), LogLevel::Info);
    EXPECT_EQ(parse_level("WARN"), LogLevel::Warn);
    EXPECT_EQ(parse_level("warning"), LogLevel::Warn);
    EXPECT_FALSE(parse_level("loud").has_value());
}

TEST(Log, PerModuleLevelFiltering) {
    std::ostringstream sink;
    set_log_sink(&sink);
    set_module_level("obs_test", LogLevel::Warn);
    DYNADDR_LOG(Debug, obs_test, "hidden");
    DYNADDR_LOG(Warn, obs_test, "visible ", 42);
    set_log_sink(nullptr);
    clear_module_level("obs_test");
    const std::string text = sink.str();
    EXPECT_EQ(text.find("hidden"), std::string::npos);
    EXPECT_NE(text.find("visible 42"), std::string::npos);
    EXPECT_NE(text.find("|obs_test|warn|"), std::string::npos);
}

TEST(Log, ModuleOverrideBeatsGlobal) {
    const LogLevel old_global = log_level();
    std::ostringstream sink;
    set_log_sink(&sink);
    set_log_level(LogLevel::Off);
    set_module_level("obs_test", LogLevel::Debug);
    DYNADDR_LOG(Debug, obs_test, "override wins");
    clear_module_level("obs_test");
    DYNADDR_LOG(Debug, obs_test, "back to global");
    set_log_sink(nullptr);
    set_log_level(old_global);
    const std::string text = sink.str();
    EXPECT_NE(text.find("override wins"), std::string::npos);
    EXPECT_EQ(text.find("back to global"), std::string::npos);
}

TEST(Log, ModuleSpecParsing) {
    apply_module_spec("obs_test:error");
    EXPECT_FALSE(LogModule::get("obs_test").enabled(LogLevel::Warn));
    EXPECT_TRUE(LogModule::get("obs_test").enabled(LogLevel::Error));
    clear_module_level("obs_test");
    EXPECT_THROW(apply_module_spec("obs_test"), std::exception);
    EXPECT_THROW(apply_module_spec("obs_test:loud"), std::exception);
}

// -- tracing ---------------------------------------------------------------

TEST(Trace, SpansNestAndJsonIsWellFormed) {
    clear_trace();
    enable_trace();
    {
        ObsSpan outer("outer", "test");
        {
            ObsSpan inner("inner", "test");
        }
    }
    disable_trace();
    EXPECT_EQ(trace_event_count(), 2u);
    std::ostringstream out;
    write_trace_json(out);
    const std::string text = out.str();
    EXPECT_TRUE(json_valid(text)) << text;
    // Inner closes first, so it is recorded first; outer must contain it.
    const auto inner_pos = text.find("\"inner\"");
    const auto outer_pos = text.find("\"outer\"");
    ASSERT_NE(inner_pos, std::string::npos);
    ASSERT_NE(outer_pos, std::string::npos);
    EXPECT_LT(inner_pos, outer_pos);
    clear_trace();
}

TEST(Trace, DisabledSpanRecordsNothing) {
    clear_trace();
    disable_trace();
    {
        ObsSpan span("ignored", "test");
    }
    EXPECT_EQ(trace_event_count(), 0u);
}

TEST(Trace, SpanFeedsHistogramEvenWhenDisabled) {
    disable_trace();
    Histogram& h = histogram("obs_test.span_latency", {1.0});
    const auto before = h.count();
    {
        ObsSpan span("timed", "test", &h);
    }
    EXPECT_EQ(h.count(), before + 1);
}

// -- JSON validator --------------------------------------------------------

TEST(JsonValid, AcceptsAndRejects) {
    EXPECT_TRUE(json_valid("{}"));
    EXPECT_TRUE(json_valid(R"({"a": [1, 2.5, -3e2], "b": {"c": null}})"));
    EXPECT_TRUE(json_valid("  [true, false, \"x\\n\\u00e9\"] "));
    EXPECT_FALSE(json_valid(""));
    EXPECT_FALSE(json_valid("{"));
    EXPECT_FALSE(json_valid("{\"a\": }"));
    EXPECT_FALSE(json_valid("[1,]"));
    EXPECT_FALSE(json_valid("01"));
    EXPECT_FALSE(json_valid("\"unterminated"));
    EXPECT_FALSE(json_valid("{} extra"));
    EXPECT_FALSE(json_valid("{\"bad\\q\": 1}"));
}

}  // namespace
}  // namespace dynaddr::obs

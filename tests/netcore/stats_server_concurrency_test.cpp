// Stats endpoints under concurrent polling while a chaos-plan scenario
// runs live on another thread — the situation `dynaddr top` creates when
// pointed at a real run. Three poller threads hammer /metrics, /series,
// /top and /healthz while run_scenario executes with fault injection on;
// every response must be well-formed, and the whole dance must be
// TSan-clean (sanitize_smoke replays the StatsServer* tests under
// ThreadSanitizer). This is the end-to-end race check for the
// push-atomic memory accounting and the lock-free progress watermarks.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "isp/presets.hpp"
#include "isp/world.hpp"
#include "netcore/obs/json.hpp"
#include "netcore/obs/stats_server.hpp"
#include "sim/cause_ledger.hpp"
#include "sim/faults.hpp"

namespace dynaddr::obs {
namespace {

std::string http_get_raw(std::uint16_t port, const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof address) !=
        0) {
        ::close(fd);
        return {};
    }
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    std::string raw;
    char buffer[4096];
    for (;;) {
        const auto got = ::recv(fd, buffer, sizeof buffer, 0);
        if (got <= 0) break;
        raw.append(buffer, std::size_t(got));
    }
    ::close(fd);
    return raw;
}

std::string body_of(const std::string& raw) {
    const auto split = raw.find("\r\n\r\n");
    return split == std::string::npos ? std::string() : raw.substr(split + 4);
}

TEST(StatsServerConcurrency, EndpointsStayCoherentDuringLiveChaosRun) {
    // A small chaos-plan run: the quick world cut down to ten simulated
    // days, no k-root (this test is about the server, not dataset bulk),
    // with the mixed-fault profile active so the run keeps mutating pools,
    // lease tables and the event queue while we scrape.
    isp::ScenarioConfig config = isp::presets::quick_scenario();
    config.window.end = config.window.begin + net::Duration::days(10);
    config.kroot.reset();
    config.faults = sim::FaultPlan::parse("lossy,crashy,seed=11");

    StatsServer server(0);
    const std::uint16_t port = server.port();

    std::atomic<bool> run_done{false};
    std::atomic<int> bad_responses{0};
    const auto poll_loop = [&](const std::string& path, bool expect_json) {
        // Poll for as long as the scenario runs, then a last time after it
        // finished, so scrapes overlap both the live run and teardown.
        do {
            const std::string raw = http_get_raw(port, path);
            if (raw.rfind("HTTP/1.0 200", 0) != 0) {
                bad_responses.fetch_add(1);
                continue;
            }
            if (expect_json && !json_valid(body_of(raw)))
                bad_responses.fetch_add(1);
        } while (!run_done.load(std::memory_order_acquire));
        if (http_get_raw(port, path).rfind("HTTP/1.0 200", 0) != 0)
            bad_responses.fetch_add(1);
    };

    std::vector<std::thread> pollers;
    pollers.emplace_back(poll_loop, "/top", true);
    pollers.emplace_back(poll_loop, "/series", true);
    pollers.emplace_back(poll_loop, "/causes", true);
    pollers.emplace_back(poll_loop, "/metrics", false);
    pollers.emplace_back(poll_loop, "/healthz", false);

    // Cause ledger installed for the whole run: the /causes poller reads
    // the causes.* counters the ledger bumps from the simulation thread,
    // so this is the ledger's TSan coverage too.
    sim::CauseLedgerConfig ledger_config;
    ledger_config.keep_records = false;
    sim::ScopedCauseLedger ledger(ledger_config);

    const auto result = isp::run_scenario(config);
    run_done.store(true, std::memory_order_release);
    for (auto& poller : pollers) poller.join();

    EXPECT_EQ(bad_responses.load(), 0);
    EXPECT_GT(result.sim_events, 0u);
    EXPECT_GT(ledger.ledger().total_records(), 0u);
    EXPECT_GT(server.requests_served(), 5u);
}

}  // namespace
}  // namespace dynaddr::obs

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "netcore/obs/json.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/timeseries.hpp"
#include "netcore/time.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::obs {
namespace {

/// The recorder is process-global; every test starts from a clean,
/// enabled recorder with its own cadence and capacity.
void reset_recorder(double interval_seconds, std::size_t capacity) {
    auto& recorder = SeriesRecorder::instance();
    recorder.disable();
    recorder.configure({interval_seconds, capacity});
    recorder.enable();
}

std::vector<SeriesRow> rows_for(const std::string& metric) {
    std::vector<SeriesRow> out;
    for (auto& row : SeriesRecorder::instance().rows())
        if (row.metric == metric) out.push_back(std::move(row));
    return out;
}

TEST(SeriesRecorder, SamplesOnSimulatedCadence) {
    reset_recorder(60.0, 128);
    Counter& hits = counter("timeseries_test.cadence");
    {
        sim::Simulation sim(net::TimePoint{1'000'000});
        // 6 increments per 60-second sampling interval, phase-shifted by
        // 5 s so no increment ever ties with a recorder tick (events at
        // the same timestamp run in scheduling order, and the tick was
        // scheduled first).
        sim.every(sim.now() + net::Duration::seconds(5),
                  net::Duration::seconds(10),
                  [&](net::TimePoint) { hits.inc(); });
        sim.run_until(net::TimePoint{1'000'000} + net::Duration::minutes(10));
    }
    SeriesRecorder::instance().disable();

    EXPECT_EQ(SeriesRecorder::instance().samples_taken(), 10u);
    const auto series = rows_for("timeseries_test.cadence");
    ASSERT_EQ(series.size(), 10u);
    for (std::size_t i = 0; i < series.size(); ++i) {
        // Ticks land at start + 60, start + 120, ... in simulated time.
        EXPECT_EQ(series[i].t, double(1'000'000 + 60 * (i + 1)));
        EXPECT_TRUE(series[i].is_counter);
        EXPECT_EQ(series[i].value, 6);
        EXPECT_EQ(series[i].cumulative, std::int64_t(6 * (i + 1)));
        EXPECT_DOUBLE_EQ(series[i].rate, 0.1);
    }
}

TEST(SeriesRecorder, DeltasAreRelativeToEnableBaseline) {
    Counter& hits = counter("timeseries_test.baseline");
    hits.inc(1000);  // pre-enable history must not leak into the series
    reset_recorder(1.0, 16);
    hits.inc(3);
    SeriesRecorder::instance().sample(100.0);
    hits.inc(4);
    SeriesRecorder::instance().sample(101.0);
    SeriesRecorder::instance().disable();

    const auto series = rows_for("timeseries_test.baseline");
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0].value, 3);
    EXPECT_EQ(series[0].cumulative, 3);
    EXPECT_EQ(series[1].value, 4);
    EXPECT_EQ(series[1].cumulative, 7);
    EXPECT_DOUBLE_EQ(series[1].rate, 4.0);
}

TEST(SeriesRecorder, RecordsOnlyChangedMetrics) {
    Counter& active = counter("timeseries_test.active");
    Gauge& level = gauge("timeseries_test.level");
    reset_recorder(1.0, 16);
    active.inc();
    level.set(5);
    SeriesRecorder::instance().sample(10.0);
    // Nothing moves: the next sample must carry no rows for either.
    SeriesRecorder::instance().sample(11.0);
    level.set(5);  // same value — still no row
    SeriesRecorder::instance().sample(12.0);
    level.set(7);
    SeriesRecorder::instance().sample(13.0);
    SeriesRecorder::instance().disable();

    EXPECT_EQ(rows_for("timeseries_test.active").size(), 1u);
    const auto levels = rows_for("timeseries_test.level");
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_FALSE(levels[0].is_counter);
    EXPECT_EQ(levels[0].value, 5);
    EXPECT_EQ(levels[1].value, 7);
}

TEST(SeriesRecorder, DownsamplingKeepsCumulativeCountsExact) {
    Counter& hits = counter("timeseries_test.downsample");
    reset_recorder(1.0, 4);
    auto& recorder = SeriesRecorder::instance();
    // 20 samples into a 4-slot ring: 16 merges, history gets coarser.
    for (int i = 1; i <= 20; ++i) {
        hits.inc(i);
        recorder.sample(double(100 + i));
    }
    recorder.disable();

    EXPECT_EQ(recorder.sample_count(), 4u);
    EXPECT_EQ(recorder.samples_taken(), 20u);
    const auto series = rows_for("timeseries_test.downsample");
    ASSERT_FALSE(series.empty());
    // Merged counter deltas must sum to the exact total (1 + ... + 20).
    EXPECT_EQ(series.back().cumulative, 210);
    // The newest sample survives unmerged.
    EXPECT_EQ(series.back().t, 120.0);
    EXPECT_EQ(series.back().value, 20);
    // Timestamps stay ordered after merging.
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_LT(series[i - 1].t, series[i].t);
}

TEST(SeriesRecorder, DisabledRecorderIgnoresSamplesAndSimTicks) {
    auto& recorder = SeriesRecorder::instance();
    recorder.disable();
    recorder.configure({60.0, 16});
    recorder.sample(1.0);
    EXPECT_EQ(recorder.samples_taken(), 0u);
    {
        sim::Simulation sim(net::TimePoint{500'000});
        sim.run_until(net::TimePoint{500'000} + net::Duration::hours(2));
    }
    EXPECT_EQ(recorder.samples_taken(), 0u);
}

TEST(SeriesRecorder, JsonAndCsvExports) {
    Counter& hits = counter("timeseries_test.export");
    reset_recorder(1.0, 16);
    auto& recorder = SeriesRecorder::instance();
    hits.inc(2);
    recorder.sample(50.0);
    recorder.disable();

    std::ostringstream json;
    recorder.write_json(json);
    EXPECT_TRUE(json_valid(json.str())) << json.str();
    EXPECT_NE(json.str().find("\"timeseries_test.export\""), std::string::npos);

    std::ostringstream csv;
    recorder.write_csv(csv);
    const std::string text = csv.str();
    EXPECT_EQ(text.rfind("t,time,kind,metric,value,cumulative,rate\n", 0), 0u);
    EXPECT_NE(text.find("counter,timeseries_test.export,2,2,"),
              std::string::npos);
}

}  // namespace
}  // namespace dynaddr::obs

// End-to-end smoke test for the CLI observability flags: runs the real
// dynaddr binary on the quick preset with --metrics-out/--trace-out and
// validates the artifacts. DYNADDR_CLI_PATH is injected by CMake.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "netcore/obs/json.hpp"

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

class ObsSmoke : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "dynaddr_obs_smoke";
        fs::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    fs::path dir_;
};

TEST_F(ObsSmoke, QuickPresetEmitsValidMetricsAndTrace) {
    const fs::path metrics = dir_ / "metrics.json";
    const fs::path trace = dir_ / "trace.json";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " --preset quick --metrics-out " + metrics.string() +
                                " --trace-out " + trace.string() + " > " +
                                (dir_ / "stdout.txt").string() + " 2> " +
                                (dir_ / "stderr.txt").string();
    ASSERT_EQ(std::system(command.c_str()), 0) << command;

    const std::string metrics_text = read_file(metrics);
    ASSERT_FALSE(metrics_text.empty());
    EXPECT_TRUE(dynaddr::obs::json_valid(metrics_text));
    // Pipeline stage counters, timer-wheel counters, and the Table 2
    // funnel block must all be present.
    EXPECT_NE(metrics_text.find("\"pipeline.probes_in\""), std::string::npos);
    EXPECT_NE(metrics_text.find("\"sim.wheel.fired\""), std::string::npos);
    EXPECT_NE(metrics_text.find("\"table2_funnel\": {"), std::string::npos);
    EXPECT_NE(metrics_text.find("\"analyzable\""), std::string::npos);

    const std::string trace_text = read_file(trace);
    ASSERT_FALSE(trace_text.empty());
    EXPECT_TRUE(dynaddr::obs::json_valid(trace_text));
    EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace_text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace_text.find("\"scenario.build\""), std::string::npos);
}

TEST_F(ObsSmoke, MetricsCsvSuffixSelectsCsv) {
    const fs::path metrics = dir_ / "metrics.csv";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " --preset quick --metrics-out " + metrics.string() +
                                " > " + (dir_ / "stdout.txt").string() + " 2>&1";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;
    const std::string text = read_file(metrics);
    EXPECT_EQ(text.rfind("kind,name,value\n", 0), 0u) << text.substr(0, 80);
}

TEST_F(ObsSmoke, SeriesOutRecordsSimulatedTimeSeries) {
    const fs::path series = dir_ / "series.json";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " --preset quick --series-out " + series.string() +
                                " --series-interval 86400 > " +
                                (dir_ / "stdout.txt").string() + " 2>&1";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;
    const std::string text = read_file(series);
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(dynaddr::obs::json_valid(text));
    EXPECT_NE(text.find("\"interval_seconds\": 86400"), std::string::npos);
    // Simulated daily cadence: the quick preset starts 2015-01-01, so the
    // first possible sample lands exactly one day in.
    EXPECT_NE(text.find("\"t\": 1420156800"), std::string::npos);
    EXPECT_NE(text.find("\"cumulative\""), std::string::npos)
        << text.substr(0, 200);
}

TEST_F(ObsSmoke, MemReportWritesReconciliationJson) {
    const fs::path report = dir_ / "mem.json";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " --preset quick --mem-report " +
                                report.string() + " > /dev/null 2>&1";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;
    const std::string text = read_file(report);
    ASSERT_FALSE(text.empty());
    ASSERT_TRUE(dynaddr::obs::json_valid(text)) << text.substr(0, 400);
    const auto parsed = dynaddr::obs::json_parse(text);
    ASSERT_TRUE(parsed.has_value());
    // The end-of-plan capture: accounted bytes from live subsystems next
    // to the process figures, residual reported explicitly.
    EXPECT_GT(parsed->number_or("accounted_bytes", 0), 0);
    EXPECT_GT(parsed->number_or("process_rss_bytes", 0), 0);
    EXPECT_GT(parsed->number_or("process_peak_rss_bytes", 0), 0);
    ASSERT_NE(parsed->find("residual_bytes"), nullptr);
    const auto* subsystems = parsed->find("subsystems");
    ASSERT_NE(subsystems, nullptr);
    EXPECT_FALSE(subsystems->array.empty());
    EXPECT_NE(text.find("sim.event_queue"), std::string::npos);
    EXPECT_NE(text.find("pool.address_pool"), std::string::npos);
}

TEST_F(ObsSmoke, ProfileOutWritesFoldedStacks) {
    const fs::path folded = dir_ / "profile.folded";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " --preset quick --profile-hz 97"
                                " --profile-out " + folded.string() +
                                " > /dev/null 2>&1";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;
    const std::string text = read_file(folded);
    ASSERT_FALSE(text.empty());
    // Folded-stack shape: `thread;frame;...;frame count` per line; the CLI
    // registers its own thread as "main".
    EXPECT_EQ(text.rfind("main;", 0), 0u) << text.substr(0, 120);
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
        EXPECT_NE(line.find(';'), std::string::npos) << line;
    }
}

/// End-to-end `dynaddr top`: a scaled background run serves --stats-port
/// on an ephemeral port (scraped from its own log line); `top --count 1`
/// polls it and must render the progress/memory table.
TEST_F(ObsSmoke, TopSubcommandRendersLiveRun) {
    const fs::path run_stderr = dir_ / "run-stderr.txt";
    const fs::path done = dir_ / "run-done";
    // --scale 800 stretches the quick preset to tens of seconds of wall
    // time, so the stats endpoint is comfortably alive for the poll.
    const std::string run_command =
        "( " + std::string(DYNADDR_CLI_PATH) +
        " simulate --preset quick --scale 800 --out " +
        (dir_ / "scaled").string() + " --stats-port 0 --log-level info > " +
        (dir_ / "run-stdout.txt").string() + " 2> " + run_stderr.string() +
        "; echo done > " + done.string() + " ) &";
    ASSERT_EQ(std::system(run_command.c_str()), 0) << run_command;

    // Scrape the ephemeral port from the run's own stats-server log line.
    std::string port;
    for (int attempt = 0; attempt < 300 && port.empty(); ++attempt) {
        const std::string log = read_file(run_stderr);
        const auto at = log.find("on 127.0.0.1:");
        if (at != std::string::npos) {
            for (std::size_t i = at + 13; i < log.size() && isdigit(log[i]); ++i)
                port.push_back(log[i]);
        }
        if (port.empty())
            std::system("sleep 0.1");
    }
    ASSERT_FALSE(port.empty()) << read_file(run_stderr);

    const fs::path top_out = dir_ / "top.txt";
    const std::string top_command = std::string(DYNADDR_CLI_PATH) +
                                    " top --port " + port + " --count 1 > " +
                                    top_out.string() + " 2>&1";
    EXPECT_EQ(std::system(top_command.c_str()), 0) << read_file(top_out);
    const std::string rendered = read_file(top_out);
    EXPECT_NE(rendered.find("progress"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("sim time"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("memory"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("rss"), std::string::npos) << rendered;

    // Let the background run finish before TearDown removes its dirs.
    for (int attempt = 0; attempt < 1200 && !fs::exists(done); ++attempt)
        std::system("sleep 0.1");
    ASSERT_TRUE(fs::exists(done)) << "background run did not finish";
}

/// Forks the CLI's hidden crash-test command and validates the flight
/// recorder's post-mortem artifact: dump JSON holding breadcrumb records
/// at levels the sink never saw plus a final metrics snapshot.
TEST_F(ObsSmoke, CrashTestLeavesValidDump) {
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " crash-test --crash-dump-dir " + dir_.string() +
                                " > " + (dir_ / "stdout.txt").string() + " 2> " +
                                (dir_ / "stderr.txt").string();
    // The child dies by SIGSEGV after dumping; any nonzero status is fine
    // as long as the artifacts are intact.
    EXPECT_NE(std::system(command.c_str()), 0) << command;

    fs::path dump;
    for (const auto& entry : fs::directory_iterator(dir_)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("dynaddr-crash-", 0) == 0) dump = entry.path();
    }
    ASSERT_FALSE(dump.empty()) << "no dynaddr-crash-<pid>.json in " << dir_;

    const std::string text = read_file(dump);
    EXPECT_TRUE(dynaddr::obs::json_valid(text)) << text.substr(0, 400);
    EXPECT_NE(text.find("\"reason\": \"SIGSEGV\""), std::string::npos);
    // Breadcrumbs are debug-level: below the default sink level, captured
    // only by the flight recorder's ring.
    EXPECT_NE(text.find("crash-test breadcrumb 7"), std::string::npos);
    EXPECT_NE(text.find("\"level\": \"debug\""), std::string::npos);
    EXPECT_NE(text.find("cli.crash_test_runs"), std::string::npos);
    const std::string stderr_text = read_file(dir_ / "stderr.txt");
    EXPECT_EQ(stderr_text.find("crash-test breadcrumb"), std::string::npos);
}

/// A run that fails with an ordinary error must still write
/// --metrics-out (via the exit hook), never leave it silently missing.
TEST_F(ObsSmoke, FailedRunStillWritesMetricsOut) {
    const fs::path metrics = dir_ / "failed-metrics.json";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " analyze --data " +
                                (dir_ / "no-such-bundle").string() +
                                " --metrics-out " + metrics.string() +
                                " > /dev/null 2>&1";
    EXPECT_NE(std::system(command.c_str()), 0) << command;
    const std::string metrics_text = read_file(metrics);
    ASSERT_FALSE(metrics_text.empty());
    EXPECT_TRUE(dynaddr::obs::json_valid(metrics_text));
}

TEST_F(ObsSmoke, TerminateAlsoFlushesEmergencyMetrics) {
    const fs::path metrics = dir_ / "terminate-metrics.json";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " crash-test --mode terminate --crash-dump-dir " +
                                dir_.string() + " --metrics-out " +
                                metrics.string() + " > /dev/null 2>&1";
    EXPECT_NE(std::system(command.c_str()), 0) << command;
    const std::string metrics_text = read_file(metrics);
    ASSERT_FALSE(metrics_text.empty());
    EXPECT_TRUE(dynaddr::obs::json_valid(metrics_text));

    fs::path dump;
    for (const auto& entry : fs::directory_iterator(dir_)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("dynaddr-crash-", 0) == 0) dump = entry.path();
    }
    ASSERT_FALSE(dump.empty());
    EXPECT_NE(read_file(dump).find("\"reason\": \"std::terminate\""),
              std::string::npos);
}

}  // namespace

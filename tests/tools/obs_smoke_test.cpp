// End-to-end smoke test for the CLI observability flags: runs the real
// dynaddr binary on the quick preset with --metrics-out/--trace-out and
// validates the artifacts. DYNADDR_CLI_PATH is injected by CMake.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "netcore/obs/json.hpp"

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

class ObsSmoke : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "dynaddr_obs_smoke";
        fs::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    fs::path dir_;
};

TEST_F(ObsSmoke, QuickPresetEmitsValidMetricsAndTrace) {
    const fs::path metrics = dir_ / "metrics.json";
    const fs::path trace = dir_ / "trace.json";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " --preset quick --metrics-out " + metrics.string() +
                                " --trace-out " + trace.string() + " > " +
                                (dir_ / "stdout.txt").string() + " 2> " +
                                (dir_ / "stderr.txt").string();
    ASSERT_EQ(std::system(command.c_str()), 0) << command;

    const std::string metrics_text = read_file(metrics);
    ASSERT_FALSE(metrics_text.empty());
    EXPECT_TRUE(dynaddr::obs::json_valid(metrics_text));
    // Pipeline stage counters, timer-wheel counters, and the Table 2
    // funnel block must all be present.
    EXPECT_NE(metrics_text.find("\"pipeline.probes_in\""), std::string::npos);
    EXPECT_NE(metrics_text.find("\"sim.wheel.fired\""), std::string::npos);
    EXPECT_NE(metrics_text.find("\"table2_funnel\": {"), std::string::npos);
    EXPECT_NE(metrics_text.find("\"analyzable\""), std::string::npos);

    const std::string trace_text = read_file(trace);
    ASSERT_FALSE(trace_text.empty());
    EXPECT_TRUE(dynaddr::obs::json_valid(trace_text));
    EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace_text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace_text.find("\"scenario.build\""), std::string::npos);
}

TEST_F(ObsSmoke, MetricsCsvSuffixSelectsCsv) {
    const fs::path metrics = dir_ / "metrics.csv";
    const std::string command = std::string(DYNADDR_CLI_PATH) +
                                " --preset quick --metrics-out " + metrics.string() +
                                " > " + (dir_ / "stdout.txt").string() + " 2>&1";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;
    const std::string text = read_file(metrics);
    EXPECT_EQ(text.rfind("kind,name,value\n", 0), 0u) << text.substr(0, 80);
}

}  // namespace

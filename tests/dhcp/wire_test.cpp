#include "dhcp/wire.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"
#include "netcore/rng.hpp"

namespace dynaddr::dhcp {
namespace {

using net::IPv4Address;

WireMessage sample_request() {
    WireMessage message;
    message.op = 1;
    message.xid = 0xDEADBEEF;
    message.secs = 7;
    message.flags = 0x8000;
    message.ciaddr = IPv4Address(10, 0, 0, 5);
    message.chaddr = {0x52, 0x54, 0x00, 0xAB, 0xCD, 0xEF};
    message.type = MessageType::Request;
    message.requested_address = IPv4Address(10, 0, 0, 5);
    message.lease_seconds = 14400;
    message.server_id = IPv4Address(10, 0, 0, 1);
    message.client_id = {0x01, 0x52, 0x54, 0x00, 0xAB, 0xCD, 0xEF};
    return message;
}

TEST(Wire, EncodeProducesValidFraming) {
    const auto bytes = encode(sample_request());
    ASSERT_GE(bytes.size(), 300u);
    EXPECT_EQ(bytes[0], 1);  // BOOTREQUEST
    EXPECT_EQ(bytes[1], 1);  // Ethernet
    EXPECT_EQ(bytes[2], 6);
    // xid big-endian at offset 4.
    EXPECT_EQ(bytes[4], 0xDE);
    EXPECT_EQ(bytes[5], 0xAD);
    EXPECT_EQ(bytes[6], 0xBE);
    EXPECT_EQ(bytes[7], 0xEF);
    // Magic cookie right after the 236-byte header.
    EXPECT_EQ(bytes[236], 99);
    EXPECT_EQ(bytes[237], 130);
    EXPECT_EQ(bytes[238], 83);
    EXPECT_EQ(bytes[239], 99);
    // First option is message type 53, length 1, REQUEST (3).
    EXPECT_EQ(bytes[240], 53);
    EXPECT_EQ(bytes[241], 1);
    EXPECT_EQ(bytes[242], 3);
}

TEST(Wire, RoundTripsAllFields) {
    const auto original = sample_request();
    const auto decoded = decode(encode(original));
    EXPECT_EQ(decoded, original);
}

TEST(Wire, RoundTripsEveryMessageType) {
    for (const auto type : {MessageType::Discover, MessageType::Offer,
                            MessageType::Request, MessageType::Ack,
                            MessageType::Nak, MessageType::Release}) {
        WireMessage message;
        message.op = type == MessageType::Offer || type == MessageType::Ack ||
                             type == MessageType::Nak
                         ? 2
                         : 1;
        message.type = type;
        EXPECT_EQ(decode(encode(message)).type, type);
    }
}

TEST(Wire, MinimalMessageOmitsAbsentOptions) {
    WireMessage message;
    message.type = MessageType::Discover;
    const auto decoded = decode(encode(message));
    EXPECT_FALSE(decoded.requested_address);
    EXPECT_FALSE(decoded.lease_seconds);
    EXPECT_FALSE(decoded.server_id);
    EXPECT_TRUE(decoded.client_id.empty());
}

TEST(Wire, SkipsUnknownOptionsAndPadding) {
    auto bytes = encode(sample_request());
    // Find END, replace it with: unknown option (12 "hostname", len 3),
    // pads, then END.
    auto end_at = std::find(bytes.begin() + 240, bytes.end(), std::uint8_t(255));
    ASSERT_NE(end_at, bytes.end());
    const std::vector<std::uint8_t> extra = {12, 3, 'f', 'o', 'o', 0, 0, 255};
    std::vector<std::uint8_t> patched(bytes.begin(), end_at);
    patched.insert(patched.end(), extra.begin(), extra.end());
    const auto decoded = decode(patched);
    EXPECT_EQ(decoded, sample_request());
}

TEST(Wire, RejectsCorruptPackets) {
    const auto good = encode(sample_request());
    // Truncated fixed header.
    EXPECT_THROW(decode(std::span(good).first(100)), ParseError);
    // Bad op.
    auto bad_op = good;
    bad_op[0] = 9;
    EXPECT_THROW(decode(bad_op), ParseError);
    // Bad cookie.
    auto bad_cookie = good;
    bad_cookie[236] = 0;
    EXPECT_THROW(decode(bad_cookie), ParseError);
    // Option overrun: length byte larger than the remaining packet.
    auto overrun = std::vector<std::uint8_t>(good.begin(), good.begin() + 240);
    overrun.push_back(53);
    overrun.push_back(200);  // claims 200 bytes, none follow
    EXPECT_THROW(decode(overrun), ParseError);
    // No message type at all.
    auto no_type = std::vector<std::uint8_t>(good.begin(), good.begin() + 240);
    no_type.push_back(255);
    EXPECT_THROW(decode(no_type), ParseError);
    // Unknown message-type code.
    auto bad_type = good;
    bad_type[242] = 13;
    EXPECT_THROW(decode(bad_type), ParseError);
}

TEST(Wire, FuzzDecodeNeverCrashes) {
    // Random mutations of a valid packet must either decode or throw
    // ParseError — never crash or loop.
    rng::Stream rng(2024);
    const auto good = encode(sample_request());
    for (int round = 0; round < 2000; ++round) {
        auto mutated = good;
        const int flips = int(rng.uniform_int(1, 8));
        for (int f = 0; f < flips; ++f) {
            const auto at = std::size_t(
                rng.uniform_int(0, std::int64_t(mutated.size()) - 1));
            mutated[at] = std::uint8_t(rng.uniform_int(0, 255));
        }
        if (rng.bernoulli(0.3))
            mutated.resize(std::size_t(
                rng.uniform_int(0, std::int64_t(mutated.size()))));
        try {
            const auto decoded = decode(mutated);
            (void)decoded;
        } catch (const ParseError&) {
            // expected for corrupt input
        }
    }
}

}  // namespace
}  // namespace dynaddr::dhcp

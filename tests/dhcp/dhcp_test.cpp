#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <set>

#include "dhcp/client.hpp"
#include "dhcp/server.hpp"
#include "netcore/error.hpp"

namespace dynaddr::dhcp {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

/// Harness wiring a client, server, pool and simulation together with a
/// controllable link.
struct Rig {
    explicit Rig(ServerConfig server_config = {}, ClientConfig client_config = {},
                 std::uint64_t seed = 1)
        : sim(TimePoint{0}),
          pool(pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                                pool::AllocationStrategy::Sticky,
                                0.0,
                                0.0,
                                {}},
               rng::Stream(seed)),
          server(server_config, pool, sim),
          client(client_config, 1, server, sim, [this] { return link_up; }) {
        client.set_on_acquired([this](IPv4Address a) {
            acquired.push_back(a);
            current = a;
        });
        client.set_on_lost([this](LossReason reason) {
            losses.push_back(reason);
            current.reset();
        });
    }

    sim::Simulation sim;
    pool::AddressPool pool;
    Server server;
    Client client;
    bool link_up = true;
    std::vector<IPv4Address> acquired;
    std::vector<LossReason> losses;
    std::optional<IPv4Address> current;
};

TEST(DhcpClient, AcquiresOnPowerOn) {
    Rig rig;
    rig.client.power_on();
    ASSERT_EQ(rig.acquired.size(), 1u);
    EXPECT_EQ(rig.client.state(), ClientState::Bound);
    EXPECT_TRUE(rig.client.address());
}

TEST(DhcpClient, RenewalKeepsAddressIndefinitely) {
    Rig rig(ServerConfig{Duration::hours(2), std::nullopt});
    rig.client.power_on();
    rig.sim.run_until(TimePoint{30 * 86400});
    EXPECT_EQ(rig.acquired.size(), 1u) << "address must never change";
    EXPECT_TRUE(rig.losses.empty());
    EXPECT_EQ(rig.client.state(), ClientState::Bound);
}

TEST(DhcpClient, ShortLinkLossDoesNotChangeAddress) {
    Rig rig(ServerConfig{Duration::hours(4), std::nullopt});
    rig.client.power_on();
    const auto address = *rig.client.address();
    // Link down for 30 minutes, well inside the lease.
    rig.sim.run_until(TimePoint{3600});
    rig.link_up = false;
    rig.client.link_lost();
    rig.sim.run_until(TimePoint{3600 + 1800});
    rig.link_up = true;
    rig.client.link_restored();
    rig.sim.run_until(TimePoint{86400});
    EXPECT_EQ(*rig.client.address(), address);
    EXPECT_TRUE(rig.losses.empty());
}

TEST(DhcpClient, LeaseExpiryDuringLongOutageLosesAddress) {
    Rig rig(ServerConfig{Duration::hours(2), std::nullopt});
    rig.client.power_on();
    rig.link_up = false;
    rig.client.link_lost();
    // Outage longer than the full lease.
    rig.sim.run_until(TimePoint{3 * 3600});
    ASSERT_EQ(rig.losses.size(), 1u);
    EXPECT_EQ(rig.losses[0], LossReason::LeaseExpired);
    EXPECT_EQ(rig.client.state(), ClientState::Init);
    // Sticky pool, no churn: the same address comes back on recovery.
    rig.link_up = true;
    rig.client.link_restored();
    ASSERT_EQ(rig.acquired.size(), 2u);
    EXPECT_EQ(rig.acquired[0], rig.acquired[1]);
}

TEST(DhcpClient, RebindsThroughT2BeforeExpiry) {
    Rig rig(ServerConfig{Duration::hours(4), std::nullopt});
    rig.client.power_on();
    rig.link_up = false;
    rig.client.link_lost();
    // Past T2 (3.5 h) but before expiry (4 h): client is REBINDING.
    rig.sim.run_until(TimePoint{3 * 3600 + 2700});
    EXPECT_EQ(rig.client.state(), ClientState::Rebinding);
    // Link returns; the next retry renews successfully.
    rig.link_up = true;
    rig.sim.run_until(TimePoint{4 * 3600});
    EXPECT_EQ(rig.client.state(), ClientState::Bound);
    EXPECT_TRUE(rig.losses.empty());
}

TEST(DhcpClient, PowerCycleWithInitRebootKeepsAddress) {
    Rig rig(ServerConfig{Duration::hours(4), std::nullopt});
    rig.client.power_on();
    const auto address = *rig.client.address();
    rig.sim.run_until(TimePoint{600});
    rig.client.power_off(/*graceful=*/false);
    ASSERT_EQ(rig.losses.size(), 1u);
    EXPECT_EQ(rig.losses[0], LossReason::ClientReboot);
    rig.sim.run_until(TimePoint{700});
    rig.client.power_on();  // INIT-REBOOT path
    ASSERT_EQ(rig.acquired.size(), 2u);
    EXPECT_EQ(rig.acquired[1], address);
}

TEST(DhcpClient, ForgetfulClientChangesAddressOnReboot) {
    ClientConfig config;
    config.remember_lease_across_reboot = false;
    // The client forgets its lease, but the server-side §4.3.1 binding
    // still returns the same address on the fresh DISCOVER — the paper's
    // point about DHCP surviving reboots.
    Rig rig(ServerConfig{Duration::hours(4), std::nullopt}, config);
    rig.client.power_on();
    rig.sim.run_until(TimePoint{600});
    rig.client.power_off(false);
    rig.client.power_on();
    // Server-side §4.3.1 stickiness still yields the same address even
    // though the client forgot it — the paper's point about DHCP.
    ASSERT_EQ(rig.acquired.size(), 2u);
    EXPECT_EQ(rig.acquired[0], rig.acquired[1]);
}

TEST(DhcpClient, GracefulReleaseFreesAddress) {
    Rig rig;
    rig.client.power_on();
    rig.sim.run_until(TimePoint{600});
    EXPECT_EQ(rig.server.active_leases(), 1u);
    rig.client.power_off(/*graceful=*/true);
    EXPECT_EQ(rig.server.active_leases(), 0u);
    EXPECT_EQ(rig.pool.allocated_count(), 0u);
    ASSERT_EQ(rig.losses.size(), 1u);
    EXPECT_EQ(rig.losses[0], LossReason::ClientRelease);
}

TEST(DhcpServer, AdministrativeAgeCapForcesRenumbering) {
    ServerConfig config;
    config.lease_duration = Duration::hours(2);
    config.max_address_age = Duration::hours(24);
    Rig rig(config);
    rig.client.power_on();
    rig.sim.run_until(TimePoint{5 * 86400});
    // Renumbered roughly every day for five days.
    EXPECT_GE(rig.acquired.size(), 4u);
    EXPECT_LE(rig.acquired.size(), 7u);
    for (const auto loss : rig.losses) EXPECT_EQ(loss, LossReason::ServerNak);
    // Consecutive addresses must differ (binding forgotten on cap).
    for (std::size_t i = 1; i < rig.acquired.size(); ++i)
        EXPECT_NE(rig.acquired[i - 1], rig.acquired[i]);
}

TEST(DhcpServer, LeaseExpiryReturnsAddressToPool) {
    Rig rig(ServerConfig{Duration::hours(1), std::nullopt});
    rig.client.power_on();
    rig.link_up = false;
    rig.client.link_lost();
    rig.sim.run_until(TimePoint{2 * 3600});
    // The sweep event returned the address even with no client activity.
    EXPECT_EQ(rig.pool.allocated_count(), 0u);
    EXPECT_EQ(rig.server.active_leases(), 0u);
}

TEST(DhcpClient, DormantWhenLinkDownAtStart) {
    Rig rig;
    rig.link_up = false;
    rig.client.power_on();
    EXPECT_EQ(rig.client.state(), ClientState::Init);
    EXPECT_TRUE(rig.acquired.empty());
    rig.sim.run_until(TimePoint{3600});
    EXPECT_TRUE(rig.acquired.empty()) << "no polling while link is down";
    rig.link_up = true;
    rig.client.link_restored();
    EXPECT_EQ(rig.acquired.size(), 1u);
}

TEST(DhcpServer, AdministrativeRenumberingEvictsAtRenewal) {
    // One /24 serves the lease; a second block is dark until the swap.
    sim::Simulation sim(TimePoint{0});
    pool::PoolConfig pool_config;
    pool_config.prefixes = {IPv4Prefix::parse_or_throw("10.0.0.0/24"),
                            IPv4Prefix::parse_or_throw("20.0.0.0/24")};
    pool_config.strategy = pool::AllocationStrategy::Sticky;
    pool_config.initially_disabled = {1};
    pool::AddressPool pool(pool_config, rng::Stream(1));
    Server server({Duration::hours(2), std::nullopt}, pool, sim);
    bool link = true;
    Client client({}, 1, server, sim, [&] { return link; });
    std::vector<IPv4Address> acquired;
    std::vector<LossReason> losses;
    client.set_on_acquired([&](IPv4Address a) { acquired.push_back(a); });
    client.set_on_lost([&](LossReason r) { losses.push_back(r); });

    client.power_on();
    ASSERT_EQ(acquired.size(), 1u);
    EXPECT_EQ(acquired[0].octet(0), 10);

    // Swap blocks at t = 1 day; the client is evicted at its next renewal
    // and lands in the new block.
    sim.at(TimePoint{86400}, [&](net::TimePoint) {
        pool.enable_prefix(1);
        pool.retire_prefix(0);
    });
    sim.run_until(TimePoint{3 * 86400});
    ASSERT_EQ(acquired.size(), 2u);
    EXPECT_EQ(acquired[1].octet(0), 20);
    ASSERT_EQ(losses.size(), 1u);
    EXPECT_EQ(losses[0], LossReason::ServerNak);
    // Eviction happened within one lease of the swap.
    EXPECT_EQ(server.active_leases(), 1u);
}

TEST(DhcpServer, JitteredAgeCapSpreadsTenures) {
    // Two clients under the same capped server get different effective
    // caps; neither exceeds max_age * (1 + jitter).
    ServerConfig config;
    config.lease_duration = Duration::hours(2);
    config.max_address_age = Duration::hours(100);
    config.max_age_jitter = 0.5;
    sim::Simulation sim(TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/20")},
                         pool::AllocationStrategy::Sticky, 0.0, 0.0, {}},
        rng::Stream(2));
    Server server(config, pool, sim);
    struct Watch {
        std::unique_ptr<Client> client;
        std::vector<net::TimePoint> changes;
    };
    std::deque<Watch> watches;
    for (pool::ClientId id = 1; id <= 6; ++id) {
        Watch& watch = watches.emplace_back();
        watch.client = std::make_unique<Client>(ClientConfig{}, id, server, sim,
                                                [] { return true; });
        auto* changes = &watch.changes;
        watch.client->set_on_acquired(
            [changes, &sim](IPv4Address) { changes->push_back(sim.now()); });
        watch.client->power_on();
    }
    sim.run_until(TimePoint{30 * 86400});
    std::set<std::int64_t> first_tenure_hours;
    for (const auto& watch : watches) {
        ASSERT_GE(watch.changes.size(), 2u);
        const auto tenure = watch.changes[1] - watch.changes[0];
        EXPECT_GE(tenure.to_hours(), 100.0 * 0.5 - 3.0);
        EXPECT_LE(tenure.to_hours(), 100.0 * 1.5 + 3.0);
        first_tenure_hours.insert(tenure.count() / 3600);
    }
    EXPECT_GE(first_tenure_hours.size(), 4u) << "caps should spread, not mode";
}

TEST(DhcpClient, RejectsBadTimerFractions) {
    sim::Simulation sim(TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                         pool::AllocationStrategy::Sticky, 0.0, 0.0, {}},
        rng::Stream(1));
    Server server({}, pool, sim);
    ClientConfig bad;
    bad.t1_fraction = 0.9;
    bad.t2_fraction = 0.5;
    EXPECT_THROW(Client(bad, 1, server, sim, [] { return true; }), Error);
}

}  // namespace
}  // namespace dynaddr::dhcp

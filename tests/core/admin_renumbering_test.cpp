#include "core/admin_renumbering.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

constexpr std::int64_t kDay = 86400;
const TimePoint kStart = TimePoint::from_date(2015, 1, 1);
const TimePoint kEnd = TimePoint::from_date(2016, 1, 1);

bgp::PrefixTable routed_world() {
    bgp::PrefixTable table;
    const auto jan = bgp::month_key(2015, 1);
    const auto dec = bgp::month_key(2015, 12);
    table.announce_range(jan, dec, IPv4Prefix::parse_or_throw("10.1.0.0/16"), 100);
    table.announce_range(jan, dec, IPv4Prefix::parse_or_throw("10.2.0.0/16"), 100);
    table.announce_range(jan, dec, IPv4Prefix::parse_or_throw("10.3.0.0/16"), 100);
    return table;
}

/// A probe that lives on `first` until `move_day`, then on `second`.
ProbeChanges migrating_probe(atlas::ProbeId probe, const char* first,
                             const char* second, int move_day) {
    ProbeChanges changes;
    changes.probe = probe;
    AddressChangeEvent warmup;  // a change inside `first` before the move
    warmup.probe = probe;
    warmup.from = IPv4Address::parse_or_throw(first);
    warmup.to = IPv4Address{IPv4Address::parse_or_throw(first).value() + 1};
    warmup.last_seen = kStart + Duration::days(move_day / 2);
    warmup.first_seen = warmup.last_seen + Duration::minutes(20);
    changes.changes.push_back(warmup);
    AddressChangeEvent move;
    move.probe = probe;
    move.from = warmup.to;
    move.to = IPv4Address::parse_or_throw(second);
    move.last_seen = kStart + Duration::days(move_day);
    move.first_seen = move.last_seen + Duration::minutes(20);
    changes.changes.push_back(move);
    return changes;
}

TEST(AdminRenumbering, DetectsEnMasseMigration) {
    const auto table = routed_world();
    AsMapping mapping;
    std::vector<ProbeChanges> probes;
    // Five probes leave 10.1/16 for 10.2/16 within two days of day 100.
    for (int k = 0; k < 5; ++k) {
        probes.push_back(migrating_probe(atlas::ProbeId(k + 1), "10.1.0.10",
                                         "10.2.0.10", 100 + k % 3));
        mapping.single_as[atlas::ProbeId(k + 1)] = 100;
    }
    const auto events =
        detect_admin_renumbering(probes, mapping, table, kEnd);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].asn, 100u);
    EXPECT_EQ(events[0].retired_prefix.to_string(), "10.1.0.0/16");
    EXPECT_EQ(events[0].destination_prefix.to_string(), "10.2.0.0/16");
    EXPECT_EQ(events[0].probes_moved, 5);
    EXPECT_GE(events[0].first_departure, kStart + Duration::days(100));
    EXPECT_LE(events[0].last_departure, kStart + Duration::days(103));
}

TEST(AdminRenumbering, PrefixStillInUseVetoes) {
    const auto table = routed_world();
    AsMapping mapping;
    std::vector<ProbeChanges> probes;
    for (int k = 0; k < 5; ++k) {
        probes.push_back(migrating_probe(atlas::ProbeId(k + 1), "10.1.0.10",
                                         "10.2.0.10", 100));
        mapping.single_as[atlas::ProbeId(k + 1)] = 100;
    }
    // A sixth probe stays on 10.1/16 through the end of the window.
    ProbeChanges stayer;
    stayer.probe = 6;
    AddressChangeEvent change;
    change.probe = 6;
    change.from = IPv4Address::parse_or_throw("10.3.0.9");
    change.to = IPv4Address::parse_or_throw("10.1.0.99");
    change.last_seen = kStart + Duration::days(50);
    change.first_seen = change.last_seen + Duration::minutes(20);
    stayer.changes.push_back(change);
    probes.push_back(stayer);
    mapping.single_as[6] = 100;

    EXPECT_TRUE(detect_admin_renumbering(probes, mapping, table, kEnd).empty());
}

TEST(AdminRenumbering, StragglersOutsideWindowDoNotCount) {
    const auto table = routed_world();
    AsMapping mapping;
    std::vector<ProbeChanges> probes;
    // Departures spread over two months: never >= 3 within 3 days.
    for (int k = 0; k < 5; ++k) {
        probes.push_back(migrating_probe(atlas::ProbeId(k + 1), "10.1.0.10",
                                         "10.2.0.10", 60 + 15 * k));
        mapping.single_as[atlas::ProbeId(k + 1)] = 100;
    }
    EXPECT_TRUE(detect_admin_renumbering(probes, mapping, table, kEnd).empty());
}

TEST(AdminRenumbering, RecentDeparturesAreNotConfirmedQuiet) {
    const auto table = routed_world();
    AsMapping mapping;
    std::vector<ProbeChanges> probes;
    for (int k = 0; k < 5; ++k) {
        // Migration 5 days before the observation end: the quiet-after
        // test (14 days) cannot be satisfied.
        probes.push_back(migrating_probe(atlas::ProbeId(k + 1), "10.1.0.10",
                                         "10.2.0.10", 358));
        mapping.single_as[atlas::ProbeId(k + 1)] = 100;
    }
    EXPECT_TRUE(detect_admin_renumbering(probes, mapping, table, kEnd).empty());
}

TEST(AdminRenumbering, TooFewProbesIgnored) {
    const auto table = routed_world();
    AsMapping mapping;
    std::vector<ProbeChanges> probes;
    for (int k = 0; k < 2; ++k) {
        probes.push_back(migrating_probe(atlas::ProbeId(k + 1), "10.1.0.10",
                                         "10.2.0.10", 100));
        mapping.single_as[atlas::ProbeId(k + 1)] = 100;
    }
    EXPECT_TRUE(detect_admin_renumbering(probes, mapping, table, kEnd).empty());
}

TEST(AdminRenumbering, MultiAsProbesExcluded) {
    const auto table = routed_world();
    AsMapping mapping;
    std::vector<ProbeChanges> probes;
    for (int k = 0; k < 5; ++k) {
        probes.push_back(migrating_probe(atlas::ProbeId(k + 1), "10.1.0.10",
                                         "10.2.0.10", 100));
        mapping.multi_as.insert(atlas::ProbeId(k + 1));
    }
    EXPECT_TRUE(detect_admin_renumbering(probes, mapping, table, kEnd).empty());
}

}  // namespace
}  // namespace dynaddr::core

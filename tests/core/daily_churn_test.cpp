#include "core/daily_churn.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

using atlas::ConnectionLogEntry;
using atlas::PeerAddress;
using net::Duration;
using net::IPv4Address;
using net::TimeInterval;
using net::TimePoint;

const TimePoint kStart = TimePoint::from_date(2015, 1, 1);

TimeInterval days(int n) { return {kStart, kStart + Duration::days(n)}; }

ConnectionLogEntry entry(atlas::ProbeId probe, double start_days,
                         double end_days, const char* address) {
    ConnectionLogEntry e;
    e.probe = probe;
    e.start = kStart + Duration{std::int64_t(start_days * 86400)};
    e.end = kStart + Duration{std::int64_t(end_days * 86400)};
    e.address = PeerAddress::ipv4(IPv4Address::parse_or_throw(address));
    return e;
}

TEST(DailyChurn, StableAddressHasZeroChurn) {
    ProbeLog log;
    log.probe = 1;
    log.entries = {entry(1, 0.0, 9.5, "10.0.0.1")};
    AsMapping mapping;
    mapping.single_as[1] = 100;
    bgp::AsRegistry registry;
    const auto analysis =
        analyze_daily_churn({{log}}, mapping, registry, days(10));
    EXPECT_EQ(analysis.all.days, 9);
    EXPECT_DOUBLE_EQ(analysis.all.mean_delta, 0.0);
    EXPECT_DOUBLE_EQ(analysis.all.mean_active, 1.0);
}

TEST(DailyChurn, DailyRenumberingIsFullChurn) {
    ProbeLog log;
    log.probe = 1;
    for (int day = 0; day < 10; ++day) {
        const std::string address = "10.0.0." + std::to_string(day + 1);
        log.entries.push_back(
            entry(1, day + 0.01, day + 0.99, address.c_str()));
    }
    AsMapping mapping;
    mapping.single_as[1] = 100;
    bgp::AsRegistry registry;
    const auto analysis =
        analyze_daily_churn({{log}}, mapping, registry, days(10));
    EXPECT_EQ(analysis.all.days, 9);
    EXPECT_DOUBLE_EQ(analysis.all.mean_delta, 1.0);
}

TEST(DailyChurn, PartialOverlapGivesPartialChurn) {
    // Two probes in one AS: one stable, one renumbering daily -> half the
    // active set leaves each day.
    ProbeLog stable;
    stable.probe = 1;
    stable.entries = {entry(1, 0.0, 5.9, "10.0.0.1")};
    ProbeLog daily;
    daily.probe = 2;
    for (int day = 0; day < 6; ++day) {
        const std::string address = "10.1.0." + std::to_string(day + 1);
        daily.entries.push_back(entry(2, day + 0.01, day + 0.99, address.c_str()));
    }
    AsMapping mapping;
    mapping.single_as[1] = 100;
    mapping.single_as[2] = 100;
    bgp::AsRegistry registry;
    registry.add({100, "TestNet", "DE", bgp::Continent::Europe});
    const auto analysis = analyze_daily_churn({{stable, daily}}, mapping,
                                              registry, days(6));
    EXPECT_NEAR(analysis.all.mean_delta, 0.5, 1e-9);
    ASSERT_EQ(analysis.by_as.size(), 1u);
    EXPECT_EQ(analysis.by_as[0].as_name, "TestNet");
    EXPECT_NEAR(analysis.by_as[0].mean_active, 2.0, 1e-9);
}

TEST(DailyChurn, ConnectionSpanningDaysIsActiveOnEach) {
    ProbeLog log;
    log.probe = 1;
    log.entries = {entry(1, 0.5, 2.5, "10.0.0.1")};  // days 0,1,2
    AsMapping mapping;
    bgp::AsRegistry registry;
    const auto analysis = analyze_daily_churn({{log}}, mapping, registry, days(4));
    // Day 2 -> day 3 transition loses the address; days 0->1 and 1->2 keep it.
    EXPECT_EQ(analysis.all.days, 2);  // day 3 has an empty set, pair 2->3 skipped? no:
    // day pairs measured are (0,1) and (1,2); day 3 has no set at all.
    EXPECT_DOUBLE_EQ(analysis.all.mean_delta, 0.0);
}

TEST(DailyChurn, RendersTable) {
    ProbeLog log;
    log.probe = 1;
    log.entries = {entry(1, 0.0, 3.0, "10.0.0.1")};
    AsMapping mapping;
    mapping.single_as[1] = 42;
    bgp::AsRegistry registry;
    const auto analysis = analyze_daily_churn({{log}}, mapping, registry, days(4));
    const auto text = render_daily_churn(analysis);
    EXPECT_NE(text.find("Mean daily churn"), std::string::npos);
    EXPECT_NE(text.find("AS42"), std::string::npos);
    EXPECT_NE(text.find("All"), std::string::npos);
}

}  // namespace
}  // namespace dynaddr::core

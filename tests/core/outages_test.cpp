#include "core/outages.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

using atlas::KRootPingRecord;
using atlas::PeerAddress;
using atlas::UptimeRecord;
using net::Duration;
using net::IPv4Address;
using net::TimePoint;

KRootPingRecord ping(std::int64_t at, int success, std::int64_t lts) {
    return {16893, TimePoint{at}, 3, success, lts};
}

/// The paper's Table 3: an outage from 09:05:48 to 09:21:40 on Jan 27.
std::vector<KRootPingRecord> table3_records() {
    auto t = [](int h, int m, int s) {
        return net::TimePoint::from_civil({2015, 1, 27, h, m, s}).unix_seconds();
    };
    return {
        ping(t(9, 1, 42), 3, 86),   ping(t(9, 5, 48), 0, 151),
        ping(t(9, 9, 45), 0, 388),  ping(t(9, 13, 36), 0, 619),
        ping(t(9, 17, 49), 0, 872), ping(t(9, 21, 40), 0, 1103),
        ping(t(9, 25, 39), 3, 1342), ping(t(9, 29, 36), 3, 146),
    };
}

TEST(NetworkOutages, DetectsTable3Outage) {
    const auto outages = detect_network_outages(table3_records());
    ASSERT_EQ(outages.size(), 1u);
    EXPECT_EQ(outages[0].kind, DetectedOutage::Kind::Network);
    EXPECT_EQ(outages[0].begin,
              net::TimePoint::from_civil({2015, 1, 27, 9, 5, 48}));
    EXPECT_EQ(outages[0].end,
              net::TimePoint::from_civil({2015, 1, 27, 9, 21, 40}));
}

TEST(NetworkOutages, AllLossWithoutLtsGrowthIsNotAnOutage) {
    // k-root itself unreachable but the probe still syncs with the
    // controller: LTS stays small, so no network outage.
    const std::vector<KRootPingRecord> records = {
        ping(0, 3, 100),  ping(240, 0, 120), ping(480, 0, 90),
        ping(720, 0, 110), ping(960, 3, 100),
    };
    EXPECT_TRUE(detect_network_outages(records).empty());
}

TEST(NetworkOutages, PartialLossBreaksRun) {
    const std::vector<KRootPingRecord> records = {
        ping(0, 3, 100),   ping(240, 0, 500),  ping(480, 1, 100),
        ping(720, 0, 500), ping(960, 0, 800),  ping(1200, 3, 100),
    };
    const auto outages = detect_network_outages(records);
    ASSERT_EQ(outages.size(), 2u);
    EXPECT_EQ(outages[0].begin.unix_seconds(), 240);
    EXPECT_EQ(outages[0].end.unix_seconds(), 240);
    EXPECT_EQ(outages[1].begin.unix_seconds(), 720);
    EXPECT_EQ(outages[1].end.unix_seconds(), 960);
}

TEST(NetworkOutages, EmptyAndAllHealthy) {
    EXPECT_TRUE(detect_network_outages({}).empty());
    const std::vector<KRootPingRecord> healthy = {ping(0, 3, 50), ping(240, 3, 60)};
    EXPECT_TRUE(detect_network_outages(healthy).empty());
}

UptimeRecord uptime(std::int64_t at, std::uint64_t value) {
    return {206, TimePoint{at}, value};
}

TEST(Reboots, DetectsTable4Reset) {
    // The paper's Table 4: counter 315038 then 19 => reboot 19 s before
    // the 17:50:55 report.
    auto t = [](int h, int m, int s) {
        return net::TimePoint::from_civil({2015, 1, 1, h, m, s}).unix_seconds();
    };
    const std::vector<UptimeRecord> records = {
        uptime(t(3, 15, 18), 262531), uptime(t(17, 50, 26), 315038),
        uptime(t(17, 50, 55), 19),    uptime(t(17, 53, 59), 203),
        uptime(t(18, 59, 44), 4147),
    };
    const auto reboots = detect_reboots(records);
    ASSERT_EQ(reboots.size(), 1u);
    EXPECT_EQ(reboots[0].at,
              net::TimePoint::from_civil({2015, 1, 1, 17, 50, 36}));
}

TEST(Reboots, MonotoneCounterMeansNoReboot) {
    const std::vector<UptimeRecord> records = {uptime(0, 100), uptime(500, 600),
                                               uptime(900, 1000)};
    EXPECT_TRUE(detect_reboots(records).empty());
}

TEST(Reboots, MultipleResets) {
    const std::vector<UptimeRecord> records = {uptime(1000, 900), uptime(2000, 50),
                                               uptime(3000, 1050), uptime(5000, 10)};
    const auto reboots = detect_reboots(records);
    ASSERT_EQ(reboots.size(), 2u);
    EXPECT_EQ(reboots[0].at.unix_seconds(), 1950);
    EXPECT_EQ(reboots[1].at.unix_seconds(), 4990);
}

TEST(Firmware, SpikesDetectedAgainstMedian) {
    // 30-day window: baseline 2 probes reboot per day; days 10-12 spike to
    // 20 probes.
    std::vector<RebootInference> reboots;
    const TimePoint start = TimePoint::from_date(2015, 1, 1);
    for (int day = 0; day < 30; ++day) {
        const int count = (day >= 10 && day <= 12) ? 20 : 2;
        for (int p = 0; p < count; ++p)
            reboots.push_back(
                {atlas::ProbeId(p + 1),
                 start + Duration::days(day) + Duration::hours(1 + p % 20)});
    }
    const auto analysis = detect_firmware_spikes(
        reboots, {start, start + Duration::days(30)});
    EXPECT_DOUBLE_EQ(analysis.median_per_day, 2.0);
    ASSERT_EQ(analysis.release_days.size(), 1u);
    EXPECT_EQ(analysis.release_days[0], start + Duration::days(10));
}

TEST(Firmware, SingleSpikeDayIsIgnored) {
    std::vector<RebootInference> reboots;
    const TimePoint start = TimePoint::from_date(2015, 1, 1);
    for (int day = 0; day < 20; ++day) {
        const int count = day == 5 ? 20 : 2;
        for (int p = 0; p < count; ++p)
            reboots.push_back({atlas::ProbeId(p + 1),
                               start + Duration::days(day) + Duration::hours(1)});
    }
    const auto analysis =
        detect_firmware_spikes(reboots, {start, start + Duration::days(20)});
    EXPECT_TRUE(analysis.release_days.empty());
}

TEST(Firmware, FilterDropsFirstRebootAfterRelease) {
    const TimePoint release = TimePoint::from_date(2015, 4, 14);
    const std::vector<net::TimePoint> releases = {release};
    const std::vector<RebootInference> reboots = {
        {1, release - Duration::days(2)},   // before: kept
        {1, release + Duration::hours(5)},  // first after: dropped
        {1, release + Duration::days(2)},   // second after: kept
        {2, release + Duration::days(6)},   // probe 2's first: dropped
        {2, release + Duration::days(10)},  // outside window: kept
    };
    const auto kept = filter_firmware_reboots(reboots, releases);
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept[0].probe, 1u);
    EXPECT_EQ(kept[0].at, release - Duration::days(2));
    EXPECT_EQ(kept[1].at, release + Duration::days(2));
    EXPECT_EQ(kept[2].probe, 2u);
}

TEST(PowerOutages, RebootWithMissingPingsIsPowerOutage) {
    // Records every 240 s, a 30-minute hole around the reboot.
    std::vector<KRootPingRecord> records;
    for (std::int64_t t = 0; t <= 3600; t += 240) records.push_back(ping(t, 3, 50));
    for (std::int64_t t = 5400; t <= 9000; t += 240) records.push_back(ping(t, 3, 50));
    const std::vector<RebootInference> reboots = {{16893, TimePoint{5300}}};
    const auto outages = detect_power_outages(reboots, records);
    ASSERT_EQ(outages.size(), 1u);
    EXPECT_EQ(outages[0].kind, DetectedOutage::Kind::Power);
    EXPECT_EQ(outages[0].begin.unix_seconds(), 3600);
    EXPECT_EQ(outages[0].end.unix_seconds(), 5400);
}

TEST(PowerOutages, RebootWithoutMissingPingsIsNotPower) {
    // Probe-only blip: records continue at full cadence around the reboot.
    std::vector<KRootPingRecord> records;
    for (std::int64_t t = 0; t <= 9000; t += 240) records.push_back(ping(t, 3, 50));
    const std::vector<RebootInference> reboots = {{16893, TimePoint{5300}}};
    EXPECT_TRUE(detect_power_outages(reboots, records).empty());
}

TEST(PowerOutages, RebootAtDataEdgeIgnored) {
    std::vector<KRootPingRecord> records = {ping(1000, 3, 50), ping(1240, 3, 50)};
    // Before the first and after the last record: no flanking pair.
    EXPECT_TRUE(detect_power_outages({{{16893, TimePoint{500}}}}, records).empty());
    EXPECT_TRUE(detect_power_outages({{{16893, TimePoint{99999}}}}, records).empty());
}

ProbeLog two_connection_log(bool change) {
    ProbeLog log;
    log.probe = 1;
    atlas::ConnectionLogEntry a;
    a.probe = 1;
    a.start = TimePoint{0};
    a.end = TimePoint{10000};
    a.address = PeerAddress::ipv4(IPv4Address(10, 0, 0, 1));
    atlas::ConnectionLogEntry b = a;
    b.start = TimePoint{11500};
    b.end = TimePoint{50000};
    if (change) b.address = PeerAddress::ipv4(IPv4Address(10, 0, 0, 2));
    log.entries = {a, b};
    return log;
}

DetectedOutage outage_at(std::int64_t begin, std::int64_t end,
                         DetectedOutage::Kind kind) {
    return {kind, 1, TimePoint{begin}, TimePoint{end}};
}

TEST(GapAttribution, PriorityNetworkOverPower) {
    const auto log = two_connection_log(true);
    const std::vector<DetectedOutage> network = {
        outage_at(10100, 10600, DetectedOutage::Kind::Network)};
    const std::vector<DetectedOutage> power = {
        outage_at(10050, 11000, DetectedOutage::Kind::Power)};
    const auto gaps = attribute_gaps(log, network, power);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].cause, GapCause::NetworkOutage);
    EXPECT_TRUE(gaps[0].address_changed);
}

TEST(GapAttribution, PowerWhenNoNetwork) {
    const auto log = two_connection_log(false);
    const std::vector<DetectedOutage> power = {
        outage_at(10050, 11000, DetectedOutage::Kind::Power)};
    const auto gaps = attribute_gaps(log, {}, power);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].cause, GapCause::PowerOutage);
    EXPECT_FALSE(gaps[0].address_changed);
}

TEST(GapAttribution, NoOutageGap) {
    const auto log = two_connection_log(true);
    const auto gaps = attribute_gaps(log, {}, {});
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].cause, GapCause::NoOutage);
}

TEST(GapAttribution, DistantOutageNotAssociated) {
    const auto log = two_connection_log(true);
    const std::vector<DetectedOutage> network = {
        outage_at(30000, 31000, DetectedOutage::Kind::Network)};
    const auto gaps = attribute_gaps(log, network, {});
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].cause, GapCause::NoOutage);
}

TEST(OutageOutcomes, ChangeDetectedThroughOverlap) {
    const auto log = two_connection_log(true);
    const std::vector<DetectedOutage> outages = {
        outage_at(10100, 10600, DetectedOutage::Kind::Network),
        outage_at(40000, 41000, DetectedOutage::Kind::Network)};
    const auto outcomes = outage_outcomes(log, outages);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].address_change);
    EXPECT_FALSE(outcomes[1].address_change) << "mid-connection outage";
}

TEST(SplitByProbe, PartitionsSortedRecords) {
    std::vector<KRootPingRecord> records;
    for (int p = 1; p <= 3; ++p)
        for (int i = 0; i < p; ++i)
            records.push_back({atlas::ProbeId(p), TimePoint{i * 240}, 3, 3, 50});
    const auto split = split_kroot_by_probe(records);
    ASSERT_EQ(split.size(), 3u);
    EXPECT_EQ(split.at(1).size(), 1u);
    EXPECT_EQ(split.at(2).size(), 2u);
    EXPECT_EQ(split.at(3).size(), 3u);
}

}  // namespace
}  // namespace dynaddr::core

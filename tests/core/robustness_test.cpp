// Failure injection: the pipeline must survive hostile or corrupted
// datasets — real scrapes contain out-of-order rows, duplicates,
// overlapping connections, inverted timestamps and nonsense counters.

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "netcore/error.hpp"

namespace dynaddr::core {
namespace {

using atlas::ConnectionLogEntry;
using atlas::DatasetBundle;
using atlas::PeerAddress;
using net::Duration;
using net::IPv4Address;
using net::TimePoint;

const TimePoint kStart = TimePoint::from_date(2015, 1, 1);

ConnectionLogEntry entry(atlas::ProbeId probe, std::int64_t start_s,
                         std::int64_t end_s, const char* address) {
    ConnectionLogEntry e;
    e.probe = probe;
    e.start = kStart + Duration{start_s};
    e.end = kStart + Duration{end_s};
    e.address = PeerAddress::ipv4(IPv4Address::parse_or_throw(address));
    return e;
}

AnalysisResults run(const DatasetBundle& bundle) {
    bgp::PrefixTable table;
    table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                         net::IPv4Prefix::parse_or_throw("10.0.0.0/8"), 100);
    bgp::AsRegistry registry;
    AnalysisPipeline pipeline;
    return pipeline.run(bundle, table, registry);
}

TEST(Robustness, EmptyBundleThrowsCleanly) {
    DatasetBundle bundle;
    EXPECT_THROW(run(bundle), Error);
}

TEST(Robustness, OutOfOrderAndDuplicateEntries) {
    DatasetBundle bundle;
    // Shuffled order, one exact duplicate.
    bundle.connection_log = {
        entry(1, 200000, 300000, "10.0.0.2"),
        entry(1, 0, 100000, "10.0.0.1"),
        entry(1, 200000, 300000, "10.0.0.2"),  // duplicate
        entry(1, 400000, 500000, "10.0.0.3"),
    };
    const auto results = run(bundle);
    ASSERT_EQ(results.changes.size(), 1u);
    // Duplicate merges into the same run: still two changes.
    EXPECT_EQ(results.changes[0].changes.size(), 2u);
}

TEST(Robustness, InvertedAndZeroLengthConnections) {
    DatasetBundle bundle;
    auto inverted = entry(1, 100000, 50000, "10.0.0.1");  // end < start
    auto zero = entry(1, 200000, 200000, "10.0.0.2");
    bundle.connection_log = {inverted, zero, entry(1, 300000, 400000, "10.0.0.3")};
    const auto results = run(bundle);  // must not crash or hang
    EXPECT_EQ(results.filter.total(), 1);
}

TEST(Robustness, OverlappingConnections) {
    DatasetBundle bundle;
    bundle.connection_log = {
        entry(1, 0, 500000, "10.0.0.1"),
        entry(1, 100000, 200000, "10.0.0.2"),  // nested inside the first
        entry(1, 450000, 800000, "10.0.0.1"),
    };
    const auto results = run(bundle);
    ASSERT_EQ(results.changes.size(), 1u);
    // Negative-length "spans" must not poison the TTF.
    for (const auto& probe : results.periodicity.probes)
        EXPECT_GE(probe.ttf.total_hours(), 0.0);
}

TEST(Robustness, GarbageUptimeAndKrootRecords) {
    DatasetBundle bundle;
    bundle.connection_log = {entry(1, 0, 100000, "10.0.0.1"),
                             entry(1, 120000, 400000, "10.0.0.2")};
    bundle.probes = {{1, atlas::ProbeVersion::V3, "DE", {}}};
    // Uptime counter jitters wildly (clock steps, 64-bit wrap noise).
    bundle.uptime_records = {
        {1, kStart + Duration{1000}, 5000},
        {1, kStart + Duration{2000}, 0},                      // reset to 0
        {1, kStart + Duration{3000}, ~std::uint64_t{0} - 5},  // absurd value
        {1, kStart + Duration{4000}, 10},
    };
    // k-root records with sent == 0 and negative LTS.
    bundle.kroot_pings = {
        {1, kStart + Duration{1000}, 0, 0, -50},
        {1, kStart + Duration{1240}, 3, 0, -1},
        {1, kStart + Duration{1480}, 3, 3, 10},
    };
    const auto results = run(bundle);
    // sent==0 rows are not "all pings lost"; negative LTS never grows.
    for (const auto& [probe, outages] : results.network_outages)
        EXPECT_TRUE(outages.empty());
}

TEST(Robustness, ProbeWithSingleConnection) {
    DatasetBundle bundle;
    bundle.connection_log = {entry(7, 0, 1000, "10.0.0.1")};
    const auto results = run(bundle);
    EXPECT_EQ(results.filter.count(ProbeCategory::NeverChanged), 1);
    EXPECT_TRUE(results.changes.empty());
}

TEST(Robustness, CsvRejectsCorruptRows) {
    // Bad address and truncated row must throw ParseError, not UB.
    {
        std::istringstream in("probe,start,end,address\n"
                              "1,2015-01-01 00:00:00,2015-01-01 01:00:00,999.1.2.3\n");
        EXPECT_THROW(atlas::read_connection_log_csv(in), ParseError);
    }
    {
        std::istringstream in("probe,start,end,address\n"
                              "1,2015-01-01 00:00:00,bad-time,10.0.0.1\n");
        EXPECT_THROW(atlas::read_connection_log_csv(in), ParseError);
    }
    {
        std::istringstream in("probe,timestamp,sent,success,lts\n"
                              "1,2015-01-01 00:00:00,three,0,5\n");
        EXPECT_THROW(atlas::read_kroot_csv(in), ParseError);
    }
    {
        std::istringstream in("probe,version,country,tags\n"
                              "1,9,DE,\n");
        EXPECT_THROW(atlas::read_probes_csv(in), ParseError);
    }
}

TEST(Robustness, MassiveProbeIdsAndAddressEdges) {
    DatasetBundle bundle;
    bundle.connection_log = {
        entry(0xFFFFFFFF, 0, 1000, "0.0.0.0"),
        entry(0xFFFFFFFF, 2000, 3000, "255.255.255.255"),
        entry(0xFFFFFFFF, 4000, 5000, "0.0.0.0"),
        entry(0xFFFFFFFF, 6000, 7000, "255.255.255.255"),
    };
    const auto results = run(bundle);  // extreme values, no crash
    EXPECT_EQ(results.filter.total(), 1);
}

TEST(Robustness, AnalysisWindowNarrowerThanData) {
    DatasetBundle bundle;
    bundle.connection_log = {entry(1, 0, 100000, "10.0.0.1"),
                             entry(1, 200000, 40000000, "10.0.0.2"),
                             entry(1, 40100000, 40200000, "10.0.0.3")};
    bgp::PrefixTable table;
    bgp::AsRegistry registry;
    AnalysisPipeline pipeline;
    // Explicit window ending mid-data: firmware day indexing must not
    // walk off its array.
    const auto results = pipeline.run(
        bundle, table, registry,
        net::TimeInterval{kStart, kStart + Duration::days(30)});
    EXPECT_EQ(results.window.length(), Duration::days(30));
}

}  // namespace
}  // namespace dynaddr::core

#include "core/cond_prob.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

using net::TimePoint;

OutageOutcome outcome(DetectedOutage::Kind kind, bool change,
                      std::int64_t duration_seconds = 600) {
    OutageOutcome o;
    o.outage.kind = kind;
    o.outage.probe = 1;
    o.outage.begin = TimePoint{0};
    o.outage.end = TimePoint{duration_seconds};
    o.address_change = change;
    return o;
}

std::vector<OutageOutcome> outcomes(DetectedOutage::Kind kind, int changes,
                                    int total) {
    std::vector<OutageOutcome> list;
    for (int i = 0; i < total; ++i)
        list.push_back(outcome(kind, i < changes));
    return list;
}

TEST(CondProb, TallyCountsChanges) {
    const auto tally = tally_probe(1, outcomes(DetectedOutage::Kind::Network, 3, 4),
                                   outcomes(DetectedOutage::Kind::Power, 1, 3));
    EXPECT_EQ(tally.network_outages, 4);
    EXPECT_EQ(tally.network_changes, 3);
    EXPECT_EQ(tally.power_outages, 3);
    EXPECT_EQ(tally.power_changes, 1);
    ASSERT_TRUE(tally.p_ac_nw(3));
    EXPECT_DOUBLE_EQ(*tally.p_ac_nw(3), 0.75);
    ASSERT_TRUE(tally.p_ac_pw(3));
    EXPECT_NEAR(*tally.p_ac_pw(3), 1.0 / 3.0, 1e-12);
}

TEST(CondProb, MinimumOutagesGate) {
    const auto tally = tally_probe(1, outcomes(DetectedOutage::Kind::Network, 2, 2),
                                   {});
    EXPECT_FALSE(tally.p_ac_nw(3));
    EXPECT_TRUE(tally.p_ac_nw(2));
    EXPECT_FALSE(tally.p_ac_pw(3));
}

ProbeCondProb make_tally(atlas::ProbeId probe, int nw_changes, int nw_total,
                         int pw_changes, int pw_total) {
    ProbeCondProb tally;
    tally.probe = probe;
    tally.network_outages = nw_total;
    tally.network_changes = nw_changes;
    tally.power_outages = pw_total;
    tally.power_changes = pw_changes;
    return tally;
}

TEST(CondProb, Table6RowPercentages) {
    // AS 100: five probes; four with P(ac|nw)=1, one with 0.5; power
    // weaker.
    std::vector<ProbeCondProb> probes;
    for (atlas::ProbeId p = 1; p <= 4; ++p)
        probes.push_back(make_tally(p, 4, 4, 3, 3));
    probes.push_back(make_tally(5, 2, 4, 1, 3));
    AsMapping mapping;
    for (atlas::ProbeId p = 1; p <= 5; ++p) mapping.single_as[p] = 100;
    bgp::AsRegistry registry;
    registry.add({100, "TestNet", "FR", bgp::Continent::Europe});
    const auto analysis = analyze_cond_prob(probes, mapping, registry);
    ASSERT_EQ(analysis.as_rows.size(), 1u);
    const auto& row = analysis.as_rows[0];
    EXPECT_EQ(row.n, 5);
    EXPECT_DOUBLE_EQ(row.pct_nw_over, 80.0);
    EXPECT_DOUBLE_EQ(row.pct_nw_one, 80.0);
    EXPECT_DOUBLE_EQ(row.pct_pw_one, 80.0);
    EXPECT_EQ(analysis.all.n, 5);
}

TEST(CondProb, ProbesBelowOutageMinimumExcludedFromN) {
    std::vector<ProbeCondProb> probes;
    probes.push_back(make_tally(1, 4, 4, 3, 3));   // qualifies
    probes.push_back(make_tally(2, 4, 4, 1, 2));   // too few power outages
    probes.push_back(make_tally(3, 1, 2, 3, 3));   // too few network outages
    AsMapping mapping;
    for (atlas::ProbeId p = 1; p <= 3; ++p) mapping.single_as[p] = 100;
    bgp::AsRegistry registry;
    const auto analysis = analyze_cond_prob(probes, mapping, registry);
    EXPECT_EQ(analysis.all.n, 1);
    EXPECT_TRUE(analysis.as_rows.empty()) << "below min_probes_per_as";
}

TEST(CondProb, CdfPerAsAndKind) {
    std::vector<ProbeCondProb> probes = {
        make_tally(1, 4, 4, 0, 0),  // P(ac|nw)=1
        make_tally(2, 2, 4, 0, 0),  // P(ac|nw)=0.5
        make_tally(3, 0, 4, 0, 0),  // P(ac|nw)=0
        make_tally(4, 4, 4, 0, 0),  // other AS
    };
    AsMapping mapping;
    mapping.single_as[1] = 100;
    mapping.single_as[2] = 100;
    mapping.single_as[3] = 100;
    mapping.single_as[4] = 200;
    const auto cdf = cond_prob_cdf(probes, mapping, 100,
                                   DetectedOutage::Kind::Network);
    EXPECT_EQ(cdf.sample_count(), 3u);
    EXPECT_NEAR(cdf.fraction_at_or_below(0.0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(cdf.fraction_at_or_below(0.5), 2.0 / 3.0, 1e-12);
    // Power CDF is empty (no power outages anywhere).
    EXPECT_EQ(cond_prob_cdf(probes, mapping, 100, DetectedOutage::Kind::Power)
                  .sample_count(),
              0u);
}

TEST(CondProb, DurationBinsSplitRenumbered) {
    DurationBinAnalysis bins;
    bins.add(outcome(DetectedOutage::Kind::Network, true, 120));    // <5m
    bins.add(outcome(DetectedOutage::Kind::Network, false, 200));   // <5m
    bins.add(outcome(DetectedOutage::Kind::Network, true, 90000));  // 1-3d
    const auto first = bins.total.bin_of(120.0);
    ASSERT_TRUE(first);
    EXPECT_DOUBLE_EQ(bins.total.bin_weight(*first), 2.0);
    EXPECT_DOUBLE_EQ(bins.renumbered.bin_weight(*first), 1.0);
    EXPECT_DOUBLE_EQ(bins.percent_renumbered(*first), 50.0);
    const auto day_bin = bins.total.bin_of(90000.0);
    EXPECT_DOUBLE_EQ(bins.percent_renumbered(*day_bin), 100.0);
    // Empty bin reports 0.
    EXPECT_DOUBLE_EQ(bins.percent_renumbered(*bins.total.bin_of(3600.0)), 0.0);
}

}  // namespace
}  // namespace dynaddr::core

// Determinism of the sharded AnalysisPipeline: the filter report, changes,
// outage maps and conditional-probability rows must be identical for any
// thread count on a paper-preset scenario (the pool's shard/merge contract).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "isp/presets.hpp"

namespace dynaddr::core {
namespace {

void dump_outage_map(
    std::ostream& out, const char* tag,
    const std::map<atlas::ProbeId, std::vector<DetectedOutage>>& outages) {
    for (const auto& [probe, list] : outages) {
        out << tag << ' ' << probe;
        for (const auto& o : list)
            out << " [" << int(o.kind) << ' ' << o.begin.unix_seconds() << ' '
                << o.end.unix_seconds() << ']';
        out << '\n';
    }
}

void dump_outcome_map(
    std::ostream& out, const char* tag,
    const std::map<atlas::ProbeId, std::vector<OutageOutcome>>& outcomes) {
    for (const auto& [probe, list] : outcomes) {
        out << tag << ' ' << probe;
        for (const auto& o : list)
            out << " [" << o.outage.begin.unix_seconds() << ' '
                << o.outage.end.unix_seconds() << ' ' << o.address_change
                << ']';
        out << '\n';
    }
}

/// Byte-exact rendering of every output the issue's determinism contract
/// names: filter report, changes, outage/outcome maps, cond-prob rows.
std::string fingerprint(const AnalysisResults& r) {
    std::ostringstream out;
    out << "window " << r.window.begin.unix_seconds() << ' '
        << r.window.end.unix_seconds() << '\n';
    for (const auto& [probe, category] : r.filter.category)
        out << "cat " << probe << ' ' << category_name(category) << '\n';
    for (const auto& pc : r.changes) {
        out << "probe " << pc.probe << " total "
            << pc.total_address_time.count() << '\n';
        for (const auto& c : pc.changes)
            out << "  change " << c.last_seen.unix_seconds() << ' '
                << c.first_seen.unix_seconds() << ' ' << c.from.to_string()
                << ' ' << c.to.to_string() << '\n';
        for (const auto& s : pc.spans)
            out << "  span " << s.address.to_string() << ' '
                << s.begin.unix_seconds() << ' ' << s.end.unix_seconds()
                << '\n';
    }
    out << "firmware median " << r.firmware.median_per_day << '\n';
    for (const auto& [day, count] : r.firmware.probes_rebooted_per_day)
        out << "reboots " << day << ' ' << count << '\n';
    for (const auto& release : r.firmware.release_days)
        out << "release " << release.unix_seconds() << '\n';
    dump_outage_map(out, "nw", r.network_outages);
    dump_outage_map(out, "pw", r.power_outages);
    dump_outcome_map(out, "nw-out", r.network_outcomes);
    dump_outcome_map(out, "pw-out", r.power_outcomes);
    for (const auto& p : r.cond_prob.probes)
        out << "cp " << p.probe << ' ' << p.network_outages << ' '
            << p.network_changes << ' ' << p.power_outages << ' '
            << p.power_changes << '\n';
    auto dump_row = [&](const Table6Row& row) {
        out << "t6 " << row.asn << ' ' << row.as_name << ' ' << row.n << ' '
            << row.pct_nw_over << ' ' << row.pct_nw_one << ' '
            << row.pct_pw_over << ' ' << row.pct_pw_one << '\n';
    };
    dump_row(r.cond_prob.all);
    for (const auto& row : r.cond_prob.as_rows) dump_row(row);
    return out.str();
}

TEST(PipelineDeterminism, OutputIdenticalForAnyThreadCount) {
    // The outage preset exercises all three sharded stages (change
    // extraction, reboot detection, the §5 per-probe loop).
    const auto config = isp::presets::outage_scenario();
    const auto scenario = isp::run_scenario(config);

    std::string baseline;
    for (const std::size_t threads : {1u, 2u, 8u, 0u}) {
        PipelineConfig pipeline_config;
        pipeline_config.threads = threads;
        AnalysisPipeline pipeline(pipeline_config);
        const auto results =
            pipeline.run(scenario.bundle, scenario.prefix_table,
                         scenario.registry, config.window);
        const auto print = fingerprint(results);
        if (threads == 1) {
            // Guard that the scenario is substantive enough to catch merge
            // bugs: per-probe outage content must actually exist.
            EXPECT_FALSE(results.changes.empty());
            EXPECT_FALSE(results.network_outages.empty());
            EXPECT_GT(results.cond_prob.probes.size(), 0u);
            baseline = print;
        } else {
            EXPECT_EQ(print, baseline) << "threads=" << threads;
        }
    }
    EXPECT_FALSE(baseline.empty());
}

}  // namespace
}  // namespace dynaddr::core

#include <gtest/gtest.h>

#include "core/periodicity.hpp"
#include "core/total_time_fraction.hpp"

namespace dynaddr::core {
namespace {

using net::Duration;
using net::IPv4Address;
using net::TimePoint;

AddressSpan span_of_hours(atlas::ProbeId probe, double hours,
                          std::int64_t start = 0) {
    AddressSpan span;
    span.probe = probe;
    span.address = IPv4Address(10, 0, 0, 1);
    span.begin = TimePoint{start};
    span.end = TimePoint{start + std::int64_t(hours * 3600)};
    return span;
}

TEST(TotalTimeFraction, FormulaMatchesDefinition) {
    // f_d = d * n(d) / sum(D): three 24 h spans and one 12 h span.
    TotalTimeFraction ttf;
    for (int i = 0; i < 3; ++i) ttf.add(span_of_hours(1, 24.0));
    ttf.add(span_of_hours(1, 12.0));
    EXPECT_DOUBLE_EQ(ttf.total_hours(), 84.0);
    EXPECT_DOUBLE_EQ(ttf.fraction_at(24.0), 72.0 / 84.0);
    EXPECT_DOUBLE_EQ(ttf.fraction_at(12.0), 12.0 / 84.0);
    EXPECT_DOUBLE_EQ(ttf.fraction_at(48.0), 0.0);
}

TEST(TotalTimeFraction, QuantizationMergesNearbyDurations) {
    TotalTimeFraction ttf;
    ttf.add(span_of_hours(1, 23.6));  // the paper's observed daily tenure
    ttf.add(span_of_hours(1, 24.0));
    ttf.add(span_of_hours(1, 24.4));
    EXPECT_DOUBLE_EQ(ttf.fraction_at(24.0), 1.0);
}

TEST(TotalTimeFraction, ShortSpansCarryLittleWeight) {
    // The paper's §4.1 motivation: counting events overweights short
    // tenures; weighting by time does not.
    TotalTimeFraction ttf;
    for (int i = 0; i < 10; ++i) ttf.add(span_of_hours(1, 1.0));
    ttf.add(span_of_hours(1, 168.0));
    // 10 of 11 events are 1 h, but < 6 % of the time.
    EXPECT_LT(ttf.fraction_at(1.0), 0.06);
    EXPECT_GT(ttf.fraction_at(168.0), 0.94);
}

TEST(TotalTimeFraction, ZeroDurationSpansIgnored) {
    TotalTimeFraction ttf;
    ttf.add(span_of_hours(1, 0.0));
    EXPECT_EQ(ttf.span_count(), 0u);
}

ProbeChanges probe_with_spans(atlas::ProbeId probe,
                              std::initializer_list<double> hours) {
    ProbeChanges changes;
    changes.probe = probe;
    std::int64_t t = 0;
    for (double h : hours) {
        changes.spans.push_back(span_of_hours(probe, h, t));
        t += std::int64_t(h * 3600) + 1200;
        changes.total_address_time += Duration{std::int64_t(h * 3600)};
    }
    // One change per span boundary + 1 (censored ends imply changes).
    changes.changes.resize(hours.size() + 1);
    for (auto& c : changes.changes) c.probe = probe;
    return changes;
}

TEST(Periodicity, ClassifiesDailyProbe) {
    const auto changes = probe_with_spans(1, {24, 24, 24, 24, 6, 24});
    const auto result = classify_probe(changes);
    ASSERT_TRUE(result.period_hours);
    EXPECT_DOUBLE_EQ(*result.period_hours, 24.0);
    EXPECT_GT(result.fraction, 0.9);
    EXPECT_DOUBLE_EQ(result.max_span_hours, 24.0);
}

TEST(Periodicity, NonPeriodicProbeHasNoPeriod) {
    // All durations distinct, none carrying > 25 % of total time.
    const auto changes = probe_with_spans(1, {10, 20, 30, 40, 50, 45, 35, 25});
    const auto result = classify_probe(changes);
    EXPECT_FALSE(result.period_hours);
}

TEST(Periodicity, ThresholdIsConfigurable) {
    // 24 h carries 72/168 ~ 43 % of total time; no other duration > 11 %.
    const auto changes =
        probe_with_spans(1, {24, 24, 24, 10, 11, 13, 14, 15, 16, 17});
    PeriodicityConfig strict;
    strict.probe_threshold = 0.5;
    EXPECT_FALSE(classify_probe(changes, strict).period_hours);
    PeriodicityConfig loose;
    loose.probe_threshold = 0.25;
    ASSERT_TRUE(classify_probe(changes, loose).period_hours);
    EXPECT_DOUBLE_EQ(*classify_probe(changes, loose).period_hours, 24.0);
}

TEST(Periodicity, HarmonicPredicate) {
    EXPECT_TRUE(spans_harmonic_of({{24, 48, 72, 12, 24}}, 24.0, 0.05));
    EXPECT_TRUE(spans_harmonic_of({{24, 24.9}}, 24.0, 0.05));  // within d+5%
    EXPECT_FALSE(spans_harmonic_of({{24, 36}}, 24.0, 0.05));
    EXPECT_TRUE(spans_harmonic_of({{167, 168, 336}}, 168.0, 0.05));
    EXPECT_FALSE(spans_harmonic_of({{24}}, 0.0, 0.05));
    // Everything below d qualifies regardless of alignment.
    EXPECT_TRUE(spans_harmonic_of({{1, 5, 23}}, 24.0, 0.05));
}

TEST(Periodicity, Table5RowAggregation) {
    // Five probes in AS 100: three periodic at 24 h with varying
    // persistence, one with too few 24 h repeats, one aperiodic.
    std::vector<ProbeChanges> probes;
    probes.push_back(probe_with_spans(1, {24, 24, 24, 24}));        // f=1.0
    probes.push_back(probe_with_spans(2, {24, 24, 24, 12}));        // f~0.86
    probes.push_back(probe_with_spans(3, {24, 24, 24, 30, 31}));    // f~0.54
    probes.push_back(probe_with_spans(4, {24, 10, 30, 31}));        // 1 repeat
    probes.push_back(probe_with_spans(5, {7, 13, 29, 55}));         // aperiodic
    AsMapping mapping;
    for (atlas::ProbeId p = 1; p <= 5; ++p) mapping.single_as[p] = 100;
    bgp::AsRegistry registry;
    registry.add({100, "TestNet", "DE", bgp::Continent::Europe});

    const auto analysis = analyze_periodicity(probes, mapping, registry);
    ASSERT_EQ(analysis.as_rows.size(), 1u);
    const auto& row = analysis.as_rows[0];
    EXPECT_EQ(row.asn, 100u);
    EXPECT_EQ(row.as_name, "TestNet");
    EXPECT_DOUBLE_EQ(row.d_hours, 24.0);
    EXPECT_EQ(row.probes_with_change, 5);
    EXPECT_EQ(row.periodic_probes, 3);
    EXPECT_NEAR(row.pct_over_half, 100.0, 0.1);
    // Probes 1 and 2 have MAX <= 24; probe 3 has 31 h spans.
    EXPECT_NEAR(row.pct_max_le_d, 2.0 / 3.0 * 100.0, 0.1);
    EXPECT_NEAR(row.pct_over_three_quarters, 2.0 / 3.0 * 100.0, 0.1);
}

TEST(Periodicity, MinSpanRepeatGateRejectsLoneLongTenures) {
    // A stable probe with three long tenures: the longest carries > 25 %
    // of total time but appears once — not a schedule.
    const auto changes = probe_with_spans(1, {1100, 700, 900});
    EXPECT_FALSE(classify_probe(changes).period_hours);
    // Reproducing the paper's exact rule (min 1 repeat) classifies it.
    PeriodicityConfig paper_rule;
    paper_rule.min_spans_at_period = 1;
    ASSERT_TRUE(classify_probe(changes, paper_rule).period_hours);
    EXPECT_DOUBLE_EQ(*classify_probe(changes, paper_rule).period_hours, 1100.0);
}

TEST(Periodicity, AsBelowProbeMinimumExcluded) {
    std::vector<ProbeChanges> probes;
    for (atlas::ProbeId p = 1; p <= 4; ++p)
        probes.push_back(probe_with_spans(p, {24, 24, 24}));
    AsMapping mapping;
    for (atlas::ProbeId p = 1; p <= 4; ++p) mapping.single_as[p] = 100;
    bgp::AsRegistry registry;
    const auto analysis = analyze_periodicity(probes, mapping, registry);
    EXPECT_TRUE(analysis.as_rows.empty()) << "needs >= 5 changed probes";
    // But the "All" rows still see them.
    ASSERT_EQ(analysis.all_rows.size(), 2u);
    EXPECT_EQ(analysis.all_rows[0].periodic_probes, 4);
}

TEST(Periodicity, TwoPeriodCohortsMakeTwoRows) {
    // Orange Polska-style: one AS, two period groups (22 h and 24 h).
    std::vector<ProbeChanges> probes;
    for (atlas::ProbeId p = 1; p <= 3; ++p)
        probes.push_back(probe_with_spans(p, {22, 22, 22, 22}));
    for (atlas::ProbeId p = 4; p <= 6; ++p)
        probes.push_back(probe_with_spans(p, {24, 24, 24, 24}));
    AsMapping mapping;
    for (atlas::ProbeId p = 1; p <= 6; ++p) mapping.single_as[p] = 5617;
    bgp::AsRegistry registry;
    const auto analysis = analyze_periodicity(probes, mapping, registry);
    ASSERT_EQ(analysis.as_rows.size(), 2u);
    EXPECT_DOUBLE_EQ(std::min(analysis.as_rows[0].d_hours,
                              analysis.as_rows[1].d_hours), 22.0);
    EXPECT_DOUBLE_EQ(std::max(analysis.as_rows[0].d_hours,
                              analysis.as_rows[1].d_hours), 24.0);
}

TEST(Periodicity, SyncHistogramBucketsSpanEnds) {
    std::vector<ProbeChanges> probes;
    ProbeChanges changes;
    changes.probe = 1;
    // Span ending at 03:00 UTC with duration 24 h.
    AddressSpan span;
    span.probe = 1;
    span.begin = TimePoint::from_civil({2015, 1, 1, 3, 10, 0});
    span.end = TimePoint::from_civil({2015, 1, 2, 3, 0, 0});
    changes.spans.push_back(span);
    // A 12 h span ending at 15:00 must not appear in the d=24 histogram.
    AddressSpan other;
    other.probe = 1;
    other.begin = TimePoint::from_civil({2015, 1, 3, 3, 0, 0});
    other.end = TimePoint::from_civil({2015, 1, 3, 15, 0, 0});
    changes.spans.push_back(other);
    probes.push_back(changes);

    const auto histogram = sync_histogram(probes, 24.0);
    EXPECT_EQ(histogram[3], 1);
    EXPECT_EQ(histogram[15], 0);
    int total = 0;
    for (int c : histogram) total += c;
    EXPECT_EQ(total, 1);
}

}  // namespace
}  // namespace dynaddr::core

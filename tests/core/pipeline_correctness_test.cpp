// Regression tests for pipeline correctness fixes: unknown-version probes
// and power-outage eligibility, explicit-window/empty-log handling, and the
// even-count firmware median.

#include <gtest/gtest.h>

#include "core/change_attribution.hpp"
#include "core/pipeline.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::core {
namespace {

using atlas::ConnectionLogEntry;
using atlas::DatasetBundle;
using atlas::PeerAddress;
using net::Duration;
using net::IPv4Address;
using net::TimePoint;

const TimePoint kStart = TimePoint::from_date(2015, 1, 1);

ConnectionLogEntry entry(atlas::ProbeId probe, std::int64_t start_s,
                         std::int64_t end_s, const char* address) {
    ConnectionLogEntry e;
    e.probe = probe;
    e.start = kStart + Duration{start_s};
    e.end = kStart + Duration{end_s};
    e.address = PeerAddress::ipv4(IPv4Address::parse_or_throw(address));
    return e;
}

AnalysisResults run(const DatasetBundle& bundle,
                    std::optional<net::TimeInterval> window = std::nullopt) {
    bgp::PrefixTable table;
    table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                         net::IPv4Prefix::parse_or_throw("10.0.0.0/8"), 100);
    bgp::AsRegistry registry;
    AnalysisPipeline pipeline;
    return pipeline.run(bundle, table, registry, window);
}

/// A probe whose reboot coincides with missing k-root pings: a power
/// outage — if the probe's uptime semantics are trustworthy (v3).
DatasetBundle power_outage_bundle() {
    DatasetBundle bundle;
    // Address change across the 10000..11500 gap.
    bundle.connection_log = {entry(1, 0, 10000, "10.0.0.1"),
                             entry(1, 11500, 50000, "10.0.0.2")};
    // k-root pings every 240 s, a hole around the reboot; all successful so
    // no network outage competes for the attribution.
    for (std::int64_t t = 0; t <= 3600; t += 240)
        bundle.kroot_pings.push_back({1, kStart + Duration{t}, 3, 3, 50});
    for (std::int64_t t = 5400; t <= 9000; t += 240)
        bundle.kroot_pings.push_back({1, kStart + Duration{t}, 3, 3, 50});
    // Uptime reset: reboot inferred at t = 5300, inside the ping hole.
    bundle.uptime_records = {{1, kStart + Duration{1000}, 900},
                             {1, kStart + Duration{5400}, 100}};
    return bundle;
}

TEST(PowerOutageEligibility, V3ProbeGetsPowerDetection) {
    auto bundle = power_outage_bundle();
    bundle.probes = {{1, atlas::ProbeVersion::V3, "DE", {}}};
    const auto results = run(bundle);
    ASSERT_TRUE(results.power_outages.contains(1));
    EXPECT_EQ(results.power_outages.at(1).size(), 1u);
}

TEST(PowerOutageEligibility, V1ProbeExcluded) {
    auto bundle = power_outage_bundle();
    bundle.probes = {{1, atlas::ProbeVersion::V1, "DE", {}}};
    const auto results = run(bundle);
    ASSERT_TRUE(results.power_outages.contains(1));
    EXPECT_TRUE(results.power_outages.at(1).empty());
}

TEST(PowerOutageEligibility, ProbeMissingFromArchiveExcluded) {
    // Paper §5.1 only trusts v3 uptime semantics; a probe absent from the
    // probe archive has unknown version and must not default to v3.
    auto bundle = power_outage_bundle();
    ASSERT_TRUE(bundle.probes.empty());
    const auto results = run(bundle);
    ASSERT_TRUE(results.power_outages.contains(1));
    EXPECT_TRUE(results.power_outages.at(1).empty())
        << "unknown-version probe was given power-outage detection";
    // Network detection is version-independent and must survive.
    EXPECT_TRUE(results.network_outages.contains(1));
}

TEST(PowerOutageEligibility, UnknownVersionKeepsNetworkDetection) {
    auto bundle = power_outage_bundle();
    // Turn the ping hole into an all-loss run with growing LTS: a network
    // outage every version reports.
    bundle.kroot_pings.clear();
    for (std::int64_t t = 0; t <= 3600; t += 240)
        bundle.kroot_pings.push_back({1, kStart + Duration{t}, 3, 3, 50});
    for (std::int64_t t = 3840; t <= 5160; t += 240)
        bundle.kroot_pings.push_back({1, kStart + Duration{t}, 3, 0, 400 + t});
    for (std::int64_t t = 5400; t <= 9000; t += 240)
        bundle.kroot_pings.push_back({1, kStart + Duration{t}, 3, 3, 50});
    const auto results = run(bundle);
    ASSERT_TRUE(results.network_outages.contains(1));
    EXPECT_EQ(results.network_outages.at(1).size(), 1u);
    EXPECT_TRUE(results.power_outages.at(1).empty());
}

TEST(ObservationWindow, EmptyLogWithoutWindowThrows) {
    DatasetBundle bundle;
    EXPECT_THROW(run(bundle), Error);
}

TEST(ObservationWindow, ExplicitWindowWithEmptyLogIsDefined) {
    // A caller that fixes the window may legitimately pass a bundle with no
    // connection log (e.g. uptime-only ingestion): the pipeline must keep
    // the given window — not the 1<<60 scan sentinels — and produce empty
    // per-probe analyses.
    DatasetBundle bundle;
    bundle.uptime_records = {{1, kStart + Duration{1000}, 900},
                             {1, kStart + Duration{5400}, 100}};
    const net::TimeInterval window{kStart, kStart + Duration::days(30)};
    const auto results = run(bundle, window);
    EXPECT_EQ(results.window.begin, window.begin);
    EXPECT_EQ(results.window.end, window.end);
    EXPECT_EQ(results.filter.total(), 0);
    EXPECT_TRUE(results.changes.empty());
    EXPECT_TRUE(results.network_outages.empty());
    // Firmware analysis still runs over the uptime data.
    EXPECT_EQ(results.firmware.probes_rebooted_per_day.size(), 1u);
}

TEST(Table2Funnel, MetricsMatchFilterReport) {
    // The table2_funnel counters exported with --metrics-out must agree
    // with the FilterReport the pipeline renders as Table 2.
    auto bundle = power_outage_bundle();
    bundle.probes = {{1, atlas::ProbeVersion::V3, "DE", {}}};
    // A second probe that never changes address lands in a different
    // funnel category than the analyzable probe 1.
    bundle.connection_log.push_back(entry(2, 0, 40000, "10.0.1.1"));
    bundle.connection_log.push_back(entry(2, 41000, 50000, "10.0.1.1"));

    const auto before = obs::metrics_snapshot();
    const auto results = run(bundle);
    const auto diff = obs::metrics_diff(obs::metrics_snapshot(), before);

    auto funnel = [&](const char* name) -> std::uint64_t {
        auto it = diff.counters.find(std::string("table2_funnel.") + name);
        return it == diff.counters.end() ? 0 : it->second;
    };
    EXPECT_EQ(funnel("total"), std::uint64_t(results.filter.total()));
    EXPECT_EQ(funnel("analyzable"),
              std::uint64_t(results.filter.count(ProbeCategory::Analyzable)));
    EXPECT_EQ(funnel("never_changed"),
              std::uint64_t(results.filter.count(ProbeCategory::NeverChanged)));
    EXPECT_EQ(funnel("dual_stack"),
              std::uint64_t(results.filter.count(ProbeCategory::DualStack)));
    EXPECT_EQ(funnel("ipv6_only"),
              std::uint64_t(results.filter.count(ProbeCategory::Ipv6Only)));
    EXPECT_EQ(funnel("tagged_multihomed"),
              std::uint64_t(results.filter.count(ProbeCategory::TaggedMultihomed)));
    EXPECT_EQ(
        funnel("alternating_multihomed"),
        std::uint64_t(results.filter.count(ProbeCategory::AlternatingMultihomed)));
    EXPECT_EQ(
        funnel("testing_address_only"),
        std::uint64_t(results.filter.count(ProbeCategory::TestingAddressOnly)));
    // The funnel covers the whole population: both probes were counted.
    EXPECT_EQ(funnel("total"), 2u);
    EXPECT_GE(funnel("analyzable"), 1u);
}

TEST(ChangeAttributionMetrics, CountersMatchTheAllRow) {
    // The change_attribution.* counters record_change_attribution exports
    // must agree with the ChangeAttribution "All" row rendered as the
    // causes report — the same contract table2_funnel keeps above.
    auto bundle = power_outage_bundle();
    bundle.probes = {{1, atlas::ProbeVersion::V3, "DE", {}}};
    bgp::PrefixTable table;
    table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                         net::IPv4Prefix::parse_or_throw("10.0.0.0/8"), 100);
    bgp::AsRegistry registry;
    AnalysisPipeline pipeline;
    const auto results = pipeline.run(bundle, table, registry);
    const auto attribution = attribute_changes(results, table, registry);
    ASSERT_GT(attribution.all.total, 0);

    const auto before = obs::metrics_snapshot();
    record_change_attribution(attribution);
    const auto diff = obs::metrics_diff(obs::metrics_snapshot(), before);
    auto counter = [&](const char* name) -> std::uint64_t {
        auto it = diff.counters.find(std::string("change_attribution.") + name);
        return it == diff.counters.end() ? 0 : it->second;
    };
    EXPECT_EQ(counter("total"), std::uint64_t(attribution.all.total));
    EXPECT_EQ(counter("periodic"), std::uint64_t(attribution.all.periodic));
    EXPECT_EQ(counter("network"), std::uint64_t(attribution.all.network));
    EXPECT_EQ(counter("power"), std::uint64_t(attribution.all.power));
    EXPECT_EQ(counter("administrative"),
              std::uint64_t(attribution.all.administrative));
    EXPECT_EQ(counter("unknown"), std::uint64_t(attribution.all.unknown));
    // The tallies themselves partition the total.
    EXPECT_EQ(attribution.all.total,
              attribution.all.periodic + attribution.all.network +
                  attribution.all.power + attribution.all.administrative +
                  attribution.all.unknown);
}

TEST(FirmwareMedian, EvenDayCountAveragesMiddlePair) {
    // Four day-slots (an 84 h window) with 1/2/3/4 unique probes rebooting
    // per day: the median must be (2+3)/2, not the upper middle element.
    std::vector<RebootInference> reboots;
    for (int day = 0; day < 4; ++day)
        for (int p = 0; p <= day; ++p)
            reboots.push_back({atlas::ProbeId(p + 1),
                               kStart + Duration::days(day) + Duration::hours(1)});
    const auto analysis = detect_firmware_spikes(
        reboots, {kStart, kStart + Duration::hours(84)});
    EXPECT_DOUBLE_EQ(analysis.median_per_day, 2.5);
}

TEST(FirmwareMedian, OddDayCountUsesMiddleElement) {
    // Three day-slots (a 60 h window) with 1/2/3 probes per day: median 2.
    std::vector<RebootInference> reboots;
    for (int day = 0; day < 3; ++day)
        for (int p = 0; p <= day; ++p)
            reboots.push_back({atlas::ProbeId(p + 1),
                               kStart + Duration::days(day) + Duration::hours(1)});
    const auto analysis = detect_firmware_spikes(
        reboots, {kStart, kStart + Duration::hours(60)});
    EXPECT_DOUBLE_EQ(analysis.median_per_day, 2.0);
}

}  // namespace
}  // namespace dynaddr::core

#include "core/address_change.hpp"

#include <gtest/gtest.h>

#include "core/conlog.hpp"

namespace dynaddr::core {
namespace {

using atlas::ConnectionLogEntry;
using atlas::PeerAddress;
using net::Duration;
using net::IPv4Address;
using net::TimePoint;

ConnectionLogEntry entry(atlas::ProbeId probe, const char* start, const char* end,
                         const char* address) {
    ConnectionLogEntry e;
    e.probe = probe;
    e.start = *TimePoint::parse(start);
    e.end = *TimePoint::parse(end);
    e.address = PeerAddress::ipv4(IPv4Address::parse_or_throw(address));
    return e;
}

/// The paper's Table 1: probe 206, first five days of 2015.
ProbeLog table1_log() {
    ProbeLog log;
    log.probe = 206;
    log.entries = {
        entry(206, "2014-12-31 03:21:34", "2015-01-01 02:57:37", "91.55.174.103"),
        entry(206, "2015-01-01 03:22:16", "2015-01-01 17:34:11", "91.55.169.37"),
        entry(206, "2015-01-01 18:00:54", "2015-01-01 18:42:31", "91.55.132.252"),
        entry(206, "2015-01-01 19:06:46", "2015-01-02 02:19:16", "91.55.155.115"),
        entry(206, "2015-01-02 02:41:55", "2015-01-03 02:18:00", "91.55.141.95"),
        entry(206, "2015-01-03 02:43:14", "2015-01-04 02:16:59", "91.55.165.167"),
        entry(206, "2015-01-04 02:40:58", "2015-01-05 02:15:45", "91.55.163.252"),
        entry(206, "2015-01-05 02:38:39", "2015-01-06 02:14:48", "91.55.141.63"),
    };
    return log;
}

TEST(AddressChange, Table1HasSevenChanges) {
    const auto changes = extract_changes(table1_log());
    EXPECT_EQ(changes.changes.size(), 7u);
    // First and last tenures are censored: six interior spans.
    EXPECT_EQ(changes.spans.size(), 6u);
}

TEST(AddressChange, Table1DurationsMatchPaper) {
    const auto changes = extract_changes(table1_log());
    // Paper's duration column (hours): 14.2, 0.7, 7.2, 23.6, 23.6, 23.6.
    const double expected[] = {14.2, 0.7, 7.2, 23.6, 23.6, 23.6};
    ASSERT_EQ(changes.spans.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_NEAR(changes.spans[i].duration().to_hours(), expected[i], 0.05)
            << "span " << i;
}

TEST(AddressChange, Table1QuantizesToDailyMode) {
    const auto changes = extract_changes(table1_log());
    int at_24 = 0;
    for (const auto& span : changes.spans)
        if (quantize_hours(span.duration()) == 24.0) ++at_24;
    EXPECT_EQ(at_24, 3);
}

TEST(AddressChange, ChangeEventsCarryEndpoints) {
    const auto changes = extract_changes(table1_log());
    const auto& first = changes.changes[0];
    EXPECT_EQ(first.from, IPv4Address::parse_or_throw("91.55.174.103"));
    EXPECT_EQ(first.to, IPv4Address::parse_or_throw("91.55.169.37"));
    EXPECT_EQ(first.last_seen, *TimePoint::parse("2015-01-01 02:57:37"));
    EXPECT_EQ(first.first_seen, *TimePoint::parse("2015-01-01 03:22:16"));
}

TEST(AddressChange, ConsecutiveSameAddressEntriesMerge) {
    ProbeLog log;
    log.probe = 1;
    log.entries = {
        entry(1, "2015-01-01 00:00:00", "2015-01-01 06:00:00", "10.0.0.1"),
        entry(1, "2015-01-01 06:30:00", "2015-01-01 23:00:00", "10.0.0.2"),
        entry(1, "2015-01-01 23:30:00", "2015-01-02 12:00:00", "10.0.0.2"),
        entry(1, "2015-01-02 12:30:00", "2015-01-03 00:00:00", "10.0.0.3"),
    };
    const auto changes = extract_changes(log);
    EXPECT_EQ(changes.changes.size(), 2u);
    ASSERT_EQ(changes.spans.size(), 1u);
    // Span runs from the first 10.0.0.2 connection start to the last end.
    EXPECT_NEAR(changes.spans[0].duration().to_hours(), 29.5, 0.01);
}

TEST(AddressChange, NoChangesNoSpans) {
    ProbeLog log;
    log.probe = 1;
    log.entries = {
        entry(1, "2015-01-01 00:00:00", "2015-01-02 00:00:00", "10.0.0.1"),
        entry(1, "2015-01-02 01:00:00", "2015-01-03 00:00:00", "10.0.0.1"),
    };
    const auto changes = extract_changes(log);
    EXPECT_TRUE(changes.changes.empty());
    EXPECT_TRUE(changes.spans.empty());
    EXPECT_EQ(changes.total_address_time.count(), 0);
}

TEST(AddressChange, TwoChangesYieldOneSpan) {
    ProbeLog log;
    log.probe = 1;
    log.entries = {
        entry(1, "2015-01-01 00:00:00", "2015-01-01 01:00:00", "10.0.0.1"),
        entry(1, "2015-01-01 01:30:00", "2015-01-01 13:30:00", "10.0.0.2"),
        entry(1, "2015-01-01 14:00:00", "2015-01-01 20:00:00", "10.0.0.3"),
    };
    const auto changes = extract_changes(log);
    EXPECT_EQ(changes.changes.size(), 2u);
    ASSERT_EQ(changes.spans.size(), 1u);
    EXPECT_EQ(changes.spans[0].address, IPv4Address::parse_or_throw("10.0.0.2"));
    EXPECT_EQ(changes.total_address_time, Duration::hours(12));
}

TEST(AddressChange, IgnoresNonV4Entries) {
    ProbeLog log;
    log.probe = 1;
    log.entries = {
        entry(1, "2015-01-01 00:00:00", "2015-01-01 01:00:00", "10.0.0.1"),
        entry(1, "2015-01-01 02:00:00", "2015-01-01 03:00:00", "10.0.0.2"),
    };
    atlas::ConnectionLogEntry v6;
    v6.probe = 1;
    v6.start = *TimePoint::parse("2015-01-01 01:10:00");
    v6.end = *TimePoint::parse("2015-01-01 01:50:00");
    v6.address = PeerAddress::ipv6_token(1);
    log.entries.insert(log.entries.begin() + 1, v6);
    const auto changes = extract_changes(log);
    EXPECT_EQ(changes.changes.size(), 1u);
}

TEST(QuantizeHours, SnapsHoursAndFiveMinutes) {
    EXPECT_DOUBLE_EQ(quantize_hours(Duration::hours(24)), 24.0);
    EXPECT_DOUBLE_EQ(quantize_hours(Duration::seconds(84960)), 24.0);  // 23.6 h
    EXPECT_DOUBLE_EQ(quantize_hours(Duration::seconds(82000)), 23.0);  // 22.8 h
    EXPECT_DOUBLE_EQ(quantize_hours(Duration::minutes(90)), 2.0);      // 1.5 -> 2
    EXPECT_DOUBLE_EQ(quantize_hours(Duration::minutes(42)),
                     40.0 / 60.0);  // sub-hour: nearest 5 min
    EXPECT_DOUBLE_EQ(quantize_hours(Duration::minutes(1)), 0.0);
    EXPECT_DOUBLE_EQ(quantize_hours(Duration::hours(168)), 168.0);
}

TEST(GroupByProbe, SortsAndGroups) {
    std::vector<ConnectionLogEntry> entries = {
        entry(2, "2015-01-02 00:00:00", "2015-01-02 01:00:00", "10.0.0.1"),
        entry(1, "2015-01-03 00:00:00", "2015-01-03 01:00:00", "10.0.0.2"),
        entry(1, "2015-01-01 00:00:00", "2015-01-01 01:00:00", "10.0.0.3"),
    };
    const auto logs = group_by_probe(entries);
    ASSERT_EQ(logs.size(), 2u);
    EXPECT_EQ(logs[0].probe, 1u);
    ASSERT_EQ(logs[0].entries.size(), 2u);
    EXPECT_LT(logs[0].entries[0].start, logs[0].entries[1].start);
    EXPECT_EQ(logs[1].probe, 2u);
}

}  // namespace
}  // namespace dynaddr::core

#include "core/report.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

TEST(Report, FmtRoundsToDecimals) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(99.96, 1), "100.0");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Report, Table2RendersAllCategories) {
    FilterReport report;
    report.counts[ProbeCategory::Analyzable] = 5;
    report.counts[ProbeCategory::NeverChanged] = 3;
    report.counts[ProbeCategory::DualStack] = 2;
    const auto text = render_table2(report);
    EXPECT_NE(text.find("Total probes"), std::string::npos);
    EXPECT_NE(text.find("10"), std::string::npos);  // total
    EXPECT_NE(text.find("Never changed"), std::string::npos);
    EXPECT_NE(text.find("193.0.0.78"), std::string::npos);
}

TEST(Report, Table5RendersRows) {
    PeriodicityAnalysis analysis;
    Table5Row row;
    row.asn = 3320;
    row.as_name = "DTAG";
    row.country = "DE";
    row.d_hours = 24;
    row.probes_with_change = 63;
    row.periodic_probes = 51;
    row.pct_over_half = 96.0;
    row.pct_max_le_d = 78.0;
    row.pct_harmonic = 98.0;
    analysis.as_rows.push_back(row);
    const auto text = render_table5(analysis);
    for (const char* piece : {"DTAG", "3320", "DE", "24", "63", "51", "96%",
                              "78%", "98%", "MAX<=d", "Harmonic"})
        EXPECT_NE(text.find(piece), std::string::npos) << piece;
}

TEST(Report, Table6And7Render) {
    CondProbAnalysis cond;
    cond.all.as_name = "All";
    cond.all.n = 10;
    cond.all.pct_nw_over = 29.1;
    Table6Row row;
    row.asn = 3215;
    row.as_name = "Orange";
    row.n = 84;
    row.pct_nw_one = 54.0;
    cond.as_rows.push_back(row);
    const auto t6 = render_table6(cond);
    EXPECT_NE(t6.find("Orange"), std::string::npos);
    EXPECT_NE(t6.find("P(ac|nw)=1"), std::string::npos);
    EXPECT_NE(t6.find("54.0%"), std::string::npos);

    PrefixChangeAnalysis prefix;
    prefix.all.as_name = "All";
    prefix.all.total_changes = 100;
    prefix.all.diff_bgp = 49;
    prefix.all.diff_16 = 48;
    prefix.all.diff_8 = 34;
    const auto t7 = render_table7(prefix);
    EXPECT_NE(t7.find("49 (49%)"), std::string::npos);
    EXPECT_NE(t7.find("Diff /8"), std::string::npos);
}

TEST(Report, FirmwareSeriesRendersReleases) {
    FirmwareAnalysis analysis;
    analysis.median_per_day = 2.0;
    for (int day = 0; day < 21; ++day)
        analysis.probes_rebooted_per_day[day] = day == 10 ? 20 : 2;
    analysis.release_days.push_back(net::TimePoint::from_date(2015, 4, 14));
    const auto text = render_firmware_series(
        analysis, {net::TimePoint::from_date(2015, 1, 1),
                   net::TimePoint::from_date(2016, 1, 1)});
    EXPECT_NE(text.find("median 2.0"), std::string::npos);
    EXPECT_NE(text.find("2015-04-14"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Report, SummaryIsComplete) {
    AnalysisResults results;
    results.window = {net::TimePoint::from_date(2015, 1, 1),
                      net::TimePoint::from_date(2016, 1, 1)};
    results.filter.counts[ProbeCategory::Analyzable] = 1;
    ProbeChanges changes;
    changes.probe = 1;
    changes.changes.resize(3);
    changes.spans.resize(2);
    results.changes.push_back(changes);
    const auto text = render_summary(results);
    EXPECT_NE(text.find("2015-01-01"), std::string::npos);
    EXPECT_NE(text.find("address changes: 3"), std::string::npos);
    EXPECT_NE(text.find("interior spans: 2"), std::string::npos);
}

}  // namespace
}  // namespace dynaddr::core

#include "core/ipv6_privacy.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

using atlas::ConnectionLogEntry;
using atlas::PeerAddress;
using net::Duration;
using net::IPv6Address;
using net::TimePoint;

constexpr std::uint64_t kNet = 0x20010db800070000ULL;

ConnectionLogEntry v6_entry(atlas::ProbeId probe, std::int64_t start_hours,
                            double length_hours, std::uint64_t net,
                            std::uint64_t iid) {
    ConnectionLogEntry entry;
    entry.probe = probe;
    entry.start = TimePoint{start_hours * 3600};
    entry.end = entry.start + Duration{std::int64_t(length_hours * 3600)};
    entry.address = PeerAddress::ipv6(IPv6Address{net, iid});
    return entry;
}

TEST(Ipv6Privacy, DailyRotationIsEphemeralAndRotating) {
    // A privacy-extensions host: a fresh IID each day for 10 days.
    ProbeLog log;
    log.probe = 1;
    for (int day = 0; day < 10; ++day)
        log.entries.push_back(
            v6_entry(1, day * 24, 23.0, kNet, 0x1000 + std::uint64_t(day)));
    const auto analysis = analyze_ipv6_privacy({{log}});
    ASSERT_EQ(analysis.probes.size(), 1u);
    const auto& view = analysis.probes[0];
    EXPECT_EQ(view.addresses, 10);
    EXPECT_EQ(view.ephemeral, 10);
    EXPECT_TRUE(view.rotating);
    EXPECT_NEAR(view.rotation_hours, 24.0, 0.1);
    EXPECT_DOUBLE_EQ(analysis.ephemeral_fraction(), 1.0);
    EXPECT_EQ(analysis.rotating_probes, 1);
}

TEST(Ipv6Privacy, StableHostIsNeitherEphemeralNorRotating) {
    ProbeLog log;
    log.probe = 2;
    // Same EUI-64-style address across three months of reconnects.
    for (int week = 0; week < 12; ++week)
        log.entries.push_back(
            v6_entry(2, week * 168, 100.0, kNet, 0x0200aaffee000001ULL));
    const auto analysis = analyze_ipv6_privacy({{log}});
    ASSERT_EQ(analysis.probes.size(), 1u);
    EXPECT_EQ(analysis.probes[0].addresses, 1);
    EXPECT_EQ(analysis.probes[0].ephemeral, 0);
    EXPECT_FALSE(analysis.probes[0].rotating);
    EXPECT_DOUBLE_EQ(analysis.ephemeral_fraction(), 0.0);
}

TEST(Ipv6Privacy, MixedPopulationFractions) {
    std::vector<ProbeLog> logs;
    // Nine rotating hosts, one stable: Plonka & Berger's ~90 %.
    for (atlas::ProbeId probe = 1; probe <= 9; ++probe) {
        ProbeLog log;
        log.probe = probe;
        for (int day = 0; day < 5; ++day)
            log.entries.push_back(v6_entry(
                probe, day * 24, 23.0, kNet + probe, 0x2000 + std::uint64_t(day)));
        logs.push_back(std::move(log));
    }
    ProbeLog stable;
    stable.probe = 10;
    for (int week = 0; week < 10; ++week)
        stable.entries.push_back(
            v6_entry(10, week * 168, 120.0, kNet + 10, 0x42));
    logs.push_back(std::move(stable));

    const auto analysis = analyze_ipv6_privacy(logs);
    EXPECT_EQ(analysis.total_addresses, 9 * 5 + 1);
    EXPECT_NEAR(analysis.ephemeral_fraction(), 45.0 / 46.0, 1e-9);
    EXPECT_EQ(analysis.rotating_probes, 9);
}

TEST(Ipv6Privacy, V4OnlyProbesAreIgnored) {
    ProbeLog log;
    log.probe = 3;
    ConnectionLogEntry entry;
    entry.probe = 3;
    entry.start = TimePoint{0};
    entry.end = TimePoint{3600};
    entry.address = PeerAddress::ipv4(net::IPv4Address(10, 0, 0, 1));
    log.entries.push_back(entry);
    const auto analysis = analyze_ipv6_privacy({{log}});
    EXPECT_TRUE(analysis.probes.empty());
    EXPECT_EQ(analysis.total_addresses, 0);
}

TEST(Ipv6Privacy, ReusedAddressSightingsMerge) {
    // The same IID seen in two connections 3 days apart: one address with
    // a 3-day lifetime -> not ephemeral under the 36 h threshold.
    ProbeLog log;
    log.probe = 4;
    log.entries.push_back(v6_entry(4, 0, 1.0, kNet, 0x7));
    log.entries.push_back(v6_entry(4, 72, 1.0, kNet, 0x7));
    const auto analysis = analyze_ipv6_privacy({{log}});
    ASSERT_EQ(analysis.probes.size(), 1u);
    EXPECT_EQ(analysis.probes[0].addresses, 1);
    EXPECT_EQ(analysis.probes[0].ephemeral, 0);
}

TEST(Ipv6Privacy, RotationThresholdConfigurable) {
    ProbeLog log;
    log.probe = 5;
    log.entries.push_back(v6_entry(5, 0, 1.0, kNet, 1));
    log.entries.push_back(v6_entry(5, 24, 1.0, kNet, 2));
    Ipv6PrivacyConfig strict;
    strict.min_iids_for_rotation = 3;
    EXPECT_FALSE(analyze_ipv6_privacy({{log}}, strict).probes[0].rotating);
    Ipv6PrivacyConfig loose;
    loose.min_iids_for_rotation = 2;
    EXPECT_TRUE(analyze_ipv6_privacy({{log}}, loose).probes[0].rotating);
}

}  // namespace
}  // namespace dynaddr::core

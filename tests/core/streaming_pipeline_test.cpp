// StreamingPipeline vs the batch reference: byte-identical fingerprints
// on the presets (any thread count, obs on or off), the push-interface
// ordering contract, O(probes) memory accounting, and the binary-bundle
// ingestion path.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "atlas/binary_bundle.hpp"
#include "core/pipeline.hpp"
#include "core/streaming_pipeline.hpp"
#include "isp/presets.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/trace.hpp"

namespace dynaddr::core {
namespace {

namespace fs = std::filesystem;

void dump_outage_map(
    std::ostream& out, const char* tag,
    const std::map<atlas::ProbeId, std::vector<DetectedOutage>>& outages) {
    for (const auto& [probe, list] : outages) {
        out << tag << ' ' << probe;
        for (const auto& o : list)
            out << " [" << int(o.kind) << ' ' << o.begin.unix_seconds() << ' '
                << o.end.unix_seconds() << ']';
        out << '\n';
    }
}

void dump_outcome_map(
    std::ostream& out, const char* tag,
    const std::map<atlas::ProbeId, std::vector<OutageOutcome>>& outcomes) {
    for (const auto& [probe, list] : outcomes) {
        out << tag << ' ' << probe;
        for (const auto& o : list)
            out << " [" << o.outage.begin.unix_seconds() << ' '
                << o.outage.end.unix_seconds() << ' ' << o.address_change
                << ']';
        out << '\n';
    }
}

/// Byte-exact rendering of every analysis output: anything the streaming
/// path derives differently from the reference shows up as a diff here.
std::string fingerprint(const AnalysisResults& r) {
    std::ostringstream out;
    out << "window " << r.window.begin.unix_seconds() << ' '
        << r.window.end.unix_seconds() << '\n';
    for (const auto& [probe, category] : r.filter.category)
        out << "cat " << probe << ' ' << category_name(category) << '\n';
    out << "analyzable-logs " << r.filter.analyzable.size() << '\n';
    for (const auto& [probe, version] : r.probe_versions)
        out << "ver " << probe << ' ' << int(version) << '\n';
    for (const auto& pc : r.changes) {
        out << "probe " << pc.probe << " total "
            << pc.total_address_time.count() << '\n';
        for (const auto& c : pc.changes)
            out << "  change " << c.last_seen.unix_seconds() << ' '
                << c.first_seen.unix_seconds() << ' ' << c.from.to_string()
                << ' ' << c.to.to_string() << '\n';
        for (const auto& s : pc.spans)
            out << "  span " << s.address.to_string() << ' '
                << s.begin.unix_seconds() << ' ' << s.end.unix_seconds()
                << '\n';
    }
    out << "ipv6 " << r.ipv6_privacy.total_addresses << ' '
        << r.ipv6_privacy.ephemeral_addresses << ' '
        << r.ipv6_privacy.rotating_probes << '\n';
    out << "firmware median " << r.firmware.median_per_day << '\n';
    for (const auto& [day, count] : r.firmware.probes_rebooted_per_day)
        out << "reboots " << day << ' ' << count << '\n';
    for (const auto& release : r.firmware.release_days)
        out << "release " << release.unix_seconds() << '\n';
    dump_outage_map(out, "nw", r.network_outages);
    dump_outage_map(out, "pw", r.power_outages);
    dump_outcome_map(out, "nw-out", r.network_outcomes);
    dump_outcome_map(out, "pw-out", r.power_outcomes);
    for (const auto& p : r.cond_prob.probes)
        out << "cp " << p.probe << ' ' << p.network_outages << ' '
            << p.network_changes << ' ' << p.power_outages << ' '
            << p.power_changes << '\n';
    auto dump_row = [&](const Table6Row& row) {
        out << "t6 " << row.asn << ' ' << row.as_name << ' ' << row.n << ' '
            << row.pct_nw_over << ' ' << row.pct_nw_one << ' '
            << row.pct_pw_over << ' ' << row.pct_pw_one << '\n';
    };
    dump_row(r.cond_prob.all);
    for (const auto& row : r.cond_prob.as_rows) dump_row(row);
    auto dump_t5 = [&](const Table5Row& row) {
        out << "t5 " << row.asn << ' ' << row.as_name << ' ' << row.d_hours
            << ' ' << row.probes_with_change << ' ' << row.periodic_probes
            << ' ' << row.pct_over_half << ' ' << row.pct_harmonic << '\n';
    };
    for (const auto& row : r.periodicity.all_rows) dump_t5(row);
    for (const auto& row : r.periodicity.as_rows) dump_t5(row);
    auto dump_t7 = [&](const Table7Row& row) {
        out << "t7 " << row.asn << ' ' << row.as_name << ' '
            << row.total_changes << ' ' << row.diff_bgp << ' ' << row.diff_16
            << ' ' << row.diff_8 << '\n';
    };
    dump_t7(r.prefix_changes.all);
    for (const auto& row : r.prefix_changes.as_rows) dump_t7(row);
    out << "admin " << r.admin_events.size() << '\n';
    return out.str();
}

std::string reference_fingerprint(const isp::ScenarioResult& scenario,
                                  const isp::ScenarioConfig& config,
                                  std::size_t threads) {
    PipelineConfig pipeline_config;
    pipeline_config.threads = threads;
    AnalysisPipeline pipeline(pipeline_config);
    return fingerprint(pipeline.run_reference(scenario.bundle,
                                              scenario.prefix_table,
                                              scenario.registry,
                                              config.window));
}

std::string streaming_fingerprint(const isp::ScenarioResult& scenario,
                                  const isp::ScenarioConfig& config,
                                  std::size_t threads) {
    StreamingPipeline::Options options;
    options.config.threads = threads;
    StreamingPipeline pipeline(scenario.prefix_table, scenario.registry,
                               options);
    pipeline.open(config.window);
    pipeline.feed_bundle(scenario.bundle);
    return fingerprint(pipeline.finish());
}

void expect_streaming_matches_reference(const isp::ScenarioConfig& config) {
    const auto scenario = isp::run_scenario(config);
    const std::string reference = reference_fingerprint(scenario, config, 1);
    ASSERT_FALSE(reference.empty());
    for (const std::size_t threads : {1u, 0u})
        EXPECT_EQ(streaming_fingerprint(scenario, config, threads), reference)
            << "threads=" << threads;
}

TEST(StreamingDifferential, QuickPreset) {
    expect_streaming_matches_reference(isp::presets::quick_scenario());
}

TEST(StreamingDifferential, OutagePreset) {
    expect_streaming_matches_reference(isp::presets::outage_scenario());
}

TEST(StreamingDifferential, PaperPreset) {
    expect_streaming_matches_reference(isp::presets::paper_scenario());
}

TEST(StreamingDifferential, IdenticalWithObsTracingEnabled) {
    // The streaming path emits its own spans/counters; none of that may
    // leak into the analysis output.
    const auto config = isp::presets::quick_scenario();
    const auto scenario = isp::run_scenario(config);
    const std::string reference = reference_fingerprint(scenario, config, 2);
    obs::enable_trace();
    const std::string streamed = streaming_fingerprint(scenario, config, 2);
    obs::disable_trace();
    EXPECT_EQ(streamed, reference);
}

TEST(StreamingDifferential, BatchRunIsTheStreamingAdapter) {
    // AnalysisPipeline::run routes through StreamingPipeline; it must
    // still equal the preserved reference implementation.
    const auto config = isp::presets::quick_scenario();
    const auto scenario = isp::run_scenario(config);
    PipelineConfig pipeline_config;
    pipeline_config.threads = 1;
    AnalysisPipeline pipeline(pipeline_config);
    const auto via_run = fingerprint(pipeline.run(
        scenario.bundle, scenario.prefix_table, scenario.registry,
        config.window));
    EXPECT_EQ(via_run, reference_fingerprint(scenario, config, 1));
}

// -- push-interface contract -------------------------------------------------

class StreamingContract : public ::testing::Test {
protected:
    StreamingContract() : pipeline_(table_, registry_) {}

    atlas::ConnectionLogEntry entry(atlas::ProbeId probe, int day) {
        atlas::ConnectionLogEntry e;
        e.probe = probe;
        e.start = net::TimePoint::from_date(2015, 1, 1) +
                  net::Duration::hours(24 * day);
        e.end = e.start + net::Duration::hours(20);
        e.address = atlas::PeerAddress::ipv4(
            net::IPv4Address{0x5B37AE00u + std::uint32_t(day)});
        return e;
    }

    bgp::PrefixTable table_;
    bgp::AsRegistry registry_;
    StreamingPipeline pipeline_;
};

TEST_F(StreamingContract, FeedBeforeOpenThrows) {
    EXPECT_THROW(pipeline_.feed_connection(entry(1, 0)), Error);
    EXPECT_THROW((void)pipeline_.finish(), Error);
}

TEST_F(StreamingContract, SealedProbeRejectsLateRecords) {
    pipeline_.open();
    pipeline_.feed_connection(entry(5, 0));
    pipeline_.seal_through(5);
    EXPECT_THROW(pipeline_.feed_connection(entry(5, 1)), Error);
    EXPECT_THROW(pipeline_.feed_connection(entry(3, 1)), Error);
    pipeline_.feed_connection(entry(6, 1));  // later probes still fine
}

TEST_F(StreamingContract, ChannelProbeOrderMustBeNonDecreasing) {
    pipeline_.open();
    pipeline_.feed_connection(entry(10, 0));
    pipeline_.feed_connection(entry(10, 1));  // same probe: fine
    EXPECT_THROW(pipeline_.feed_connection(entry(9, 0)), Error);
}

TEST_F(StreamingContract, SealThroughMustBeNonDecreasing) {
    pipeline_.open();
    pipeline_.feed_connection(entry(8, 0));
    pipeline_.seal_through(8);
    EXPECT_THROW(pipeline_.seal_through(7), Error);
    pipeline_.seal_through(8);  // equal is a no-op
}

TEST_F(StreamingContract, FinishWithNoWindowAndNoRecordsThrows) {
    pipeline_.open();
    try {
        (void)pipeline_.finish();
        FAIL() << "expected Error";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("empty connection log"),
                  std::string::npos);
    }
}

TEST_F(StreamingContract, SpentAfterFinishUntilReopened) {
    pipeline_.open(net::TimeInterval{net::TimePoint::from_date(2015, 1, 1),
                                     net::TimePoint::from_date(2015, 2, 1)});
    pipeline_.feed_connection(entry(1, 0));
    (void)pipeline_.finish();
    EXPECT_THROW(pipeline_.feed_connection(entry(2, 0)), Error);
    pipeline_.open();
    pipeline_.feed_connection(entry(2, 0));  // fresh run
}

// -- memory accounting --------------------------------------------------------

TEST(StreamingMemory, PeakBufferedIsPerProbeNotPerDataset) {
    // Feed the quick preset probe by probe with seals between probes: the
    // high-water mark must track the widest single probe, not the whole
    // dataset — the O(probes) acceptance check.
    const auto config = isp::presets::quick_scenario();
    const auto scenario = isp::run_scenario(config);

    // Per-probe record tally to know the widest probe up front.
    std::map<atlas::ProbeId, std::size_t> per_probe;
    for (const auto& e : scenario.bundle.connection_log)
        ++per_probe[e.probe];
    for (const auto& r : scenario.bundle.kroot_pings) ++per_probe[r.probe];
    for (const auto& r : scenario.bundle.uptime_records) ++per_probe[r.probe];
    std::size_t widest = 0, total = 0;
    for (const auto& [probe, count] : per_probe) {
        widest = std::max(widest, count);
        total += count;
    }
    ASSERT_GT(total, widest * 4) << "scenario too small to be meaningful";

    // finalize_batch=1 flushes each probe as it seals, making the
    // buffered high-water mark exactly the per-probe bound; the default
    // batching would hold finalize_batch probes' raw records instead.
    StreamingPipeline::Options options;
    options.finalize_batch = 1;
    StreamingPipeline pipeline(scenario.prefix_table, scenario.registry,
                               options);
    pipeline.open(config.window);
    // The bundle is per-probe sorted; walk it probe by probe, sealing as
    // we go (what stream_binary_bundle does via the footer index).
    for (const auto& meta : scenario.bundle.probes)
        pipeline.feed_metadata(meta);
    std::size_t ci = 0, ki = 0, ui = 0;
    for (const auto& [probe, count] : per_probe) {
        while (ci < scenario.bundle.connection_log.size() &&
               scenario.bundle.connection_log[ci].probe == probe)
            pipeline.feed_connection(scenario.bundle.connection_log[ci++]);
        while (ki < scenario.bundle.kroot_pings.size() &&
               scenario.bundle.kroot_pings[ki].probe == probe)
            pipeline.feed_kroot(scenario.bundle.kroot_pings[ki++]);
        while (ui < scenario.bundle.uptime_records.size() &&
               scenario.bundle.uptime_records[ui].probe == probe)
            pipeline.feed_uptime(scenario.bundle.uptime_records[ui++]);
        pipeline.seal_through(probe);
    }
    const auto results = pipeline.finish();

    EXPECT_GE(pipeline.probes_seen(), per_probe.size());
    EXPECT_EQ(pipeline.buffered_records(), 0u);
    EXPECT_LE(pipeline.peak_buffered_records(), widest);
    EXPECT_LT(pipeline.peak_buffered_records(), total / 2);
    EXPECT_FALSE(results.changes.empty());
}

// -- binary-bundle ingestion --------------------------------------------------

TEST(StreamingBinary, FeedBinaryBundleMatchesBatch) {
    const auto config = isp::presets::quick_scenario();
    const auto scenario = isp::run_scenario(config);
    const std::string reference = reference_fingerprint(scenario, config, 1);

    const fs::path dir =
        fs::temp_directory_path() /
        ("dynaddr_streaming_dab_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    auto sorted = scenario.bundle;
    sorted.sort();
    atlas::write_binary_bundle(dir.string(), sorted, 64);

    StreamingPipeline::Options options;
    options.config.threads = 1;
    StreamingPipeline pipeline(scenario.prefix_table, scenario.registry,
                               options);
    pipeline.open(config.window);
    feed_binary_bundle(pipeline, dir.string());
    const std::string streamed = fingerprint(pipeline.finish());
    fs::remove_all(dir);

    EXPECT_EQ(streamed, reference);
    EXPECT_EQ(pipeline.buffered_records(), 0u);
    EXPECT_GT(pipeline.probes_seen(), 0u);
}

}  // namespace
}  // namespace dynaddr::core

#include "core/filtering.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

using atlas::ConnectionLogEntry;
using atlas::PeerAddress;
using atlas::ProbeMetadata;
using atlas::ProbeVersion;
using net::IPv4Address;
using net::TimePoint;

ConnectionLogEntry v4_entry(atlas::ProbeId probe, std::int64_t start,
                            std::int64_t end, const char* address) {
    return {probe, TimePoint{start}, TimePoint{end},
            PeerAddress::ipv4(IPv4Address::parse_or_throw(address))};
}

ConnectionLogEntry v6_entry(atlas::ProbeId probe, std::int64_t start,
                            std::int64_t end, std::uint64_t token) {
    return {probe, TimePoint{start}, TimePoint{end}, PeerAddress::ipv6_token(token)};
}

ProbeLog make_log(atlas::ProbeId probe, std::vector<ConnectionLogEntry> entries) {
    return {probe, std::move(entries)};
}

TEST(Filtering, Ipv6OnlyDetected) {
    const std::vector<ProbeLog> logs = {
        make_log(1, {v6_entry(1, 0, 100, 7), v6_entry(1, 200, 300, 7)})};
    const auto report = filter_probes(logs, {});
    EXPECT_EQ(report.category.at(1), ProbeCategory::Ipv6Only);
    EXPECT_TRUE(report.analyzable.empty());
}

TEST(Filtering, DualStackDetected) {
    const std::vector<ProbeLog> logs = {
        make_log(1, {v4_entry(1, 0, 100, "10.0.0.1"), v6_entry(1, 200, 300, 7),
                     v4_entry(1, 400, 500, "10.0.0.2")})};
    const auto report = filter_probes(logs, {});
    EXPECT_EQ(report.category.at(1), ProbeCategory::DualStack);
}

TEST(Filtering, TagTakesPriorityOverBehaviour) {
    const std::vector<ProbeLog> logs = {
        make_log(1, {v4_entry(1, 0, 100, "10.0.0.1"),
                     v4_entry(1, 200, 300, "10.0.0.2")})};
    const std::vector<ProbeMetadata> metadata = {
        {1, ProbeVersion::V3, "DE", {"datacentre"}}};
    const auto report = filter_probes(logs, metadata);
    EXPECT_EQ(report.category.at(1), ProbeCategory::TaggedMultihomed);
}

TEST(Filtering, AlternatingMultihomedDetected) {
    // A fixed, B1, A, B2, A, B3, A: three returns to A.
    std::vector<ConnectionLogEntry> entries;
    const char* sequence[] = {"10.0.0.1", "20.0.0.1", "10.0.0.1", "20.0.0.2",
                              "10.0.0.1", "20.0.0.3", "10.0.0.1"};
    std::int64_t t = 0;
    for (const char* addr : sequence) {
        entries.push_back(v4_entry(1, t, t + 100, addr));
        t += 200;
    }
    const auto report = filter_probes({{make_log(1, entries)}}, {});
    EXPECT_EQ(report.category.at(1), ProbeCategory::AlternatingMultihomed);
}

TEST(Filtering, TwoReturnsIsNotMultihomed) {
    std::vector<ConnectionLogEntry> entries;
    const char* sequence[] = {"10.0.0.1", "20.0.0.1", "10.0.0.1", "20.0.0.2",
                              "10.0.0.1"};
    std::int64_t t = 0;
    for (const char* addr : sequence) {
        entries.push_back(v4_entry(1, t, t + 100, addr));
        t += 200;
    }
    const auto report = filter_probes({{make_log(1, entries)}}, {});
    EXPECT_EQ(report.category.at(1), ProbeCategory::Analyzable);
}

TEST(Filtering, ConsecutiveSameAddressIsNotAReturn) {
    // DHCP stickiness: A A A B B A-after-B once — only one return.
    std::vector<ConnectionLogEntry> entries;
    const char* sequence[] = {"10.0.0.1", "10.0.0.1", "10.0.0.1",
                              "20.0.0.1", "20.0.0.1", "10.0.0.1"};
    std::int64_t t = 0;
    for (const char* addr : sequence) {
        entries.push_back(v4_entry(1, t, t + 100, addr));
        t += 200;
    }
    EXPECT_FALSE(is_alternating_multihomed(make_log(1, entries), 3));
}

TEST(Filtering, NeverChangedDetected) {
    const std::vector<ProbeLog> logs = {
        make_log(1, {v4_entry(1, 0, 100, "10.0.0.1"),
                     v4_entry(1, 200, 300, "10.0.0.1")})};
    const auto report = filter_probes(logs, {});
    EXPECT_EQ(report.category.at(1), ProbeCategory::NeverChanged);
}

TEST(Filtering, TestingAddressOnlyDetected) {
    const std::vector<ProbeLog> logs = {
        make_log(1, {v4_entry(1, 0, 100, "193.0.0.78"),
                     v4_entry(1, 200, 300, "10.0.0.1"),
                     v4_entry(1, 400, 500, "10.0.0.1")})};
    const auto report = filter_probes(logs, {});
    EXPECT_EQ(report.category.at(1), ProbeCategory::TestingAddressOnly);
}

TEST(Filtering, TestingEntryStrippedFromAnalyzableLog) {
    const std::vector<ProbeLog> logs = {
        make_log(1, {v4_entry(1, 0, 100, "193.0.0.78"),
                     v4_entry(1, 200, 300, "10.0.0.1"),
                     v4_entry(1, 400, 500, "10.0.0.2")})};
    const auto report = filter_probes(logs, {});
    EXPECT_EQ(report.category.at(1), ProbeCategory::Analyzable);
    ASSERT_EQ(report.analyzable.size(), 1u);
    ASSERT_EQ(report.analyzable[0].entries.size(), 2u);
    EXPECT_EQ(report.analyzable[0].entries[0].address.v4,
              IPv4Address::parse_or_throw("10.0.0.1"));
}

TEST(Filtering, AnalyzableProbeKept) {
    const std::vector<ProbeLog> logs = {
        make_log(5, {v4_entry(5, 0, 100, "10.0.0.1"),
                     v4_entry(5, 200, 300, "10.0.0.2"),
                     v4_entry(5, 400, 500, "10.0.0.3")})};
    const auto report = filter_probes(logs, {});
    EXPECT_EQ(report.category.at(5), ProbeCategory::Analyzable);
    ASSERT_EQ(report.analyzable.size(), 1u);
    EXPECT_EQ(report.analyzable[0].probe, 5u);
}

TEST(Filtering, CountsPartitionInput) {
    std::vector<ProbeLog> logs;
    logs.push_back(make_log(1, {v6_entry(1, 0, 100, 1)}));
    logs.push_back(make_log(2, {v4_entry(2, 0, 100, "10.0.0.1"),
                                v6_entry(2, 200, 300, 2)}));
    logs.push_back(make_log(3, {v4_entry(3, 0, 100, "10.0.0.1")}));
    logs.push_back(make_log(4, {v4_entry(4, 0, 100, "10.0.0.1"),
                                v4_entry(4, 200, 300, "10.0.0.2")}));
    const auto report = filter_probes(logs, {});
    EXPECT_EQ(report.total(), 4);
    int sum = 0;
    for (const auto& [category, count] : report.counts) sum += count;
    EXPECT_EQ(sum, 4);
    EXPECT_EQ(report.count(ProbeCategory::Analyzable), 1);
}

TEST(Filtering, CustomTagList) {
    FilterConfig config;
    config.multihomed_tags = {"anchor"};
    const std::vector<ProbeLog> logs = {
        make_log(1, {v4_entry(1, 0, 100, "10.0.0.1"),
                     v4_entry(1, 200, 300, "10.0.0.2")})};
    const std::vector<ProbeMetadata> metadata = {
        {1, ProbeVersion::V3, "DE", {"anchor"}}};
    const auto report = filter_probes(logs, metadata, config);
    EXPECT_EQ(report.category.at(1), ProbeCategory::TaggedMultihomed);
    // Default tags no longer match.
    FilterConfig defaults;
    const auto report2 = filter_probes(logs, metadata, defaults);
    EXPECT_EQ(report2.category.at(1), ProbeCategory::Analyzable);
}

}  // namespace
}  // namespace dynaddr::core

// Gates for the ground-truth attribution audit: the §3.6 classifier is
// scored against the simulator's cause ledger on the shipped presets, and
// these bounds keep the confusion matrix honest. EXPERIMENTS.md documents
// the residuals (why power recall sits below the periodic/network gates);
// if a pipeline change moves these numbers materially, re-derive the
// bounds there before loosening anything here.

#include <gtest/gtest.h>

#include <memory>

#include "core/attribution_audit.hpp"
#include "core/pipeline.hpp"
#include "isp/presets.hpp"
#include "netcore/obs/metrics.hpp"
#include "sim/cause_ledger.hpp"

namespace dynaddr {
namespace {

using core::ChangeCause;

/// One preset simulated under an installed cause ledger, analyzed, and
/// audited — shared across the suite's assertions (the year-long runs cost
/// ~1 s each).
struct AuditedRun {
    isp::ScenarioConfig config;
    isp::ScenarioResult scenario;
    std::vector<sim::CauseRecord> ledger;
    core::AnalysisResults results;
    core::AttributionAudit audit;
};

AuditedRun audited_run(isp::ScenarioConfig config) {
    AuditedRun run;
    run.config = config;
    {
        sim::ScopedCauseLedger scope;  // keep_records on by default
        run.scenario = isp::run_scenario(config);
        run.ledger = scope.ledger().records();
    }
    core::AnalysisPipeline pipeline;
    run.results = pipeline.run(run.scenario.bundle, run.scenario.prefix_table,
                               run.scenario.registry, config.window);
    run.audit = core::audit_attribution(run.results, run.scenario.prefix_table,
                                        run.scenario.registry, run.ledger);
    return run;
}

class QuickAudit : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        run_ = new AuditedRun(audited_run(isp::presets::quick_scenario()));
    }
    static void TearDownTestSuite() {
        delete run_;
        run_ = nullptr;
    }
    static AuditedRun* run_;
};
AuditedRun* QuickAudit::run_ = nullptr;

class PaperAudit : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        run_ = new AuditedRun(audited_run(isp::presets::paper_scenario()));
    }
    static void TearDownTestSuite() {
        delete run_;
        run_ = nullptr;
    }
    static AuditedRun* run_;
};
AuditedRun* PaperAudit::run_ = nullptr;

class OutageAudit : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        run_ = new AuditedRun(audited_run(isp::presets::outage_scenario()));
    }
    static void TearDownTestSuite() {
        delete run_;
        run_ = nullptr;
    }
    static AuditedRun* run_;
};
AuditedRun* OutageAudit::run_ = nullptr;

TEST(ExpectedCause, MapsLedgerKindsOntoClassifierClasses) {
    using sim::CauseKind;
    EXPECT_EQ(core::expected_cause(CauseKind::SessionExpiry),
              ChangeCause::Periodic);
    EXPECT_EQ(core::expected_cause(CauseKind::LeaseExpiry),
              ChangeCause::Periodic);
    EXPECT_EQ(core::expected_cause(CauseKind::NightlyReconnect),
              ChangeCause::Periodic);
    EXPECT_EQ(core::expected_cause(CauseKind::PowerOutage),
              ChangeCause::PowerOutage);
    EXPECT_EQ(core::expected_cause(CauseKind::NetworkOutage),
              ChangeCause::NetworkOutage);
    EXPECT_EQ(core::expected_cause(CauseKind::AdminRenumbering),
              ChangeCause::Administrative);
    // Signature-free kinds: the classifier has no rule that could name
    // them, so the audit expects Unknown rather than penalizing it.
    EXPECT_EQ(core::expected_cause(CauseKind::MaxAgeEviction),
              ChangeCause::Unknown);
    EXPECT_EQ(core::expected_cause(CauseKind::ServerAmnesia),
              ChangeCause::Unknown);
    EXPECT_EQ(core::expected_cause(CauseKind::PoolExhausted),
              ChangeCause::Unknown);
    EXPECT_EQ(core::expected_cause(CauseKind::MessageFault),
              ChangeCause::Unknown);
    EXPECT_EQ(core::expected_cause(CauseKind::Unknown), ChangeCause::Unknown);
}

TEST(AttributionAuditEmpty, NoLedgerNoCounts) {
    // Degenerate call: auditing an empty ledger must not invent records.
    core::AnalysisResults results;
    bgp::PrefixTable table;
    bgp::AsRegistry registry;
    const auto audit = core::audit_attribution(results, table, registry, {});
    EXPECT_EQ(audit.ledger_records, 0);
    EXPECT_EQ(audit.scored, 0);
    EXPECT_TRUE(audit.kinds.empty());
    EXPECT_TRUE(audit.by_as.empty());
}

TEST_F(QuickAudit, EveryLedgerRecordIsAccountedForExactlyOnce) {
    const auto& a = run_->audit;
    ASSERT_GT(a.ledger_records, 0);
    EXPECT_EQ(a.ledger_records, int(run_->ledger.size()));
    // scored + coalesced + unobserved is a partition of the ledger.
    EXPECT_EQ(a.ledger_records, a.scored + a.coalesced + a.unobserved);
    int kinds_total = 0, kinds_scored = 0;
    for (const auto& row : a.kinds) {
        kinds_total += row.total();
        kinds_scored += row.scored;
        int inferred = 0;
        for (int n : row.inferred) inferred += n;
        EXPECT_EQ(inferred, row.scored) << sim::cause_kind_name(row.kind);
        EXPECT_LE(row.detectable, row.scored) << sim::cause_kind_name(row.kind);
        EXPECT_LE(row.correct, row.detectable) << sim::cause_kind_name(row.kind);
    }
    EXPECT_EQ(kinds_total, a.ledger_records - a.coalesced);
    EXPECT_EQ(kinds_scored, a.scored);
}

TEST_F(QuickAudit, PeriodicCausesRecallAboveGate) {
    EXPECT_GE(run_->audit.recall(ChangeCause::Periodic), 0.90);
    EXPECT_GE(run_->audit.precision(ChangeCause::Periodic), 0.90);
}

TEST_F(QuickAudit, MetricsBlockMatchesAuditCounts) {
    const auto before = obs::metrics_snapshot();
    core::record_attribution_audit(run_->audit);
    const auto diff = obs::metrics_diff(obs::metrics_snapshot(), before);
    auto counter = [&](const char* name) -> std::uint64_t {
        auto it = diff.counters.find(std::string("attribution_audit.") + name);
        return it == diff.counters.end() ? 0 : it->second;
    };
    EXPECT_EQ(counter("records"), std::uint64_t(run_->audit.ledger_records));
    EXPECT_EQ(counter("scored"), std::uint64_t(run_->audit.scored));
    EXPECT_EQ(counter("coalesced"), std::uint64_t(run_->audit.coalesced));
    EXPECT_EQ(counter("unobserved"), std::uint64_t(run_->audit.unobserved));
}

TEST_F(PaperAudit, OutageDetectorsAreStructurallyInactive) {
    // The paper preset ships without k-root sampling, so both §5 outage
    // detectors see no data: every outage-caused record is unobservable to
    // the classifier by construction (detectable stays 0), and the audit
    // must report that rather than a fake 0% recall.
    EXPECT_FALSE(run_->audit.network_detector_active);
    EXPECT_FALSE(run_->audit.power_detector_active);
    for (const auto& row : run_->audit.kinds) {
        if (row.kind != sim::CauseKind::PowerOutage &&
            row.kind != sim::CauseKind::NetworkOutage)
            continue;
        EXPECT_EQ(row.detectable, 0) << sim::cause_kind_name(row.kind);
    }
}

TEST_F(PaperAudit, PeriodicRecallMeetsIssueGate) {
    // ISSUE gate: >= 90% recall for periodic causes on the paper preset
    // (outage causes have zero detectable records here — see above).
    EXPECT_GE(run_->audit.recall(ChangeCause::Periodic), 0.90);
    EXPECT_GE(run_->audit.precision(ChangeCause::Periodic), 0.90);
}

TEST_F(PaperAudit, UnknownResidualIsBounded) {
    // The residual is real (max-age evictions are jittered, amnesia and
    // exhaustion are signature-free) but must stay bounded; EXPERIMENTS.md
    // documents its composition (~19% when this gate was derived).
    EXPECT_GT(run_->audit.unknown_residual(), 0.0);
    EXPECT_LE(run_->audit.unknown_residual(), 0.25);
}

TEST_F(PaperAudit, PerAsRowsCoverTheMajorsAccurately) {
    ASSERT_FALSE(run_->audit.by_as.empty());
    int scored = 0;
    for (const auto& row : run_->audit.by_as) {
        scored += row.scored;
        EXPECT_GE(row.accuracy(), 0.5) << row.as_name;
    }
    // The AS table must cover most scored changes (probes outside the
    // registry's named ASes — asn 0 — stay out of the table by design).
    EXPECT_GE(scored, run_->audit.scored * 2 / 3);
}

TEST_F(OutageAudit, NetworkOutageRecallMeetsIssueGate) {
    ASSERT_TRUE(run_->audit.network_detector_active);
    EXPECT_GE(run_->audit.recall(ChangeCause::NetworkOutage), 0.90);
    EXPECT_GE(run_->audit.precision(ChangeCause::NetworkOutage), 0.90);
}

TEST_F(OutageAudit, PowerOutageRecallMeetsDocumentedGate) {
    // Power recall is gated at 0.85, not 0.90: of the ground-truth power
    // outages a v3 probe could expose, ~9% are still missed because (a)
    // the uptime-decrease reboot rule is blind to back-to-back reboots
    // where the second uptime sample exceeds the first, and (b) the
    // Figure 6 firmware filter eats each probe's first reboot within 7
    // days of an inferred release day. Both are costs of the paper's own
    // method; EXPERIMENTS.md quantifies them.
    ASSERT_TRUE(run_->audit.power_detector_active);
    EXPECT_GE(run_->audit.recall(ChangeCause::PowerOutage), 0.85);
    EXPECT_GE(run_->audit.precision(ChangeCause::PowerOutage), 0.90);
}

TEST_F(OutageAudit, PowerDetectabilityIsScopedToV3Probes) {
    // The §5 power detector only trusts v3 uptime semantics, so the audit
    // must not count outages behind v1/v2 probes against recall. The
    // outage preset mixes versions: some power records are scored but not
    // detectable.
    ASSERT_FALSE(run_->results.probe_versions.empty());
    const core::AuditKindRow* power = nullptr;
    for (const auto& row : run_->audit.kinds)
        if (row.kind == sim::CauseKind::PowerOutage) power = &row;
    ASSERT_NE(power, nullptr);
    EXPECT_GT(power->detectable, 0);
    EXPECT_LT(power->detectable, power->scored);
}

TEST_F(OutageAudit, PeriodicStaysAccurateUnderOutageLoad) {
    EXPECT_GE(run_->audit.recall(ChangeCause::Periodic), 0.90);
    EXPECT_LE(run_->audit.unknown_residual(), 0.20);
}

}  // namespace
}  // namespace dynaddr

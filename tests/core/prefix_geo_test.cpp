#include <gtest/gtest.h>

#include "core/geography.hpp"
#include "core/prefix_change.hpp"

namespace dynaddr::core {
namespace {

using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

ProbeChanges changes_between(atlas::ProbeId probe,
                             std::initializer_list<const char*> addresses) {
    ProbeChanges changes;
    changes.probe = probe;
    std::int64_t t = 1420070400;  // 2015-01-01
    const char* previous = nullptr;
    for (const char* addr : addresses) {
        if (previous != nullptr) {
            AddressChangeEvent event;
            event.probe = probe;
            event.from = IPv4Address::parse_or_throw(previous);
            event.to = IPv4Address::parse_or_throw(addr);
            event.last_seen = TimePoint{t};
            event.first_seen = TimePoint{t + 1200};
            changes.changes.push_back(event);
        }
        previous = addr;
        t += 86400;
    }
    return changes;
}

TEST(PrefixChange, ClassifiesBgp16And8) {
    bgp::PrefixTable table;
    const auto jan = bgp::month_key(2015, 1);
    const auto dec = bgp::month_key(2015, 12);
    table.announce_range(jan, dec, IPv4Prefix::parse_or_throw("10.1.0.0/16"), 100);
    table.announce_range(jan, dec, IPv4Prefix::parse_or_throw("10.2.0.0/16"), 100);
    table.announce_range(jan, dec, IPv4Prefix::parse_or_throw("20.0.0.0/12"), 100);
    bgp::AsRegistry registry;
    registry.add({100, "TestNet", "DE", bgp::Continent::Europe});
    AsMapping mapping;
    mapping.single_as[1] = 100;

    // Four changes: same-prefix, cross-prefix-same-/8, cross-/8,
    // within-/12-aggregate-but-cross-/16.
    const std::vector<ProbeChanges> probes = {changes_between(
        1, {"10.1.0.1", "10.1.0.2", "10.2.0.1", "20.0.0.1", "20.1.0.1"})};
    const auto analysis = analyze_prefix_changes(probes, mapping, table, registry);

    ASSERT_EQ(analysis.as_rows.size(), 1u);
    const auto& row = analysis.as_rows[0];
    EXPECT_EQ(row.total_changes, 4);
    // diff BGP: 10.1->10.2 (yes), 10.2->20.0 (yes), 20.0->20.1 (no: same
    // /12 route), 10.1->10.1 (no).
    EXPECT_EQ(row.diff_bgp, 2);
    // diff /16: all except 10.1.0.1 -> 10.1.0.2.
    EXPECT_EQ(row.diff_16, 3);
    // diff /8: only 10.2 -> 20.0.
    EXPECT_EQ(row.diff_8, 1);
    EXPECT_DOUBLE_EQ(row.pct_bgp(), 50.0);
    EXPECT_EQ(analysis.all.total_changes, 4);
}

TEST(PrefixChange, MultiAsProbesDropped) {
    bgp::PrefixTable table;
    table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                         IPv4Prefix::parse_or_throw("10.0.0.0/8"), 100);
    bgp::AsRegistry registry;
    AsMapping mapping;
    mapping.multi_as.insert(1);
    const std::vector<ProbeChanges> probes = {
        changes_between(1, {"10.1.0.1", "10.2.0.1"})};
    const auto analysis = analyze_prefix_changes(probes, mapping, table, registry);
    EXPECT_EQ(analysis.all.total_changes, 0);
    EXPECT_TRUE(analysis.as_rows.empty());
}

TEST(PrefixChange, UnroutedSidesSkipBgpColumn) {
    bgp::PrefixTable table;  // empty: nothing routed
    bgp::AsRegistry registry;
    AsMapping mapping;
    mapping.single_as[1] = 100;
    const std::vector<ProbeChanges> probes = {
        changes_between(1, {"10.1.0.1", "20.2.0.1"})};
    const auto analysis = analyze_prefix_changes(probes, mapping, table, registry);
    ASSERT_EQ(analysis.as_rows.size(), 1u);
    EXPECT_EQ(analysis.as_rows[0].diff_bgp, 0);
    EXPECT_EQ(analysis.as_rows[0].diff_16, 1);
    EXPECT_EQ(analysis.as_rows[0].diff_8, 1);
}

TEST(Geography, CountryToContinent) {
    EXPECT_EQ(continent_of_country("DE"), bgp::Continent::Europe);
    EXPECT_EQ(continent_of_country("US"), bgp::Continent::NorthAmerica);
    EXPECT_EQ(continent_of_country("JP"), bgp::Continent::Asia);
    EXPECT_EQ(continent_of_country("MU"), bgp::Continent::Africa);
    EXPECT_EQ(continent_of_country("UY"), bgp::Continent::SouthAmerica);
    EXPECT_EQ(continent_of_country("NZ"), bgp::Continent::Oceania);
    EXPECT_FALSE(continent_of_country("XX"));
    EXPECT_FALSE(continent_of_country(""));
}

TEST(Geography, AggregatesSpansByContinent) {
    std::vector<ProbeChanges> probes(2);
    probes[0].probe = 1;
    probes[1].probe = 2;
    AddressSpan span;
    span.probe = 1;
    span.begin = TimePoint{0};
    span.end = TimePoint{24 * 3600};
    probes[0].spans.push_back(span);
    span.probe = 2;
    span.end = TimePoint{12 * 3600};
    probes[1].spans.push_back(span);

    const std::vector<atlas::ProbeMetadata> metadata = {
        {1, atlas::ProbeVersion::V3, "DE", {}},
        {2, atlas::ProbeVersion::V3, "US", {}},
    };
    const auto analysis = analyze_geography(probes, metadata);
    ASSERT_TRUE(analysis.by_continent.contains(bgp::Continent::Europe));
    ASSERT_TRUE(analysis.by_continent.contains(bgp::Continent::NorthAmerica));
    EXPECT_DOUBLE_EQ(
        analysis.by_continent.at(bgp::Continent::Europe).total_hours(), 24.0);
    EXPECT_DOUBLE_EQ(
        analysis.by_continent.at(bgp::Continent::NorthAmerica).total_hours(),
        12.0);
    EXPECT_EQ(analysis.unlocated_probes, 0);
    EXPECT_TRUE(analysis.by_country.contains("DE"));
}

TEST(Geography, UnknownCountryCounted) {
    std::vector<ProbeChanges> probes(1);
    probes[0].probe = 1;
    const std::vector<atlas::ProbeMetadata> metadata = {
        {1, atlas::ProbeVersion::V3, "ZZ", {}}};
    const auto analysis = analyze_geography(probes, metadata);
    EXPECT_EQ(analysis.unlocated_probes, 1);
    EXPECT_TRUE(analysis.by_continent.empty());
}

TEST(AsMappingTest, SingleMultiUnmapped) {
    bgp::PrefixTable table;
    table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                         IPv4Prefix::parse_or_throw("10.0.0.0/8"), 100);
    table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                         IPv4Prefix::parse_or_throw("20.0.0.0/8"), 200);
    auto entry = [](atlas::ProbeId probe, const char* addr) {
        atlas::ConnectionLogEntry e;
        e.probe = probe;
        e.start = TimePoint{1420070400};
        e.end = TimePoint{1420070400 + 3600};
        e.address =
            atlas::PeerAddress::ipv4(IPv4Address::parse_or_throw(addr));
        return e;
    };
    std::vector<ProbeLog> logs = {
        {1, {entry(1, "10.0.0.1"), entry(1, "10.0.0.2")}},
        {2, {entry(2, "10.0.0.1"), entry(2, "20.0.0.1")}},
        {3, {entry(3, "99.0.0.1")}},
    };
    const auto mapping = map_probes_to_as(logs, table);
    EXPECT_EQ(mapping.as_of(1), 100u);
    EXPECT_TRUE(mapping.multi_as.contains(2));
    EXPECT_TRUE(mapping.unmapped.contains(3));
    EXPECT_FALSE(mapping.as_of(2));
}

}  // namespace
}  // namespace dynaddr::core

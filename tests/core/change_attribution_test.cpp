#include "core/change_attribution.hpp"

#include <gtest/gtest.h>

namespace dynaddr::core {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

const TimePoint kStart = TimePoint::from_date(2015, 1, 1);

/// Builds minimal AnalysisResults with one probe in AS 100 whose changes
/// are hand-crafted.
struct Fixture {
    AnalysisResults results;
    bgp::PrefixTable table;
    bgp::AsRegistry registry;

    Fixture() {
        results.window = {kStart, TimePoint::from_date(2016, 1, 1)};
        registry.add({100, "TestNet", "DE", bgp::Continent::Europe});
        table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                             IPv4Prefix::parse_or_throw("10.1.0.0/16"), 100);
        table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                             IPv4Prefix::parse_or_throw("10.2.0.0/16"), 100);
        results.mapping.single_as[1] = 100;
    }

    /// Appends a change ending a tenure of `tenure_hours` at `at_hours`
    /// after the window start.
    void add_change(ProbeChanges& probe, double at_hours, const char* from,
                    const char* to) {
        AddressChangeEvent change;
        change.probe = probe.probe;
        change.from = IPv4Address::parse_or_throw(from);
        change.to = IPv4Address::parse_or_throw(to);
        change.last_seen = kStart + Duration{std::int64_t(at_hours * 3600)};
        change.first_seen = change.last_seen + Duration::minutes(20);
        probe.changes.push_back(change);
    }
};

TEST(ChangeAttribution, PeriodicChangesMatchProbePeriod) {
    Fixture fixture;
    ProbeChanges probe;
    probe.probe = 1;
    // Changes every 24 h: tenures of exactly 24 h (minus the 20-minute
    // gap, absorbed by quantization).
    for (int day = 1; day <= 8; ++day)
        fixture.add_change(probe, 24.0 * day, "10.1.0.5", "10.1.0.6");
    fixture.results.changes.push_back(probe);
    // Give the probe a 24 h period via the periodicity results.
    ProbePeriodicity periodicity;
    periodicity.probe = 1;
    periodicity.period_hours = 24.0;
    fixture.results.periodicity.probes.push_back(std::move(periodicity));

    const auto attribution = attribute_changes(fixture.results, fixture.table,
                                               fixture.registry);
    EXPECT_EQ(attribution.all.total, 8);
    // First change has no preceding observed tenure -> unknown; the rest
    // match the period.
    EXPECT_EQ(attribution.all.periodic, 7);
    EXPECT_EQ(attribution.all.unknown, 1);
    ASSERT_EQ(attribution.by_as.size(), 1u);
    EXPECT_EQ(attribution.by_as[0].as_name, "TestNet");
}

TEST(ChangeAttribution, HarmonicTenureIsStillPeriodic) {
    Fixture fixture;
    ProbeChanges probe;
    probe.probe = 1;
    fixture.add_change(probe, 24.0, "10.1.0.5", "10.1.0.6");
    fixture.add_change(probe, 72.0, "10.1.0.6", "10.1.0.7");  // 48 h tenure
    fixture.results.changes.push_back(probe);
    ProbePeriodicity periodicity;
    periodicity.probe = 1;
    periodicity.period_hours = 24.0;
    fixture.results.periodicity.probes.push_back(std::move(periodicity));
    const auto attribution = attribute_changes(fixture.results, fixture.table,
                                               fixture.registry);
    EXPECT_EQ(attribution.all.periodic, 1);  // the 48 h harmonic
}

TEST(ChangeAttribution, OutageOverlapBeatsPeriodicity) {
    Fixture fixture;
    ProbeChanges probe;
    probe.probe = 1;
    fixture.add_change(probe, 24.0, "10.1.0.5", "10.1.0.6");
    fixture.add_change(probe, 48.0, "10.1.0.6", "10.1.0.7");
    fixture.results.changes.push_back(probe);
    ProbePeriodicity periodicity;
    periodicity.probe = 1;
    periodicity.period_hours = 24.0;
    fixture.results.periodicity.probes.push_back(std::move(periodicity));
    // A network outage overlapping the second change's gap.
    DetectedOutage outage;
    outage.kind = DetectedOutage::Kind::Network;
    outage.probe = 1;
    outage.begin = kStart + Duration::hours(48) + Duration::minutes(2);
    outage.end = kStart + Duration::hours(48) + Duration::minutes(10);
    fixture.results.network_outages[1] = {outage};
    const auto attribution = attribute_changes(fixture.results, fixture.table,
                                               fixture.registry);
    EXPECT_EQ(attribution.all.network, 1);
    EXPECT_EQ(attribution.all.periodic, 0)
        << "outage association wins over the periodic label";
}

TEST(ChangeAttribution, AdministrativeBurstWins) {
    Fixture fixture;
    ProbeChanges probe;
    probe.probe = 1;
    fixture.add_change(probe, 100.0, "10.1.0.5", "10.2.0.6");
    fixture.results.changes.push_back(probe);
    AdminRenumberingEvent event;
    event.asn = 100;
    event.retired_prefix = IPv4Prefix::parse_or_throw("10.1.0.0/16");
    event.first_departure = kStart + Duration::hours(99);
    event.last_departure = kStart + Duration::hours(101);
    fixture.results.admin_events.push_back(event);
    const auto attribution = attribute_changes(fixture.results, fixture.table,
                                               fixture.registry);
    EXPECT_EQ(attribution.all.administrative, 1);
    EXPECT_EQ(attribution.all.unknown, 0);
}

TEST(ChangeAttribution, NoSignalsMeansUnknown) {
    Fixture fixture;
    ProbeChanges probe;
    probe.probe = 1;
    fixture.add_change(probe, 37.0, "10.1.0.5", "10.1.0.6");
    fixture.add_change(probe, 91.0, "10.1.0.6", "10.1.0.7");
    fixture.results.changes.push_back(probe);
    const auto attribution = attribute_changes(fixture.results, fixture.table,
                                               fixture.registry);
    EXPECT_EQ(attribution.all.unknown, 2);
    EXPECT_EQ(attribution.all.total, 2);
}

TEST(ChangeAttribution, RenderContainsEveryColumn) {
    Fixture fixture;
    ProbeChanges probe;
    probe.probe = 1;
    fixture.add_change(probe, 10.0, "10.1.0.5", "10.1.0.6");
    fixture.results.changes.push_back(probe);
    const auto attribution = attribute_changes(fixture.results, fixture.table,
                                               fixture.registry);
    const auto text = render_change_attribution(attribution);
    for (const char* column : {"Periodic", "Network", "Power", "Admin",
                               "Unknown", "TestNet", "All"})
        EXPECT_NE(text.find(column), std::string::npos) << column;
    EXPECT_STREQ(change_cause_name(ChangeCause::Periodic), "periodic");
    EXPECT_STREQ(change_cause_name(ChangeCause::Administrative),
                 "administrative");
}

}  // namespace
}  // namespace dynaddr::core

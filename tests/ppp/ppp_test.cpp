#include <gtest/gtest.h>

#include <cmath>

#include "ppp/radius.hpp"
#include "ppp/session.hpp"

namespace dynaddr::ppp {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

struct Rig {
    explicit Rig(RadiusConfig radius_config = {}, SessionConfig session_config = {},
                 std::uint64_t seed = 1)
        : sim(TimePoint{0}),
          pool(pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/20")},
                                pool::AllocationStrategy::RandomSpread,
                                0.0,
                                0.0,
                                {}},
               rng::Stream(seed)),
          server(radius_config, pool, sim),
          session(session_config, 1, server, sim, rng::Stream(seed + 100),
                  [this] { return link_up; }) {
        session.set_on_acquired([this](IPv4Address a) { acquired.push_back(a); });
        session.set_on_lost([this](StopReason r) { stops.push_back(r); });
    }

    sim::Simulation sim;
    pool::AddressPool pool;
    RadiusServer server;
    Session session;
    bool link_up = true;
    std::vector<IPv4Address> acquired;
    std::vector<StopReason> stops;
};

TEST(PppSession, DialsOnPowerOn) {
    Rig rig;
    rig.session.power_on();
    EXPECT_EQ(rig.session.phase(), Phase::Open);
    ASSERT_EQ(rig.acquired.size(), 1u);
    EXPECT_EQ(rig.server.open_sessions(), 1u);
}

TEST(PppSession, NoTimeoutMeansStableAddress) {
    Rig rig;  // no session timeout
    rig.session.power_on();
    rig.sim.run_until(TimePoint{30 * 86400});
    EXPECT_EQ(rig.acquired.size(), 1u);
    EXPECT_TRUE(rig.stops.empty());
}

TEST(PppSession, SessionTimeoutRenumbersPeriodically) {
    RadiusConfig radius;
    radius.session_timeout = Duration::hours(24);
    Rig rig(radius);
    rig.session.power_on();
    rig.sim.run_until(TimePoint{10 * 86400});
    // One renumbering per day, +-1 for edge effects.
    EXPECT_GE(rig.acquired.size(), 9u);
    EXPECT_LE(rig.acquired.size(), 11u);
    for (const auto stop : rig.stops) EXPECT_EQ(stop, StopReason::SessionTimeout);
    // Each session in the accounting log ran ~24 h (redial delay excepted).
    int full_day_sessions = 0;
    for (const auto& record : rig.server.records())
        if (record.duration() == Duration::hours(24)) ++full_day_sessions;
    EXPECT_GE(full_day_sessions, 8);
}

TEST(PppSession, SkipProbabilityCreatesHarmonics) {
    RadiusConfig radius;
    radius.session_timeout = Duration::hours(24);
    SessionConfig session;
    session.skip_renumber_probability = 0.5;
    Rig rig(radius, session, 42);
    rig.session.power_on();
    rig.sim.run_until(TimePoint{60 * 86400});
    // With skip = 0.5 over 60 days expect roughly 30 renumberings and at
    // least one session lasting a 48 h multiple.
    bool saw_multiple = false;
    for (const auto& record : rig.server.records()) {
        const auto hours = record.duration().to_hours();
        if (hours >= 47.9) saw_multiple = true;
        // Every session ends within a whole-day grid (+ redial slop).
        if (record.reason == StopReason::SessionTimeout) {
            EXPECT_NEAR(std::fmod(hours, 24.0), 0.0, 0.02);
        }
    }
    EXPECT_TRUE(saw_multiple);
}

TEST(PppSession, CarrierLossDropsAndRedials) {
    Rig rig;
    rig.session.power_on();
    const auto first = rig.acquired.at(0);
    rig.sim.run_until(TimePoint{3600});
    rig.link_up = false;
    rig.session.link_lost();
    EXPECT_EQ(rig.session.phase(), Phase::Dead);
    ASSERT_EQ(rig.stops.size(), 1u);
    EXPECT_EQ(rig.stops[0], StopReason::LostCarrier);
    EXPECT_EQ(rig.server.open_sessions(), 0u);
    // Even a 1-minute blip produces a fresh dial.
    rig.sim.run_until(TimePoint{3660});
    rig.link_up = true;
    rig.session.link_restored();
    rig.sim.run_until(TimePoint{3700});
    ASSERT_EQ(rig.acquired.size(), 2u);
    // RandomSpread over /20: overwhelmingly a different address.
    EXPECT_NE(rig.acquired[1], first);
}

TEST(PppSession, ReconnectNowIsUserRequested) {
    Rig rig;
    rig.session.power_on();
    rig.sim.run_until(TimePoint{100});
    rig.session.reconnect_now();
    ASSERT_EQ(rig.stops.size(), 1u);
    EXPECT_EQ(rig.stops[0], StopReason::UserRequest);
    rig.sim.run_until(TimePoint{200});
    EXPECT_EQ(rig.session.phase(), Phase::Open);
    EXPECT_EQ(rig.acquired.size(), 2u);
}

TEST(PppSession, PowerOffStopsRedialing) {
    Rig rig;
    rig.session.power_on();
    rig.sim.run_until(TimePoint{100});
    rig.session.power_off();
    EXPECT_EQ(rig.session.phase(), Phase::Dead);
    rig.sim.run_until(TimePoint{7200});
    EXPECT_EQ(rig.acquired.size(), 1u);
    EXPECT_EQ(rig.server.open_sessions(), 0u);
    // Accounting closed with LostCarrier (abrupt cut).
    ASSERT_EQ(rig.server.records().size(), 1u);
    EXPECT_EQ(rig.server.records()[0].reason, StopReason::LostCarrier);
}

TEST(PppSession, DialWaitsForLink) {
    Rig rig;
    rig.link_up = false;
    rig.session.power_on();
    EXPECT_EQ(rig.session.phase(), Phase::Dead);
    rig.sim.run_until(TimePoint{3600});
    EXPECT_TRUE(rig.acquired.empty());
    rig.link_up = true;
    rig.session.link_restored();
    EXPECT_EQ(rig.session.phase(), Phase::Open);
}

TEST(RadiusServer, AccountingRecordsCarrySessions) {
    RadiusConfig config;
    config.session_timeout = Duration::hours(1);
    Rig rig(config);
    rig.session.power_on();
    rig.sim.run_until(TimePoint{5 * 3600});
    const auto& records = rig.server.records();
    ASSERT_GE(records.size(), 4u);
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_GE(records[i].start, records[i - 1].stop);
    for (const auto& record : records) {
        EXPECT_EQ(record.client, 1u);
        EXPECT_GT(record.stop, record.start);
    }
}

TEST(RadiusServer, DuplicateAuthorizeResetsOldSession) {
    Rig rig;
    auto first = rig.server.authorize(7);
    ASSERT_TRUE(first);
    auto second = rig.server.authorize(7);
    ASSERT_TRUE(second);
    EXPECT_EQ(rig.server.open_sessions(), 1u);
    ASSERT_EQ(rig.server.records().size(), 1u);
    EXPECT_EQ(rig.server.records()[0].reason, StopReason::AdminReset);
}

TEST(RadiusServer, ExhaustedPoolRejects) {
    sim::Simulation sim(TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/31")},
                         pool::AllocationStrategy::RandomSpread, 0.0, 0.0, {}},
        rng::Stream(1));
    RadiusServer server({}, pool, sim);
    EXPECT_TRUE(server.authorize(1));
    EXPECT_TRUE(server.authorize(2));
    EXPECT_FALSE(server.authorize(3));
    server.account_stop(1, StopReason::UserRequest);
    EXPECT_TRUE(server.authorize(3));
}

}  // namespace
}  // namespace dynaddr::ppp

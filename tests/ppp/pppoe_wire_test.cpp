#include "ppp/pppoe_wire.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"
#include "netcore/rng.hpp"

namespace dynaddr::ppp {
namespace {

PppoePacket sample_padr() {
    PppoePacket packet;
    packet.code = PppoeCode::Padr;
    packet.session_id = 0;
    packet.add_tag(PppoeTag::kServiceName, "internet");
    packet.add_tag(PppoeTag::kHostUniq, "cpe-42");
    PppoeTag cookie;
    cookie.type = PppoeTag::kAcCookie;
    cookie.value = {0xDE, 0xAD, 0xBE, 0xEF};
    packet.tags.push_back(cookie);
    return packet;
}

TEST(PppoeWire, EncodeProducesValidFraming) {
    const auto bytes = encode(sample_padr());
    ASSERT_GE(bytes.size(), 6u);
    EXPECT_EQ(bytes[0], 0x11);  // ver 1 / type 1
    EXPECT_EQ(bytes[1], 0x19);  // PADR
    EXPECT_EQ(bytes[2], 0);     // session id 0 during discovery
    EXPECT_EQ(bytes[3], 0);
    const std::size_t payload = std::size_t(bytes[4] << 8 | bytes[5]);
    EXPECT_EQ(bytes.size(), 6u + payload);
    // First tag: Service-Name.
    EXPECT_EQ(bytes[6], 0x01);
    EXPECT_EQ(bytes[7], 0x01);
}

TEST(PppoeWire, RoundTripsAllCodes) {
    for (const auto code : {PppoeCode::Padi, PppoeCode::Pado, PppoeCode::Padr,
                            PppoeCode::Pads, PppoeCode::Padt}) {
        PppoePacket packet = sample_padr();
        packet.code = code;
        packet.session_id = code == PppoeCode::Pads ? 0x1234 : 0;
        const auto decoded = decode(encode(packet));
        EXPECT_EQ(decoded, packet);
    }
}

TEST(PppoeWire, DiscoveryExchangeCarriesState) {
    // PADI -> PADO -> PADR -> PADS, the cookie echoed as the RFC requires.
    PppoePacket padi;
    padi.code = PppoeCode::Padi;
    padi.add_tag(PppoeTag::kServiceName, "");
    padi.add_tag(PppoeTag::kHostUniq, "probe-206");

    PppoePacket pado = decode(encode(padi));
    pado.code = PppoeCode::Pado;
    pado.add_tag(PppoeTag::kAcName, "bras-01.example");
    PppoeTag cookie;
    cookie.type = PppoeTag::kAcCookie;
    cookie.value = {1, 2, 3};
    pado.tags.push_back(cookie);

    PppoePacket padr = decode(encode(pado));
    padr.code = PppoeCode::Padr;

    PppoePacket pads = decode(encode(padr));
    pads.code = PppoeCode::Pads;
    pads.session_id = 0x0042;

    const auto final = decode(encode(pads));
    EXPECT_EQ(final.session_id, 0x0042);
    ASSERT_NE(final.find_tag(PppoeTag::kHostUniq), nullptr);
    EXPECT_EQ(std::string(final.find_tag(PppoeTag::kHostUniq)->value.begin(),
                          final.find_tag(PppoeTag::kHostUniq)->value.end()),
              "probe-206");
    ASSERT_NE(final.find_tag(PppoeTag::kAcCookie), nullptr);
    EXPECT_EQ(final.find_tag(PppoeTag::kAcCookie)->value,
              (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(PppoeWire, EndOfListStopsParsing) {
    PppoePacket packet;
    packet.code = PppoeCode::Padi;
    packet.add_tag(PppoeTag::kServiceName, "svc");
    auto bytes = encode(packet);
    // Append End-Of-List then a garbage tag inside the declared payload.
    const std::vector<std::uint8_t> tail = {0x00, 0x00, 0x00, 0x00,
                                            0x01, 0x01, 0x00, 0x01, 'x'};
    bytes.insert(bytes.end(), tail.begin(), tail.end());
    const std::uint16_t payload = std::uint16_t(bytes.size() - 6);
    bytes[4] = std::uint8_t(payload >> 8);
    bytes[5] = std::uint8_t(payload);
    const auto decoded = decode(bytes);
    EXPECT_EQ(decoded.tags.size(), 1u) << "tags after End-Of-List ignored";
}

TEST(PppoeWire, RejectsCorruptPackets) {
    const auto good = encode(sample_padr());
    EXPECT_THROW(decode(std::span(good).first(3)), ParseError);
    auto bad_version = good;
    bad_version[0] = 0x21;
    EXPECT_THROW(decode(bad_version), ParseError);
    auto bad_code = good;
    bad_code[1] = 0x55;
    EXPECT_THROW(decode(bad_code), ParseError);
    // Length field larger than the buffer.
    auto bad_length = good;
    bad_length[4] = 0xFF;
    bad_length[5] = 0xFF;
    EXPECT_THROW(decode(bad_length), ParseError);
    // Tag overrunning the payload.
    auto overrun = good;
    overrun[9] = 0xFF;  // first tag's length low byte
    EXPECT_THROW(decode(overrun), ParseError);
}

TEST(PppoeWire, FuzzDecodeNeverCrashes) {
    rng::Stream rng(77);
    const auto good = encode(sample_padr());
    for (int round = 0; round < 2000; ++round) {
        auto mutated = good;
        for (int f = int(rng.uniform_int(1, 6)); f > 0; --f)
            mutated[std::size_t(rng.uniform_int(
                0, std::int64_t(mutated.size()) - 1))] =
                std::uint8_t(rng.uniform_int(0, 255));
        if (rng.bernoulli(0.3))
            mutated.resize(std::size_t(
                rng.uniform_int(0, std::int64_t(mutated.size()))));
        try {
            const auto decoded = decode(mutated);
            (void)decoded;
        } catch (const ParseError&) {
        }
    }
}

}  // namespace
}  // namespace dynaddr::ppp

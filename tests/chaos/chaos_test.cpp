// Property-style chaos suite for the deterministic fault-injection layer.
//
// Each combo of (fault profile, seed) drives small DHCP and PPP worlds
// through days of injected faults — message loss and corruption, server
// crashes with amnesia, pool exhaustion, power-cycle storms — while
// asserting the invariants that must survive any fault sequence:
//
//   * no address is ever leased to two clients at once (server side);
//   * simulated time only moves forward;
//   * once faults stop (plans use active_fraction < 1), every subscriber
//     reconverges to Bound / Open with a consistent address;
//   * the full scenario + analysis pipeline never crashes on chaos input.
//
// Faults draw from per-(site, entity) streams, so every run here is
// bit-reproducible; see the differential tests in determinism_test.cpp.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "atlas/datasets.hpp"
#include "core/pipeline.hpp"
#include "dhcp/client.hpp"
#include "dhcp/server.hpp"
#include "isp/presets.hpp"
#include "isp/world.hpp"
#include "netcore/obs/metrics.hpp"
#include "ppp/session.hpp"
#include "sim/faults.hpp"

namespace dynaddr {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimeInterval;
using net::TimePoint;

constexpr int kDhcpClients = 8;
constexpr int kPppClients = 6;

/// Ten simulated days; faults are active over the leading fraction only,
/// leaving a quiet tail for the reconvergence assertions.
const TimeInterval kWindow{TimePoint{0}, TimePoint{10 * 86400}};

sim::FaultPlan make_plan(const std::string& profile, std::uint64_t seed) {
    auto plan = sim::FaultPlan::parse(profile);
    plan.seed = seed;
    plan.active_fraction = 0.7;
    return plan;
}

/// A small DHCP access network — one server, one sticky pool, several
/// clients — with the injector's component schedules wired up the same
/// way run_scenario() wires them: crash/restart pairs, exhaustion
/// windows, and storms as client power cycles.
struct DhcpChaosRig {
    explicit DhcpChaosRig(sim::FaultInjector& injector)
        : sim(kWindow.begin),
          pool(pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                                pool::AllocationStrategy::Sticky,
                                0.0,
                                0.0,
                                {}},
               rng::Stream(99)),
          server(dhcp::ServerConfig{Duration::hours(2), std::nullopt},
                 pool, sim) {
        clients.reserve(kDhcpClients);
        powered.assign(kDhcpClients, true);
        for (int i = 0; i < kDhcpClients; ++i)
            clients.emplace_back(dhcp::ClientConfig{}, pool::ClientId(i + 1),
                                 server, sim, [] { return true; });

        for (const auto& event : injector.crash_schedule(
                 sim::FaultSite::DhcpServer, 0, kWindow)) {
            sim.at(event.at, [this, amnesia = event.amnesia](TimePoint) {
                server.crash(amnesia);
            });
            sim.at(event.at + event.downtime,
                   [this](TimePoint) { server.restart(); });
        }
        for (const auto& window : injector.exhaustion_schedule(0, kWindow)) {
            sim.at(window.at,
                   [this](TimePoint) { pool.set_fault_exhausted(true); });
            sim.at(window.at + window.duration,
                   [this](TimePoint) { pool.set_fault_exhausted(false); });
        }
        const auto storms = injector.storm_schedule(kWindow);
        for (std::size_t s = 0; s < storms.size(); ++s)
            for (int c = 0; c < kDhcpClients; ++c)
                if (auto hit = injector.storm_hit(s, std::uint64_t(c))) {
                    sim.at(storms[s] + hit->offset, [this, c](TimePoint) {
                        powered[std::size_t(c)] = false;
                        clients[std::size_t(c)].power_off(/*graceful=*/false);
                    });
                    sim.at(storms[s] + hit->offset + hit->downtime,
                           [this, c](TimePoint) {
                               powered[std::size_t(c)] = true;
                               clients[std::size_t(c)].power_on();
                           });
                }
    }

    /// Server-side single-holder invariant plus clock monotonicity.
    void check_invariants() {
        const TimePoint now = sim.now();
        ASSERT_GE(now, last_check) << "simulation time went backwards";
        last_check = now;
        std::set<IPv4Address> leased;
        for (const auto& lease : server.leases()) {
            ASSERT_TRUE(leased.insert(lease.address).second)
                << "address " << lease.address.to_string()
                << " leased to two clients";
            ASSERT_GT(lease.expiry, lease.granted);
        }
        ASSERT_EQ(pool.free_count() + pool.allocated_count(), pool.capacity());
        ++checks;
    }

    sim::Simulation sim;
    pool::AddressPool pool;
    dhcp::Server server;
    std::vector<dhcp::Client> clients;
    std::vector<bool> powered;
    TimePoint last_check{kWindow.begin};
    int checks = 0;
};

/// A small PPP access network: one RADIUS/BRAS, a random-spread pool,
/// several always-on sessions. A BRAS crash takes the access network down
/// (link_lost on every session) exactly as run_scenario() models it.
struct PppChaosRig {
    explicit PppChaosRig(sim::FaultInjector& injector)
        : sim(kWindow.begin),
          pool(pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.1.0.0/24")},
                                pool::AllocationStrategy::RandomSpread,
                                0.0,
                                0.0,
                                {}},
               rng::Stream(7)),
          server(ppp::RadiusConfig{std::nullopt}, pool, sim) {
        sessions.reserve(kPppClients);
        for (int i = 0; i < kPppClients; ++i)
            sessions.emplace_back(ppp::SessionConfig{}, pool::ClientId(i + 1),
                                  server, sim, rng::Stream(1000 + i),
                                  [this] { return net_up; });

        // Periodic privacy reconnects during the fault-active phase keep
        // the RadiusAuthorize/Accounting gates busy; they stop well before
        // the window's end so the reconvergence check can't race a redial.
        for (int i = 0; i < kPppClients; ++i) {
            const auto quiet = kWindow.begin + Duration::days(7);
            for (TimePoint t = kWindow.begin + Duration::hours(1 + i);
                 t < quiet; t = t + Duration::hours(4))
                sim.at(t, [this, i](TimePoint) {
                    sessions[std::size_t(i)].reconnect_now();
                });
        }

        for (const auto& event : injector.crash_schedule(
                 sim::FaultSite::RadiusServer, 0, kWindow)) {
            sim.at(event.at, [this, amnesia = event.amnesia](TimePoint) {
                server.crash(amnesia);
                net_up = false;
                for (auto& session : sessions) session.link_lost();
            });
            sim.at(event.at + event.downtime, [this](TimePoint) {
                server.restart();
                net_up = true;
                for (auto& session : sessions) session.link_restored();
            });
        }
        for (const auto& window : injector.exhaustion_schedule(0, kWindow)) {
            sim.at(window.at,
                   [this](TimePoint) { pool.set_fault_exhausted(true); });
            sim.at(window.at + window.duration,
                   [this](TimePoint) { pool.set_fault_exhausted(false); });
        }
    }

    void check_invariants() {
        const TimePoint now = sim.now();
        ASSERT_GE(now, last_check) << "simulation time went backwards";
        last_check = now;
        // At most one open session per subscriber and per address is
        // enforced pool-side; sessions can never outnumber subscribers.
        ASSERT_LE(server.open_sessions(), std::size_t(kPppClients));
        for (const auto& record : server.records())
            ASSERT_GE(record.stop, record.start);
        ++checks;
    }

    sim::Simulation sim;
    pool::AddressPool pool;
    ppp::RadiusServer server;
    std::vector<ppp::Session> sessions;
    bool net_up = true;
    TimePoint last_check{kWindow.begin};
    int checks = 0;
};

class ChaosCombo
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ChaosCombo, DhcpInvariantsHoldAndReconverge) {
    const auto& [profile, seed] = GetParam();
    sim::ScopedFaultInjector scope(make_plan(profile, seed));
    scope.injector().set_window(kWindow);

    DhcpChaosRig rig(scope.injector());
    rig.sim.every(kWindow.begin + Duration::hours(1), Duration::hours(1),
                  [&rig](TimePoint) { rig.check_invariants(); });
    for (auto& client : rig.clients) client.power_on();
    rig.sim.run_until(kWindow.end);

    EXPECT_GT(rig.checks, 200);
    // Faults stopped at 70% of the window; by its end every powered
    // client is Bound again and agrees with the server's lease table.
    for (std::size_t i = 0; i < rig.clients.size(); ++i) {
        if (!rig.powered[i]) continue;  // storm downtime outlived the run
        const auto& client = rig.clients[i];
        ASSERT_EQ(client.state(), dhcp::ClientState::Bound)
            << "client " << i << " failed to reconverge under " << profile;
        ASSERT_TRUE(client.address());
        const auto lease = rig.server.lease_of(pool::ClientId(i + 1));
        ASSERT_TRUE(lease);
        EXPECT_EQ(lease->address, *client.address());
    }
}

TEST_P(ChaosCombo, PppInvariantsHoldAndReconverge) {
    const auto& [profile, seed] = GetParam();
    sim::ScopedFaultInjector scope(make_plan(profile, seed));
    scope.injector().set_window(kWindow);

    PppChaosRig rig(scope.injector());
    rig.sim.every(kWindow.begin + Duration::hours(1), Duration::hours(1),
                  [&rig](TimePoint) { rig.check_invariants(); });
    for (auto& session : rig.sessions) session.power_on();
    rig.sim.run_until(kWindow.end);

    EXPECT_GT(rig.checks, 200);
    for (std::size_t i = 0; i < rig.sessions.size(); ++i) {
        ASSERT_EQ(rig.sessions[i].phase(), ppp::Phase::Open)
            << "session " << i << " failed to reconverge under " << profile;
        ASSERT_TRUE(rig.sessions[i].address());
    }
    EXPECT_EQ(rig.server.open_sessions(), std::size_t(kPppClients));
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ChaosCombo,
    ::testing::Combine(::testing::Values("lossy", "bursty", "flaky", "crashy",
                                         "exhaustion", "storms", "chaos"),
                       ::testing::Values(std::uint64_t(1), std::uint64_t(2),
                                         std::uint64_t(3))),
    [](const auto& info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

// -- regression: the lost-ACK stall --------------------------------------
// A client whose REQUEST goes unanswered used to sit in Requesting with no
// timer pending, stalled forever. It must retransmit with backoff and,
// after request_retries silent attempts, fall back to a fresh DISCOVER.

TEST(DhcpLostAck, RequestingRetransmitsInsteadOfStalling) {
    sim::ScopedFaultInjector scope(sim::FaultPlan{});
    scope.injector().force_site(sim::FaultSite::DhcpRequest,
                                sim::MessageDecision::Kind::Drop);

    sim::Simulation sim(TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.2.0.0/28")},
                         pool::AllocationStrategy::Sticky,
                         0.0,
                         0.0,
                         {}},
        rng::Stream(1));
    dhcp::Server server(dhcp::ServerConfig{}, pool, sim);
    dhcp::Client client(dhcp::ClientConfig{}, 1, server, sim,
                        [] { return true; });

    client.power_on();
    ASSERT_EQ(client.state(), dhcp::ClientState::Requesting);
    ASSERT_GT(sim.pending(), 0u) << "no retransmit timer: the lost-ACK stall";

    // Every retransmission is swallowed too: the client must abandon the
    // transaction and go back to Init/Requesting rather than wedge.
    sim.run_until(TimePoint{3600});
    ASSERT_NE(client.state(), dhcp::ClientState::Bound);
    ASSERT_GT(sim.pending(), 0u);

    // Faults cleared: the next retransmission lands and the client binds.
    scope.injector().force_site(sim::FaultSite::DhcpRequest, std::nullopt);
    sim.run_until(TimePoint{2 * 3600});
    EXPECT_EQ(client.state(), dhcp::ClientState::Bound);
    EXPECT_TRUE(client.address());
}

// -- full pipeline under chaos -------------------------------------------

TEST(ChaosScenario, QuickPresetSurvivesChaosAndAnalyzes) {
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        auto config = isp::presets::quick_scenario();
        config.faults = sim::FaultPlan::parse("chaos");
        config.faults->seed = seed;
        const auto scenario = isp::run_scenario(config);
        ASSERT_FALSE(scenario.bundle.connection_log.empty());
        ASSERT_GT(scenario.sim_events, 0u);
        const auto results = core::AnalysisPipeline{}.run(
            scenario.bundle, scenario.prefix_table, scenario.registry);
        ASSERT_FALSE(results.changes.empty());
    }
}

TEST(ChaosScenario, FaultCountersTick) {
    const auto dropped_before = obs::counter("faults.dhcp.dropped").value();
    auto config = isp::presets::quick_scenario();
    config.faults = sim::FaultPlan::parse("chaos,seed=21");
    isp::run_scenario(config);
    EXPECT_GT(obs::counter("faults.dhcp.dropped").value(), dropped_before);
}

// Pools and lease databases share process-wide occupancy gauges; many are
// created and destroyed per run. After a full chaos scenario every rig
// object is gone, so the gauges must be exactly back where they started —
// the batched metrics flush may lag a *live* pool, never a destroyed one.
TEST(ChaosScenario, PoolGaugesUnwindExactlyAfterChaosRun) {
    const auto occupancy_before = obs::gauge("pool.occupancy").value();
    const auto free_before = obs::gauge("pool.free").value();
    const auto active_before = obs::gauge("lease.active").value();
    {
        sim::ScopedFaultInjector scope(make_plan("chaos", 31));
        scope.injector().set_window(kWindow);
        DhcpChaosRig rig(scope.injector());
        for (auto& client : rig.clients) client.power_on();
        rig.sim.run_until(kWindow.end);
        // While the rig is alive the pool itself must conserve addresses
        // regardless of what the shared gauges say mid-batch.
        ASSERT_EQ(rig.pool.free_count() + rig.pool.allocated_count(),
                  rig.pool.capacity());
    }
    EXPECT_EQ(obs::gauge("pool.occupancy").value(), occupancy_before);
    EXPECT_EQ(obs::gauge("pool.free").value(), free_before);
    EXPECT_EQ(obs::gauge("lease.active").value(), active_before);
}

TEST(ChaosScenario, GarbledCsvRowsAreDroppedNotFatal) {
    auto config = isp::presets::quick_scenario();
    config.faults = sim::FaultPlan::parse("garbage,csv.rate=0.05,seed=5");
    const auto scenario = isp::run_scenario(config);
    std::ostringstream out;
    atlas::write_connection_log_csv(out, scenario.bundle.connection_log);
    std::istringstream in(std::move(out).str());
    // Reading back through the installed garbage plan mutilates rows; the
    // lenient reader must drop them and keep the rest.
    sim::ScopedFaultInjector scope(*config.faults);
    const auto entries = atlas::read_connection_log_csv(in);
    ASSERT_FALSE(entries.empty());
    EXPECT_LT(entries.size(), scenario.bundle.connection_log.size());
}

}  // namespace
}  // namespace dynaddr

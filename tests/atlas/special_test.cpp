#include "atlas/special_probes.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dynaddr::atlas {
namespace {

using net::Duration;
using net::IPv4Address;
using net::TimeInterval;
using net::TimePoint;

TimeInterval year() {
    return {TimePoint::from_date(2015, 1, 1), TimePoint::from_date(2016, 1, 1)};
}

SpecialProbeSpec spec_for(SpecialBehaviour behaviour) {
    SpecialProbeSpec spec;
    spec.id = 9;
    spec.behaviour = behaviour;
    spec.base_address = IPv4Address(198, 18, 1, 1);
    return spec;
}

TEST(SpecialProbes, NeverChangedUsesOneAddress) {
    const auto log = generate_special_probe_log(
        spec_for(SpecialBehaviour::NeverChanged), year(), rng::Stream(1));
    ASSERT_GE(log.size(), 3u);  // reconnects happen, address doesn't move
    std::set<std::string> addresses;
    for (const auto& entry : log) addresses.insert(entry.address.to_string());
    EXPECT_EQ(addresses.size(), 1u);
}

TEST(SpecialProbes, EntriesAreOrderedWithGaps) {
    const auto log = generate_special_probe_log(
        spec_for(SpecialBehaviour::NeverChanged), year(), rng::Stream(2));
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_LT(log[i].start, log[i].end);
        if (i > 0) {
            const auto gap = log[i].start - log[i - 1].end;
            EXPECT_GE(gap.count(), 900);
            EXPECT_LE(gap.count(), 1500);
        }
    }
    EXPECT_LE(log.back().end, year().end);
}

TEST(SpecialProbes, DualStackMixesFamilies) {
    const auto log = generate_special_probe_log(
        spec_for(SpecialBehaviour::DualStack), year(), rng::Stream(3));
    int v4 = 0, v6 = 0;
    for (const auto& entry : log) (entry.address.is_v4() ? v4 : v6)++;
    EXPECT_GT(v4, 0);
    EXPECT_GT(v6, 0);
}

TEST(SpecialProbes, Ipv6OnlyHasNoV4) {
    const auto log = generate_special_probe_log(
        spec_for(SpecialBehaviour::Ipv6Only), year(), rng::Stream(4));
    for (const auto& entry : log) EXPECT_FALSE(entry.address.is_v4());
}

TEST(SpecialProbes, MultihomedAlternatesWithFixedAddress) {
    const auto log = generate_special_probe_log(
        spec_for(SpecialBehaviour::MultihomedAlternating), year(), rng::Stream(5));
    ASSERT_GE(log.size(), 6u);
    const std::string fixed = log[0].address.to_string();
    // Every even-indexed connection is from the fixed address; odd ones
    // are from a different (rotating) address.
    for (std::size_t i = 0; i < log.size(); ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(log[i].address.to_string(), fixed);
        else
            EXPECT_NE(log[i].address.to_string(), fixed);
    }
}

TEST(SpecialProbes, TestingAddressComesFirstThenStable) {
    const auto log = generate_special_probe_log(
        spec_for(SpecialBehaviour::TestingAddressThenStable), year(),
        rng::Stream(6));
    ASSERT_GE(log.size(), 2u);
    EXPECT_EQ(log[0].address.to_string(), "193.0.0.78");
    const std::string stable = log[1].address.to_string();
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_EQ(log[i].address.to_string(), stable);
}

TEST(SpecialProbes, DeterministicPerSeed) {
    const auto a = generate_special_probe_log(
        spec_for(SpecialBehaviour::DualStack), year(), rng::Stream(7));
    const auto b = generate_special_probe_log(
        spec_for(SpecialBehaviour::DualStack), year(), rng::Stream(7));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].start, b[i].start);
        EXPECT_EQ(a[i].address, b[i].address);
    }
}

}  // namespace
}  // namespace dynaddr::atlas

#include "atlas/datasets.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "netcore/error.hpp"

namespace dynaddr::atlas {
namespace {

using net::IPv4Address;
using net::TimePoint;

TEST(PeerAddress, V4RoundTrip) {
    const auto addr = PeerAddress::ipv4(IPv4Address(91, 55, 174, 103));
    EXPECT_EQ(addr.to_string(), "91.55.174.103");
    auto parsed = PeerAddress::parse("91.55.174.103");
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, addr);
    EXPECT_TRUE(parsed->is_v4());
}

TEST(PeerAddress, V6RoundTrip) {
    const auto addr = PeerAddress::ipv6_token(0xABCD1234);
    const std::string text = addr.to_string();
    EXPECT_NE(text.find(':'), std::string::npos);
    auto parsed = PeerAddress::parse(text);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, addr);
    EXPECT_FALSE(parsed->is_v4());
}

TEST(PeerAddress, RejectsGarbage) {
    EXPECT_FALSE(PeerAddress::parse("not-an-address"));
    EXPECT_FALSE(PeerAddress::parse("1.2.3"));
    EXPECT_FALSE(PeerAddress::parse("2001:db8::zz:1"));
    EXPECT_FALSE(PeerAddress::parse(""));
}

TEST(Datasets, ConnectionLogCsvRoundTrip) {
    std::vector<ConnectionLogEntry> entries = {
        {206, TimePoint::from_date(2015, 1, 1),
         TimePoint::from_civil({2015, 1, 1, 17, 34, 11}),
         PeerAddress::ipv4(IPv4Address(91, 55, 169, 37))},
        {206, TimePoint::from_civil({2015, 1, 1, 18, 0, 54}),
         TimePoint::from_civil({2015, 1, 1, 18, 42, 31}),
         PeerAddress::ipv6_token(42)},
    };
    std::stringstream buffer;
    write_connection_log_csv(buffer, entries);
    const auto back = read_connection_log_csv(buffer);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].probe, 206u);
    EXPECT_EQ(back[0].start, entries[0].start);
    EXPECT_EQ(back[0].end, entries[0].end);
    EXPECT_EQ(back[0].address, entries[0].address);
    EXPECT_EQ(back[1].address, entries[1].address);
}

TEST(Datasets, KRootCsvRoundTrip) {
    std::vector<KRootPingRecord> records = {
        {16893, TimePoint::from_civil({2015, 1, 27, 9, 5, 48}), 3, 0, 151},
        {16893, TimePoint::from_civil({2015, 1, 27, 9, 9, 45}), 3, 3, 86},
    };
    std::stringstream buffer;
    write_kroot_csv(buffer, records);
    const auto back = read_kroot_csv(buffer);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].success, 0);
    EXPECT_EQ(back[0].lts_seconds, 151);
    EXPECT_EQ(back[1].sent, 3);
}

TEST(Datasets, UptimeCsvRoundTrip) {
    std::vector<UptimeRecord> records = {
        {206, TimePoint::from_civil({2015, 1, 1, 17, 50, 55}), 19},
    };
    std::stringstream buffer;
    write_uptime_csv(buffer, records);
    const auto back = read_uptime_csv(buffer);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].uptime_seconds, 19u);
}

TEST(Datasets, ProbesCsvRoundTripWithTags) {
    std::vector<ProbeMetadata> probes = {
        {1, ProbeVersion::V3, "DE", {"multihomed", "datacentre"}},
        {2, ProbeVersion::V1, "US", {}},
    };
    std::stringstream buffer;
    write_probes_csv(buffer, probes);
    const auto back = read_probes_csv(buffer);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].tags, (std::vector<std::string>{"multihomed", "datacentre"}));
    EXPECT_EQ(back[0].version, ProbeVersion::V3);
    EXPECT_TRUE(back[1].tags.empty());
    EXPECT_EQ(back[1].version, ProbeVersion::V1);
}

TEST(Datasets, BundleSortOrdersByProbeThenTime) {
    DatasetBundle bundle;
    bundle.connection_log = {
        {2, TimePoint{100}, TimePoint{200}, PeerAddress::ipv4(IPv4Address(1, 1, 1, 1))},
        {1, TimePoint{300}, TimePoint{400}, PeerAddress::ipv4(IPv4Address(1, 1, 1, 2))},
        {1, TimePoint{100}, TimePoint{200}, PeerAddress::ipv4(IPv4Address(1, 1, 1, 3))},
    };
    bundle.kroot_pings = {{5, TimePoint{50}, 3, 3, 0}, {4, TimePoint{10}, 3, 3, 0}};
    bundle.sort();
    EXPECT_EQ(bundle.connection_log[0].probe, 1u);
    EXPECT_EQ(bundle.connection_log[0].start.unix_seconds(), 100);
    EXPECT_EQ(bundle.connection_log[1].start.unix_seconds(), 300);
    EXPECT_EQ(bundle.connection_log[2].probe, 2u);
    EXPECT_EQ(bundle.kroot_pings[0].probe, 4u);
}

TEST(Datasets, BundleDirectoryRoundTrip) {
    DatasetBundle bundle;
    bundle.connection_log = {{1, TimePoint{0}, TimePoint{10},
                              PeerAddress::ipv4(IPv4Address(9, 9, 9, 9))}};
    bundle.kroot_pings = {{1, TimePoint{5}, 3, 3, 30}};
    bundle.uptime_records = {{1, TimePoint{5}, 1000}};
    bundle.probes = {{1, ProbeVersion::V2, "FR", {"home"}}};
    const std::string dir =
        (std::filesystem::temp_directory_path() / "dynaddr_bundle_test").string();
    write_bundle(dir, bundle);
    const auto back = read_bundle(dir);
    EXPECT_EQ(back.connection_log.size(), 1u);
    EXPECT_EQ(back.kroot_pings.size(), 1u);
    EXPECT_EQ(back.uptime_records.size(), 1u);
    ASSERT_EQ(back.probes.size(), 1u);
    EXPECT_EQ(back.probes[0].country_code, "FR");
    std::filesystem::remove_all(dir);
}

TEST(Datasets, TestingAddressIsRipeNcc) {
    EXPECT_EQ(testing_address().to_string(), "193.0.0.78");
}

}  // namespace
}  // namespace dynaddr::atlas

#include "atlas/timeline.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::atlas {
namespace {

using net::IPv4Address;
using net::TimePoint;

PeerAddress v4(int last_octet) {
    return PeerAddress::ipv4(IPv4Address(10, 0, 0, std::uint8_t(last_octet)));
}

TEST(Timeline, RecordsAddressEpochs) {
    Timeline timeline(1);
    timeline.set_address(TimePoint{100}, v4(1));
    timeline.set_address(TimePoint{200}, v4(2));
    timeline.clear_address(TimePoint{300});
    timeline.finalize(TimePoint{1000});
    ASSERT_EQ(timeline.epochs().size(), 2u);
    EXPECT_EQ(timeline.epochs()[0].when.begin.unix_seconds(), 100);
    EXPECT_EQ(timeline.epochs()[0].when.end.unix_seconds(), 200);
    EXPECT_EQ(timeline.epochs()[1].when.end.unix_seconds(), 300);
    EXPECT_EQ(timeline.address_at(TimePoint{150}), v4(1));
    EXPECT_EQ(timeline.address_at(TimePoint{250}), v4(2));
    EXPECT_FALSE(timeline.address_at(TimePoint{350}));
    EXPECT_FALSE(timeline.address_at(TimePoint{50}));
}

TEST(Timeline, SettingSameAddressIsIdempotent) {
    Timeline timeline(1);
    timeline.set_address(TimePoint{100}, v4(1));
    timeline.set_address(TimePoint{200}, v4(1));  // no-op
    timeline.finalize(TimePoint{300});
    ASSERT_EQ(timeline.epochs().size(), 1u);
    EXPECT_EQ(timeline.epochs()[0].when.begin.unix_seconds(), 100);
    EXPECT_EQ(timeline.epochs()[0].when.end.unix_seconds(), 300);
}

TEST(Timeline, FinalizeClosesOpenIntervals) {
    Timeline timeline(1);
    timeline.set_address(TimePoint{10}, v4(1));
    timeline.net_down_begin(TimePoint{20});
    timeline.probe_down_begin(TimePoint{30});
    timeline.finalize(TimePoint{100});
    EXPECT_EQ(timeline.epochs().size(), 1u);
    EXPECT_EQ(timeline.net_down_intervals().size(), 1u);
    EXPECT_EQ(timeline.net_down_intervals()[0].end.unix_seconds(), 100);
    EXPECT_EQ(timeline.probe_down_intervals().size(), 1u);
    EXPECT_THROW(timeline.set_address(TimePoint{200}, v4(2)), Error);
}

TEST(Timeline, UpDownQueries) {
    Timeline timeline(1);
    timeline.probe_down_begin(TimePoint{0});
    timeline.probe_down_end(TimePoint{50});
    timeline.net_down_begin(TimePoint{100});
    timeline.net_down_end(TimePoint{150});
    timeline.set_address(TimePoint{50}, v4(1));
    timeline.finalize(TimePoint{1000});
    EXPECT_FALSE(timeline.probe_up(TimePoint{25}));
    EXPECT_TRUE(timeline.probe_up(TimePoint{60}));
    EXPECT_TRUE(timeline.net_up(TimePoint{60}));
    EXPECT_FALSE(timeline.net_up(TimePoint{120}));
    EXPECT_TRUE(timeline.communicable(TimePoint{60}));
    EXPECT_FALSE(timeline.communicable(TimePoint{120}));  // net down
    EXPECT_FALSE(timeline.communicable(TimePoint{25}));   // probe down
}

TEST(Timeline, AddressChangesSkipSameAddressEpochs) {
    Timeline timeline(1);
    timeline.set_address(TimePoint{0}, v4(1));
    timeline.clear_address(TimePoint{10});
    timeline.set_address(TimePoint{20}, v4(1));  // same address again
    timeline.set_address(TimePoint{30}, v4(2));
    timeline.finalize(TimePoint{100});
    const auto changes = timeline.address_changes();
    ASSERT_EQ(changes.size(), 1u);
    EXPECT_EQ(changes[0].at.unix_seconds(), 30);
    EXPECT_EQ(changes[0].from, v4(1));
    EXPECT_EQ(changes[0].to, v4(2));
}

TEST(Timeline, EventTimesAreSortedUnique) {
    Timeline timeline(1);
    timeline.record_boot(TimePoint{0}, RebootCause::InitialPowerOn);
    timeline.set_address(TimePoint{0}, v4(1));
    timeline.net_down_begin(TimePoint{50});
    timeline.net_down_end(TimePoint{60});
    timeline.finalize(TimePoint{100});
    const auto events = timeline.event_times();
    EXPECT_TRUE(std::is_sorted(events.begin(), events.end()));
    EXPECT_EQ(std::adjacent_find(events.begin(), events.end()), events.end());
    // 0 (boot + epoch begin dedup), 50, 60, 100.
    EXPECT_EQ(events.size(), 4u);
}

TEST(Timeline, BootsRecorded) {
    Timeline timeline(1);
    timeline.record_boot(TimePoint{5}, RebootCause::PowerCycle);
    timeline.record_boot(TimePoint{10}, RebootCause::Firmware);
    timeline.finalize(TimePoint{20});
    ASSERT_EQ(timeline.boots().size(), 2u);
    EXPECT_EQ(timeline.boots()[1].cause, RebootCause::Firmware);
}

TEST(Timeline, ZeroLengthIntervalsDropped) {
    Timeline timeline(1);
    timeline.net_down_begin(TimePoint{10});
    timeline.net_down_end(TimePoint{10});
    timeline.set_address(TimePoint{20}, v4(1));
    timeline.set_address(TimePoint{20}, v4(2));  // zero-length epoch for v4(1)
    timeline.finalize(TimePoint{30});
    EXPECT_TRUE(timeline.net_down_intervals().empty());
    ASSERT_EQ(timeline.epochs().size(), 1u);
    EXPECT_EQ(timeline.epochs()[0].address, v4(2));
}

}  // namespace
}  // namespace dynaddr::atlas

#include "atlas/cpe.hpp"

#include <gtest/gtest.h>

#include "atlas/controller.hpp"
#include "dhcp/server.hpp"
#include "netcore/error.hpp"

namespace dynaddr::atlas {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

/// Full CPE rig: pool + one backend + probe + timeline.
struct Rig {
    explicit Rig(CpeConfig config, std::uint64_t seed = 1)
        : sim(TimePoint{0}),
          pool(pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/22")},
                                config.wan == CpeConfig::Wan::Dhcp
                                    ? pool::AllocationStrategy::Sticky
                                    : pool::AllocationStrategy::RandomSpread,
                                0.0,
                                0.0},
               rng::Stream(seed)),
          dhcp_server(dhcp::ServerConfig{Duration::hours(4), std::nullopt}, pool,
                      sim),
          radius(ppp::RadiusConfig{config.wan == CpeConfig::Wan::Ppp
                                       ? std::optional(Duration::hours(24))
                                       : std::nullopt},
                 pool, sim),
          controller(sim, rng::Stream(seed + 1)),
          timeline(1),
          probe(make_probe_config(), sim, rng::Stream(seed + 2), controller,
                timeline),
          cpe(config, 1, sim, rng::Stream(seed + 3), probe, timeline,
              config.wan == CpeConfig::Wan::Dhcp ? &dhcp_server : nullptr,
              config.wan == CpeConfig::Wan::Ppp ? &radius : nullptr) {
        controller.register_probe(probe);
    }

    static ProbeConfig make_probe_config() {
        ProbeConfig config;
        config.id = 1;
        return config;
    }

    sim::Simulation sim;
    pool::AddressPool pool;
    dhcp::Server dhcp_server;
    ppp::RadiusServer radius;
    Controller controller;
    Timeline timeline;
    Probe probe;
    Cpe cpe;
};

CpeConfig dhcp_cpe() {
    CpeConfig config;
    config.wan = CpeConfig::Wan::Dhcp;
    return config;
}

CpeConfig ppp_cpe() {
    CpeConfig config;
    config.wan = CpeConfig::Wan::Ppp;
    return config;
}

TEST(Cpe, StartBringsUpWanAndProbe) {
    Rig rig(dhcp_cpe());
    rig.cpe.start();
    EXPECT_TRUE(rig.cpe.wan_address());
    rig.sim.run_until(TimePoint{600});
    EXPECT_TRUE(rig.probe.connected());
    rig.timeline.finalize(rig.sim.now());
    ASSERT_EQ(rig.timeline.epochs().size(), 1u);
}

TEST(Cpe, RejectsMismatchedBackend) {
    Rig rig(dhcp_cpe());
    CpeConfig ppp_config = ppp_cpe();
    Timeline timeline(2);
    ProbeConfig probe_config;
    probe_config.id = 2;
    Probe probe(probe_config, rig.sim, rng::Stream(9), rig.controller, timeline);
    EXPECT_THROW(Cpe(ppp_config, 2, rig.sim, rng::Stream(10), probe, timeline,
                     &rig.dhcp_server, nullptr),
                 Error);
}

TEST(Cpe, PowerOutagePowersProbeViaUsb) {
    Rig rig(dhcp_cpe());
    rig.cpe.start();
    rig.sim.run_until(TimePoint{3600});
    rig.cpe.power_fail();
    EXPECT_FALSE(rig.cpe.powered());
    EXPECT_FALSE(rig.probe.running());
    rig.sim.run_until(TimePoint{7200});
    rig.cpe.power_restore();
    rig.sim.run_until(TimePoint{7200 + 900});
    EXPECT_TRUE(rig.probe.connected());
    rig.timeline.finalize(rig.sim.now());
    // Initial boot + power-cycle boot.
    ASSERT_EQ(rig.timeline.boots().size(), 2u);
    EXPECT_EQ(rig.timeline.boots()[1].cause, RebootCause::PowerCycle);
    // DHCP + sticky pool: same address after the cycle.
    ASSERT_EQ(rig.timeline.epochs().size(), 2u);
    EXPECT_EQ(rig.timeline.epochs()[0].address, rig.timeline.epochs()[1].address);
}

TEST(Cpe, SelfPoweredProbeSurvivesCpePowerCut) {
    auto config = dhcp_cpe();
    config.probe_usb_powered = false;
    Rig rig(config);
    rig.cpe.start();
    rig.sim.run_until(TimePoint{3600});
    rig.cpe.power_fail();
    EXPECT_TRUE(rig.probe.running()) << "own supply: probe stays up";
    rig.sim.run_until(TimePoint{4000});
    rig.cpe.power_restore();
    rig.sim.run_until(TimePoint{6000});
    rig.timeline.finalize(rig.sim.now());
    // No reboot beyond the initial one: the paper's power-outage false
    // negative scenario.
    EXPECT_EQ(rig.timeline.boots().size(), 1u);
}

TEST(Cpe, NetworkOutageRecordedAndPppRenumbers) {
    Rig rig(ppp_cpe());
    rig.cpe.start();
    rig.sim.run_until(TimePoint{3600});
    const auto before = *rig.cpe.wan_address();
    rig.cpe.net_fail();
    EXPECT_FALSE(rig.cpe.wan_address()) << "PPP session drops with carrier";
    rig.sim.run_until(TimePoint{3900});
    rig.cpe.net_restore();
    rig.sim.run_until(TimePoint{4800});
    ASSERT_TRUE(rig.cpe.wan_address());
    EXPECT_NE(*rig.cpe.wan_address(), before) << "random pool: fresh address";
    rig.timeline.finalize(rig.sim.now());
    ASSERT_EQ(rig.timeline.net_down_intervals().size(), 1u);
    EXPECT_EQ(rig.timeline.net_down_intervals()[0].begin.unix_seconds(), 3600);
}

TEST(Cpe, DhcpKeepsAddressThroughShortNetworkOutage) {
    Rig rig(dhcp_cpe());
    rig.cpe.start();
    rig.sim.run_until(TimePoint{3600});
    const auto before = *rig.cpe.wan_address();
    rig.cpe.net_fail();
    EXPECT_TRUE(rig.cpe.wan_address()) << "DHCP lease survives the blip";
    rig.sim.run_until(TimePoint{3900});
    rig.cpe.net_restore();
    rig.sim.run_until(TimePoint{90000});
    EXPECT_EQ(*rig.cpe.wan_address(), before);
    rig.timeline.finalize(rig.sim.now());
    EXPECT_EQ(rig.timeline.epochs().size(), 1u) << "one uninterrupted epoch";
}

TEST(Cpe, NightlyReconnectRenumbersAtConfiguredHour) {
    auto config = ppp_cpe();
    config.daily_reconnect_hour = 3;
    Rig rig(config);
    rig.cpe.start();
    rig.sim.run_until(TimePoint{5 * 86400});
    rig.timeline.finalize(rig.sim.now());
    const auto changes = rig.timeline.address_changes();
    ASSERT_GE(changes.size(), 4u);
    for (const auto& change : changes) {
        // Each change lands in hour 3 (+ redial seconds).
        EXPECT_EQ(change.at.hour_of_day(), 3)
            << "change at " << change.at.to_string();
    }
}

TEST(Cpe, SwitchBackendMovesSubscriberBetweenProtocols) {
    Rig rig(dhcp_cpe());
    rig.cpe.start();
    rig.sim.run_until(TimePoint{3600});
    rig.cpe.switch_backend(nullptr, &rig.radius, CpeConfig::Wan::Ppp);
    rig.sim.run_until(TimePoint{7200});
    // Same pool + same subscriber id here, so sticky allocation may hand
    // the very address back; what matters is the clean protocol handover.
    ASSERT_TRUE(rig.cpe.wan_address());
    EXPECT_EQ(rig.radius.open_sessions(), 1u);
    EXPECT_EQ(rig.dhcp_server.active_leases(), 0u) << "old lease released";
}

TEST(Cpe, PowerFailWhileBootingIsSafe) {
    Rig rig(dhcp_cpe());
    rig.cpe.start();
    rig.sim.run_until(TimePoint{3600});
    rig.cpe.power_fail();
    rig.sim.run_until(TimePoint{3700});
    rig.cpe.power_restore();
    // Cut again before the CPE boot delay elapses.
    rig.cpe.power_fail();
    rig.sim.run_until(TimePoint{4000});
    rig.cpe.power_restore();
    rig.sim.run_until(TimePoint{10000});
    EXPECT_TRUE(rig.cpe.wan_address());
    EXPECT_TRUE(rig.probe.connected());
}

}  // namespace
}  // namespace dynaddr::atlas

#include "atlas/probe.hpp"

#include <gtest/gtest.h>

#include "atlas/controller.hpp"

namespace dynaddr::atlas {
namespace {

using net::Duration;
using net::IPv4Address;
using net::TimePoint;

PeerAddress v4(int last_octet) {
    return PeerAddress::ipv4(IPv4Address(10, 0, 0, std::uint8_t(last_octet)));
}

struct Rig {
    explicit Rig(ProbeVersion version = ProbeVersion::V3,
                 double frag_probability = 0.0)
        : sim(TimePoint{0}),
          controller(sim, rng::Stream(1)),
          timeline(7),
          probe(make_config(version, frag_probability), sim, rng::Stream(2),
                controller, timeline) {
        controller.register_probe(probe);
    }

    static ProbeConfig make_config(ProbeVersion version, double frag) {
        ProbeConfig config;
        config.id = 7;
        config.version = version;
        config.frag_reboot_probability = frag;
        return config;
    }

    /// Boots the probe and attaches a WAN address, running time forward.
    void bring_up(PeerAddress address) {
        probe.power_on(RebootCause::InitialPowerOn);
        sim.run_until(sim.now() + Duration::seconds(200));  // boot finishes
        probe.wan_update(address);
        sim.run_until(sim.now() + Duration::seconds(200));  // connect fires
    }

    sim::Simulation sim;
    Controller controller;
    Timeline timeline;
    Probe probe;
};

TEST(Probe, ConnectsAfterBootAndReportsUptime) {
    Rig rig;
    rig.bring_up(v4(1));
    EXPECT_TRUE(rig.probe.connected());
    ASSERT_EQ(rig.controller.uptime_records().size(), 1u);
    const auto& record = rig.controller.uptime_records()[0];
    // Uptime counts from boot start (t=0).
    EXPECT_EQ(record.uptime_seconds,
              std::uint64_t(record.timestamp.unix_seconds()));
}

TEST(Probe, AddressChangeBreaksConnectionAfterTcpTimeout) {
    Rig rig;
    rig.bring_up(v4(1));
    const TimePoint change_at = rig.sim.now();
    rig.probe.wan_update(v4(2));
    EXPECT_TRUE(rig.probe.connected()) << "TCP lingers until retransmission death";
    rig.sim.run_until(change_at + Duration::minutes(40));
    ASSERT_EQ(rig.controller.connection_log().size(), 1u);
    const auto& entry = rig.controller.connection_log()[0];
    EXPECT_EQ(entry.address, v4(1));
    // End is logged at/just before the change (last receipt of data).
    EXPECT_LE(entry.end, change_at);
    EXPECT_GE(entry.end, change_at - Duration::seconds(180));
    // New connection runs from the new address.
    EXPECT_TRUE(rig.probe.connected());
    // The inter-connection gap is the paper's 15-25 minute TCP timeout.
    rig.probe.power_off();  // flush second entry
    const auto& second = rig.controller.connection_log()[1];
    EXPECT_EQ(second.address, v4(2));
    const auto gap = second.start - entry.end;
    EXPECT_GE(gap, Duration::minutes(15) - Duration::seconds(180));
    EXPECT_LE(gap, Duration::minutes(25) + Duration::seconds(300));
}

TEST(Probe, ShortBlipOnSameAddressKeepsConnection) {
    Rig rig;
    rig.bring_up(v4(1));
    // 5-minute connectivity loss, address unchanged afterwards.
    rig.probe.wan_update(std::nullopt);
    rig.sim.run_until(rig.sim.now() + Duration::minutes(5));
    rig.probe.wan_update(v4(1));
    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    EXPECT_TRUE(rig.probe.connected());
    EXPECT_TRUE(rig.controller.connection_log().empty())
        << "surviving connection produces no log entry";
}

TEST(Probe, LongOutageBreaksEvenWithSameAddress) {
    Rig rig;
    rig.bring_up(v4(1));
    rig.probe.wan_update(std::nullopt);
    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    EXPECT_FALSE(rig.probe.connected());
    EXPECT_EQ(rig.controller.connection_log().size(), 1u);
    rig.probe.wan_update(v4(1));
    rig.sim.run_until(rig.sim.now() + Duration::minutes(5));
    EXPECT_TRUE(rig.probe.connected());
}

TEST(Probe, PowerCycleRecordsBootAndDownInterval) {
    Rig rig;
    rig.bring_up(v4(1));
    const TimePoint off_at = rig.sim.now();
    rig.probe.power_off();
    EXPECT_FALSE(rig.probe.connected());
    EXPECT_EQ(rig.controller.connection_log().size(), 1u);
    rig.sim.run_until(off_at + Duration::minutes(10));
    rig.probe.power_on(RebootCause::PowerCycle);
    rig.sim.run_until(rig.sim.now() + Duration::minutes(10));
    EXPECT_TRUE(rig.probe.connected());
    rig.timeline.finalize(rig.sim.now());
    // Boots: initial + power cycle.
    ASSERT_EQ(rig.timeline.boots().size(), 2u);
    EXPECT_EQ(rig.timeline.boots()[1].cause, RebootCause::PowerCycle);
    // Probe-down intervals: pre-boot and the outage window.
    ASSERT_GE(rig.timeline.probe_down_intervals().size(), 2u);
    // Uptime counter reset: second uptime record is smaller than elapsed.
    ASSERT_EQ(rig.controller.uptime_records().size(), 2u);
    EXPECT_LT(rig.controller.uptime_records()[1].uptime_seconds,
              std::uint64_t(rig.sim.now().unix_seconds()));
}

TEST(Probe, FirmwareInstallsOnNextConnectionBreak) {
    Rig rig;
    rig.bring_up(v4(1));
    rig.probe.firmware_released();
    rig.sim.run_until(rig.sim.now() + Duration::hours(1));
    // Nothing happens while the connection lives.
    rig.timeline.finalize(rig.sim.now());
    EXPECT_EQ(rig.timeline.boots().size(), 1u);
}

TEST(Probe, FirmwareRebootAfterBreak) {
    Rig rig;
    rig.bring_up(v4(1));
    rig.probe.firmware_released();
    // Address change breaks the connection -> reboot-to-install follows.
    rig.probe.wan_update(v4(2));
    rig.sim.run_until(rig.sim.now() + Duration::hours(2));
    rig.timeline.finalize(rig.sim.now());
    ASSERT_GE(rig.timeline.boots().size(), 2u);
    EXPECT_EQ(rig.timeline.boots()[1].cause, RebootCause::Firmware);
    // And it reconnects afterwards.
    EXPECT_TRUE(rig.probe.connected());
}

TEST(Probe, ForcedFirmwareInstallRebootsIdleProbe) {
    Rig rig;
    rig.bring_up(v4(1));
    rig.probe.firmware_released();
    rig.probe.force_firmware_install();
    rig.sim.run_until(rig.sim.now() + Duration::minutes(30));
    rig.timeline.finalize(rig.sim.now());
    ASSERT_EQ(rig.timeline.boots().size(), 2u);
    EXPECT_EQ(rig.timeline.boots()[1].cause, RebootCause::Firmware);
    EXPECT_TRUE(rig.probe.connected());
    // Second install attempt is a no-op (flag consumed).
    rig.probe.force_firmware_install();
    rig.sim.run_until(rig.sim.now() + Duration::minutes(30));
}

TEST(Probe, V1FragmentationRebootsAfterConnecting) {
    Rig rig(ProbeVersion::V1, /*frag_probability=*/1.0);
    rig.bring_up(v4(1));
    rig.sim.run_until(rig.sim.now() + Duration::minutes(10));
    rig.timeline.finalize(rig.sim.now());
    // Boot 1: initial. Boot 2+: fragmentation reboots (each reconnect
    // triggers another since probability is 1).
    ASSERT_GE(rig.timeline.boots().size(), 2u);
    EXPECT_EQ(rig.timeline.boots()[1].cause, RebootCause::MemoryFragmentation);
}

TEST(Probe, V3NeverFragmentReboots) {
    Rig rig(ProbeVersion::V3, /*frag_probability=*/1.0);
    rig.bring_up(v4(1));
    rig.sim.run_until(rig.sim.now() + Duration::hours(2));
    rig.timeline.finalize(rig.sim.now());
    EXPECT_EQ(rig.timeline.boots().size(), 1u);
}

TEST(Controller, FirmwareReleaseReachesAllProbes) {
    sim::Simulation sim(TimePoint{0});
    Controller controller(sim, rng::Stream(1));
    controller.set_force_window(Duration::hours(1), Duration::hours(2));
    Timeline t1(1), t2(2);
    ProbeConfig c1;
    c1.id = 1;
    ProbeConfig c2;
    c2.id = 2;
    Probe p1(c1, sim, rng::Stream(2), controller, t1);
    Probe p2(c2, sim, rng::Stream(3), controller, t2);
    controller.register_probe(p1);
    controller.register_probe(p2);
    p1.power_on(RebootCause::InitialPowerOn);
    p2.power_on(RebootCause::InitialPowerOn);
    sim.run_until(TimePoint{300});
    p1.wan_update(v4(1));
    p2.wan_update(v4(2));
    controller.schedule_firmware_release(TimePoint{3600});
    sim.run_until(TimePoint{4 * 3600 + 7200});
    t1.finalize(sim.now());
    t2.finalize(sim.now());
    // Both probes eventually install via the forced nudge.
    ASSERT_EQ(t1.boots().size(), 2u);
    EXPECT_EQ(t1.boots()[1].cause, RebootCause::Firmware);
    ASSERT_EQ(t2.boots().size(), 2u);
    EXPECT_EQ(t2.boots()[1].cause, RebootCause::Firmware);
}

}  // namespace
}  // namespace dynaddr::atlas

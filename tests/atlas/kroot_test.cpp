#include "atlas/kroot.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::atlas {
namespace {

using net::Duration;
using net::IPv4Address;
using net::TimeInterval;
using net::TimePoint;

PeerAddress v4(int last_octet) {
    return PeerAddress::ipv4(IPv4Address(10, 0, 0, std::uint8_t(last_octet)));
}

/// A probe that is up with an address all day except for one network
/// outage at [outage_begin, outage_end).
Timeline outage_timeline(std::int64_t outage_begin, std::int64_t outage_end,
                         std::int64_t day_end = 86400) {
    Timeline timeline(1);
    timeline.set_address(TimePoint{0}, v4(1));
    timeline.net_down_begin(TimePoint{outage_begin});
    timeline.net_down_end(TimePoint{outage_end});
    timeline.finalize(TimePoint{day_end});
    return timeline;
}

KRootSamplingPolicy full_cadence() {
    KRootSamplingPolicy policy;
    policy.base_cadence = Duration::seconds(240);
    policy.dense_cadence = Duration::seconds(240);
    policy.partial_loss_probability = 0.0;
    return policy;
}

TEST(KRootEmitter, FullCadenceEmitsEveryFourMinutes) {
    const auto timeline = outage_timeline(40000, 41000);
    const auto records = emit_kroot_records(timeline, {TimePoint{0}, TimePoint{86400}},
                                            full_cadence(), rng::Stream(1));
    EXPECT_EQ(records.size(), 86400u / 240u);
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_EQ((records[i].timestamp - records[i - 1].timestamp).count(), 240);
}

TEST(KRootEmitter, OutageShowsAllLossWithGrowingLts) {
    const auto timeline = outage_timeline(40000, 42400);  // 40 minutes
    const auto records = emit_kroot_records(timeline, {TimePoint{0}, TimePoint{86400}},
                                            full_cadence(), rng::Stream(1));
    std::vector<KRootPingRecord> lost;
    for (const auto& r : records)
        if (r.success == 0) lost.push_back(r);
    ASSERT_GE(lost.size(), 9u);  // ~2400s/240s
    for (const auto& r : lost) {
        EXPECT_GE(r.timestamp.unix_seconds(), 40000);
        EXPECT_LT(r.timestamp.unix_seconds(), 42400);
        // LTS roughly equals time since outage start.
        EXPECT_GE(r.lts_seconds, r.timestamp.unix_seconds() - 40000);
        EXPECT_LE(r.lts_seconds,
                  r.timestamp.unix_seconds() - 40000 + 240 + 240);
    }
    // LTS grows across the run.
    EXPECT_GT(lost.back().lts_seconds, lost.front().lts_seconds);
}

TEST(KRootEmitter, HealthyRecordsHaveSmallLts) {
    const auto timeline = outage_timeline(40000, 41000);
    const auto records = emit_kroot_records(timeline, {TimePoint{0}, TimePoint{86400}},
                                            full_cadence(), rng::Stream(1));
    for (const auto& r : records) {
        if (r.success == 3) {
            EXPECT_LT(r.lts_seconds, 240);
        }
    }
}

TEST(KRootEmitter, NoRecordsWhileProbeDown) {
    Timeline timeline(1);
    timeline.set_address(TimePoint{0}, v4(1));
    timeline.probe_down_begin(TimePoint{30000});
    timeline.probe_down_end(TimePoint{40000});
    timeline.finalize(TimePoint{86400});
    const auto records = emit_kroot_records(timeline, {TimePoint{0}, TimePoint{86400}},
                                            full_cadence(), rng::Stream(1));
    for (const auto& r : records) {
        EXPECT_FALSE(r.timestamp.unix_seconds() >= 30000 &&
                     r.timestamp.unix_seconds() < 40000)
            << "record emitted while probe was off";
    }
}

TEST(KRootEmitter, MissingAddressCountsAsLoss) {
    Timeline timeline(1);
    timeline.set_address(TimePoint{0}, v4(1));
    timeline.clear_address(TimePoint{50000});
    timeline.set_address(TimePoint{60000}, v4(2));
    timeline.finalize(TimePoint{86400});
    const auto records = emit_kroot_records(timeline, {TimePoint{0}, TimePoint{86400}},
                                            full_cadence(), rng::Stream(1));
    int lost = 0;
    for (const auto& r : records)
        if (r.timestamp.unix_seconds() >= 50000 &&
            r.timestamp.unix_seconds() < 60000) {
            EXPECT_EQ(r.success, 0);
            ++lost;
        }
    EXPECT_GE(lost, 40);
}

TEST(KRootEmitter, ThinnedEmissionIsDenseAroundEvents) {
    const auto timeline = outage_timeline(43200, 46800);  // 1 h outage at noon
    KRootSamplingPolicy thinned;
    thinned.base_cadence = Duration::hours(1);
    thinned.dense_cadence = Duration::seconds(240);
    thinned.dense_window = Duration::minutes(20);
    thinned.partial_loss_probability = 0.0;
    const auto records = emit_kroot_records(
        timeline, {TimePoint{0}, TimePoint{86400}}, thinned, rng::Stream(1));
    // Far fewer records than full cadence...
    EXPECT_LT(records.size(), 100u);
    // ...but the first lost record is within one dense step of the outage.
    const KRootPingRecord* first_lost = nullptr;
    for (const auto& r : records)
        if (r.success == 0) {
            first_lost = &r;
            break;
        }
    ASSERT_NE(first_lost, nullptr);
    EXPECT_LE(first_lost->timestamp.unix_seconds() - 43200, 240);
}

TEST(KRootEmitter, ThinnedAndFullAgreeOnOutageBounds) {
    // The detector-facing signal (first/last all-lost record near the
    // boundaries) must match between thinned and full emission.
    const auto timeline = outage_timeline(43200, 50400);  // 2 h outage
    auto bounds = [&](const KRootSamplingPolicy& policy) {
        const auto records = emit_kroot_records(
            timeline, {TimePoint{0}, TimePoint{86400}}, policy, rng::Stream(1));
        std::int64_t first = -1, last = -1;
        for (const auto& r : records)
            if (r.success == 0) {
                if (first < 0) first = r.timestamp.unix_seconds();
                last = r.timestamp.unix_seconds();
            }
        return std::pair{first, last};
    };
    KRootSamplingPolicy thinned;
    thinned.base_cadence = Duration::hours(2);
    thinned.dense_cadence = Duration::seconds(240);
    thinned.dense_window = Duration::minutes(20);
    thinned.partial_loss_probability = 0.0;
    const auto [f_full, l_full] = bounds(full_cadence());
    const auto [f_thin, l_thin] = bounds(thinned);
    EXPECT_EQ(f_full, f_thin);
    EXPECT_EQ(l_full, l_thin);
}

TEST(KRootEmitter, ValidatesPolicy) {
    const auto timeline = outage_timeline(100, 200);
    KRootSamplingPolicy bad;
    bad.base_cadence = Duration::seconds(500);  // not a multiple of 240
    EXPECT_THROW(emit_kroot_records(timeline, {TimePoint{0}, TimePoint{1000}},
                                    bad, rng::Stream(1)),
                 Error);
    Timeline unfinalized(1);
    EXPECT_THROW(emit_kroot_records(unfinalized, {TimePoint{0}, TimePoint{1000}},
                                    full_cadence(), rng::Stream(1)),
                 Error);
}

TEST(KRootEmitter, PartialLossNeverDropsAllThree) {
    const auto timeline = outage_timeline(40000, 41000);
    KRootSamplingPolicy noisy = full_cadence();
    noisy.partial_loss_probability = 1.0;  // every healthy record degraded
    const auto records = emit_kroot_records(timeline, {TimePoint{0}, TimePoint{86400}},
                                            noisy, rng::Stream(1));
    for (const auto& r : records) {
        const bool in_outage = r.timestamp.unix_seconds() >= 40000 &&
                               r.timestamp.unix_seconds() < 41000;
        if (!in_outage) {
            EXPECT_GE(r.success, 1) << "noise must not fake an outage";
            EXPECT_LE(r.success, 2);
        }
    }
}

}  // namespace
}  // namespace dynaddr::atlas

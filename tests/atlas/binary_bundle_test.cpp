// Columnar binary bundle (DAB2): per-dataset round trips, whole-bundle
// file I/O, the streaming writer/reader pair, lenient decoding of
// fault-garbled files, and the error-context contract (dataset + path in
// every failure message).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "atlas/binary_bundle.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/rng.hpp"
#include "sim/faults.hpp"

namespace dynaddr::atlas {
namespace {

namespace fs = std::filesystem;

class TempDir {
public:
    explicit TempDir(const std::string& tag)
        : path_(fs::temp_directory_path() /
                ("dynaddr_dab_test_" + tag + "_" +
                 std::to_string(::getpid()))) {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    [[nodiscard]] std::string str() const { return path_.string(); }

private:
    fs::path path_;
};

/// A probe-grouped bundle with every encoder feature in play: v4 and v6
/// addresses (dictionary), repeated addresses (dictionary hits), negative
/// lts values (zigzag), multi-block probes (block_records below).
DatasetBundle make_bundle() {
    DatasetBundle bundle;
    net::TimePoint t = net::TimePoint::from_date(2015, 1, 1);
    for (ProbeId probe : {ProbeId(7), ProbeId(12), ProbeId(4000000)}) {
        for (int i = 0; i < 10; ++i) {
            ConnectionLogEntry e;
            e.probe = probe;
            e.start = t + net::Duration::hours(24 * i + int(probe % 7));
            e.end = e.start + net::Duration::minutes(60 + i);
            e.address = (i % 4 == 3)
                            ? PeerAddress::ipv6_token(std::uint64_t(i % 2))
                            : PeerAddress::ipv4(net::IPv4Address{
                                  0x5B37AE00u + std::uint32_t(i % 3)});
            bundle.connection_log.push_back(e);
        }
        for (int i = 0; i < 25; ++i) {
            KRootPingRecord r;
            r.probe = probe;
            r.timestamp = t + net::Duration::minutes(4 * i);
            r.sent = 3;
            r.success = i % 5 == 0 ? 1 : 3;
            r.lts_seconds = i % 6 == 0 ? -1 : 240 + i;
            bundle.kroot_pings.push_back(r);
        }
        for (int i = 0; i < 6; ++i) {
            UptimeRecord r;
            r.probe = probe;
            r.timestamp = t + net::Duration::hours(12 * i);
            r.uptime_seconds = std::uint64_t(i) * 43200u;
            bundle.uptime_records.push_back(r);
        }
        ProbeMetadata meta;
        meta.probe = probe;
        meta.version = probe == 12 ? ProbeVersion::V2 : ProbeVersion::V3;
        meta.country_code = probe == 7 ? "DE" : "NL";
        if (probe == 12) meta.tags = {"multihomed", "home"};
        bundle.probes.push_back(meta);
    }
    return bundle;
}

bool equal(const ConnectionLogEntry& a, const ConnectionLogEntry& b) {
    return a.probe == b.probe && a.start == b.start && a.end == b.end &&
           a.address == b.address;
}
bool equal(const KRootPingRecord& a, const KRootPingRecord& b) {
    return a.probe == b.probe && a.timestamp == b.timestamp &&
           a.sent == b.sent && a.success == b.success &&
           a.lts_seconds == b.lts_seconds;
}
bool equal(const UptimeRecord& a, const UptimeRecord& b) {
    return a.probe == b.probe && a.timestamp == b.timestamp &&
           a.uptime_seconds == b.uptime_seconds;
}
bool equal(const ProbeMetadata& a, const ProbeMetadata& b) {
    return a.probe == b.probe && a.version == b.version &&
           a.country_code == b.country_code && a.tags == b.tags;
}

template <typename Record>
void expect_equal_records(const std::vector<Record>& got,
                          const std::vector<Record>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_TRUE(equal(got[i], want[i])) << "record " << i;
}

TEST(BinaryBundle, ConnectionLogRoundTrip) {
    const auto bundle = make_bundle();
    // block_records=4 forces multiple blocks per probe.
    const std::string blob =
        encode_connection_log_binary(bundle.connection_log, 4);
    expect_equal_records(decode_connection_log_binary(blob),
                         bundle.connection_log);
}

TEST(BinaryBundle, KRootRoundTrip) {
    const auto bundle = make_bundle();
    const std::string blob = encode_kroot_binary(bundle.kroot_pings, 8);
    expect_equal_records(decode_kroot_binary(blob), bundle.kroot_pings);
}

TEST(BinaryBundle, UptimeRoundTrip) {
    const auto bundle = make_bundle();
    const std::string blob = encode_uptime_binary(bundle.uptime_records, 4);
    expect_equal_records(decode_uptime_binary(blob), bundle.uptime_records);
}

TEST(BinaryBundle, ProbesRoundTrip) {
    const auto bundle = make_bundle();
    const std::string blob = encode_probes_binary(bundle.probes, 2);
    expect_equal_records(decode_probes_binary(blob), bundle.probes);
}

TEST(BinaryBundle, EmptyDatasetsRoundTrip) {
    EXPECT_TRUE(decode_connection_log_binary(encode_connection_log_binary({}))
                    .empty());
    EXPECT_TRUE(decode_kroot_binary(encode_kroot_binary({})).empty());
    EXPECT_TRUE(decode_uptime_binary(encode_uptime_binary({})).empty());
    EXPECT_TRUE(decode_probes_binary(encode_probes_binary({})).empty());
}

TEST(BinaryBundle, KindConfusionRejected) {
    // A kroot file fed to the connection-log decoder must be a clean
    // ParseError, not a misdecoded vector.
    const auto bundle = make_bundle();
    const std::string blob = encode_kroot_binary(bundle.kroot_pings);
    EXPECT_THROW((void)decode_connection_log_binary(blob), ParseError);
}

TEST(BinaryBundle, TruncatedAndGarbageInputsRejected) {
    const std::string blob =
        encode_uptime_binary(make_bundle().uptime_records);
    EXPECT_THROW((void)decode_uptime_binary(""), ParseError);
    EXPECT_THROW((void)decode_uptime_binary("DAB2"), ParseError);
    EXPECT_THROW((void)decode_uptime_binary("not a bundle at all"),
                 ParseError);
    EXPECT_THROW(
        (void)decode_uptime_binary(std::string_view(blob).substr(
            0, blob.size() - 13)),
        ParseError);
}

TEST(BinaryBundle, WholeBundleFileRoundTrip) {
    TempDir dir("bundle");
    const auto bundle = make_bundle();
    write_binary_bundle(dir.str(), bundle, 8);
    EXPECT_TRUE(binary_bundle_present(dir.str()));
    const auto back = read_binary_bundle(dir.str());
    expect_equal_records(back.connection_log, bundle.connection_log);
    expect_equal_records(back.kroot_pings, bundle.kroot_pings);
    expect_equal_records(back.uptime_records, bundle.uptime_records);
    expect_equal_records(back.probes, bundle.probes);
}

TEST(BinaryBundle, ReadBundleAutoPrefersBinary) {
    TempDir dir("auto");
    const auto bundle = make_bundle();
    write_binary_bundle(dir.str(), bundle);
    const auto back = read_bundle_auto(dir.str());
    expect_equal_records(back.connection_log, bundle.connection_log);
    EXPECT_FALSE(binary_bundle_present(dir.str() + "/nonexistent"));
}

TEST(BinaryBundle, StreamingWriterMatchesBatchWriter) {
    TempDir dir("writer");
    const auto bundle = make_bundle();
    {
        BinaryBundleWriter writer(dir.str(), 8);
        for (const auto& e : bundle.connection_log) writer.add_connection(e);
        for (const auto& r : bundle.kroot_pings) writer.add_kroot(r);
        for (const auto& r : bundle.uptime_records) writer.add_uptime(r);
        for (const auto& m : bundle.probes) writer.add_probe(m);
        writer.close();
    }
    const auto back = read_binary_bundle(dir.str());
    expect_equal_records(back.connection_log, bundle.connection_log);
    expect_equal_records(back.kroot_pings, bundle.kroot_pings);
    expect_equal_records(back.uptime_records, bundle.uptime_records);
    expect_equal_records(back.probes, bundle.probes);
}

TEST(BinaryBundle, InterleavedProbesStillRoundTrip) {
    // The live simulator tee delivers records in time order, probes
    // interleaved — each probe switch closes a block. Record order per
    // probe must survive; whole-file decode preserves file order.
    std::vector<UptimeRecord> records;
    net::TimePoint t = net::TimePoint::from_date(2015, 1, 1);
    for (int i = 0; i < 40; ++i) {
        UptimeRecord r;
        r.probe = ProbeId(1 + i % 3);
        r.timestamp = t + net::Duration::minutes(i);
        r.uptime_seconds = std::uint64_t(i);
        records.push_back(r);
    }
    const auto back = decode_uptime_binary(encode_uptime_binary(records, 64));
    expect_equal_records(back, records);
}

TEST(BinaryBundle, StreamReadDeliversProbesInAscendingSealedOrder) {
    TempDir dir("stream");
    const auto bundle = make_bundle();
    write_binary_bundle(dir.str(), bundle, 4);

    struct Recorder : BundleStreamHandler {
        std::vector<ProbeId> metadata, sealed;
        std::vector<ConnectionLogEntry> conlog;
        std::size_t kroot = 0, uptime = 0;
        ProbeId current = 0;
        void on_metadata(const ProbeMetadata& meta) override {
            metadata.push_back(meta.probe);
        }
        void on_connection(const ConnectionLogEntry& entry) override {
            // No record may arrive for an already-sealed probe.
            for (ProbeId done : sealed) ASSERT_LT(done, entry.probe);
            conlog.push_back(entry);
        }
        void on_kroot(const KRootPingRecord& record) override {
            for (ProbeId done : sealed) ASSERT_LT(done, record.probe);
            ++kroot;
        }
        void on_uptime(const UptimeRecord& record) override {
            for (ProbeId done : sealed) ASSERT_LT(done, record.probe);
            ++uptime;
        }
        void on_probe_complete(ProbeId probe) override {
            sealed.push_back(probe);
        }
    } recorder;
    stream_binary_bundle(dir.str(), recorder);

    EXPECT_EQ(recorder.metadata, (std::vector<ProbeId>{7, 12, 4000000}));
    EXPECT_EQ(recorder.sealed, (std::vector<ProbeId>{7, 12, 4000000}));
    expect_equal_records(recorder.conlog, bundle.connection_log);
    EXPECT_EQ(recorder.kroot, bundle.kroot_pings.size());
    EXPECT_EQ(recorder.uptime, bundle.uptime_records.size());
}

TEST(BinaryBundle, LenientDecodeDropsGarbledBlocksAndCounts) {
    const auto bundle = make_bundle();
    std::string blob = encode_kroot_binary(bundle.kroot_pings, 8);
    // Stomp the first block's header (right after the 6-byte file
    // header): its probe varint no longer matches the footer index, so
    // the block is structurally rejected and the reader resyncs at the
    // next indexed block. (Corruption inside a column payload can decode
    // into garbage values undetectably — that case is covered by the
    // fault-injection test below, which only asserts losses are counted.)
    blob[6] = char(0xFF);
    EXPECT_THROW((void)decode_kroot_binary(blob), ParseError);
    BinaryDecodeStats stats;
    const auto survivors = decode_kroot_binary(blob, true, &stats);
    EXPECT_EQ(stats.blocks_rejected, 1u);
    EXPECT_EQ(stats.rows_rejected, 8u);
    EXPECT_EQ(survivors.size() + stats.rows_rejected,
              bundle.kroot_pings.size());
    // Survivors are a subsequence of the original records.
    std::size_t cursor = 0;
    for (const auto& record : survivors) {
        while (cursor < bundle.kroot_pings.size() &&
               !equal(bundle.kroot_pings[cursor], record))
            ++cursor;
        ASSERT_LT(cursor, bundle.kroot_pings.size());
        ++cursor;
    }
}

TEST(BinaryBundle, UnreadableFooterIsEmptyInLenientMode) {
    std::string blob = encode_uptime_binary(make_bundle().uptime_records);
    blob.resize(blob.size() - 1);  // no tail magic: nowhere to resync
    BinaryDecodeStats stats;
    EXPECT_TRUE(decode_uptime_binary(blob, true, &stats).empty());
    EXPECT_EQ(stats.blocks_rejected, 1u);
}

TEST(BinaryBundle, FaultInjectedReadIsLenientAndCounted) {
    TempDir dir("faults");
    const auto bundle = make_bundle();
    write_binary_bundle(dir.str(), bundle, 4);

    const double rejected_before =
        obs::counter("faults.binary.rows_rejected").value();
    auto plan = sim::FaultPlan::parse("garbage,csv.rate=0.5,seed=11");
    sim::ScopedFaultInjector scope(plan);
    // The installed CSV garbling plan applies to binary reads too:
    // in-block bytes get stomped, the read degrades to lenient, and the
    // per-dataset losses land on the faults.binary.* counters.
    const auto back = read_binary_bundle(dir.str());
    EXPECT_LT(back.kroot_pings.size(), bundle.kroot_pings.size());
    EXPECT_GT(obs::counter("faults.binary.rows_rejected").value(),
              rejected_before);
}

TEST(BinaryBundle, CsvAndBinaryAgreeUnderFaultFreeRoundTrip) {
    // The two representations must describe the same records: CSV text
    // written from a binary-round-tripped bundle is byte-identical to CSV
    // written from the original.
    TempDir dir("csvdiff");
    const auto bundle = make_bundle();
    write_binary_bundle(dir.str(), bundle);
    const auto back = read_binary_bundle(dir.str());
    std::ostringstream original, reread;
    write_connection_log_csv(original, bundle.connection_log);
    write_connection_log_csv(reread, back.connection_log);
    EXPECT_EQ(original.str(), reread.str());
}

TEST(BinaryBundle, ErrorsNameDatasetAndPath) {
    TempDir dir("errors");
    {
        std::ofstream out(fs::path(dir.str()) / "connection_log.dab",
                          std::ios::binary);
        out << "DAB2 this is not a valid bundle";
    }
    try {
        (void)read_binary_bundle(dir.str());
        FAIL() << "expected Error";
    } catch (const Error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("connection_log"), std::string::npos) << what;
        EXPECT_NE(what.find(dir.str()), std::string::npos) << what;
    }
    // Missing file: same contract on the open path.
    try {
        (void)read_binary_bundle(dir.str() + "/missing");
        FAIL() << "expected Error";
    } catch (const Error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("dataset"), std::string::npos) << what;
        EXPECT_NE(what.find("missing"), std::string::npos) << what;
    }
}

TEST(BinaryBundle, MutationPropertyNeverCrashesEitherFormat) {
    // CSV <-> binary property check over deterministically garbled bytes:
    // for any mutation of a valid file, strict decode either succeeds or
    // throws ParseError, and lenient decode returns a subset without
    // throwing. (The open-ended campaign lives in fuzz_regress; this is
    // the quick in-suite version.)
    const auto bundle = make_bundle();
    const std::string blob = encode_kroot_binary(bundle.kroot_pings, 8);
    rng::Stream stream(0xDAB2u);
    for (int round = 0; round < 200; ++round) {
        std::string mutated = blob;
        const int edits = int(stream.uniform_int(1, 8));
        for (int e = 0; e < edits; ++e) {
            const auto at = std::size_t(
                stream.uniform_int(0, std::int64_t(mutated.size()) - 1));
            mutated[at] = char(stream.uniform_int(0, 255));
        }
        std::vector<KRootPingRecord> strict;
        try {
            strict = decode_kroot_binary(mutated);
        } catch (const ParseError&) {
        }
        BinaryDecodeStats stats;
        const auto lenient = decode_kroot_binary(mutated, true, &stats);
        EXPECT_LE(lenient.size(),
                  bundle.kroot_pings.size() + stats.rows_rejected + 64);
    }
}

}  // namespace
}  // namespace dynaddr::atlas

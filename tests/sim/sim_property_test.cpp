// Property tests for the timer-wheel event engine: random
// schedule/cancel interleavings must produce exactly the firing order of
// the naive std::map reference queue, across all wheel levels and the
// overflow heap.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "netcore/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/reference_queue.hpp"

namespace dynaddr::sim {
namespace {

using net::Duration;
using net::TimePoint;

/// One firing observation: which logical event fired, at what callback
/// timestamp, and what next_time() reported just before.
struct Firing {
    int tag;
    std::int64_t when;
    std::int64_t peeked;
    friend bool operator==(const Firing&, const Firing&) = default;
};

/// Drives `queue` through a scripted interleaving of schedule/cancel/run
/// operations drawn from `rng`, recording every firing. The script is a
/// function of the rng seed only, so running it against EventQueue and
/// ReferenceEventQueue with equal seeds compares the two engines
/// operation-for-operation.
///
/// Times are drawn across four magnitude bands so every wheel level plus
/// the overflow heap participates: same-second, level-0 (<256 s), level-1
/// (<65536 s), level-2 (<194 d) and heap (>194 d).
template <typename Queue>
std::vector<Firing> run_script(std::uint64_t seed, int operations) {
    rng::Stream rng(seed);
    Queue queue;
    std::vector<Firing> firings;
    std::vector<std::pair<int, EventId>> live;
    std::int64_t low_water = 0;  // fire times are monotone; never schedule earlier
    int next_tag = 0;

    for (int op = 0; op < operations; ++op) {
        const std::int64_t kind = rng.uniform_int(0, 9);
        if (kind < 5) {  // schedule
            static constexpr std::int64_t kBands[] = {1, 256, 65536, 1 << 24,
                                                      std::int64_t(1) << 27};
            const auto band = std::size_t(rng.uniform_int(0, 4));
            const std::int64_t when =
                low_water + rng.uniform_int(0, kBands[band] - 1);
            const int tag = next_tag++;
            live.emplace_back(
                tag, queue.schedule(TimePoint{when}, [tag, &firings, &queue](
                                                         TimePoint t) {
                    firings.push_back(
                        {tag, t.unix_seconds(), t.unix_seconds()});
                    (void)queue;
                }));
        } else if (kind < 7 && !live.empty()) {  // cancel a random live id
            const auto pick = std::size_t(
                rng.uniform_int(0, std::int64_t(live.size()) - 1));
            queue.cancel(live[pick].second);
            live.erase(live.begin() + std::ptrdiff_t(pick));
        } else {  // pop a few
            const std::int64_t pops = rng.uniform_int(1, 3);
            for (std::int64_t i = 0; i < pops; ++i) {
                const auto peek = queue.next_time();
                if (!peek) break;
                const std::size_t before = firings.size();
                EXPECT_TRUE(queue.run_next());
                EXPECT_EQ(firings.size(), before + 1);
                firings.back().peeked = peek->unix_seconds();
                low_water = peek->unix_seconds();
            }
        }
    }
    while (queue.run_next()) {
    }
    return firings;
}

TEST(EventEngineProperty, MatchesReferenceQueueOverRandomInterleavings) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const auto wheel = run_script<EventQueue>(seed, 400);
        const auto reference = run_script<ReferenceEventQueue>(seed, 400);
        ASSERT_EQ(wheel, reference) << "diverged at seed " << seed;
    }
}

TEST(EventEngineProperty, LargeSingleRunMatchesReference) {
    const auto wheel = run_script<EventQueue>(99, 6000);
    const auto reference = run_script<ReferenceEventQueue>(99, 6000);
    ASSERT_EQ(wheel, reference);
}

TEST(EventEngineProperty, CancelOfFiredIdReturnsFalse) {
    // The O(1) tombstone cancel must still report false for ids that
    // already fired — across every wheel level and the heap.
    static constexpr std::int64_t kDelays[] = {0, 7, 300, 70000, (1 << 24) + 5};
    EventQueue queue;
    std::vector<EventId> ids;
    for (const std::int64_t d : kDelays)
        ids.push_back(queue.schedule(TimePoint{d}, [](TimePoint) {}));
    for (std::size_t i = 0; i < std::size(kDelays); ++i) {
        EXPECT_TRUE(queue.run_next());
        EXPECT_FALSE(queue.cancel(ids[i])) << "fired id " << i;
        for (std::size_t j = i + 1; j < std::size(kDelays); ++j)
            EXPECT_NE(queue.cancel(ids[j]), false) << "live id must cancel";
        // Re-arm the cancelled remainder for the next loop round.
        for (std::size_t j = i + 1; j < std::size(kDelays); ++j)
            ids[j] = queue.schedule(TimePoint{kDelays[j]}, [](TimePoint) {});
    }
    EXPECT_TRUE(queue.empty());
}

TEST(EventEngineProperty, DoubleCancelReturnsFalse) {
    EventQueue queue;
    const EventId id = queue.schedule(TimePoint{50}, [](TimePoint) {});
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.next_time());
    EXPECT_FALSE(queue.run_next());
}

TEST(EventEngineProperty, StaleIdAfterSlotReuseDoesNotCancelNewEvent) {
    EventQueue queue;
    int fired = 0;
    const EventId old_id = queue.schedule(TimePoint{1}, [&](TimePoint) { ++fired; });
    EXPECT_TRUE(queue.run_next());
    // The freed slot is reused; the stale generation must not match.
    const EventId new_id = queue.schedule(TimePoint{2}, [&](TimePoint) { ++fired; });
    EXPECT_NE(old_id.value, new_id.value);
    EXPECT_FALSE(queue.cancel(old_id));
    EXPECT_TRUE(queue.run_next());
    EXPECT_EQ(fired, 2);
}

TEST(EventEngineProperty, PeriodicFiresOnCadenceAndCancels) {
    EventQueue queue;
    std::vector<std::int64_t> fired;
    const EventId id = queue.schedule_every(
        TimePoint{240}, Duration{240},
        [&](TimePoint t) { fired.push_back(t.unix_seconds()); });
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.run_next());
    EXPECT_EQ(fired, (std::vector<std::int64_t>{240, 480, 720, 960, 1200}));
    EXPECT_EQ(queue.size(), 1u);  // still pending, same slot
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.run_next());
    EXPECT_TRUE(queue.empty());
}

TEST(EventEngineProperty, PeriodicInterleavesFifoWithOneShots) {
    // A periodic firing at time T and one-shots scheduled at T must honour
    // scheduling order: the recurrence re-arms with a fresh sequence
    // number after each firing, exactly like a callback rescheduling
    // itself at the end of its body.
    EventQueue queue;
    std::vector<int> order;
    queue.schedule_every(TimePoint{10}, Duration{10},
                         [&](TimePoint) { order.push_back(0); });
    queue.schedule(TimePoint{20}, [&](TimePoint) { order.push_back(1); });
    for (int i = 0; i < 3; ++i) queue.run_next();
    // t=10: periodic(0); t=20: periodic re-armed after one-shot(1)? No —
    // the periodic re-arm happens at t=10, before the one-shot at 20 ever
    // existed in time order but AFTER it was scheduled, so at t=20 the
    // one-shot (earlier seq) still fires first only if it was scheduled
    // before the re-arm. It was: re-arm seqs are assigned at firing time.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 0}));
}

TEST(EventEngineProperty, PeriodicCancelFromOwnCallbackStopsRecurrence) {
    EventQueue queue;
    int count = 0;
    EventId id{};
    id = queue.schedule_every(TimePoint{5}, Duration{5}, [&](TimePoint) {
        if (++count == 3) {
            EXPECT_TRUE(queue.cancel(id));
        }
    });
    while (queue.run_next()) {
    }
    EXPECT_EQ(count, 3);
    EXPECT_TRUE(queue.empty());
}

TEST(EventEngineProperty, ManyEventsAcrossAllLevelsDrainInOrder) {
    EventQueue queue;
    rng::Stream rng(7);
    std::vector<std::int64_t> expected;
    for (int i = 0; i < 20000; ++i) {
        const std::int64_t when = rng.uniform_int(0, std::int64_t(1) << 26);
        expected.push_back(when);
        queue.schedule(TimePoint{when}, [](TimePoint) {});
    }
    std::sort(expected.begin(), expected.end());
    std::vector<std::int64_t> popped;
    while (auto next = queue.next_time()) {
        popped.push_back(next->unix_seconds());
        queue.run_next();
    }
    EXPECT_EQ(popped, expected);
}

}  // namespace
}  // namespace dynaddr::sim

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::sim {
namespace {

using net::Duration;
using net::TimePoint;

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(TimePoint{30}, [&](TimePoint) { order.push_back(3); });
    queue.schedule(TimePoint{10}, [&](TimePoint) { order.push_back(1); });
    queue.schedule(TimePoint{20}, [&](TimePoint) { order.push_back(2); });
    while (queue.run_next()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesRunFifo) {
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(TimePoint{100}, [&, i](TimePoint) { order.push_back(i); });
    while (queue.run_next()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelRemovesPending) {
    EventQueue queue;
    int fired = 0;
    const EventId id = queue.schedule(TimePoint{10}, [&](TimePoint) { ++fired; });
    queue.schedule(TimePoint{20}, [&](TimePoint) { ++fired; });
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));  // already cancelled
    while (queue.run_next()) {
    }
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextTimeReflectsEarliest) {
    EventQueue queue;
    EXPECT_FALSE(queue.next_time());
    queue.schedule(TimePoint{50}, [](TimePoint) {});
    queue.schedule(TimePoint{5}, [](TimePoint) {});
    ASSERT_TRUE(queue.next_time());
    EXPECT_EQ(queue.next_time()->unix_seconds(), 5);
}

TEST(Simulation, ClockAdvancesWithEvents) {
    Simulation sim(TimePoint{0});
    std::vector<std::int64_t> seen;
    sim.after(Duration{10}, [&](TimePoint t) { seen.push_back(t.unix_seconds()); });
    sim.after(Duration{5}, [&](TimePoint t) {
        seen.push_back(t.unix_seconds());
        EXPECT_EQ(sim.now().unix_seconds(), 5);
    });
    sim.run_until(TimePoint{100});
    EXPECT_EQ(seen, (std::vector<std::int64_t>{5, 10}));
    EXPECT_EQ(sim.now().unix_seconds(), 100);
    EXPECT_EQ(sim.executed(), 2u);
}

TEST(Simulation, EventsCanScheduleEvents) {
    Simulation sim(TimePoint{0});
    int depth = 0;
    std::function<void(TimePoint)> recur = [&](TimePoint) {
        if (++depth < 5) sim.after(Duration{1}, recur);
    };
    sim.after(Duration{1}, recur);
    sim.run_until(TimePoint{100});
    EXPECT_EQ(depth, 5);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
    Simulation sim(TimePoint{0});
    int fired = 0;
    sim.at(TimePoint{10}, [&](TimePoint) { ++fired; });
    sim.at(TimePoint{20}, [&](TimePoint) { ++fired; });
    sim.run_until(TimePoint{15});
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pending(), 1u);
    EXPECT_EQ(sim.now().unix_seconds(), 15);
    sim.run_until(TimePoint{20});  // inclusive boundary
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, RejectsPastScheduling) {
    Simulation sim(TimePoint{100});
    EXPECT_THROW(sim.at(TimePoint{99}, [](TimePoint) {}), Error);
    EXPECT_THROW(sim.after(Duration{-1}, [](TimePoint) {}), Error);
    EXPECT_NO_THROW(sim.at(TimePoint{100}, [](TimePoint) {}));
}

TEST(Simulation, CancelWorksThroughFacade) {
    Simulation sim(TimePoint{0});
    int fired = 0;
    const EventId id = sim.after(Duration{10}, [&](TimePoint) { ++fired; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run_all();
    EXPECT_EQ(fired, 0);
}

TEST(Simulation, RunAllDrainsEverything) {
    Simulation sim(TimePoint{0});
    int fired = 0;
    for (int i = 1; i <= 10; ++i)
        sim.after(Duration{i}, [&](TimePoint) { ++fired; });
    EXPECT_EQ(sim.run_all(), 10u);
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace dynaddr::sim

#include "sim/cause_ledger.hpp"

#include <gtest/gtest.h>

#include "netcore/error.hpp"

namespace dynaddr::sim {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

IPv4Address addr(const char* text) { return IPv4Address::parse_or_throw(text); }

/// A ledger with one registered client holding 10.0.0.1 since t=1000.
CauseLedger tenured_ledger() {
    CauseLedger ledger;
    ledger.register_client(7, 1007);
    ledger.acquired(7, TimePoint{1000}, addr("10.0.0.1"));
    return ledger;
}

TEST(CauseLedger, ExactlyOneRecordPerAddressChange) {
    CauseLedger ledger = tenured_ledger();
    // Same address re-bound: a renewal, not a change — no record.
    ledger.acquired(7, TimePoint{2000}, addr("10.0.0.1"));
    EXPECT_EQ(ledger.records().size(), 0u);
    ledger.lost(7, TimePoint{3000}, CauseKind::LeaseExpiry,
                CauseSite::DhcpLeaseTimer);
    ledger.acquired(7, TimePoint{3100}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    const CauseRecord& record = ledger.records()[0];
    EXPECT_EQ(record.probe, 1007u);
    EXPECT_EQ(record.client, 7u);
    EXPECT_EQ(record.at, TimePoint{3100});
    EXPECT_EQ(record.lost_at, TimePoint{3000});
    EXPECT_EQ(record.kind, CauseKind::LeaseExpiry);
    EXPECT_EQ(record.site, CauseSite::DhcpLeaseTimer);
    EXPECT_EQ(record.old_addr, addr("10.0.0.1"));
    EXPECT_EQ(record.new_addr, addr("10.0.0.2"));
    EXPECT_EQ(ledger.total_records(), 1u);
}

TEST(CauseLedger, AdminNoteOutranksEverything) {
    CauseLedger ledger = tenured_ledger();
    ledger.note(7, CauseKind::AdminRenumbering, CauseSite::DhcpRetiredPrefix,
                TimePoint{1500});
    ledger.power_down(7, TimePoint{1600}, CauseSite::OutagePower);
    ledger.lost(7, TimePoint{1700}, CauseKind::LeaseExpiry,
                CauseSite::DhcpLeaseTimer);
    ledger.power_up(7, TimePoint{1800});
    ledger.acquired(7, TimePoint{1900}, addr("10.0.9.1"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::AdminRenumbering);
    EXPECT_EQ(ledger.records()[0].site, CauseSite::DhcpRetiredPrefix);
    EXPECT_EQ(ledger.records()[0].root_at, TimePoint{1500});
}

TEST(CauseLedger, RetiredPrefixResolvesWithoutPerClientNote) {
    // PPP subscribers get no per-client evict signal on an administrative
    // retirement; the retired-prefix lookup covers them.
    CauseLedger ledger = tenured_ledger();
    ledger.admin_retire(IPv4Prefix::parse_or_throw("10.0.0.0/24"),
                        TimePoint{1400});
    ledger.lost(7, TimePoint{1500}, CauseKind::SessionExpiry,
                CauseSite::PppSessionTimeout);
    ledger.acquired(7, TimePoint{1600}, addr("10.0.9.1"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::AdminRenumbering);
    EXPECT_EQ(ledger.records()[0].site, CauseSite::AdminEvent);
    EXPECT_EQ(ledger.records()[0].root_at, TimePoint{1400});
}

TEST(CauseLedger, NetworkEpisodeOutranksPowerWhenBothOverlap) {
    CauseLedger ledger = tenured_ledger();
    ledger.power_down(7, TimePoint{2000}, CauseSite::FaultStorm);
    ledger.net_down(7, TimePoint{2100}, CauseSite::OutageNetwork);
    ledger.lost(7, TimePoint{2200}, CauseKind::Unknown, CauseSite::Unspecified);
    ledger.net_up(7, TimePoint{2700});
    ledger.power_up(7, TimePoint{2800});
    ledger.acquired(7, TimePoint{2900}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::NetworkOutage);
    EXPECT_EQ(ledger.records()[0].site, CauseSite::OutageNetwork);
    EXPECT_EQ(ledger.records()[0].root_at, TimePoint{2100});
    EXPECT_EQ(ledger.records()[0].root_duration, Duration{600});
}

TEST(CauseLedger, CompletedEpisodeBeforeLossDoesNotClaimTheChange) {
    CauseLedger ledger = tenured_ledger();
    ledger.power_down(7, TimePoint{1200}, CauseSite::OutagePower);
    ledger.power_up(7, TimePoint{1300});
    // The CPE survived the outage; the later lease expiry is the cause.
    ledger.lost(7, TimePoint{5000}, CauseKind::LeaseExpiry,
                CauseSite::DhcpLeaseTimer);
    ledger.acquired(7, TimePoint{5100}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::LeaseExpiry);
}

TEST(CauseLedger, PreLossBlockingOutranksProtocolLossReason) {
    // The lease ran out *because* every renew met a dead server: the
    // server being down is the root cause, not the lease timer.
    CauseLedger ledger = tenured_ledger();
    ledger.note(7, CauseKind::ServerDown, CauseSite::DhcpServerOffline,
                TimePoint{2000});
    ledger.lost(7, TimePoint{2500}, CauseKind::LeaseExpiry,
                CauseSite::DhcpLeaseTimer);
    ledger.acquired(7, TimePoint{2600}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::ServerDown);
    EXPECT_EQ(ledger.records()[0].site, CauseSite::DhcpServerOffline);
    EXPECT_EQ(ledger.records()[0].root_at, TimePoint{2000});
}

TEST(CauseLedger, PoolExhaustedOutranksServerDownAndMessageFault) {
    CauseLedger ledger = tenured_ledger();
    ledger.note(7, CauseKind::MessageFault, CauseSite::FaultMessage,
                TimePoint{2000});
    ledger.note(7, CauseKind::ServerDown, CauseSite::DhcpServerOffline,
                TimePoint{2100});
    ledger.note(7, CauseKind::PoolExhausted, CauseSite::DhcpPoolExhausted,
                TimePoint{2200});
    ledger.lost(7, TimePoint{2300}, CauseKind::LeaseExpiry,
                CauseSite::DhcpLeaseTimer);
    ledger.acquired(7, TimePoint{2400}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::PoolExhausted);
}

TEST(CauseLedger, PostLossBlockingExplainsAnUnknownLoss) {
    CauseLedger ledger = tenured_ledger();
    ledger.lost(7, TimePoint{2000}, CauseKind::Unknown, CauseSite::Unspecified);
    // Reacquisition kept failing on an exhausted pool.
    ledger.note(7, CauseKind::PoolExhausted, CauseSite::RadiusPoolExhausted,
                TimePoint{2500});
    ledger.acquired(7, TimePoint{3000}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::PoolExhausted);
    EXPECT_EQ(ledger.records()[0].site, CauseSite::RadiusPoolExhausted);
}

TEST(CauseLedger, RenewOkClearsStaleBlockingNotes) {
    CauseLedger ledger = tenured_ledger();
    ledger.note(7, CauseKind::ServerDown, CauseSite::DhcpServerOffline,
                TimePoint{1500});
    ledger.renew_ok(7);  // tenure survived the trouble
    ledger.lost(7, TimePoint{5000}, CauseKind::SessionExpiry,
                CauseSite::PppSessionTimeout);
    ledger.acquired(7, TimePoint{5100}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].kind, CauseKind::SessionExpiry);
}

TEST(CauseLedger, EarliestNotePerKindIsTheRoot) {
    CauseLedger ledger = tenured_ledger();
    ledger.note(7, CauseKind::ServerDown, CauseSite::DhcpServerOffline,
                TimePoint{2000});
    ledger.note(7, CauseKind::ServerDown, CauseSite::DhcpServerOffline,
                TimePoint{2400});  // a later retry meeting the same wall
    ledger.lost(7, TimePoint{2500}, CauseKind::Unknown, CauseSite::Unspecified);
    ledger.acquired(7, TimePoint{2600}, addr("10.0.0.2"));
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.records()[0].root_at, TimePoint{2000});
}

TEST(CauseLedger, SinkStreamsWithoutRetaining) {
    struct CountingSink : CauseSink {
        std::vector<CauseRecord> seen;
        void append(const CauseRecord& record) override {
            seen.push_back(record);
        }
    } sink;
    CauseLedgerConfig config;
    config.keep_records = false;
    CauseLedger ledger(config);
    ledger.set_sink(&sink);
    ledger.acquired(7, TimePoint{1000}, addr("10.0.0.1"));
    ledger.lost(7, TimePoint{2000}, CauseKind::SessionExpiry,
                CauseSite::PppSessionTimeout);
    ledger.acquired(7, TimePoint{2100}, addr("10.0.0.2"));
    EXPECT_EQ(ledger.records().size(), 0u);  // nothing retained
    EXPECT_EQ(ledger.total_records(), 1u);
    ASSERT_EQ(sink.seen.size(), 1u);
    EXPECT_EQ(sink.seen[0].kind, CauseKind::SessionExpiry);
}

TEST(CauseLedger, ScopedInstallGatesTheFreeFunctions) {
    // No ledger: hooks are inert.
    cause_acquired(9, TimePoint{100}, addr("10.1.0.1"));
    {
        ScopedCauseLedger scope;
        cause_register_client(9, 1009);
        cause_acquired(9, TimePoint{1000}, addr("10.1.0.1"));
        cause_lost(9, TimePoint{2000}, CauseKind::NightlyReconnect,
                   CauseSite::CpeNightlyReconnect);
        cause_acquired(9, TimePoint{2100}, addr("10.1.0.2"));
        ASSERT_EQ(scope.ledger().records().size(), 1u);
        EXPECT_EQ(scope.ledger().records()[0].kind,
                  CauseKind::NightlyReconnect);
    }
    EXPECT_EQ(cause_ledger(), nullptr);
}

// -- serialization ---------------------------------------------------------

std::vector<CauseRecord> sample_records() {
    std::vector<CauseRecord> records;
    for (int i = 0; i < 5; ++i) {
        CauseRecord r;
        r.probe = 1000u + std::uint64_t(i);
        r.client = 10u + std::uint64_t(i);
        r.at = TimePoint{1420070400 + i * 86400};
        r.lost_at = r.at - Duration{90};
        r.root_at = r.lost_at - Duration{5};
        r.kind = CauseKind(std::size_t(i) % kCauseKindCount);
        r.site = CauseSite(std::size_t(i) % kCauseSiteCount);
        r.old_addr = addr("90.3.1.19");
        r.new_addr = addr("90.3.3.48");
        r.root_duration = Duration{i * 407};
        records.push_back(r);
    }
    return records;
}

TEST(CauseLedgerCodec, CsvRoundTrip) {
    const auto records = sample_records();
    const auto reparsed =
        cause_ledger_from_csv(cause_ledger_to_csv(records), /*strict=*/true);
    EXPECT_EQ(reparsed, records);
}

TEST(CauseLedgerCodec, BinaryRoundTrip) {
    const auto records = sample_records();
    const std::string blob = encode_cause_ledger(records);
    EXPECT_TRUE(is_cause_ledger_binary(blob));
    EXPECT_EQ(decode_cause_ledger(blob, /*strict=*/true), records);
}

TEST(CauseLedgerCodec, StrictCsvThrowsOnBadRow) {
    const std::string csv = cause_ledger_to_csv(sample_records()) +
                            "1,2,bogus,4,5,flux,nowhere,1.2.3.4,bad,-7\n";
    EXPECT_THROW((void)cause_ledger_from_csv(csv, /*strict=*/true), ParseError);
    CauseDecodeStats stats;
    const auto salvaged = cause_ledger_from_csv(csv, /*strict=*/false, &stats);
    EXPECT_EQ(salvaged.size(), 5u);
    EXPECT_EQ(stats.rows_rejected, 1u);
}

TEST(CauseLedgerCodec, LenientBinarySalvagesTruncatedFile) {
    std::string blob = encode_cause_ledger(sample_records());
    blob.resize(blob.size() - 9);  // tear off the tail magic + footer end
    EXPECT_THROW((void)decode_cause_ledger(blob, /*strict=*/true), ParseError);
    CauseDecodeStats stats;
    (void)decode_cause_ledger(blob, /*strict=*/false, &stats);  // never throws
}

TEST(CauseLedgerCodec, KindAndSiteTokensRoundTrip) {
    for (std::size_t k = 0; k < kCauseKindCount; ++k)
        EXPECT_EQ(cause_kind_from_name(cause_kind_name(CauseKind(k))),
                  CauseKind(k));
    for (std::size_t s = 0; s < kCauseSiteCount; ++s)
        EXPECT_EQ(cause_site_from_name(cause_site_name(CauseSite(s))),
                  CauseSite(s));
    EXPECT_EQ(cause_kind_from_name("flux_capacitor"), std::nullopt);
}

}  // namespace
}  // namespace dynaddr::sim

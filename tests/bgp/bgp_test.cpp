#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "bgp/as_registry.hpp"
#include "bgp/dir24_8.hpp"
#include "bgp/prefix_table.hpp"
#include "bgp/radix_trie.hpp"
#include "netcore/error.hpp"
#include "netcore/rng.hpp"

namespace dynaddr::bgp {
namespace {

using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

TEST(RadixTrie, ExactInsertAndLookup) {
    RadixTrie trie;
    trie.insert(IPv4Prefix::parse_or_throw("10.0.0.0/8"), 100);
    trie.insert(IPv4Prefix::parse_or_throw("10.1.0.0/16"), 200);
    EXPECT_EQ(trie.size(), 2u);
    EXPECT_EQ(trie.exact(IPv4Prefix::parse_or_throw("10.0.0.0/8")), 100u);
    EXPECT_EQ(trie.exact(IPv4Prefix::parse_or_throw("10.1.0.0/16")), 200u);
    EXPECT_FALSE(trie.exact(IPv4Prefix::parse_or_throw("10.0.0.0/9")));
    EXPECT_FALSE(trie.exact(IPv4Prefix::parse_or_throw("11.0.0.0/8")));
}

TEST(RadixTrie, InsertOverwrites) {
    RadixTrie trie;
    const auto prefix = IPv4Prefix::parse_or_throw("192.0.2.0/24");
    trie.insert(prefix, 1);
    trie.insert(prefix, 2);
    EXPECT_EQ(trie.size(), 1u);
    EXPECT_EQ(trie.exact(prefix), 2u);
}

TEST(RadixTrie, LongestMatchPicksMostSpecific) {
    RadixTrie trie;
    trie.insert(IPv4Prefix::parse_or_throw("10.0.0.0/8"), 8);
    trie.insert(IPv4Prefix::parse_or_throw("10.1.0.0/16"), 16);
    trie.insert(IPv4Prefix::parse_or_throw("10.1.2.0/24"), 24);
    EXPECT_EQ(trie.longest_match(IPv4Address(10, 1, 2, 3)), 24u);
    EXPECT_EQ(trie.longest_match(IPv4Address(10, 1, 3, 3)), 16u);
    EXPECT_EQ(trie.longest_match(IPv4Address(10, 2, 0, 1)), 8u);
    EXPECT_FALSE(trie.longest_match(IPv4Address(11, 0, 0, 1)));
}

TEST(RadixTrie, LongestMatchEntryReturnsPrefix) {
    RadixTrie trie;
    trie.insert(IPv4Prefix::parse_or_throw("81.128.0.0/12"), 2856);
    auto match = trie.longest_match_entry(IPv4Address(81, 133, 7, 7));
    ASSERT_TRUE(match);
    EXPECT_EQ(match->prefix.to_string(), "81.128.0.0/12");
    EXPECT_EQ(match->value, 2856u);
}

TEST(RadixTrie, DefaultRouteAndHostRoute) {
    RadixTrie trie;
    trie.insert(IPv4Prefix{}, 1);  // 0.0.0.0/0
    trie.insert(IPv4Prefix::parse_or_throw("1.2.3.4/32"), 2);
    EXPECT_EQ(trie.longest_match(IPv4Address(9, 9, 9, 9)), 1u);
    EXPECT_EQ(trie.longest_match(IPv4Address(1, 2, 3, 4)), 2u);
    EXPECT_EQ(trie.longest_match(IPv4Address(1, 2, 3, 5)), 1u);
}

TEST(RadixTrie, ForEachVisitsAllEntries) {
    RadixTrie trie;
    const std::vector<std::pair<std::string, std::uint32_t>> routes = {
        {"10.0.0.0/8", 1}, {"10.1.0.0/16", 2}, {"192.168.0.0/16", 3},
        {"0.0.0.0/0", 4},  {"255.0.0.0/8", 5}};
    for (const auto& [text, value] : routes)
        trie.insert(IPv4Prefix::parse_or_throw(text), value);
    std::map<std::string, std::uint32_t> seen;
    trie.for_each([&](IPv4Prefix prefix, std::uint32_t value) {
        seen[prefix.to_string()] = value;
    });
    EXPECT_EQ(seen.size(), routes.size());
    for (const auto& [text, value] : routes) EXPECT_EQ(seen.at(text), value);
}

// Property: trie LPM agrees with a brute-force linear scan on random data.
TEST(RadixTrie, MatchesLinearScanReference) {
    rng::Stream rng(99);
    RadixTrie trie;
    std::vector<std::pair<IPv4Prefix, std::uint32_t>> routes;
    for (int i = 0; i < 300; ++i) {
        const auto base = IPv4Address{std::uint32_t(rng.next_u64())};
        const int length = int(rng.uniform_int(4, 28));
        const IPv4Prefix prefix{base, length};
        const auto value = std::uint32_t(i + 1);
        trie.insert(prefix, value);
        // Mirror overwrite semantics in the reference.
        bool replaced = false;
        for (auto& [p, v] : routes)
            if (p == prefix) {
                v = value;
                replaced = true;
            }
        if (!replaced) routes.emplace_back(prefix, value);
    }
    for (int i = 0; i < 2000; ++i) {
        const auto addr = IPv4Address{std::uint32_t(rng.next_u64())};
        std::optional<std::uint32_t> expected;
        int best_len = -1;
        for (const auto& [prefix, value] : routes)
            if (prefix.contains(addr) && prefix.length() > best_len) {
                best_len = prefix.length();
                expected = value;
            }
        EXPECT_EQ(trie.longest_match(addr), expected) << addr.to_string();
    }
}

TEST(AsRegistry, AddFindAll) {
    AsRegistry registry;
    registry.add({3320, "DTAG", "DE", Continent::Europe});
    registry.add({701, "Verizon", "US", Continent::NorthAmerica});
    EXPECT_THROW(registry.add({0, "bad", "XX", Continent::Europe}), Error);
    ASSERT_TRUE(registry.find(3320));
    EXPECT_EQ(registry.find(3320)->name, "DTAG");
    EXPECT_FALSE(registry.find(9999));
    ASSERT_TRUE(registry.find_by_name("Verizon"));
    EXPECT_EQ(registry.find_by_name("Verizon")->asn, 701u);
    EXPECT_FALSE(registry.find_by_name("nope"));
    const auto all = registry.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].asn, 701u);  // ascending
}

TEST(AsRegistry, AmbiguousNameReturnsNullopt) {
    AsRegistry registry;
    registry.add({1, "Dup", "AA", Continent::Europe});
    registry.add({2, "Dup", "BB", Continent::Asia});
    EXPECT_FALSE(registry.find_by_name("Dup"));
}

TEST(ContinentNames, CodesAndNames) {
    EXPECT_STREQ(continent_code(Continent::Europe), "EU");
    EXPECT_STREQ(continent_code(Continent::SouthAmerica), "SA");
    EXPECT_STREQ(continent_name(Continent::Oceania), "Oceania");
}

TEST(MonthKey, ComputesFromCivil) {
    EXPECT_EQ(month_key(2015, 1), 2015 * 12 + 0);
    EXPECT_EQ(month_key(2015, 12), 2015 * 12 + 11);
    EXPECT_THROW((void)month_key(2015, 0), Error);
    EXPECT_THROW((void)month_key(2015, 13), Error);
    EXPECT_EQ(month_key_of(TimePoint::from_date(2015, 6, 15)), month_key(2015, 6));
}

TEST(PrefixTable, ResolvesPerMonth) {
    PrefixTable table;
    const auto prefix = IPv4Prefix::parse_or_throw("10.0.0.0/8");
    table.announce(month_key(2015, 1), prefix, 100);
    table.announce(month_key(2015, 2), prefix, 200);  // moved in February
    const auto addr = IPv4Address(10, 1, 1, 1);
    EXPECT_EQ(table.origin_as(addr, TimePoint::from_date(2015, 1, 15)), 100u);
    EXPECT_EQ(table.origin_as(addr, TimePoint::from_date(2015, 2, 15)), 200u);
}

TEST(PrefixTable, FallsBackToNearestSnapshot) {
    PrefixTable table;
    const auto prefix = IPv4Prefix::parse_or_throw("10.0.0.0/8");
    table.announce(month_key(2015, 3), prefix, 300);
    const auto addr = IPv4Address(10, 0, 0, 1);
    // After the snapshot: inherit March.
    EXPECT_EQ(table.origin_as(addr, TimePoint::from_date(2015, 9, 1)), 300u);
    // Before the first snapshot: use the earliest available.
    EXPECT_EQ(table.origin_as(addr, TimePoint::from_date(2015, 1, 1)), 300u);
}

TEST(PrefixTable, EmptyTableAndUncoveredAddress) {
    PrefixTable table;
    EXPECT_FALSE(table.origin_as(IPv4Address(1, 1, 1, 1),
                                 TimePoint::from_date(2015, 1, 1)));
    table.announce(month_key(2015, 1), IPv4Prefix::parse_or_throw("10.0.0.0/8"), 1);
    EXPECT_FALSE(table.origin_as(IPv4Address(11, 1, 1, 1),
                                 TimePoint::from_date(2015, 1, 1)));
}

TEST(PrefixTable, AnnounceRangeCoversAllMonths) {
    PrefixTable table;
    const auto prefix = IPv4Prefix::parse_or_throw("10.0.0.0/8");
    table.announce_range(month_key(2015, 1), month_key(2015, 12), prefix, 42);
    EXPECT_EQ(table.snapshot_count(), 12u);
    EXPECT_EQ(table.route_count(), 12u);
    EXPECT_THROW(
        table.announce_range(month_key(2015, 2), month_key(2015, 1), prefix, 1),
        Error);
}

TEST(PrefixTable, LoadsCaidaPfx2asFormat) {
    std::stringstream in(
        "# comment line\n"
        "1.0.0.0\t24\t13335\n"
        "\n"
        "8.8.8.0\t24\t15169\n"
        "9.0.0.0\t8\t3356_3549\n"
        "11.0.0.0\t8\t174,3356\n");
    PrefixTable table;
    const auto loaded = table.load_pfx2as(in, month_key(2015, 6));
    EXPECT_EQ(loaded, 4u);
    const auto t = TimePoint::from_date(2015, 6, 15);
    EXPECT_EQ(table.origin_as(IPv4Address(1, 0, 0, 99), t), 13335u);
    EXPECT_EQ(table.origin_as(IPv4Address(8, 8, 8, 8), t), 15169u);
    EXPECT_EQ(table.origin_as(IPv4Address(9, 1, 2, 3), t), 3356u);  // first of A_B
    EXPECT_EQ(table.origin_as(IPv4Address(11, 1, 2, 3), t), 174u);  // first of A,B
    EXPECT_FALSE(table.origin_as(IPv4Address(2, 0, 0, 1), t));
}

TEST(PrefixTable, RejectsMalformedPfx2as) {
    PrefixTable table;
    auto try_load = [&](const char* text) {
        std::stringstream in(text);
        table.load_pfx2as(in, month_key(2015, 1));
    };
    EXPECT_THROW(try_load("1.0.0.0 24 13335\n"), ParseError);       // spaces
    EXPECT_THROW(try_load("1.0.0.0\t24\n"), ParseError);            // 2 fields
    EXPECT_THROW(try_load("nope\t24\t1\n"), ParseError);            // bad addr
    EXPECT_THROW(try_load("1.0.0.0\t33\t1\n"), ParseError);         // bad len
    EXPECT_THROW(try_load("1.0.0.0\t24\tzero\n"), ParseError);      // bad asn
    EXPECT_THROW(try_load("1.0.0.0\t24\t0\n"), ParseError);         // asn 0
}

TEST(PrefixTable, RoutedPrefixReturnsMostSpecific) {
    PrefixTable table;
    table.announce(month_key(2015, 1), IPv4Prefix::parse_or_throw("10.0.0.0/8"), 1);
    table.announce(month_key(2015, 1), IPv4Prefix::parse_or_throw("10.5.0.0/16"), 1);
    auto match = table.routed_prefix(IPv4Address(10, 5, 1, 1),
                                     TimePoint::from_date(2015, 1, 2));
    ASSERT_TRUE(match);
    EXPECT_EQ(match->prefix.to_string(), "10.5.0.0/16");
}

// -- Dir24_8 ---------------------------------------------------------------

TEST(Dir24_8, EmptyTableMissesEverything) {
    Dir24_8 table;
    EXPECT_FALSE(table.longest_match(IPv4Address(1, 2, 3, 4)));
    EXPECT_EQ(table.size(), 0u);
    Dir24_8 from_empty_trie{RadixTrie{}};
    EXPECT_FALSE(from_empty_trie.longest_match(IPv4Address(1, 2, 3, 4)));
}

TEST(Dir24_8, MatchesHandPickedPrefixes) {
    RadixTrie trie;
    trie.insert(IPv4Prefix::parse_or_throw("0.0.0.0/0"), 1);
    trie.insert(IPv4Prefix::parse_or_throw("10.0.0.0/8"), 2);
    trie.insert(IPv4Prefix::parse_or_throw("10.1.0.0/16"), 3);
    trie.insert(IPv4Prefix::parse_or_throw("10.1.2.0/24"), 4);
    trie.insert(IPv4Prefix::parse_or_throw("10.1.2.128/25"), 5);   // > /24
    trie.insert(IPv4Prefix::parse_or_throw("10.1.2.200/32"), 6);   // host
    Dir24_8 table(trie);
    EXPECT_EQ(table.size(), 6u);
    EXPECT_GE(table.subtable_count(), 1u);
    EXPECT_EQ(table.longest_match(IPv4Address(99, 0, 0, 1)), 1u);  // default
    EXPECT_EQ(table.longest_match(IPv4Address(10, 9, 9, 9)), 2u);
    EXPECT_EQ(table.longest_match(IPv4Address(10, 1, 9, 9)), 3u);
    EXPECT_EQ(table.longest_match(IPv4Address(10, 1, 2, 3)), 4u);
    EXPECT_EQ(table.longest_match(IPv4Address(10, 1, 2, 129)), 5u);
    EXPECT_EQ(table.longest_match(IPv4Address(10, 1, 2, 200)), 6u);
    auto entry = table.longest_match_entry(IPv4Address(10, 1, 2, 129));
    ASSERT_TRUE(entry);
    EXPECT_EQ(entry->prefix.to_string(), "10.1.2.128/25");
    EXPECT_EQ(entry->value, 5u);
}

TEST(Dir24_8, DifferentialAgainstTrieOracle) {
    // Random prefix sets across every length, then random probes: the
    // compiled table must agree with the trie on prefix, value and miss.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        rng::Stream rng(seed);
        RadixTrie trie;
        for (int i = 0; i < 600; ++i) {
            const int length = int(rng.uniform_int(1, 32));
            const auto addr =
                IPv4Address(std::uint32_t(rng.next_u64() >> 32));
            trie.insert(IPv4Prefix(addr, length),
                        std::uint32_t(rng.uniform_int(1, 1 << 20)));
        }
        Dir24_8 table(trie);
        EXPECT_EQ(table.size(), trie.size());
        for (int i = 0; i < 20000; ++i) {
            // Half the probes land near inserted space, half anywhere.
            const auto addr =
                IPv4Address(std::uint32_t(rng.next_u64() >> 32));
            const auto expect = trie.longest_match_entry(addr);
            const auto got = table.longest_match_entry(addr);
            ASSERT_EQ(expect.has_value(), got.has_value())
                << "seed " << seed << " addr " << addr.to_string();
            if (expect) {
                EXPECT_EQ(expect->prefix.to_string(), got->prefix.to_string())
                    << "addr " << addr.to_string();
                EXPECT_EQ(expect->value, got->value)
                    << "addr " << addr.to_string();
            }
        }
    }
}

TEST(Dir24_8, RebuildReplacesOldContents) {
    RadixTrie first;
    first.insert(IPv4Prefix::parse_or_throw("10.0.0.0/8"), 1);
    Dir24_8 table(first);
    RadixTrie second;
    second.insert(IPv4Prefix::parse_or_throw("20.0.0.0/8"), 2);
    table.build(second);
    EXPECT_FALSE(table.longest_match(IPv4Address(10, 0, 0, 1)));
    EXPECT_EQ(table.longest_match(IPv4Address(20, 0, 0, 1)), 2u);
}

TEST(PrefixTable, FastLookupCompilesAboveThresholdAndInvalidates) {
    PrefixTable table;
    table.set_fast_lookup_threshold(2);
    const auto month = month_key(2015, 1);
    table.announce(month, IPv4Prefix::parse_or_throw("10.0.0.0/8"), 1);
    EXPECT_FALSE(table.fast_lookup_compiled(month));
    // Below threshold: lookups stay on the trie, nothing is compiled.
    EXPECT_TRUE(table.routed_prefix(IPv4Address(10, 1, 1, 1),
                                    TimePoint::from_date(2015, 1, 2)));
    EXPECT_FALSE(table.fast_lookup_compiled(month));
    table.announce(month, IPv4Prefix::parse_or_throw("10.5.0.0/16"), 2);
    table.announce(month, IPv4Prefix::parse_or_throw("20.0.0.0/8"), 3);
    // Above threshold: the first lookup compiles the Dir24_8 stage.
    auto match = table.routed_prefix(IPv4Address(10, 5, 1, 1),
                                     TimePoint::from_date(2015, 1, 2));
    ASSERT_TRUE(match);
    EXPECT_EQ(match->prefix.to_string(), "10.5.0.0/16");
    EXPECT_TRUE(table.fast_lookup_compiled(month));
    // A new announcement invalidates the compiled table...
    table.announce(month, IPv4Prefix::parse_or_throw("30.0.0.0/8"), 4);
    EXPECT_FALSE(table.fast_lookup_compiled(month));
    // ...and the next lookup recompiles with the new route visible.
    auto fresh = table.routed_prefix(IPv4Address(30, 0, 0, 1),
                                     TimePoint::from_date(2015, 1, 2));
    ASSERT_TRUE(fresh);
    EXPECT_EQ(fresh->prefix.to_string(), "30.0.0.0/8");
    EXPECT_TRUE(table.fast_lookup_compiled(month));
}

TEST(PrefixTable, FastAndTrieAnswersAgree) {
    // Same announcements, two tables: one forced onto the Dir24_8 path,
    // one kept on the trie; every probe must agree.
    PrefixTable fast, slow;
    fast.set_fast_lookup_threshold(1);
    slow.set_fast_lookup_threshold(std::size_t(-1));
    rng::Stream rng(77);
    const auto month = month_key(2015, 6);
    for (int i = 0; i < 300; ++i) {
        const int length = int(rng.uniform_int(8, 28));
        const auto prefix =
            IPv4Prefix(IPv4Address(std::uint32_t(rng.next_u64() >> 32)), length);
        const auto asn = std::uint32_t(rng.uniform_int(1, 70000));
        fast.announce(month, prefix, asn);
        slow.announce(month, prefix, asn);
    }
    const auto when = TimePoint::from_date(2015, 6, 15);
    for (int i = 0; i < 5000; ++i) {
        const auto addr = IPv4Address(std::uint32_t(rng.next_u64() >> 32));
        const auto a = fast.routed_prefix(addr, when);
        const auto b = slow.routed_prefix(addr, when);
        ASSERT_EQ(a.has_value(), b.has_value()) << addr.to_string();
        if (a) {
            EXPECT_EQ(a->prefix.to_string(), b->prefix.to_string());
            EXPECT_EQ(a->value, b->value);
        }
    }
    EXPECT_TRUE(fast.fast_lookup_compiled(month));
    EXPECT_FALSE(slow.fast_lookup_compiled(month));
}

}  // namespace
}  // namespace dynaddr::bgp

// Parameterized property sweeps across the protocol/policy space: the
// invariants the paper's reasoning rests on must hold for *every* lease
// duration, session timeout, and pool strategy, not just the preset
// values.

#include <gtest/gtest.h>

#include "atlas/cpe.hpp"
#include "atlas/controller.hpp"
#include "core/pipeline.hpp"
#include "dhcp/client.hpp"
#include "atlas/kroot.hpp"
#include "dhcp/server.hpp"
#include "isp/presets.hpp"
#include "netcore/error.hpp"
#include "ppp/session.hpp"

namespace dynaddr {
namespace {

using net::Duration;
using net::IPv4Address;
using net::IPv4Prefix;
using net::TimePoint;

// ---------------------------------------------------------------------------
// Property: a DHCP client that can always reach its server keeps one
// address forever, for any lease duration (RFC 2131's design goal, the
// premise of the paper's DHCP-vs-PPP split).
// ---------------------------------------------------------------------------

class DhcpLeaseSweep : public ::testing::TestWithParam<int> {};

TEST_P(DhcpLeaseSweep, HealthyClientNeverChangesAddress) {
    const auto lease = Duration::minutes(GetParam());
    sim::Simulation sim(TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                         pool::AllocationStrategy::Sticky, 0.5, 0.0},
        rng::Stream(1));
    dhcp::Server server({lease, std::nullopt}, pool, sim);
    dhcp::Client client({}, 1, server, sim, [] { return true; });
    int acquisitions = 0;
    client.set_on_acquired([&](IPv4Address) { ++acquisitions; });
    client.power_on();
    sim.run_until(TimePoint{60 * 86400});
    EXPECT_EQ(acquisitions, 1) << "lease " << lease.to_string();
    EXPECT_EQ(client.state(), dhcp::ClientState::Bound);
}

TEST_P(DhcpLeaseSweep, OutageShorterThanHalfLeaseIsInvisible) {
    const auto lease = Duration::minutes(GetParam());
    sim::Simulation sim(TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/24")},
                         pool::AllocationStrategy::Sticky, 10.0, 0.0},
        rng::Stream(1));
    dhcp::Server server({lease, std::nullopt}, pool, sim);
    bool link = true;
    dhcp::Client client({}, 1, server, sim, [&] { return link; });
    std::vector<IPv4Address> acquired;
    client.set_on_acquired([&](IPv4Address a) { acquired.push_back(a); });
    client.power_on();
    // Outage of a third of the lease right after a renewal: the lease is
    // always still valid when the link returns — even with vicious churn
    // the address cannot move.
    sim.run_until(TimePoint{lease.count() / 2 + 5});
    link = false;
    client.link_lost();
    sim.run_until(TimePoint{lease.count() / 2 + 5 + lease.count() / 3});
    link = true;
    client.link_restored();
    sim.run_until(TimePoint{10 * lease.count()});
    ASSERT_GE(acquired.size(), 1u);
    for (const auto& addr : acquired) EXPECT_EQ(addr, acquired.front());
}

INSTANTIATE_TEST_SUITE_P(LeaseDurations, DhcpLeaseSweep,
                         ::testing::Values(30, 60, 120, 240, 720, 1440, 10080),
                         [](const auto& info) {
                             return "minutes_" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property: a PPP session with Session-Timeout d produces accounting
// sessions of exactly d (absent outages), for any d — this is what makes
// the total-time-fraction mode land on d.
// ---------------------------------------------------------------------------

class PppTimeoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(PppTimeoutSweep, SessionsLastExactlyTheTimeout) {
    const auto timeout = Duration::hours(GetParam());
    sim::Simulation sim(TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{IPv4Prefix::parse_or_throw("10.0.0.0/20")},
                         pool::AllocationStrategy::RandomSpread, 0.0, 0.0},
        rng::Stream(2));
    ppp::RadiusServer server({timeout}, pool, sim);
    ppp::Session session({}, 1, server, sim, rng::Stream(3), [] { return true; });
    session.power_on();
    sim.run_until(TimePoint{0} + timeout * 12 + Duration::hours(1));
    ASSERT_GE(server.records().size(), 10u);
    for (const auto& record : server.records()) {
        EXPECT_EQ(record.reason, ppp::StopReason::SessionTimeout);
        EXPECT_EQ(record.duration(), timeout);
    }
}

TEST_P(PppTimeoutSweep, PipelineRecoversTheConfiguredPeriod) {
    // End to end on a single-ISP world: configure d, detect d.
    const auto timeout = Duration::hours(GetParam());
    isp::ScenarioConfig config;
    config.window = {TimePoint::from_date(2015, 1, 1),
                     TimePoint::from_date(2015, 1, 1) + timeout * 40};
    isp::IspSpec spec;
    spec.asn = 64501;
    spec.name = "SweepNet";
    spec.countries = {"DE"};
    spec.pool_prefixes = {IPv4Prefix::parse_or_throw("100.96.0.0/22")};
    spec.announced_prefixes = {IPv4Prefix::parse_or_throw("100.96.0.0/16")};
    isp::Cohort cohort;
    cohort.probe_count = 6;
    cohort.protocol = atlas::CpeConfig::Wan::Ppp;
    cohort.session_timeout = timeout;
    cohort.skip_renumber_probability = 0.0;
    cohort.outages = {};  // default rates
    spec.cohorts = {cohort};
    config.isps = {spec};
    config.seed = 11;
    const auto scenario = isp::run_scenario(config);
    core::AnalysisPipeline pipeline;
    const auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                      scenario.registry, config.window);
    bool found = false;
    for (const auto& row : results.periodicity.as_rows)
        found = found || (row.asn == 64501 && row.d_hours == double(GetParam()));
    EXPECT_TRUE(found) << "period " << GetParam() << "h not recovered";
}

INSTANTIATE_TEST_SUITE_P(Timeouts, PppTimeoutSweep,
                         ::testing::Values(12, 22, 24, 36, 48, 92, 168),
                         [](const auto& info) {
                             return "hours_" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property: pool invariants hold under every allocation strategy.
// ---------------------------------------------------------------------------

class PoolStrategySweep
    : public ::testing::TestWithParam<pool::AllocationStrategy> {};

TEST_P(PoolStrategySweep, ChurnPreservesInvariants) {
    pool::PoolConfig config;
    config.prefixes = {IPv4Prefix::parse_or_throw("10.0.0.0/26"),
                       IPv4Prefix::parse_or_throw("10.0.1.0/26"),
                       IPv4Prefix::parse_or_throw("10.0.2.0/26")};
    config.strategy = GetParam();
    config.churn_per_hour = 0.2;
    config.locality_bias = 0.5;
    pool::AddressPool pool(config, rng::Stream(5));
    rng::Stream driver(6);
    std::map<pool::ClientId, IPv4Address> held;
    for (int step = 0; step < 3000; ++step) {
        const auto client = pool::ClientId(driver.uniform_int(1, 100));
        if (held.contains(client)) {
            pool.release(client);
            held.erase(client);
        } else {
            const auto addr =
                pool.allocate(client, TimePoint{step * 60}, std::nullopt,
                              TimePoint{0});
            if (addr) {
                // Never hand out an address someone else holds.
                for (const auto& [other, other_addr] : held)
                    ASSERT_NE(*addr, other_addr) << "double assignment";
                held[client] = *addr;
            }
        }
        ASSERT_EQ(pool.allocated_count(), held.size());
        ASSERT_EQ(pool.free_count() + pool.allocated_count(), pool.capacity());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PoolStrategySweep,
    ::testing::Values(pool::AllocationStrategy::Sticky,
                      pool::AllocationStrategy::Sequential,
                      pool::AllocationStrategy::RandomSpread,
                      pool::AllocationStrategy::PrefixHop),
    [](const auto& info) {
        switch (info.param) {
            case pool::AllocationStrategy::Sticky: return "Sticky";
            case pool::AllocationStrategy::Sequential: return "Sequential";
            case pool::AllocationStrategy::RandomSpread: return "RandomSpread";
            case pool::AllocationStrategy::PrefixHop: return "PrefixHop";
        }
        return "Unknown";
    });

// ---------------------------------------------------------------------------
// Property: the k-root thinning equivalence holds across cadences.
// ---------------------------------------------------------------------------

class ThinningSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThinningSweep, OutageBoundsMatchFullCadence) {
    // One 2 h network outage at noon; emit with base cadence = param
    // minutes and compare detector-facing bounds against full cadence.
    atlas::Timeline timeline(1);
    timeline.set_address(TimePoint{0},
                         atlas::PeerAddress::ipv4(IPv4Address(10, 0, 0, 1)));
    timeline.net_down_begin(TimePoint{43200});
    timeline.net_down_end(TimePoint{50400});
    timeline.finalize(TimePoint{86400});

    auto bounds = [&](Duration base) {
        atlas::KRootSamplingPolicy policy;
        policy.base_cadence = base;
        policy.dense_cadence = Duration::seconds(240);
        policy.dense_window = Duration::minutes(20);
        policy.partial_loss_probability = 0.0;
        const auto records = atlas::emit_kroot_records(
            timeline, {TimePoint{0}, TimePoint{86400}}, policy, rng::Stream(1));
        std::pair<std::int64_t, std::int64_t> out{-1, -1};
        for (const auto& r : records)
            if (r.success == 0) {
                if (out.first < 0) out.first = r.timestamp.unix_seconds();
                out.second = r.timestamp.unix_seconds();
            }
        return out;
    };
    const auto full = bounds(Duration::seconds(240));
    const auto thinned = bounds(Duration::minutes(GetParam()));
    EXPECT_EQ(full, thinned) << "base cadence " << GetParam() << " min";
}

INSTANTIATE_TEST_SUITE_P(Cadences, ThinningSweep,
                         ::testing::Values(4, 8, 60, 120, 240, 480),
                         [](const auto& info) {
                             return "minutes_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dynaddr

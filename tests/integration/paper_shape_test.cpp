// Regression locks for the headline shapes EXPERIMENTS.md reports: the
// benches only print them; these assertions keep them true. Two shared
// year-long runs (~1 s each).

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "isp/presets.hpp"

namespace dynaddr {
namespace {

class PaperWorldRun : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        config_ = new isp::ScenarioConfig(isp::presets::paper_scenario());
        scenario_ = new isp::ScenarioResult(isp::run_scenario(*config_));
        core::AnalysisPipeline pipeline;
        results_ = new core::AnalysisResults(
            pipeline.run(scenario_->bundle, scenario_->prefix_table,
                         scenario_->registry, config_->window));
    }
    static void TearDownTestSuite() {
        delete results_;
        delete scenario_;
        delete config_;
    }
    static isp::ScenarioConfig* config_;
    static isp::ScenarioResult* scenario_;
    static core::AnalysisResults* results_;
};

isp::ScenarioConfig* PaperWorldRun::config_ = nullptr;
isp::ScenarioResult* PaperWorldRun::scenario_ = nullptr;
core::AnalysisResults* PaperWorldRun::results_ = nullptr;

const core::Table5Row* find_row(const core::PeriodicityAnalysis& analysis,
                                std::uint32_t asn, double d) {
    for (const auto& row : analysis.as_rows)
        if (row.asn == asn && row.d_hours == d) return &row;
    return nullptr;
}

TEST_F(PaperWorldRun, Table5HeadlineRows) {
    const auto* orange = find_row(results_->periodicity, 3215, 168.0);
    ASSERT_NE(orange, nullptr) << "Orange weekly row missing";
    EXPECT_GE(orange->periodic_probes, 100);
    EXPECT_GE(orange->pct_max_le_d, 90.0);
    EXPECT_GE(orange->pct_harmonic, 90.0);

    const auto* dtag = find_row(results_->periodicity, 3320, 24.0);
    ASSERT_NE(dtag, nullptr) << "DTAG daily row missing";
    EXPECT_GE(dtag->periodic_probes, 45);
    EXPECT_GE(dtag->pct_harmonic, 85.0);

    const auto* bt = find_row(results_->periodicity, 2856, 337.0);
    ASSERT_NE(bt, nullptr) << "BT fortnightly row missing";
    EXPECT_LE(bt->periodic_probes, 20) << "BT periodicity is a minority";

    // Both Orange Polska periods, as in the paper.
    EXPECT_NE(find_row(results_->periodicity, 5617, 22.0), nullptr);
    EXPECT_NE(find_row(results_->periodicity, 5617, 24.0), nullptr);

    // Stable ISPs never produce rows.
    for (const auto& row : results_->periodicity.as_rows) {
        EXPECT_NE(row.asn, 6830u) << "LGI must not be periodic";
        EXPECT_NE(row.asn, 701u) << "Verizon must not be periodic";
        EXPECT_NE(row.asn, 7922u) << "Comcast must not be periodic";
    }
}

TEST_F(PaperWorldRun, Figure1ContinentShapes) {
    const auto& geo = results_->geography;
    ASSERT_TRUE(geo.by_continent.contains(bgp::Continent::Europe));
    ASSERT_TRUE(geo.by_continent.contains(bgp::Continent::NorthAmerica));
    const auto& eu = geo.by_continent.at(bgp::Continent::Europe);
    const auto& na = geo.by_continent.at(bgp::Continent::NorthAmerica);
    // Europe: daily and weekly modes.
    EXPECT_GT(eu.fraction_at(24.0), 0.10);
    EXPECT_GT(eu.fraction_at(168.0), 0.05);
    // North America: no daily mode, most time in >50-day tenures.
    EXPECT_LT(na.fraction_at(24.0), 0.05);
    EXPECT_GT(1.0 - na.fraction_at_or_below(50.0 * 24.0), 0.50);
}

TEST_F(PaperWorldRun, Table7PrefixShapes) {
    const core::Table7Row* orange = nullptr;
    const core::Table7Row* dtag = nullptr;
    for (const auto& row : results_->prefix_changes.as_rows) {
        if (row.asn == 3215) orange = &row;
        if (row.asn == 3320) dtag = &row;
    }
    ASSERT_NE(orange, nullptr);
    ASSERT_NE(dtag, nullptr);
    // Orange hops prefixes and /8s (paper: 68/67/53).
    EXPECT_GT(orange->pct_bgp(), 50.0);
    EXPECT_GT(orange->pct_8(), 40.0);
    // DTAG mostly stays local (paper: 24/28/24), and its /16 crossing
    // exceeds its BGP crossing (oversized aggregates).
    EXPECT_LT(dtag->pct_bgp(), 40.0);
    EXPECT_GT(dtag->pct_16(), dtag->pct_bgp());
    // Overall: a substantial share of changes leaves the routed prefix.
    EXPECT_GT(results_->prefix_changes.all.pct_bgp(), 25.0);
}

TEST_F(PaperWorldRun, Ipv6PrivacyShapes) {
    const auto& v6 = results_->ipv6_privacy;
    ASSERT_GT(v6.probes.size(), 300u);
    const double rotating_share =
        double(v6.rotating_probes) / double(v6.probes.size());
    EXPECT_NEAR(rotating_share, 0.90, 0.05) << "privacy-extensions share";
    ASSERT_GT(v6.rotation_cdf.sample_count(), 0u);
    EXPECT_NEAR(v6.rotation_cdf.quantile(0.5), 24.0, 1.0)
        << "RFC 4941 daily rotation";
}

class OutageWorldRun : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        config_ = new isp::ScenarioConfig(isp::presets::outage_scenario());
        scenario_ = new isp::ScenarioResult(isp::run_scenario(*config_));
        core::AnalysisPipeline pipeline;
        results_ = new core::AnalysisResults(
            pipeline.run(scenario_->bundle, scenario_->prefix_table,
                         scenario_->registry, config_->window));
    }
    static void TearDownTestSuite() {
        delete results_;
        delete scenario_;
        delete config_;
    }
    static isp::ScenarioConfig* config_;
    static isp::ScenarioResult* scenario_;
    static core::AnalysisResults* results_;

    static const core::Table6Row* row_for(std::uint32_t asn) {
        for (const auto& row : results_->cond_prob.as_rows)
            if (row.asn == asn) return &row;
        return nullptr;
    }
};

isp::ScenarioConfig* OutageWorldRun::config_ = nullptr;
isp::ScenarioResult* OutageWorldRun::scenario_ = nullptr;
core::AnalysisResults* OutageWorldRun::results_ = nullptr;

TEST_F(OutageWorldRun, Table6PppVersusDhcpSplit) {
    const auto* orange = row_for(3215);
    const auto* lgi = row_for(6830);
    ASSERT_NE(orange, nullptr);
    ASSERT_NE(lgi, nullptr);
    EXPECT_GE(orange->n, 50);
    EXPECT_GT(orange->pct_nw_over, 80.0) << "PPP renumbers on nearly every outage";
    EXPECT_LT(lgi->pct_nw_over, 10.0) << "sticky DHCP almost never does";
    // Power tracks network per AS.
    EXPECT_GT(orange->pct_pw_over, 80.0);
    EXPECT_LT(lgi->pct_pw_over, 10.0);
    // The All row sits between the regimes.
    EXPECT_GT(results_->cond_prob.all.pct_nw_over, 20.0);
    EXPECT_LT(results_->cond_prob.all.pct_nw_over, 80.0);
}

TEST_F(OutageWorldRun, Figure9DurationRamp) {
    const auto lgi = core::duration_bins_for_as(*results_, 6830);
    // Sub-hour bins: essentially no renumbering (bins 0-4 cover < 1 h).
    double short_total = 0.0, short_renumbered = 0.0;
    for (std::size_t b = 0; b <= 4; ++b) {
        short_total += lgi.total.bin_weight(b);
        short_renumbered += lgi.renumbered.bin_weight(b);
    }
    ASSERT_GT(short_total, 100.0);
    EXPECT_LT(short_renumbered / short_total, 0.03);
    // Day-plus bins: a solid majority renumbered (bins 9-11).
    double long_total = 0.0, long_renumbered = 0.0;
    for (std::size_t b = 9; b <= 11; ++b) {
        long_total += lgi.total.bin_weight(b);
        long_renumbered += lgi.renumbered.bin_weight(b);
    }
    ASSERT_GT(long_total, 10.0);
    EXPECT_GT(long_renumbered / long_total, 0.60);

    const auto orange = core::duration_bins_for_as(*results_, 3215);
    double orange_short_total = 0.0, orange_short_renumbered = 0.0;
    for (std::size_t b = 0; b <= 4; ++b) {
        orange_short_total += orange.total.bin_weight(b);
        orange_short_renumbered += orange.renumbered.bin_weight(b);
    }
    ASSERT_GT(orange_short_total, 100.0);
    EXPECT_GT(orange_short_renumbered / orange_short_total, 0.85)
        << "Orange renumbers even on the shortest outages";
}

TEST_F(OutageWorldRun, Figure6FirmwareRecovery) {
    int matched = 0;
    for (const auto& inferred : results_->firmware.release_days)
        for (const auto& truth : config_->firmware_releases)
            if (inferred >= truth - net::Duration::days(1) &&
                inferred <= truth + net::Duration::days(2))
                ++matched;
    EXPECT_EQ(matched, int(config_->firmware_releases.size()))
        << "every firmware release recovered";
    EXPECT_LE(results_->firmware.release_days.size(),
              config_->firmware_releases.size() + 1)
        << "no spurious spike periods";
}

}  // namespace
}  // namespace dynaddr

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/presets.hpp"

namespace dynaddr {
namespace {

using core::ProbeCategory;

/// One shared quick-scenario run for all tests in this file (the sim takes
/// ~100 ms; results are immutable).
class QuickScenario : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        config_ = new isp::ScenarioConfig(isp::presets::quick_scenario());
        scenario_ = new isp::ScenarioResult(isp::run_scenario(*config_));
        core::AnalysisPipeline pipeline;
        results_ = new core::AnalysisResults(
            pipeline.run(scenario_->bundle, scenario_->prefix_table,
                         scenario_->registry, config_->window));
    }
    static void TearDownTestSuite() {
        delete results_;
        delete scenario_;
        delete config_;
    }

    static isp::ScenarioConfig* config_;
    static isp::ScenarioResult* scenario_;
    static core::AnalysisResults* results_;
};

isp::ScenarioConfig* QuickScenario::config_ = nullptr;
isp::ScenarioResult* QuickScenario::scenario_ = nullptr;
core::AnalysisResults* QuickScenario::results_ = nullptr;

TEST_F(QuickScenario, DeterministicAcrossRuns) {
    const auto again = isp::run_scenario(*config_);
    ASSERT_EQ(again.bundle.connection_log.size(),
              scenario_->bundle.connection_log.size());
    for (std::size_t i = 0; i < again.bundle.connection_log.size(); i += 37) {
        EXPECT_EQ(again.bundle.connection_log[i].start,
                  scenario_->bundle.connection_log[i].start);
        EXPECT_EQ(again.bundle.connection_log[i].address,
                  scenario_->bundle.connection_log[i].address);
    }
    EXPECT_EQ(again.bundle.kroot_pings.size(),
              scenario_->bundle.kroot_pings.size());
}

TEST_F(QuickScenario, SpecialProbesAreFilteredCorrectly) {
    // Every special probe must land in a non-analyzable category.
    for (const auto& truth : scenario_->truths) {
        if (!truth.special) continue;
        const auto category = results_->filter.category.at(truth.probe);
        EXPECT_NE(category, ProbeCategory::Analyzable)
            << "special probe " << truth.probe << " leaked into analysis";
    }
    // Counts match the configured mix for unambiguous categories.
    EXPECT_EQ(results_->filter.count(ProbeCategory::Ipv6Only),
              config_->specials.ipv6_only);
    EXPECT_EQ(results_->filter.count(ProbeCategory::DualStack),
              config_->specials.dual_stack);
    EXPECT_EQ(results_->filter.count(ProbeCategory::AlternatingMultihomed),
              config_->specials.untagged_alternating);
    EXPECT_EQ(results_->filter.count(ProbeCategory::TaggedMultihomed),
              config_->specials.tagged_stable +
                  config_->specials.tagged_alternating);
    EXPECT_EQ(results_->filter.count(ProbeCategory::TestingAddressOnly),
              config_->specials.testing_then_stable);
}

TEST_F(QuickScenario, MoversAreMultiAs) {
    for (const auto& truth : scenario_->truths) {
        if (!truth.mover) continue;
        EXPECT_TRUE(results_->mapping.multi_as.contains(truth.probe))
            << "mover " << truth.probe << " not flagged multi-AS";
    }
}

TEST_F(QuickScenario, PeriodicIspsRecovered) {
    // DTAG: 24 h period; Orange: 168 h. The pipeline must find both from
    // data alone.
    bool found_dtag = false, found_orange = false;
    for (const auto& row : results_->periodicity.as_rows) {
        if (row.asn == 3320 && row.d_hours == 24.0) found_dtag = true;
        if (row.asn == 3215 && row.d_hours == 168.0) found_orange = true;
    }
    EXPECT_TRUE(found_dtag);
    EXPECT_TRUE(found_orange);
    // LGI and Verizon must NOT appear as periodic.
    for (const auto& row : results_->periodicity.as_rows) {
        EXPECT_NE(row.asn, 6830u);
        EXPECT_NE(row.asn, 701u);
    }
}

TEST_F(QuickScenario, InferredPeriodMatchesGroundTruthPerProbe) {
    // Per-probe: every analyzable PPP probe with a configured session
    // timeout and a dominant mode must report that period.
    std::map<atlas::ProbeId, const isp::ProbeTruth*> truth_by_probe;
    for (const auto& truth : scenario_->truths)
        truth_by_probe[truth.probe] = &truth;
    int checked = 0;
    for (const auto& probe : results_->periodicity.probes) {
        if (!probe.period_hours) continue;
        const auto* truth = truth_by_probe.at(probe.probe);
        if (truth->special || truth->mover || !truth->configured_period) continue;
        EXPECT_DOUBLE_EQ(*probe.period_hours,
                         truth->configured_period->to_hours())
            << "probe " << probe.probe;
        ++checked;
    }
    EXPECT_GE(checked, 10);
}

TEST_F(QuickScenario, GroundTruthChangesMatchDetectedChanges) {
    // For analyzable non-mover CPE probes, the pipeline's change count
    // must match the simulator's timeline (which is ground truth).
    std::map<atlas::ProbeId, const atlas::Timeline*> timelines;
    for (const auto& timeline : scenario_->timelines)
        timelines[timeline.probe()] = &timeline;
    int compared = 0;
    for (const auto& changes : results_->changes) {
        auto it = timelines.find(changes.probe);
        if (it == timelines.end()) continue;  // special probe
        const auto truth_changes = it->second->address_changes();
        EXPECT_EQ(changes.changes.size(), truth_changes.size())
            << "probe " << changes.probe;
        ++compared;
    }
    EXPECT_GE(compared, 15);
}

TEST_F(QuickScenario, RadiusAccountingAgreesWithDetectedDurations) {
    // DTAG's RADIUS records are simulator ground truth for session length;
    // the connection-log-derived spans must agree for interior sessions.
    const auto& records = scenario_->radius_records.at(3320);
    ASSERT_FALSE(records.empty());
    int full_days = 0;
    for (const auto& record : records)
        if (std::abs(record.duration().to_hours() - 24.0) < 0.1) ++full_days;
    EXPECT_GT(full_days, 200);  // 8 probes x ~59 days, minus outage cuts
}

TEST_F(QuickScenario, PrefixTableCoversAllAnalyzableAddresses) {
    for (const auto& log : results_->filter.analyzable) {
        if (results_->mapping.unmapped.contains(log.probe)) continue;
        for (const auto& entry : log.entries) {
            if (!entry.address.is_v4()) continue;
            EXPECT_TRUE(scenario_->prefix_table
                            .origin_as(entry.address.v4, entry.start)
                            .has_value())
                << entry.address.to_string();
        }
    }
}

TEST_F(QuickScenario, OutagesDetectedForOutageHeavyProbes) {
    std::size_t network = 0, power = 0;
    for (const auto& [probe, list] : results_->network_outages)
        network += list.size();
    for (const auto& [probe, list] : results_->power_outages)
        power += list.size();
    EXPECT_GT(network, 5u);
    EXPECT_GT(power, 3u);
}

TEST_F(QuickScenario, DetectedOutagesCorrespondToPlannedOnes) {
    // Every detected network outage of a CPE probe must overlap a planned
    // outage window (no phantom detections). Power detection bounds are
    // ping-gap based, so allow the sampling slack.
    std::map<atlas::ProbeId, const isp::ProbeTruth*> truth_by_probe;
    for (const auto& truth : scenario_->truths)
        truth_by_probe[truth.probe] = &truth;
    int checked = 0;
    for (const auto& [probe, outages] : results_->network_outages) {
        const auto* truth = truth_by_probe.at(probe);
        for (const auto& outage : outages) {
            bool matched = false;
            for (const auto& planned : truth->outages) {
                if (planned.kind != isp::PlannedOutage::Kind::Network) continue;
                if (outage.begin <= planned.when.end &&
                    planned.when.begin <= outage.end + net::Duration::seconds(300))
                    matched = true;
            }
            EXPECT_TRUE(matched) << "phantom network outage on probe " << probe
                                 << " at " << outage.begin.to_string();
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST_F(QuickScenario, PppProbesRenumberOnOutagesMoreThanDhcp) {
    // Orange (PPP) should show a much higher change-per-outage rate than
    // LGI (sticky DHCP).
    auto rate_for = [&](std::uint32_t asn) {
        int outages = 0, changes = 0;
        auto feed = [&](const auto& outcomes_map) {
            for (const auto& [probe, outcomes] : outcomes_map) {
                auto as = results_->mapping.as_of(probe);
                if (!as || *as != asn) continue;
                for (const auto& outcome : outcomes) {
                    ++outages;
                    changes += outcome.address_change;
                }
            }
        };
        feed(results_->network_outcomes);
        feed(results_->power_outcomes);
        return std::pair{outages, changes};
    };
    const auto [orange_outages, orange_changes] = rate_for(3215);
    const auto [lgi_outages, lgi_changes] = rate_for(6830);
    ASSERT_GT(orange_outages, 0);
    ASSERT_GT(lgi_outages, 0);
    const double orange_rate = double(orange_changes) / orange_outages;
    const double lgi_rate = double(lgi_changes) / lgi_outages;
    EXPECT_GT(orange_rate, 0.8);
    EXPECT_LT(lgi_rate, 0.4);
}

TEST_F(QuickScenario, ReportsRenderWithoutThrowing) {
    EXPECT_FALSE(core::render_table2(results_->filter).empty());
    EXPECT_FALSE(core::render_table5(results_->periodicity).empty());
    EXPECT_FALSE(core::render_table6(results_->cond_prob).empty());
    EXPECT_FALSE(core::render_table7(results_->prefix_changes).empty());
    EXPECT_FALSE(core::render_summary(*results_).empty());
    EXPECT_FALSE(
        core::render_firmware_series(results_->firmware, results_->window)
            .empty());
}

TEST(AdminRenumberingIntegration, PlantedEventIsRecoveredEndToEnd) {
    // Quick scenario + a planted block swap in LGI (index 2) at day 30.
    auto config = isp::presets::quick_scenario();
    auto& lgi = config.isps[2];
    ASSERT_EQ(lgi.asn, 6830u);
    // Enough subscribers that the retired block holds >= 3 probes.
    lgi.cohorts.front().probe_count = 40;
    lgi.pool_prefixes.push_back(net::IPv4Prefix::parse_or_throw("95.80.0.0/22"));
    lgi.announced_prefixes.push_back(
        net::IPv4Prefix::parse_or_throw("95.80.0.0/16"));
    isp::AdminRenumbering event;
    event.when = net::TimePoint::from_date(2015, 1, 20);
    event.retire_pool_index = 0;
    event.enable_pool_index = lgi.pool_prefixes.size() - 1;
    lgi.admin_events.push_back(event);

    const auto scenario = isp::run_scenario(config);
    core::AnalysisPipeline pipeline;
    core::PipelineConfig pipeline_config;
    pipeline_config.admin.quiet_after = net::Duration::days(10);
    // The two-month window leaves little room; a few block users churn
    // away days before the event, so widen the burst window slightly.
    pipeline_config.admin.departure_window = net::Duration::days(5);
    core::AnalysisPipeline tuned(pipeline_config);
    const auto results = tuned.run(scenario.bundle, scenario.prefix_table,
                                   scenario.registry, config.window);
    bool found = false;
    for (const auto& detected : results.admin_events)
        found = found ||
                (detected.asn == 6830 &&
                 detected.retired_prefix ==
                     net::IPv4Prefix::parse_or_throw("62.163.0.0/16"));
    EXPECT_TRUE(found) << "planted administrative renumbering not recovered";
    // The retired aggregate must vanish from the February snapshot.
    EXPECT_FALSE(scenario.prefix_table.origin_as(
        net::IPv4Address::parse_or_throw("62.163.0.1"),
        net::TimePoint::from_date(2015, 2, 10)));
    EXPECT_EQ(scenario.prefix_table.origin_as(
                  net::IPv4Address::parse_or_throw("95.80.0.1"),
                  net::TimePoint::from_date(2015, 2, 10)),
              6830u);
    // And without a planted event the same world stays clean.
    const auto clean_config = isp::presets::quick_scenario();
    const auto clean = isp::run_scenario(clean_config);
    const auto clean_results = tuned.run(clean.bundle, clean.prefix_table,
                                         clean.registry, clean_config.window);
    EXPECT_TRUE(clean_results.admin_events.empty());
}

TEST(PaperWorld, AnnouncedPrefixesAreDisjointAcrossIsps) {
    const auto world = isp::presets::paper_world();
    std::vector<std::pair<net::IPv4Prefix, std::string>> announced;
    for (const auto& isp : world)
        for (const auto& prefix : isp.announced_prefixes)
            announced.emplace_back(prefix, isp.name);
    for (std::size_t i = 0; i < announced.size(); ++i)
        for (std::size_t j = i + 1; j < announced.size(); ++j)
            EXPECT_FALSE(announced[i].first.contains(announced[j].first) ||
                         announced[j].first.contains(announced[i].first))
                << announced[i].second << " " << announced[i].first.to_string()
                << " overlaps " << announced[j].second << " "
                << announced[j].first.to_string();
}

TEST(PaperWorld, EveryIspIsInternallyConsistent) {
    for (const auto& isp : isp::presets::paper_world()) {
        EXPECT_GT(isp.asn, 0u) << isp.name;
        EXPECT_FALSE(isp.cohorts.empty()) << isp.name;
        EXPECT_FALSE(isp.countries.empty()) << isp.name;
        std::uint64_t capacity = 0;
        int probes = 0;
        for (const auto& prefix : isp.pool_prefixes) capacity += prefix.size();
        for (const auto& cohort : isp.cohorts) probes += cohort.probe_count;
        EXPECT_GT(capacity, std::uint64_t(probes) * 4) << isp.name;
        for (const auto& pool : isp.pool_prefixes) {
            int covering = 0;
            for (const auto& agg : isp.announced_prefixes)
                covering += agg.contains(pool);
            EXPECT_EQ(covering, 1) << isp.name << " " << pool.to_string();
        }
    }
}

}  // namespace
}  // namespace dynaddr

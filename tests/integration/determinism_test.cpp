// Byte-level determinism of the simulator output. The timer-wheel event
// engine must preserve the exact event interleaving of the original
// ordered-map queue: two runs of any preset must serialize to identical
// CSV bytes, at any thread count, on every dataset in the bundle.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "atlas/datasets.hpp"
#include "isp/presets.hpp"
#include "isp/world.hpp"

namespace dynaddr {
namespace {

/// Serializes every dataset of a bundle to one CSV blob, in a fixed order.
std::string serialize_bundle(const atlas::DatasetBundle& bundle) {
    std::ostringstream out;
    atlas::write_connection_log_csv(out, bundle.connection_log);
    atlas::write_kroot_csv(out, bundle.kroot_pings);
    atlas::write_uptime_csv(out, bundle.uptime_records);
    atlas::write_probes_csv(out, bundle.probes);
    return std::move(out).str();
}

TEST(SimulatorDeterminism, QuickPresetIsByteIdenticalAcrossRuns) {
    const auto config = isp::presets::quick_scenario();
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(SimulatorDeterminism, OutagePresetIsByteIdenticalAcrossRuns) {
    const auto config = isp::presets::outage_scenario();
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dynaddr

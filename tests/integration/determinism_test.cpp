// Byte-level determinism of the simulator output. The timer-wheel event
// engine must preserve the exact event interleaving of the original
// ordered-map queue: two runs of any preset must serialize to identical
// CSV bytes, at any thread count, on every dataset in the bundle.
//
// Observability must be a pure observer: enabling trace-level logging and
// span collection must not perturb a single byte of the analysis output.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <tuple>
#include <sstream>
#include <string>
#include <thread>

#include "atlas/datasets.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/presets.hpp"
#include "isp/world.hpp"
#include "netcore/obs/flight_recorder.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/profiler.hpp"
#include "netcore/obs/progress.hpp"
#include "netcore/obs/stats_server.hpp"
#include "netcore/obs/timeseries.hpp"
#include "netcore/obs/trace.hpp"
#include "sim/cause_ledger.hpp"
#include "sim/faults.hpp"

namespace dynaddr {
namespace {

/// Serializes every dataset of a bundle to one CSV blob, in a fixed order.
std::string serialize_bundle(const atlas::DatasetBundle& bundle) {
    std::ostringstream out;
    atlas::write_connection_log_csv(out, bundle.connection_log);
    atlas::write_kroot_csv(out, bundle.kroot_pings);
    atlas::write_uptime_csv(out, bundle.uptime_records);
    atlas::write_probes_csv(out, bundle.probes);
    return std::move(out).str();
}

TEST(SimulatorDeterminism, QuickPresetIsByteIdenticalAcrossRuns) {
    const auto config = isp::presets::quick_scenario();
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(SimulatorDeterminism, OutagePresetIsByteIdenticalAcrossRuns) {
    const auto config = isp::presets::outage_scenario();
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/// Simulates a preset, analyzes it, and fingerprints every rendered table —
/// the full user-visible analysis output.
std::string analysis_fingerprint(const isp::ScenarioConfig& config) {
    const auto scenario = isp::run_scenario(config);
    const auto results = core::AnalysisPipeline{}.run(
        scenario.bundle, scenario.prefix_table, scenario.registry);
    std::string out = serialize_bundle(scenario.bundle);
    out += core::render_summary(results);
    out += core::render_table2(results.filter);
    out += core::render_table5(results.periodicity);
    out += core::render_table6(results.cond_prob);
    out += core::render_table7(results.prefix_changes);
    return out;
}

/// Runs the fingerprint with obs fully off, then fully on (trace-level
/// logging into a throwaway sink + span collection), and restores state.
void expect_obs_invariant(const isp::ScenarioConfig& config) {
    const auto baseline = analysis_fingerprint(config);
    ASSERT_FALSE(baseline.empty());

    const auto old_level = obs::log_level();
    std::ostringstream log_capture;
    obs::set_log_sink(&log_capture);
    obs::set_log_level(obs::LogLevel::Trace);
    obs::enable_trace();
    const auto observed = analysis_fingerprint(config);
    obs::disable_trace();
    obs::clear_trace();
    obs::set_log_level(old_level);
    obs::set_log_sink(nullptr);

    EXPECT_EQ(baseline, observed);
    // The run really was observed: logging fired.
    EXPECT_FALSE(log_capture.str().empty());
}

// -- fault-injection determinism -----------------------------------------
// The fault layer must be (a) invisible when off — an installed injector
// with an all-zero plan, or no plan at all, changes nothing — and (b)
// bit-reproducible when on: the same plan and seed give byte-identical
// output, while a different fault seed gives a different world.

TEST(FaultDeterminism, SameSeedSamePlanIsByteIdentical) {
    auto config = isp::presets::quick_scenario();
    config.faults = sim::FaultPlan::parse("chaos,seed=7");
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(FaultDeterminism, EmptyPlanMatchesNoInjector) {
    auto config = isp::presets::quick_scenario();
    const auto bare = serialize_bundle(isp::run_scenario(config).bundle);
    config.faults = sim::FaultPlan{};  // injector installed, all rates zero
    const auto gated = serialize_bundle(isp::run_scenario(config).bundle);
    EXPECT_EQ(bare, gated);
}

TEST(FaultDeterminism, DifferentFaultSeedsDiverge) {
    auto config = isp::presets::quick_scenario();
    config.faults = sim::FaultPlan::parse("chaos,seed=1");
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    config.faults->seed = 2;
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    EXPECT_NE(first, second);
}

TEST(FaultDeterminism, FaultPlanSpecRoundTrips) {
    const auto plan = sim::FaultPlan::parse(
        "lossy,crashy,dhcp.drop=0.25,ppp.delay=0.1,seed=42,active=0.5");
    const auto reparsed = sim::FaultPlan::parse(plan.to_string());
    EXPECT_EQ(plan.to_string(), reparsed.to_string());
    EXPECT_EQ(reparsed.seed, 42u);
    EXPECT_DOUBLE_EQ(reparsed.dhcp.drop, 0.25);
    EXPECT_DOUBLE_EQ(reparsed.active_fraction, 0.5);
}

TEST(ObsDeterminism, QuickPresetAnalysisUnaffectedByObservability) {
    expect_obs_invariant(isp::presets::quick_scenario());
}

TEST(ObsDeterminism, OutagePresetAnalysisUnaffectedByObservability) {
    expect_obs_invariant(isp::presets::outage_scenario());
}

TEST(ObsDeterminism, PaperPresetAnalysisUnaffectedByObservability) {
    expect_obs_invariant(isp::presets::paper_scenario());
}

// -- cause-ledger determinism --------------------------------------------
// The cause ledger is a pure observer with the same contract as the obs
// stack: installing it (production config, no record retention) must not
// perturb a byte of simulator output or analysis rendering, and with
// retention on, the ledger must mirror the ground-truth address changes
// exactly once each.

void expect_ledger_invariant(const isp::ScenarioConfig& config) {
    const auto baseline = analysis_fingerprint(config);
    ASSERT_FALSE(baseline.empty());
    std::string observed;
    std::uint64_t recorded = 0;
    {
        sim::CauseLedgerConfig ledger_config;
        ledger_config.keep_records = false;  // production shape: O(1) memory
        sim::ScopedCauseLedger ledger(ledger_config);
        observed = analysis_fingerprint(config);
        recorded = ledger.ledger().total_records();
    }
    EXPECT_EQ(baseline, observed);
    EXPECT_GT(recorded, 0u) << "the run really was observed";
}

TEST(ObsDeterminism, QuickPresetAnalysisUnaffectedByCauseLedger) {
    expect_ledger_invariant(isp::presets::quick_scenario());
}

TEST(ObsDeterminism, OutagePresetAnalysisUnaffectedByCauseLedger) {
    expect_ledger_invariant(isp::presets::outage_scenario());
}

TEST(ObsDeterminism, PaperPresetAnalysisUnaffectedByCauseLedger) {
    expect_ledger_invariant(isp::presets::paper_scenario());
}

TEST(CauseLedgerExactlyOnce, EveryGroundTruthChangeHasOneRecord) {
    // Every IPv4 address change in the simulator's ground-truth timelines
    // appears in the ledger exactly once, keyed by (probe, instant,
    // old address, new address) — no drops, no duplicates.
    sim::ScopedCauseLedger ledger;  // retention on
    const auto scenario = isp::run_scenario(isp::presets::quick_scenario());
    const auto& records = ledger.ledger().records();

    std::map<std::tuple<atlas::ProbeId, std::int64_t, std::uint32_t,
                        std::uint32_t>,
             int>
        seen;
    for (const auto& record : records)
        ++seen[{record.probe, record.at.unix_seconds(), record.old_addr.value(),
                record.new_addr.value()}];

    std::size_t truth_changes = 0;
    for (const auto& timeline : scenario.timelines) {
        for (const auto& change : timeline.address_changes()) {
            if (change.from.family != atlas::PeerAddress::Family::IPv4 ||
                change.to.family != atlas::PeerAddress::Family::IPv4)
                continue;
            ++truth_changes;
            const auto it = seen.find({timeline.probe(),
                                       change.at.unix_seconds(),
                                       change.from.v4.value(),
                                       change.to.v4.value()});
            ASSERT_NE(it, seen.end())
                << "probe " << timeline.probe() << " change at "
                << change.at.unix_seconds() << " missing from the ledger";
            EXPECT_EQ(it->second, 1)
                << "probe " << timeline.probe() << " change at "
                << change.at.unix_seconds() << " recorded more than once";
        }
    }
    ASSERT_GT(truth_changes, 0u);
    EXPECT_EQ(records.size(), truth_changes)
        << "ledger must not invent records beyond the ground truth";
}

/// One GET against the live stats endpoint; returns the bytes received.
std::size_t poll_metrics(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return 0;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    std::size_t received = 0;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                  sizeof address) == 0) {
        const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
        if (::send(fd, request, sizeof request - 1, 0) > 0) {
            char buffer[4096];
            for (;;) {
                const auto got = ::recv(fd, buffer, sizeof buffer, 0);
                if (got <= 0) break;
                received += std::size_t(got);
            }
        }
    }
    ::close(fd);
    return received;
}

/// The live layer — time-series recorder ticking in simulated time, the
/// stats endpoint being polled from another thread, the flight recorder
/// capturing every record, the memory accountants publishing, the
/// progress watermarks, and the 97 Hz sampling profiler interrupting the
/// run with SIGPROF — must all be pure observers: fingerprints with
/// everything on match a bare run byte for byte.
void expect_live_obs_invariant(const isp::ScenarioConfig& config) {
    const auto baseline = analysis_fingerprint(config);
    ASSERT_FALSE(baseline.empty());

    auto& recorder = obs::SeriesRecorder::instance();
    recorder.disable();
    recorder.configure({3600.0, 512});
    recorder.enable();
    obs::enable_flight_recorder(128, /*install_handlers=*/false);
    obs::clear_profile();
    obs::profiler_register_current_thread("determinism-main");
    obs::start_profiler(97.0);
    obs::StatsServer server(0);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> polled{0};
    std::thread poller([&] {
        while (!stop.load()) {
            polled.fetch_add(poll_metrics(server.port()));
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    });

    const auto observed = analysis_fingerprint(config);

    stop.store(true);
    poller.join();
    server.stop();
    obs::stop_profiler();
    obs::profiler_unregister_current_thread();
    obs::disable_flight_recorder();
    recorder.disable();

    EXPECT_EQ(baseline, observed);
    // The run really was watched: samples were taken in simulated time,
    // the endpoint answered while the analysis ran, the accountants
    // published, the progress watermarks moved, and the profiler
    // actually interrupted the run.
    EXPECT_GT(recorder.samples_taken(), 0u);
    EXPECT_GT(polled.load(), 0u);
    EXPECT_FALSE(obs::flight_records().empty());
    EXPECT_GT(obs::profiler_samples_taken(), 0u);
    const auto mem = obs::mem_final_report();
    ASSERT_TRUE(mem.has_value());
    EXPECT_GT(mem->accounted_bytes, 0u);
    const auto progress = obs::progress_snapshot();
    EXPECT_EQ(progress.sim_now, config.window.end);
    EXPECT_GT(progress.events_executed, 0u);
    obs::clear_profile();
}

TEST(LiveObsDeterminism, QuickPresetUnaffectedByLiveObservers) {
    expect_live_obs_invariant(isp::presets::quick_scenario());
}

TEST(LiveObsDeterminism, OutagePresetUnaffectedByLiveObservers) {
    expect_live_obs_invariant(isp::presets::outage_scenario());
}

TEST(LiveObsDeterminism, PaperPresetUnaffectedByLiveObservers) {
    expect_live_obs_invariant(isp::presets::paper_scenario());
}

}  // namespace
}  // namespace dynaddr

// Byte-level determinism of the simulator output. The timer-wheel event
// engine must preserve the exact event interleaving of the original
// ordered-map queue: two runs of any preset must serialize to identical
// CSV bytes, at any thread count, on every dataset in the bundle.
//
// Observability must be a pure observer: enabling trace-level logging and
// span collection must not perturb a single byte of the analysis output.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "atlas/datasets.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/presets.hpp"
#include "isp/world.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/trace.hpp"

namespace dynaddr {
namespace {

/// Serializes every dataset of a bundle to one CSV blob, in a fixed order.
std::string serialize_bundle(const atlas::DatasetBundle& bundle) {
    std::ostringstream out;
    atlas::write_connection_log_csv(out, bundle.connection_log);
    atlas::write_kroot_csv(out, bundle.kroot_pings);
    atlas::write_uptime_csv(out, bundle.uptime_records);
    atlas::write_probes_csv(out, bundle.probes);
    return std::move(out).str();
}

TEST(SimulatorDeterminism, QuickPresetIsByteIdenticalAcrossRuns) {
    const auto config = isp::presets::quick_scenario();
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(SimulatorDeterminism, OutagePresetIsByteIdenticalAcrossRuns) {
    const auto config = isp::presets::outage_scenario();
    const auto first = serialize_bundle(isp::run_scenario(config).bundle);
    const auto second = serialize_bundle(isp::run_scenario(config).bundle);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/// Simulates a preset, analyzes it, and fingerprints every rendered table —
/// the full user-visible analysis output.
std::string analysis_fingerprint(const isp::ScenarioConfig& config) {
    const auto scenario = isp::run_scenario(config);
    const auto results = core::AnalysisPipeline{}.run(
        scenario.bundle, scenario.prefix_table, scenario.registry);
    std::string out = serialize_bundle(scenario.bundle);
    out += core::render_summary(results);
    out += core::render_table2(results.filter);
    out += core::render_table5(results.periodicity);
    out += core::render_table6(results.cond_prob);
    out += core::render_table7(results.prefix_changes);
    return out;
}

/// Runs the fingerprint with obs fully off, then fully on (trace-level
/// logging into a throwaway sink + span collection), and restores state.
void expect_obs_invariant(const isp::ScenarioConfig& config) {
    const auto baseline = analysis_fingerprint(config);
    ASSERT_FALSE(baseline.empty());

    const auto old_level = obs::log_level();
    std::ostringstream log_capture;
    obs::set_log_sink(&log_capture);
    obs::set_log_level(obs::LogLevel::Trace);
    obs::enable_trace();
    const auto observed = analysis_fingerprint(config);
    obs::disable_trace();
    obs::clear_trace();
    obs::set_log_level(old_level);
    obs::set_log_sink(nullptr);

    EXPECT_EQ(baseline, observed);
    // The run really was observed: logging fired.
    EXPECT_FALSE(log_capture.str().empty());
}

TEST(ObsDeterminism, QuickPresetAnalysisUnaffectedByObservability) {
    expect_obs_invariant(isp::presets::quick_scenario());
}

TEST(ObsDeterminism, OutagePresetAnalysisUnaffectedByObservability) {
    expect_obs_invariant(isp::presets::outage_scenario());
}

TEST(ObsDeterminism, PaperPresetAnalysisUnaffectedByObservability) {
    expect_obs_invariant(isp::presets::paper_scenario());
}

}  // namespace
}  // namespace dynaddr

// Outage forensics on exported datasets.
//
// Demonstrates the file-based workflow a user with *real* RIPE Atlas data
// would follow: datasets live in CSV files on disk, are loaded through
// the public readers, and the pipeline attributes every inter-connection
// gap of a chosen probe to a network outage, a power outage, or no outage
// — the paper's §3.6 story, replayed for one device.

#include <filesystem>
#include <iostream>

#include "atlas/binary_bundle.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/presets.hpp"

int main() {
    using namespace dynaddr;

    // 1. Produce a dataset directory (stand-in for scraped RIPE data).
    const std::string dir =
        (std::filesystem::temp_directory_path() / "dynaddr_example_data").string();
    auto config = isp::presets::quick_scenario();
    {
        const auto scenario = isp::run_scenario(config);
        atlas::write_bundle(dir, scenario.bundle);
        std::cout << "Wrote datasets to " << dir << "\n";
    }

    // 2. Load them back through the public readers — from here on the
    //    code path is identical for real data. read_bundle_auto accepts
    //    the CSV directory written above or its DAB2 binary twin
    //    (`dynaddr convert`) interchangeably.
    const atlas::DatasetBundle bundle = atlas::read_bundle_auto(dir);
    std::cout << "Loaded " << bundle.connection_log.size()
              << " connection-log rows, " << bundle.kroot_pings.size()
              << " k-root records, " << bundle.uptime_records.size()
              << " uptime records, " << bundle.probes.size() << " probes\n\n";

    // A real-data user supplies pfx2as; here we rebuild it from presets.
    bgp::PrefixTable table;
    bgp::AsRegistry registry;
    for (const auto& isp : config.isps) {
        registry.add({isp.asn, isp.name, isp.countries.front(), isp.continent});
        for (const auto& prefix : isp.announced_prefixes)
            table.announce_range(bgp::month_key(2015, 1), bgp::month_key(2015, 12),
                                 prefix, isp.asn);
    }

    core::AnalysisPipeline pipeline;
    const auto results = pipeline.run(bundle, table, registry, config.window);
    std::cout << core::render_summary(results) << "\n";

    // 3. Pick the probe with the most detected outages and replay its
    //    gap-attribution story.
    atlas::ProbeId busiest = 0;
    std::size_t most = 0;
    for (const auto& [probe, outages] : results.network_outages) {
        const auto power_it = results.power_outages.find(probe);
        const std::size_t total =
            outages.size() +
            (power_it == results.power_outages.end() ? 0 : power_it->second.size());
        if (total > most) {
            most = total;
            busiest = probe;
        }
    }
    if (busiest == 0) {
        std::cout << "No outages detected — nothing to attribute.\n";
        return 0;
    }

    const core::ProbeLog* log = nullptr;
    for (const auto& candidate : results.filter.analyzable)
        if (candidate.probe == busiest) log = &candidate;
    const auto& network = results.network_outages.at(busiest);
    const auto& power = results.power_outages.at(busiest);
    std::cout << "Probe " << busiest << ": " << network.size()
              << " network outages, " << power.size() << " power outages\n\n";

    const auto gaps = core::attribute_gaps(*log, network, power);
    int shown = 0;
    std::cout << "Gap attribution (first 15 inter-connection gaps):\n";
    for (const auto& gap : gaps) {
        if (shown++ >= 15) break;
        const char* cause = gap.cause == core::GapCause::NetworkOutage ? "network"
                            : gap.cause == core::GapCause::PowerOutage ? "power  "
                                                                       : "none   ";
        std::cout << "  " << gap.gap.begin.to_log_string() << " .. "
                  << gap.gap.end.to_log_string() << "  ("
                  << gap.gap.length().to_string() << ")  outage: " << cause
                  << "  address " << (gap.address_changed ? "CHANGED" : "kept")
                  << "\n";
    }

    std::filesystem::remove_all(dir);
    return 0;
}

// ISP policy explorer — build scenarios from scratch (no presets) and
// sweep the two policy axes the paper identifies:
//
//   1. DHCP lease duration x pool churn   -> how outage duration maps to
//      renumbering probability (the Figure 9 "LGI" regime), and
//   2. PPP session timeout on/off          -> periodic vs outage-driven
//      renumbering (the "Orange/DTAG" regime).

#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/world.hpp"
#include "netcore/ascii_chart.hpp"

namespace {

using namespace dynaddr;

/// A one-ISP world with the given knobs, over a half year.
isp::ScenarioConfig make_world(atlas::CpeConfig::Wan protocol,
                               net::Duration lease_or_timeout, double churn,
                               bool periodic) {
    isp::ScenarioConfig config;
    config.window = {net::TimePoint::from_date(2015, 1, 1),
                     net::TimePoint::from_date(2015, 7, 1)};
    isp::IspSpec spec;
    spec.asn = 64500;  // private-use ASN: this ISP is synthetic
    spec.name = "LabNet";
    spec.countries = {"DE"};
    spec.pool_prefixes = {net::IPv4Prefix::parse_or_throw("100.64.0.0/22"),
                          net::IPv4Prefix::parse_or_throw("100.64.8.0/22")};
    spec.announced_prefixes = {net::IPv4Prefix::parse_or_throw("100.64.0.0/21"),
                               net::IPv4Prefix::parse_or_throw("100.64.8.0/21")};
    spec.strategy = protocol == atlas::CpeConfig::Wan::Dhcp
                        ? pool::AllocationStrategy::Sticky
                        : pool::AllocationStrategy::RandomSpread;
    spec.churn_per_hour = churn;

    isp::Cohort cohort;
    cohort.probe_count = 24;
    cohort.protocol = protocol;
    if (protocol == atlas::CpeConfig::Wan::Dhcp) {
        cohort.dhcp_lease = lease_or_timeout;
    } else if (periodic) {
        cohort.session_timeout = lease_or_timeout;
    }
    cohort.outages.power_per_year = 14.0;
    cohort.outages.net_per_year = 26.0;
    spec.cohorts = {cohort};
    config.isps = {spec};
    atlas::KRootSamplingPolicy kroot;
    kroot.base_cadence = net::Duration::hours(2);
    kroot.dense_window = net::Duration::minutes(20);
    config.kroot = kroot;
    config.seed = 99;
    return config;
}

struct Measured {
    double p_change_per_outage = 0.0;
    double median_tenure_hours = 0.0;
    int outages = 0;
};

Measured measure(const isp::ScenarioConfig& config) {
    const auto scenario = isp::run_scenario(config);
    core::AnalysisPipeline pipeline;
    const auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                      scenario.registry, config.window);
    Measured m;
    int changes = 0;
    for (const auto& map : {results.network_outcomes, results.power_outcomes})
        for (const auto& [probe, outcomes] : map)
            for (const auto& outcome : outcomes) {
                ++m.outages;
                changes += outcome.address_change;
            }
    m.p_change_per_outage = m.outages ? double(changes) / m.outages : 0.0;
    stats::Cdf tenures;
    for (const auto& probe : results.changes)
        for (const auto& span : probe.spans)
            tenures.add(span.duration().to_hours());
    m.median_tenure_hours =
        tenures.sample_count() > 0 ? tenures.quantile(0.5) : 0.0;
    return m;
}

}  // namespace

int main() {
    using namespace dynaddr;
    std::cout << "Sweep 1 — DHCP: lease duration x pool churn\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto lease : {net::Duration::hours(2), net::Duration::hours(12),
                             net::Duration::hours(48)}) {
        for (const double churn : {0.01, 0.1}) {
            const auto m = measure(make_world(atlas::CpeConfig::Wan::Dhcp, lease,
                                              churn, false));
            rows.push_back({core::fmt(lease.to_hours(), 0) + "h",
                            core::fmt(churn, 2), std::to_string(m.outages),
                            core::fmt(100.0 * m.p_change_per_outage, 1) + "%",
                            m.median_tenure_hours > 0
                                ? core::fmt(m.median_tenure_hours / 24.0, 1) + "d"
                                : "(never)"});
        }
    }
    std::cout << chart::render_table(
        {"Lease", "Churn/h", "Outages", "P(change|outage)", "Median tenure"},
        rows);
    std::cout << "Shorter leases + busier pools -> outages convert into "
                 "renumberings.\n\n";

    std::cout << "Sweep 2 — PPP: session timeout\n";
    rows.clear();
    for (const auto timeout :
         {std::optional<net::Duration>{}, std::optional(net::Duration::hours(24)),
          std::optional(net::Duration::hours(168))}) {
        const auto m = measure(make_world(
            atlas::CpeConfig::Wan::Ppp,
            timeout.value_or(net::Duration::hours(24)), 0.0, timeout.has_value()));
        rows.push_back({timeout ? core::fmt(timeout->to_hours(), 0) + "h" : "none",
                        std::to_string(m.outages),
                        core::fmt(100.0 * m.p_change_per_outage, 1) + "%",
                        m.median_tenure_hours > 0
                            ? core::fmt(m.median_tenure_hours, 1) + "h"
                            : "(never)"});
    }
    std::cout << chart::render_table(
        {"Session timeout", "Outages", "P(change|outage)", "Median tenure"},
        rows);
    std::cout << "PPP renumbers on every outage regardless; the timeout "
                 "caps tenure at exactly d — the paper's periodic ISPs.\n";
    return 0;
}

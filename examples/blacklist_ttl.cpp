// Blacklist TTL advisor — the paper's motivating application.
//
// IP blacklists assume an address keeps pointing at the same host. This
// example runs the full-year world and answers, per ISP: how long does a
// dynamic address actually stick to one subscriber, can the subscriber
// shed it on demand (reboot-to-evade), and how wide would you have to
// block to keep covering them after a change?

#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/presets.hpp"
#include "netcore/ascii_chart.hpp"

int main() {
    using namespace dynaddr;
    std::cout << "Simulating a year of the paper's ISP world...\n";
    const auto config = isp::presets::paper_scenario();
    const auto scenario = isp::run_scenario(config);
    core::AnalysisPipeline pipeline;
    const auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                      scenario.registry, config.window);

    // Per-AS tenure quantiles from the interior spans.
    std::map<std::uint32_t, stats::Cdf> tenure;
    for (const auto& changes : results.changes) {
        auto asn = results.mapping.as_of(changes.probe);
        if (!asn) continue;
        for (const auto& span : changes.spans)
            tenure[*asn].add(span.duration().to_hours());
    }

    std::vector<std::vector<std::string>> rows;
    for (const auto& row : results.prefix_changes.as_rows) {
        auto cdf = tenure.find(row.asn);
        if (cdf == tenure.end() || cdf->second.sample_count() < 50) continue;
        const double median_h = cdf->second.quantile(0.5);
        const double p90_h = cdf->second.quantile(0.9);
        // Reboot-to-evade: is this AS in the "renumbers on any reconnect"
        // club? Approximate with its cross-prefix change count being
        // driven by PPP (period or outage renumbering).
        const bool evadable = median_h <= 40.0;
        rows.push_back(
            {row.as_name, std::to_string(cdf->second.sample_count()),
             core::fmt(median_h, 1) + "h", core::fmt(p90_h, 1) + "h",
             evadable ? "yes" : "unlikely",
             core::fmt(row.pct_bgp(), 0) + "%",
             core::fmt(row.pct_8(), 0) + "%"});
    }
    std::cout << "\nHow long does a blacklisted dynamic address stay valid?\n";
    std::cout << chart::render_table({"AS", "tenures", "median", "p90",
                                      "reboot-evade?", "escapes BGP pfx",
                                      "escapes /8"},
                                     rows);

    std::cout <<
        "\nReading the table:\n"
        "  - median/p90: how long an address keeps identifying one "
        "subscriber.\n"
        "  - reboot-evade: in daily/weekly-periodic PPP ISPs a malicious "
        "user\n    sheds a blacklisted address by power-cycling the CPE "
        "(paper section 5.4).\n"
        "  - escape columns: after a change, that share of new addresses "
        "lies\n    outside the old BGP prefix / enclosing /8 — even "
        "/8-wide blocking\n    fails for a third of changes (paper Table "
        "7).\n";
    return 0;
}

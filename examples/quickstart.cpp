// Quickstart: simulate a small world of ISPs for two months, run the full
// analysis pipeline over the emitted datasets, and print what the paper's
// methodology recovers about each ISP's renumbering behaviour.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/presets.hpp"

int main() {
    using namespace dynaddr;

    // 1. Simulate: four ISPs (weekly-periodic Orange, daily-periodic DTAG,
    //    DHCP-sticky LGI, very stable Verizon) plus the probe populations
    //    the filtering pipeline must discard.
    std::cout << "Simulating two months of 2015...\n";
    const isp::ScenarioConfig config = isp::presets::quick_scenario();
    const isp::ScenarioResult scenario = isp::run_scenario(config);
    std::cout << "  " << scenario.sim_events << " simulation events, "
              << scenario.bundle.connection_log.size() << " connection-log rows, "
              << scenario.bundle.kroot_pings.size() << " k-root records, "
              << scenario.bundle.uptime_records.size() << " uptime records\n\n";

    // 2. Analyze: the pipeline sees only the datasets — never the
    //    simulator's ground truth.
    core::AnalysisPipeline pipeline;
    const core::AnalysisResults results = pipeline.run(
        scenario.bundle, scenario.prefix_table, scenario.registry, config.window);

    std::cout << core::render_summary(results) << "\n";
    std::cout << "Probe filtering (Table 2 pipeline):\n"
              << core::render_table2(results.filter) << "\n";
    std::cout << "Periodic renumbering (Table 5 machinery):\n"
              << core::render_table5(results.periodicity) << "\n";
    std::cout << "Prefix changes (Table 7 machinery):\n"
              << core::render_table7(results.prefix_changes) << "\n";
    std::cout << "Outage renumbering (Table 6 machinery):\n"
              << core::render_table6(results.cond_prob) << "\n";

    // 3. Read one concrete answer off the results: how long does an
    //    address live in each ISP?
    std::cout << "Detected periodic probes per configured ISP:\n";
    for (const auto& row : results.periodicity.as_rows)
        std::cout << "  " << row.as_name << ": period " << row.d_hours
                  << " h, " << row.periodic_probes << "/"
                  << row.probes_with_change << " probes periodic\n";
    return 0;
}

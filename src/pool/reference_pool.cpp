#include "pool/reference_pool.hpp"

#include <algorithm>
#include <cmath>

#include "netcore/error.hpp"

namespace dynaddr::pool {

ReferenceAddressPool::ReferenceAddressPool(PoolConfig config, rng::Stream rng)
    : config_(std::move(config)), rng_(rng) {
    if (config_.prefixes.empty()) throw Error("address pool needs prefixes");
    for (std::size_t i = 0; i < config_.prefixes.size(); ++i)
        for (std::size_t j = i + 1; j < config_.prefixes.size(); ++j)
            if (config_.prefixes[i].contains(config_.prefixes[j]) ||
                config_.prefixes[j].contains(config_.prefixes[i]))
                throw Error("address pool prefixes overlap: " +
                            config_.prefixes[i].to_string() + " and " +
                            config_.prefixes[j].to_string());
    free_by_prefix_.resize(config_.prefixes.size());
    prefix_enabled_.assign(config_.prefixes.size(), true);
    for (std::size_t index : config_.initially_disabled) {
        if (index >= config_.prefixes.size())
            throw Error("initially_disabled index out of range");
        prefix_enabled_[index] = false;
    }
    for (std::size_t p = 0; p < config_.prefixes.size(); ++p) {
        if (!prefix_enabled_[p]) continue;
        const auto& prefix = config_.prefixes[p];
        auto& bucket = free_by_prefix_[p];
        bucket.reserve(prefix.size());
        for (std::uint64_t i = 0; i < prefix.size(); ++i) {
            free_pos_.emplace(prefix.at(i), std::pair{p, bucket.size()});
            bucket.push_back(prefix.at(i));
        }
        total_free_ += bucket.size();
    }
}

void ReferenceAddressPool::retire_prefix(std::size_t index) {
    if (index >= config_.prefixes.size()) throw Error("prefix index out of range");
    if (!prefix_enabled_[index]) return;
    prefix_enabled_[index] = false;
    auto& bucket = free_by_prefix_[index];
    for (const auto addr : bucket) free_pos_.erase(addr);
    total_free_ -= bucket.size();
    bucket.clear();
}

void ReferenceAddressPool::enable_prefix(std::size_t index) {
    if (index >= config_.prefixes.size()) throw Error("prefix index out of range");
    if (prefix_enabled_[index]) return;
    prefix_enabled_[index] = true;
    const auto& prefix = config_.prefixes[index];
    auto& bucket = free_by_prefix_[index];
    for (std::uint64_t i = 0; i < prefix.size(); ++i) {
        const auto addr = prefix.at(i);
        if (holder_by_addr_.contains(addr)) continue;  // survived retirement
        free_pos_.emplace(addr, std::pair{index, bucket.size()});
        bucket.push_back(addr);
        ++total_free_;
    }
}

bool ReferenceAddressPool::is_retired(net::IPv4Address addr) const {
    const int p = prefix_index_of(addr);
    return p >= 0 && !prefix_enabled_[std::size_t(p)];
}

std::optional<net::IPv4Address> ReferenceAddressPool::allocate(
    ClientId client, net::TimePoint now, std::optional<net::IPv4Address> hint,
    std::optional<net::TimePoint> absent_since) {
    if (auto held = address_of(client)) return held;
    if (fault_exhausted_) return std::nullopt;

    std::optional<net::IPv4Address> previous;
    if (auto it = remembered_binding_.find(client); it != remembered_binding_.end())
        previous = it->second;

    if (config_.strategy == AllocationStrategy::Sticky) {
        const net::Duration absent =
            absent_since ? now - *absent_since : net::Duration{0};
        for (auto candidate : {hint, previous}) {
            if (!candidate || !is_free(*candidate)) continue;
            if (prefix_index_of(*candidate) < 0) continue;  // not our space
            if (!binding_survives(absent)) break;  // someone else took it
            take(*candidate, client);
            return candidate;
        }
    }

    std::optional<net::IPv4Address> chosen;
    switch (config_.strategy) {
        case AllocationStrategy::Sticky:
            chosen = pick_random_spread(previous ? previous : hint);
            break;
        case AllocationStrategy::Sequential:
            chosen = pick_sequential();
            break;
        case AllocationStrategy::RandomSpread:
            chosen = pick_random_spread(previous ? previous : hint);
            break;
        case AllocationStrategy::PrefixHop:
            chosen = pick_prefix_hop(previous ? previous : hint);
            break;
    }
    if (!chosen) return std::nullopt;
    take(*chosen, client);
    return chosen;
}

void ReferenceAddressPool::release(ClientId client) {
    auto it = addr_by_holder_.find(client);
    if (it == addr_by_holder_.end()) return;
    const net::IPv4Address addr = it->second;
    addr_by_holder_.erase(it);
    holder_by_addr_.erase(addr);
    remembered_binding_[client] = addr;
    const int p = prefix_index_of(addr);
    if (p < 0) return;  // foreign address: nothing to return
    if (!prefix_enabled_[std::size_t(p)]) return;  // retired: abandon it
    auto& bucket = free_by_prefix_[std::size_t(p)];
    free_pos_.emplace(addr, std::pair{std::size_t(p), bucket.size()});
    bucket.push_back(addr);
    ++total_free_;
}

std::optional<net::IPv4Address> ReferenceAddressPool::address_of(
    ClientId client) const {
    auto it = addr_by_holder_.find(client);
    if (it == addr_by_holder_.end()) return std::nullopt;
    return it->second;
}

void ReferenceAddressPool::forget_binding(ClientId client) {
    remembered_binding_.erase(client);
}

bool ReferenceAddressPool::binding_survives(net::Duration absent) {
    if (config_.churn_per_hour <= 0.0) return true;
    if (absent <= net::Duration{0}) return true;
    const double p_taken =
        1.0 - std::exp(-config_.churn_per_hour * absent.to_hours());
    return !rng_.bernoulli(p_taken);
}

bool ReferenceAddressPool::is_free(net::IPv4Address addr) const {
    return free_pos_.contains(addr);
}

void ReferenceAddressPool::take(net::IPv4Address addr, ClientId client) {
    auto pos_it = free_pos_.find(addr);
    if (pos_it == free_pos_.end()) throw Error("taking non-free address");
    const auto [p, pos] = pos_it->second;
    auto& bucket = free_by_prefix_[p];
    bucket[pos] = bucket.back();
    free_pos_[bucket[pos]] = {p, pos};
    bucket.pop_back();
    free_pos_.erase(addr);
    --total_free_;
    holder_by_addr_.emplace(addr, client);
    addr_by_holder_.emplace(client, addr);
}

std::optional<net::IPv4Address> ReferenceAddressPool::pick_sequential() {
    for (const auto& bucket : free_by_prefix_) {
        if (bucket.empty()) continue;
        return *std::min_element(bucket.begin(), bucket.end());
    }
    return std::nullopt;
}

std::optional<net::IPv4Address> ReferenceAddressPool::pick_random() {
    if (total_free_ == 0) return std::nullopt;
    std::vector<double> weights(free_by_prefix_.size());
    for (std::size_t p = 0; p < free_by_prefix_.size(); ++p)
        weights[p] = double(free_by_prefix_[p].size());
    return pick_in_prefix(rng_.weighted_index(weights));
}

std::optional<net::IPv4Address> ReferenceAddressPool::pick_in_prefix(
    std::size_t index) {
    auto& bucket = free_by_prefix_[index];
    if (bucket.empty()) return std::nullopt;
    return bucket[std::size_t(rng_.uniform_int(0, std::int64_t(bucket.size()) - 1))];
}

std::optional<net::IPv4Address> ReferenceAddressPool::pick_random_spread(
    std::optional<net::IPv4Address> previous) {
    if (previous && config_.locality_bias > 0.0 &&
        rng_.bernoulli(config_.locality_bias)) {
        const int p = prefix_index_of(*previous);
        if (p >= 0)
            if (auto local = pick_in_prefix(std::size_t(p))) return local;
    }
    return pick_random();
}

std::optional<net::IPv4Address> ReferenceAddressPool::pick_prefix_hop(
    std::optional<net::IPv4Address> previous) {
    const int avoid = previous ? prefix_index_of(*previous) : -1;
    if (avoid < 0 || config_.prefixes.size() < 2) return pick_random();
    std::vector<double> weights(free_by_prefix_.size());
    double other_total = 0.0;
    for (std::size_t p = 0; p < free_by_prefix_.size(); ++p) {
        weights[p] = p == std::size_t(avoid) ? 0.0 : double(free_by_prefix_[p].size());
        other_total += weights[p];
    }
    if (other_total <= 0.0) return pick_random();  // only the old prefix has space
    return pick_in_prefix(rng_.weighted_index(weights));
}

int ReferenceAddressPool::prefix_index_of(net::IPv4Address addr) const {
    for (std::size_t i = 0; i < config_.prefixes.size(); ++i)
        if (config_.prefixes[i].contains(addr)) return int(i);
    return -1;
}

void ReferenceLeaseDb::grant(const Lease& lease) {
    auto addr_it = client_by_addr_.find(lease.address);
    if (addr_it != client_by_addr_.end() && addr_it->second != lease.client)
        throw Error("address " + lease.address.to_string() +
                    " already leased to another client");
    if (auto existing = by_client_.find(lease.client); existing != by_client_.end())
        unindex(existing->second);
    by_client_[lease.client] = lease;
    client_by_addr_[lease.address] = lease.client;
    by_expiry_.emplace(lease.expiry, lease.client);
}

std::optional<Lease> ReferenceLeaseDb::revoke(ClientId client) {
    auto it = by_client_.find(client);
    if (it == by_client_.end()) return std::nullopt;
    Lease lease = it->second;
    unindex(lease);
    by_client_.erase(it);
    return lease;
}

std::optional<Lease> ReferenceLeaseDb::find(ClientId client) const {
    auto it = by_client_.find(client);
    if (it == by_client_.end()) return std::nullopt;
    return it->second;
}

std::optional<Lease> ReferenceLeaseDb::find_by_address(net::IPv4Address addr) const {
    auto it = client_by_addr_.find(addr);
    if (it == client_by_addr_.end()) return std::nullopt;
    return find(it->second);
}

std::vector<Lease> ReferenceLeaseDb::expire_until(net::TimePoint now) {
    std::vector<Lease> expired;
    while (!by_expiry_.empty() && by_expiry_.begin()->first <= now) {
        const ClientId client = by_expiry_.begin()->second;
        auto lease_it = by_client_.find(client);
        expired.push_back(lease_it->second);
        unindex(lease_it->second);
        by_client_.erase(lease_it);
    }
    return expired;
}

std::optional<net::TimePoint> ReferenceLeaseDb::next_expiry() const {
    if (by_expiry_.empty()) return std::nullopt;
    return by_expiry_.begin()->first;
}

std::vector<Lease> ReferenceLeaseDb::all() const {
    std::vector<Lease> leases;
    leases.reserve(by_client_.size());
    for (const auto& [client, lease] : by_client_) leases.push_back(lease);
    std::sort(leases.begin(), leases.end(),
              [](const Lease& a, const Lease& b) { return a.client < b.client; });
    return leases;
}

void ReferenceLeaseDb::unindex(const Lease& lease) {
    client_by_addr_.erase(lease.address);
    auto [first, last] = by_expiry_.equal_range(lease.expiry);
    for (auto it = first; it != last; ++it) {
        if (it->second == lease.client) {
            by_expiry_.erase(it);
            break;
        }
    }
}

}  // namespace dynaddr::pool

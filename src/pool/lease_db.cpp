#include "pool/lease_db.hpp"

#include <algorithm>

#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::pool {

namespace {

struct LeaseMetrics {
    obs::Counter& granted = obs::counter("lease.granted");
    obs::Counter& revoked = obs::counter("lease.revoked");
    obs::Counter& expired = obs::counter("lease.expired");
    obs::Gauge& active = obs::gauge("lease.active");
};

LeaseMetrics& lease_metrics() {
    static LeaseMetrics metrics;
    return metrics;
}

}  // namespace

LeaseDb::~LeaseDb() {
    lease_metrics().active.add(-std::int64_t(reported_active_));
}

void LeaseDb::sync_gauge() {
    lease_metrics().active.add(std::int64_t(size()) -
                               std::int64_t(reported_active_));
    reported_active_ = size();
}

void LeaseDb::grant(const Lease& lease) {
    auto addr_it = client_by_addr_.find(lease.address);
    if (addr_it != client_by_addr_.end() && addr_it->second != lease.client)
        throw Error("address " + lease.address.to_string() +
                    " already leased to another client");
    // Refresh: drop any previous lease state for this client first.
    if (auto existing = by_client_.find(lease.client); existing != by_client_.end())
        unindex(existing->second);
    by_client_[lease.client] = lease;
    client_by_addr_[lease.address] = lease.client;
    by_expiry_.emplace(lease.expiry, lease.client);
    lease_metrics().granted.inc();
    sync_gauge();
}

std::optional<Lease> LeaseDb::revoke(ClientId client) {
    auto it = by_client_.find(client);
    if (it == by_client_.end()) return std::nullopt;
    Lease lease = it->second;
    unindex(lease);
    by_client_.erase(it);
    lease_metrics().revoked.inc();
    sync_gauge();
    return lease;
}

std::optional<Lease> LeaseDb::find(ClientId client) const {
    auto it = by_client_.find(client);
    if (it == by_client_.end()) return std::nullopt;
    return it->second;
}

std::optional<Lease> LeaseDb::find_by_address(net::IPv4Address addr) const {
    auto it = client_by_addr_.find(addr);
    if (it == client_by_addr_.end()) return std::nullopt;
    return find(it->second);
}

std::vector<Lease> LeaseDb::expire_until(net::TimePoint now) {
    std::vector<Lease> expired;
    while (!by_expiry_.empty() && by_expiry_.begin()->first <= now) {
        const ClientId client = by_expiry_.begin()->second;
        auto lease_it = by_client_.find(client);
        // Index entries for refreshed leases are cleaned by unindex, so a
        // hit here is always live.
        expired.push_back(lease_it->second);
        unindex(lease_it->second);
        by_client_.erase(lease_it);
    }
    if (!expired.empty()) {
        lease_metrics().expired.inc(expired.size());
        sync_gauge();
    }
    return expired;
}

std::optional<net::TimePoint> LeaseDb::next_expiry() const {
    if (by_expiry_.empty()) return std::nullopt;
    return by_expiry_.begin()->first;
}

std::vector<Lease> LeaseDb::all() const {
    std::vector<Lease> leases;
    leases.reserve(by_client_.size());
    for (const auto& [client, lease] : by_client_) leases.push_back(lease);
    std::sort(leases.begin(), leases.end(),
              [](const Lease& a, const Lease& b) { return a.client < b.client; });
    return leases;
}

void LeaseDb::unindex(const Lease& lease) {
    client_by_addr_.erase(lease.address);
    auto [first, last] = by_expiry_.equal_range(lease.expiry);
    for (auto it = first; it != last; ++it) {
        if (it->second == lease.client) {
            by_expiry_.erase(it);
            break;
        }
    }
}

}  // namespace dynaddr::pool

#include "pool/lease_db.hpp"

#include <algorithm>

#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::pool {

namespace {

struct LeaseMetrics {
    obs::Counter& granted = obs::counter("lease.granted");
    obs::Counter& revoked = obs::counter("lease.revoked");
    obs::Counter& expired = obs::counter("lease.expired");
    obs::Gauge& active = obs::gauge("lease.active");
};

LeaseMetrics& lease_metrics() {
    static LeaseMetrics metrics;
    return metrics;
}

constexpr std::size_t kInitialCapacity = 16;  // power of two

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

}  // namespace

LeaseDb::LeaseDb()
    : clients_(kInitialCapacity), addrs_(kInitialCapacity) {}

LeaseDb::~LeaseDb() {
    lease_metrics().active.add(-std::int64_t(reported_active_));
}

void LeaseDb::sync_gauge() {
    lease_metrics().active.add(std::int64_t(size()) -
                               std::int64_t(reported_active_));
    reported_active_ = size();
    mem_.report(clients_.capacity() * sizeof(ClientSlot) +
                    addrs_.capacity() * sizeof(AddrSlot) +
                    heap_.capacity() * sizeof(HeapEntry),
                live_);
}

const LeaseDb::ClientSlot* LeaseDb::client_slot(ClientId client) const {
    const std::size_t mask = clients_.size() - 1;
    for (std::size_t i = splitmix64(client) & mask;; i = (i + 1) & mask) {
        const ClientSlot& slot = clients_[i];
        if (slot.state == SlotState::Empty) return nullptr;
        if (slot.state == SlotState::Occupied && slot.lease.client == client)
            return &slot;
    }
}

LeaseDb::ClientSlot& LeaseDb::client_slot_for_insert(ClientId client) {
    const std::size_t mask = clients_.size() - 1;
    ClientSlot* tombstone = nullptr;
    for (std::size_t i = splitmix64(client) & mask;; i = (i + 1) & mask) {
        ClientSlot& slot = clients_[i];
        if (slot.state == SlotState::Occupied && slot.lease.client == client)
            return slot;
        if (slot.state == SlotState::Tombstone && !tombstone) tombstone = &slot;
        if (slot.state == SlotState::Empty) {
            if (tombstone) return *tombstone;
            ++client_used_;
            return slot;
        }
    }
}

void LeaseDb::client_slot_erase(ClientId client) {
    const std::size_t mask = clients_.size() - 1;
    for (std::size_t i = splitmix64(client) & mask;; i = (i + 1) & mask) {
        ClientSlot& slot = clients_[i];
        if (slot.state == SlotState::Empty) return;
        if (slot.state == SlotState::Occupied && slot.lease.client == client) {
            slot.state = SlotState::Tombstone;
            return;
        }
    }
}

const LeaseDb::AddrSlot* LeaseDb::addr_slot(net::IPv4Address addr) const {
    const std::size_t mask = addrs_.size() - 1;
    for (std::size_t i = splitmix64(addr.value()) & mask;; i = (i + 1) & mask) {
        const AddrSlot& slot = addrs_[i];
        if (slot.state == SlotState::Empty) return nullptr;
        if (slot.state == SlotState::Occupied && slot.addr == addr) return &slot;
    }
}

LeaseDb::AddrSlot& LeaseDb::addr_slot_for_insert(net::IPv4Address addr) {
    const std::size_t mask = addrs_.size() - 1;
    AddrSlot* tombstone = nullptr;
    for (std::size_t i = splitmix64(addr.value()) & mask;; i = (i + 1) & mask) {
        AddrSlot& slot = addrs_[i];
        if (slot.state == SlotState::Occupied && slot.addr == addr) return slot;
        if (slot.state == SlotState::Tombstone && !tombstone) tombstone = &slot;
        if (slot.state == SlotState::Empty) {
            if (tombstone) return *tombstone;
            ++addr_used_;
            return slot;
        }
    }
}

void LeaseDb::addr_slot_erase(net::IPv4Address addr) {
    const std::size_t mask = addrs_.size() - 1;
    for (std::size_t i = splitmix64(addr.value()) & mask;; i = (i + 1) & mask) {
        AddrSlot& slot = addrs_[i];
        if (slot.state == SlotState::Empty) return;
        if (slot.state == SlotState::Occupied && slot.addr == addr) {
            slot.state = SlotState::Tombstone;
            return;
        }
    }
}

void LeaseDb::maybe_grow() {
    // Keep load (occupied + tombstones) under 3/4; rebuilding drops
    // tombstones, and doubles only when genuinely full.
    if ((client_used_ + 1) * 4 <= clients_.size() * 3 &&
        (addr_used_ + 1) * 4 <= addrs_.size() * 3)
        return;
    const std::size_t client_cap =
        (live_ + 1) * 4 > clients_.size() * 3 ? clients_.size() * 2 : clients_.size();
    const std::size_t addr_cap =
        (live_ + 1) * 4 > addrs_.size() * 3 ? addrs_.size() * 2 : addrs_.size();
    std::vector<ClientSlot> old_clients(client_cap);
    std::vector<AddrSlot> old_addrs(addr_cap);
    old_clients.swap(clients_);
    old_addrs.swap(addrs_);
    client_used_ = 0;
    addr_used_ = 0;
    for (ClientSlot& slot : old_clients) {
        if (slot.state != SlotState::Occupied) continue;
        ClientSlot& fresh = client_slot_for_insert(slot.lease.client);
        fresh = std::move(slot);
    }
    for (AddrSlot& slot : old_addrs) {
        if (slot.state != SlotState::Occupied) continue;
        AddrSlot& fresh = addr_slot_for_insert(slot.addr);
        fresh = slot;
    }
}

void LeaseDb::heap_push(HeapEntry entry) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const HeapEntry& a, const HeapEntry& b) { return a.after(b); });
}

void LeaseDb::heap_settle() const {
    const auto after = [](const HeapEntry& a, const HeapEntry& b) {
        return a.after(b);
    };
    while (!heap_.empty()) {
        const HeapEntry& top = heap_.front();
        const ClientSlot* slot = client_slot(top.client);
        if (slot && slot->seq == top.seq) break;  // live
        std::pop_heap(heap_.begin(), heap_.end(), after);
        heap_.pop_back();
    }
    if (heap_.size() > 4 * live_ + 64) {
        // Mostly stale: rebuild from the live records.
        heap_.clear();
        for (const ClientSlot& slot : clients_) {
            if (slot.state != SlotState::Occupied) continue;
            heap_.push_back({slot.lease.expiry, slot.seq, slot.lease.client});
        }
        std::make_heap(heap_.begin(), heap_.end(), after);
    }
}

void LeaseDb::grant(const Lease& lease) {
    if (const AddrSlot* taken = addr_slot(lease.address);
        taken && taken->client != lease.client)
        throw Error("address " + lease.address.to_string() +
                    " already leased to another client");
    maybe_grow();
    ClientSlot& slot = client_slot_for_insert(lease.client);
    if (slot.state == SlotState::Occupied) {
        // Refresh: drop the previous address mapping; the old heap entry
        // goes stale with the new sequence number.
        addr_slot_erase(slot.lease.address);
    } else {
        slot.state = SlotState::Occupied;
        ++live_;
    }
    slot.lease = lease;
    slot.seq = next_seq_++;
    AddrSlot& addr = addr_slot_for_insert(lease.address);
    addr.state = SlotState::Occupied;
    addr.addr = lease.address;
    addr.client = lease.client;
    heap_push({lease.expiry, slot.seq, lease.client});
    lease_metrics().granted.inc();
    sync_gauge();
}

std::optional<Lease> LeaseDb::revoke(ClientId client) {
    const ClientSlot* slot = client_slot(client);
    if (!slot) return std::nullopt;
    Lease lease = slot->lease;
    addr_slot_erase(lease.address);
    client_slot_erase(client);
    --live_;
    lease_metrics().revoked.inc();
    sync_gauge();
    return lease;
}

std::optional<Lease> LeaseDb::find(ClientId client) const {
    const ClientSlot* slot = client_slot(client);
    if (!slot) return std::nullopt;
    return slot->lease;
}

std::optional<Lease> LeaseDb::find_by_address(net::IPv4Address addr) const {
    const AddrSlot* slot = addr_slot(addr);
    if (!slot) return std::nullopt;
    return find(slot->client);
}

std::vector<Lease> LeaseDb::expire_until(net::TimePoint now) {
    std::vector<Lease> expired;
    const auto after = [](const HeapEntry& a, const HeapEntry& b) {
        return a.after(b);
    };
    heap_settle();
    while (!heap_.empty() && heap_.front().expiry <= now) {
        const ClientId client = heap_.front().client;
        std::pop_heap(heap_.begin(), heap_.end(), after);
        heap_.pop_back();
        // heap_settle guarantees the top entry is live.
        const ClientSlot* slot = client_slot(client);
        expired.push_back(slot->lease);
        addr_slot_erase(slot->lease.address);
        client_slot_erase(client);
        --live_;
        heap_settle();
    }
    if (!expired.empty()) {
        lease_metrics().expired.inc(expired.size());
        sync_gauge();
    }
    return expired;
}

std::optional<net::TimePoint> LeaseDb::next_expiry() const {
    heap_settle();
    if (heap_.empty()) return std::nullopt;
    return heap_.front().expiry;
}

std::vector<Lease> LeaseDb::all() const {
    std::vector<Lease> leases;
    leases.reserve(live_);
    for (const ClientSlot& slot : clients_) {
        if (slot.state != SlotState::Occupied) continue;
        leases.push_back(slot.lease);
    }
    std::sort(leases.begin(), leases.end(),
              [](const Lease& a, const Lease& b) { return a.client < b.client; });
    return leases;
}

}  // namespace dynaddr::pool

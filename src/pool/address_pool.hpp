#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/rng.hpp"
#include "netcore/time.hpp"

namespace dynaddr::pool {

/// Identifies a subscriber (CPE) within one ISP's pool. In DHCP terms this
/// stands in for the client identifier / chaddr; in PPP terms the login.
using ClientId = std::uint64_t;

/// How an ISP's pool picks the next address for a subscriber.
enum class AllocationStrategy {
    /// Prefer the subscriber's previous address when it is still free —
    /// the RFC 2131 §4.3.1 behaviour the paper expects of DHCP ISPs.
    Sticky,
    /// Lowest free address first, ignoring history.
    Sequential,
    /// Random free address across all pool prefixes, optionally biased
    /// toward the subscriber's previous prefix (`locality_bias`). Models
    /// PPP/RADIUS pools where "neither CPE nor Radius servers remember
    /// addresses" (Maier et al., cited in the paper).
    RandomSpread,
    /// Random free address from a *different* routed prefix than the
    /// subscriber's previous one when possible — the strongest form of the
    /// cross-prefix behaviour the paper measures in Table 7.
    PrefixHop,
};

/// Pool parameters.
struct PoolConfig {
    std::vector<net::IPv4Prefix> prefixes;  ///< disjoint address blocks
    AllocationStrategy strategy = AllocationStrategy::Sticky;
    /// Background address churn from subscribers this simulation does not
    /// model individually: while a sticky subscriber is absent, its old
    /// address is reclaimed by someone else with rate `churn_per_hour`
    /// (exponential). 0 disables reclaiming.
    double churn_per_hour = 0.0;
    /// RandomSpread only: probability that a fresh allocation stays inside
    /// the same prefix as the subscriber's previous address. Tunes the
    /// cross-prefix change fractions of the paper's Table 7.
    double locality_bias = 0.0;
    /// Indices into `prefixes` that start out disabled (no allocations)
    /// until enable_prefix() is called — the "new block" side of an
    /// administrative renumbering.
    std::vector<std::size_t> initially_disabled;
};

/// A dynamic address pool for one ISP.
///
/// The pool owns the free/allocated bookkeeping; DHCP and PPP servers sit
/// on top. Free addresses are kept per prefix for O(1) random allocation.
/// All randomness flows from the Stream handed in at construction, so
/// allocation is deterministic per seed.
class AddressPool {
public:
    /// Throws Error on an empty or overlapping prefix set.
    AddressPool(PoolConfig config, rng::Stream rng);

    /// Unwinds this pool's contribution to the process-wide occupancy
    /// gauges (many pools share them; see obs metrics).
    ~AddressPool();

    /// Allocates an address for `client` at time `now`.
    ///
    /// `hint` is the address the client asks for (DHCP REQUEST of a prior
    /// lease). Under Sticky the pool first tries the hint, then the
    /// remembered binding, subject to the churn model: if the client was
    /// absent since `absent_since` the old address may have been handed to
    /// someone else. Returns nullopt only when the pool is exhausted.
    std::optional<net::IPv4Address> allocate(
        ClientId client, net::TimePoint now,
        std::optional<net::IPv4Address> hint = std::nullopt,
        std::optional<net::TimePoint> absent_since = std::nullopt);

    /// Releases the client's current address back to the free set. The
    /// binding is remembered for sticky/locality reallocation. No-op when
    /// the client holds nothing.
    void release(ClientId client);

    /// Current address of a client, if any.
    [[nodiscard]] std::optional<net::IPv4Address> address_of(ClientId client) const;

    /// Forgets the remembered binding of a client (models an ISP-side
    /// database flush / administrative renumbering).
    void forget_binding(ClientId client);

    /// Administrative renumbering, ISP side: stops allocating from prefix
    /// `index` and abandons its free addresses. Addresses still held stay
    /// held (their servers evict lazily via is_retired) and are not
    /// returned to the pool on release. Throws Error on a bad index.
    void retire_prefix(std::size_t index);

    /// Brings an initially-disabled (or retired) prefix into service.
    void enable_prefix(std::size_t index);

    /// True when `addr` belongs to a currently-retired/disabled prefix —
    /// servers use this to refuse lease renewals after a renumbering.
    [[nodiscard]] bool is_retired(net::IPv4Address addr) const;

    /// Fault injection: while set, allocate() behaves as if every address
    /// were taken (nullopt). Releases and held addresses are unaffected.
    void set_fault_exhausted(bool exhausted) { fault_exhausted_ = exhausted; }
    [[nodiscard]] bool fault_exhausted() const { return fault_exhausted_; }

    [[nodiscard]] std::size_t free_count() const { return total_free_; }
    [[nodiscard]] std::size_t allocated_count() const { return holder_by_addr_.size(); }
    [[nodiscard]] std::size_t capacity() const { return total_free_ + allocated_count(); }
    [[nodiscard]] const PoolConfig& config() const { return config_; }

    /// Fraction of the pool currently allocated.
    [[nodiscard]] double utilization() const;

private:
    /// True when the sticky binding survives an absence of `absent` given
    /// the configured churn rate (random draw).
    bool binding_survives(net::Duration absent);

    [[nodiscard]] bool is_free(net::IPv4Address addr) const;
    void take(net::IPv4Address addr, ClientId client);
    std::optional<net::IPv4Address> pick_sequential();
    std::optional<net::IPv4Address> pick_random();
    /// Random free address within prefix `index`; nullopt when empty.
    std::optional<net::IPv4Address> pick_in_prefix(std::size_t index);
    std::optional<net::IPv4Address> pick_random_spread(
        std::optional<net::IPv4Address> previous);
    std::optional<net::IPv4Address> pick_prefix_hop(
        std::optional<net::IPv4Address> previous);

    /// Index of the configured prefix containing `addr`, or -1.
    [[nodiscard]] int prefix_index_of(net::IPv4Address addr) const;

    /// Pushes this pool's occupancy/free deltas into the shared gauges.
    void sync_gauges();

    PoolConfig config_;
    rng::Stream rng_;
    bool fault_exhausted_ = false;
    std::vector<bool> prefix_enabled_;
    // Free addresses per prefix with O(1) random removal.
    std::vector<std::vector<net::IPv4Address>> free_by_prefix_;
    // addr -> (prefix index, position in that prefix's free vector)
    std::unordered_map<net::IPv4Address, std::pair<std::size_t, std::size_t>> free_pos_;
    std::size_t total_free_ = 0;
    std::unordered_map<net::IPv4Address, ClientId> holder_by_addr_;
    std::unordered_map<ClientId, net::IPv4Address> addr_by_holder_;
    std::unordered_map<ClientId, net::IPv4Address> remembered_binding_;
    // Last values pushed into the shared gauges (unwound by ~AddressPool).
    std::size_t reported_occupancy_ = 0;
    std::size_t reported_free_ = 0;
};

}  // namespace dynaddr::pool

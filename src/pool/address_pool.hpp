#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/rng.hpp"
#include "netcore/time.hpp"

namespace dynaddr::pool {

/// Identifies a subscriber (CPE) within one ISP's pool. In DHCP terms this
/// stands in for the client identifier / chaddr; in PPP terms the login.
using ClientId = std::uint64_t;

/// How an ISP's pool picks the next address for a subscriber.
enum class AllocationStrategy {
    /// Prefer the subscriber's previous address when it is still free —
    /// the RFC 2131 §4.3.1 behaviour the paper expects of DHCP ISPs.
    Sticky,
    /// Lowest free address first, ignoring history.
    Sequential,
    /// Random free address across all pool prefixes, optionally biased
    /// toward the subscriber's previous prefix (`locality_bias`). Models
    /// PPP/RADIUS pools where "neither CPE nor Radius servers remember
    /// addresses" (Maier et al., cited in the paper).
    RandomSpread,
    /// Random free address from a *different* routed prefix than the
    /// subscriber's previous one when possible — the strongest form of the
    /// cross-prefix behaviour the paper measures in Table 7.
    PrefixHop,
};

/// Pool parameters.
struct PoolConfig {
    std::vector<net::IPv4Prefix> prefixes;  ///< disjoint address blocks
    AllocationStrategy strategy = AllocationStrategy::Sticky;
    /// Background address churn from subscribers this simulation does not
    /// model individually: while a sticky subscriber is absent, its old
    /// address is reclaimed by someone else with rate `churn_per_hour`
    /// (exponential). 0 disables reclaiming.
    double churn_per_hour = 0.0;
    /// RandomSpread only: probability that a fresh allocation stays inside
    /// the same prefix as the subscriber's previous address. Tunes the
    /// cross-prefix change fractions of the paper's Table 7.
    double locality_bias = 0.0;
    /// Indices into `prefixes` that start out disabled (no allocations)
    /// until enable_prefix() is called — the "new block" side of an
    /// administrative renumbering.
    std::vector<std::size_t> initially_disabled;
    /// Upper bound on remembered (client, previous address) bindings before
    /// the pool starts pruning bindings older than the churn model's
    /// survival horizon (the absence after which the binding would be
    /// reclaimed with probability > 1 - 1e-9 anyway). 0 picks an automatic
    /// bound of max(65536, 4 × pool capacity), far above any population the
    /// current scenarios produce, so pruning never perturbs their rng draw
    /// sequences. With churn_per_hour == 0 bindings survive forever under
    /// the model and are never pruned.
    std::size_t max_remembered_bindings = 0;
};

/// A dynamic address pool for one ISP.
///
/// The pool owns the free/allocated bookkeeping; DHCP and PPP servers sit
/// on top. All randomness flows from the Stream handed in at construction,
/// so allocation is deterministic per seed.
///
/// Internally every address is a dense 32-bit *slot* (per-prefix base +
/// offset, OVN ipam-style). Occupancy is a pair of bitmaps (free /
/// allocated) scanned 64 bits at a time; client state lives in a dense
/// integer-handle table so sticky lookups are direct indexing instead of
/// hashing. The per-prefix free *buckets* (vectors of slots with
/// swap-remove) are kept because their push/pop order defines which
/// address a random draw yields — they are determinism-bearing state, the
/// bitmaps and handle tables are the fast indexes over them.
/// src/pool/reference_pool.hpp preserves the original hash-map
/// implementation as the behavioural oracle.
class AddressPool {
public:
    /// Throws Error on an empty or overlapping prefix set, or when the
    /// prefixes span 2^32 or more addresses.
    AddressPool(PoolConfig config, rng::Stream rng);

    /// Unwinds this pool's contribution to the process-wide occupancy
    /// gauges (many pools share them; see obs metrics).
    ~AddressPool();

    /// Allocates an address for `client` at time `now`.
    ///
    /// `hint` is the address the client asks for (DHCP REQUEST of a prior
    /// lease). Under Sticky the pool first tries the hint, then the
    /// remembered binding, subject to the churn model: if the client was
    /// absent since `absent_since` the old address may have been handed to
    /// someone else. A candidate is honoured only when it belongs to a
    /// configured, currently-enabled prefix — a hint into a retired
    /// (renumbered-away) block is declined before any state is consulted.
    /// Returns nullopt only when the pool is exhausted.
    std::optional<net::IPv4Address> allocate(
        ClientId client, net::TimePoint now,
        std::optional<net::IPv4Address> hint = std::nullopt,
        std::optional<net::TimePoint> absent_since = std::nullopt);

    /// Releases the client's current address back to the free set. The
    /// binding is remembered for sticky/locality reallocation. No-op when
    /// the client holds nothing.
    void release(ClientId client);

    /// Current address of a client, if any.
    [[nodiscard]] std::optional<net::IPv4Address> address_of(ClientId client) const;

    /// Forgets the remembered binding of a client (models an ISP-side
    /// database flush / administrative renumbering).
    void forget_binding(ClientId client);

    /// Administrative renumbering, ISP side: stops allocating from prefix
    /// `index` and abandons its free addresses. Addresses still held stay
    /// held (their servers evict lazily via is_retired) and are not
    /// returned to the pool on release. Throws Error on a bad index.
    void retire_prefix(std::size_t index);

    /// Brings an initially-disabled (or retired) prefix into service.
    void enable_prefix(std::size_t index);

    /// True when `addr` belongs to a currently-retired/disabled prefix —
    /// servers use this to refuse lease renewals after a renumbering.
    [[nodiscard]] bool is_retired(net::IPv4Address addr) const;

    /// Fault injection: while set, allocate() behaves as if every address
    /// were taken (nullopt). Releases and held addresses are unaffected.
    void set_fault_exhausted(bool exhausted) { fault_exhausted_ = exhausted; }
    [[nodiscard]] bool fault_exhausted() const { return fault_exhausted_; }

    [[nodiscard]] std::size_t free_count() const { return total_free_; }
    [[nodiscard]] std::size_t allocated_count() const { return total_allocated_; }
    [[nodiscard]] std::size_t capacity() const { return total_free_ + allocated_count(); }
    [[nodiscard]] const PoolConfig& config() const { return config_; }

    /// Number of remembered (client, previous address) bindings currently
    /// held — observable for the pruning bound.
    [[nodiscard]] std::size_t remembered_binding_count() const { return binding_count_; }

    /// Fraction of the pool currently allocated.
    [[nodiscard]] double utilization() const;

private:
    static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
    /// Client ids below this live in the dense handle table; the (rare)
    /// rest fall back to a hash map.
    static constexpr ClientId kDenseClientCap = ClientId{1} << 22;

    /// Per-client state, indexed directly by ClientId.
    struct ClientEntry {
        std::uint32_t cur_slot = kNoSlot;  ///< currently-held address
        std::uint32_t rem_slot = kNoSlot;  ///< remembered binding
        std::int64_t rem_stamp = 0;        ///< sim time the binding was made
    };

    /// A picked free address, identified by its position in a prefix's
    /// free bucket. Pickers return the position they drew so the take
    /// skips the dependent free_pos_ lookup (a cold line on big pools).
    struct Picked {
        std::uint32_t pos = 0;
        std::uint32_t prefix = 0;
    };

    /// True when the sticky binding survives an absence of `absent` given
    /// the configured churn rate (random draw).
    bool binding_survives(net::Duration absent);

    /// Takes the free slot at a bucket position; returns the slot.
    std::uint32_t take_picked(Picked pick, ClientId client);
    /// Takes a specific free slot (hint/sticky path) in prefix `prefix`.
    void take_slot(std::uint32_t slot, std::size_t prefix, ClientId client);
    std::optional<Picked> pick_sequential();
    std::optional<Picked> pick_random();
    /// Random free slot within prefix `index`; nullopt when empty.
    std::optional<Picked> pick_in_prefix(std::size_t index);
    /// `prev_prefix`: the prefix index of the subscriber's previous
    /// address, -1 when that address lies outside the pool (a foreign
    /// hint; the locality draw still happens), nullopt when there is no
    /// previous address at all.
    std::optional<Picked> pick_random_spread(std::optional<int> prev_prefix);
    std::optional<Picked> pick_prefix_hop(std::optional<int> prev_prefix);

    /// Index of the configured prefix containing `addr`, or -1.
    [[nodiscard]] int prefix_index_of(net::IPv4Address addr) const;
    [[nodiscard]] std::size_t prefix_of_slot(std::uint32_t slot) const;
    [[nodiscard]] net::IPv4Address addr_of_slot(std::uint32_t slot) const;
    /// Lowest free slot inside prefix `p` via a 64-bit word scan; the
    /// caller guarantees the prefix has free addresses.
    [[nodiscard]] std::uint32_t first_free_slot_in(std::size_t p) const;

    [[nodiscard]] const ClientEntry* entry_find(ClientId client) const;
    [[nodiscard]] ClientEntry* entry_find(ClientId client);
    ClientEntry& entry_ensure(ClientId client);

    /// Drops bindings older than the churn model's survival horizon once
    /// the count passes the configured bound (amortized).
    void maybe_prune_bindings();

    /// Counts one allocate/release toward the amortized metrics flush.
    void note_op();
    /// Pushes pending counter increments and occupancy/free gauge deltas
    /// into the shared obs registry, exactly.
    void flush_metrics();

    PoolConfig config_;
    rng::Stream rng_;
    bool fault_exhausted_ = false;
    /// False for RandomSpread/PrefixHop, which never look a slot up by
    /// value: free_pos_ stores are skipped on their hot paths.
    bool maintain_free_pos_ = true;
    std::vector<bool> prefix_enabled_;
    // First slot of each prefix, ascending; prefix p owns
    // [slot_base_[p], slot_base_[p] + prefixes[p].size()).
    std::vector<std::uint32_t> slot_base_;
    std::uint64_t slot_count_ = 0;
    // Occupancy bitmaps over the slot space, one bit per address.
    std::vector<std::uint64_t> free_words_;
    std::vector<std::uint64_t> alloc_words_;
    // Free slots per prefix with O(1) swap-remove; ordering is
    // determinism-bearing (random picks index into these).
    std::vector<std::vector<std::uint32_t>> free_by_prefix_;
    // slot -> position in its prefix's free bucket (valid while free).
    std::vector<std::uint32_t> free_pos_;
    std::size_t total_free_ = 0;
    std::size_t total_allocated_ = 0;
    // Integer-handle client tables (dense for small ids, map overflow).
    std::vector<ClientEntry> clients_dense_;
    std::unordered_map<ClientId, ClientEntry> clients_sparse_;
    // Remembered-binding bound (satellite: no unbounded growth).
    std::size_t binding_count_ = 0;
    std::size_t binding_bound_ = 0;
    std::size_t binding_trigger_ = 0;
    net::TimePoint last_now_{};
    // Reused by the weighted prefix draws; avoids per-allocate heap churn.
    std::vector<double> weights_scratch_;
    // Obs-registry updates are batched: per-op deltas accumulate here and
    // flush every kMetricsFlushOps mutations (and at construction,
    // retire/enable and destruction, where they are exact). Keeps
    // lock-prefixed atomic RMWs off the per-lease hot path; the shared
    // registry lags a live pool by at most kMetricsFlushOps - 1 ops.
    static constexpr std::uint32_t kMetricsFlushOps = 64;
    std::uint32_t ops_since_flush_ = 0;
    std::uint64_t pending_allocations_ = 0;
    std::uint64_t pending_releases_ = 0;
    std::uint64_t pending_churn_ = 0;
    // Last values pushed into the shared gauges (unwound by ~AddressPool).
    std::size_t reported_occupancy_ = 0;
    std::size_t reported_free_ = 0;
    // Capacity accounting (mem.pool.address_pool, one source per pool);
    // published from flush_metrics, so it shares the same amortization
    // and staleness bound as the occupancy gauges.
    void publish_mem();
    obs::MemRegistration mem_{"pool.address_pool"};
};

}  // namespace dynaddr::pool

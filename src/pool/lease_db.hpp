#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/time.hpp"
#include "pool/address_pool.hpp"

namespace dynaddr::pool {

/// One active lease.
struct Lease {
    ClientId client = 0;
    net::IPv4Address address;
    net::TimePoint granted;
    net::TimePoint expiry;

    [[nodiscard]] net::Duration duration() const { return expiry - granted; }
};

/// Tracks active leases with an expiry index, the server-side state a
/// DHCP server keeps. At most one lease per client and per address.
///
/// Storage is a pair of open-addressing tables (client -> lease record,
/// address -> client) with linear probing, plus a binary min-heap over
/// (expiry, grant sequence) for the expiry index. Heap entries are
/// invalidated lazily: each grant stamps the record with a fresh sequence
/// number, and stale heap entries are skipped on pop. Expiry order is by
/// expiry time with ties in grant order — exactly the old std::multimap
/// semantics (see ReferenceLeaseDb, the differential-test oracle).
class LeaseDb {
public:
    LeaseDb();
    /// Unwinds this database's contribution to the shared lease.active
    /// gauge (see obs metrics).
    ~LeaseDb();
    LeaseDb(const LeaseDb&) = delete;
    LeaseDb& operator=(const LeaseDb&) = delete;

    /// Inserts or refreshes the lease for (client, address). Throws Error
    /// when the address is actively leased to a different client.
    void grant(const Lease& lease);

    /// Drops the client's lease, if any. Returns the removed lease.
    std::optional<Lease> revoke(ClientId client);

    /// The client's active lease.
    [[nodiscard]] std::optional<Lease> find(ClientId client) const;

    /// The lease on an address.
    [[nodiscard]] std::optional<Lease> find_by_address(net::IPv4Address addr) const;

    /// Removes and returns every lease with expiry <= now, earliest first.
    std::vector<Lease> expire_until(net::TimePoint now);

    /// Time of the earliest expiry, if any lease is active.
    [[nodiscard]] std::optional<net::TimePoint> next_expiry() const;

    /// Every active lease, ordered by client id (deterministic).
    [[nodiscard]] std::vector<Lease> all() const;

    [[nodiscard]] std::size_t size() const { return live_; }

private:
    enum class SlotState : std::uint8_t { Empty, Occupied, Tombstone };

    struct ClientSlot {
        Lease lease;
        std::uint64_t seq = 0;  ///< grant sequence; matches live heap entry
        SlotState state = SlotState::Empty;
    };

    struct AddrSlot {
        net::IPv4Address addr;
        ClientId client = 0;
        SlotState state = SlotState::Empty;
    };

    struct HeapEntry {
        net::TimePoint expiry;
        std::uint64_t seq = 0;
        ClientId client = 0;

        // Min-heap order: earliest expiry first, grant order on ties.
        [[nodiscard]] bool after(const HeapEntry& o) const {
            return expiry != o.expiry ? expiry > o.expiry : seq > o.seq;
        }
    };

    [[nodiscard]] const ClientSlot* client_slot(ClientId client) const;
    ClientSlot& client_slot_for_insert(ClientId client);
    void client_slot_erase(ClientId client);
    [[nodiscard]] const AddrSlot* addr_slot(net::IPv4Address addr) const;
    AddrSlot& addr_slot_for_insert(net::IPv4Address addr);
    void addr_slot_erase(net::IPv4Address addr);
    void maybe_grow();

    void heap_push(HeapEntry entry);
    /// Drops stale heap entries off the top; compacts when the heap holds
    /// mostly garbage. Logically const (the heap is an index, not state).
    void heap_settle() const;

    /// Pushes this database's active-lease delta into the shared gauge.
    void sync_gauge();

    std::vector<ClientSlot> clients_;
    std::vector<AddrSlot> addrs_;
    std::size_t live_ = 0;
    std::size_t client_used_ = 0;  ///< occupied + tombstones in clients_
    std::size_t addr_used_ = 0;
    std::uint64_t next_seq_ = 0;
    mutable std::vector<HeapEntry> heap_;
    // Last value pushed into the shared gauge (unwound by ~LeaseDb).
    std::size_t reported_active_ = 0;
    // Capacity accounting (mem.pool.lease_db), published from sync_gauge
    // — every grant/revoke/expire batch, i.e. exactly when the tables can
    // have changed shape.
    obs::MemRegistration mem_{"pool.lease_db"};
};

}  // namespace dynaddr::pool

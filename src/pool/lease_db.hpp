#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/time.hpp"
#include "pool/address_pool.hpp"

namespace dynaddr::pool {

/// One active lease.
struct Lease {
    ClientId client = 0;
    net::IPv4Address address;
    net::TimePoint granted;
    net::TimePoint expiry;

    [[nodiscard]] net::Duration duration() const { return expiry - granted; }
};

/// Tracks active leases with an expiry index, the server-side state a
/// DHCP server keeps. At most one lease per client and per address.
class LeaseDb {
public:
    LeaseDb() = default;
    /// Unwinds this database's contribution to the shared lease.active
    /// gauge (see obs metrics).
    ~LeaseDb();
    LeaseDb(const LeaseDb&) = delete;
    LeaseDb& operator=(const LeaseDb&) = delete;

    /// Inserts or refreshes the lease for (client, address). Throws Error
    /// when the address is actively leased to a different client.
    void grant(const Lease& lease);

    /// Drops the client's lease, if any. Returns the removed lease.
    std::optional<Lease> revoke(ClientId client);

    /// The client's active lease.
    [[nodiscard]] std::optional<Lease> find(ClientId client) const;

    /// The lease on an address.
    [[nodiscard]] std::optional<Lease> find_by_address(net::IPv4Address addr) const;

    /// Removes and returns every lease with expiry <= now, earliest first.
    std::vector<Lease> expire_until(net::TimePoint now);

    /// Time of the earliest expiry, if any lease is active.
    [[nodiscard]] std::optional<net::TimePoint> next_expiry() const;

    /// Every active lease, ordered by client id (deterministic).
    [[nodiscard]] std::vector<Lease> all() const;

    [[nodiscard]] std::size_t size() const { return by_client_.size(); }

private:
    void unindex(const Lease& lease);

    /// Pushes this database's active-lease delta into the shared gauge.
    void sync_gauge();

    std::unordered_map<ClientId, Lease> by_client_;
    std::unordered_map<net::IPv4Address, ClientId> client_by_addr_;
    // Expiry index; multiple leases can share an expiry second.
    std::multimap<net::TimePoint, ClientId> by_expiry_;
    // Last value pushed into the shared gauge (unwound by ~LeaseDb).
    std::size_t reported_active_ = 0;
};

}  // namespace dynaddr::pool

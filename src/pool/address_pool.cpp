#include "pool/address_pool.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"

DYNADDR_LOG_MODULE(pool);

namespace dynaddr::pool {

namespace {

/// Process-wide pool metrics; every AddressPool adds deltas so the gauges
/// read totals across all live pools, and the destructor unwinds them.
struct PoolMetrics {
    obs::Counter& allocations = obs::counter("pool.allocations");
    obs::Counter& releases = obs::counter("pool.releases");
    obs::Counter& churn = obs::counter("pool.churn");
    obs::Gauge& occupancy = obs::gauge("pool.occupancy");
    obs::Gauge& free_addresses = obs::gauge("pool.free");
};

PoolMetrics& pool_metrics() {
    static PoolMetrics metrics;
    return metrics;
}

inline bool test_bit(const std::vector<std::uint64_t>& words, std::uint32_t bit) {
    return (words[bit >> 6] >> (bit & 63)) & 1u;
}

inline void set_bit(std::vector<std::uint64_t>& words, std::uint32_t bit) {
    words[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}

inline void clear_bit(std::vector<std::uint64_t>& words, std::uint32_t bit) {
    words[bit >> 6] &= ~(std::uint64_t{1} << (bit & 63));
}

}  // namespace

AddressPool::AddressPool(PoolConfig config, rng::Stream rng)
    : config_(std::move(config)), rng_(rng) {
    if (config_.prefixes.empty()) throw Error("address pool needs prefixes");
    // Only the sticky hint path (take_slot) and the sequential low-scan
    // read the slot→bucket-position index; the purely random strategies
    // skip its two random-access stores per op.
    maintain_free_pos_ = config_.strategy == AllocationStrategy::Sticky ||
                         config_.strategy == AllocationStrategy::Sequential;
    for (std::size_t i = 0; i < config_.prefixes.size(); ++i)
        for (std::size_t j = i + 1; j < config_.prefixes.size(); ++j)
            if (config_.prefixes[i].contains(config_.prefixes[j]) ||
                config_.prefixes[j].contains(config_.prefixes[i]))
                throw Error("address pool prefixes overlap: " +
                            config_.prefixes[i].to_string() + " and " +
                            config_.prefixes[j].to_string());
    slot_base_.reserve(config_.prefixes.size());
    for (const auto& prefix : config_.prefixes) {
        slot_base_.push_back(std::uint32_t(slot_count_));
        slot_count_ += prefix.size();
    }
    if (slot_count_ > std::uint64_t{0xFFFFFFFF})
        throw Error("address pool spans 2^32 or more addresses");
    const std::size_t words = std::size_t((slot_count_ + 63) / 64);
    free_words_.assign(words, 0);
    alloc_words_.assign(words, 0);
    free_pos_.assign(std::size_t(slot_count_), kNoSlot);
    free_by_prefix_.resize(config_.prefixes.size());
    weights_scratch_.resize(config_.prefixes.size());
    prefix_enabled_.assign(config_.prefixes.size(), true);
    for (std::size_t index : config_.initially_disabled) {
        if (index >= config_.prefixes.size())
            throw Error("initially_disabled index out of range");
        prefix_enabled_[index] = false;
    }
    for (std::size_t p = 0; p < config_.prefixes.size(); ++p) {
        if (!prefix_enabled_[p]) continue;
        const std::uint64_t size = config_.prefixes[p].size();
        auto& bucket = free_by_prefix_[p];
        bucket.reserve(size);
        for (std::uint64_t i = 0; i < size; ++i) {
            const auto slot = std::uint32_t(slot_base_[p] + i);
            set_bit(free_words_, slot);
            free_pos_[slot] = std::uint32_t(bucket.size());
            bucket.push_back(slot);
        }
        total_free_ += bucket.size();
    }
    binding_bound_ = config_.max_remembered_bindings
                         ? config_.max_remembered_bindings
                         : std::max<std::size_t>(65536, 4 * std::size_t(slot_count_));
    binding_trigger_ = binding_bound_;
    flush_metrics();
    DYNADDR_LOG(Debug, pool, "pool created: ", config_.prefixes.size(),
                " prefixes, ", total_free_, " free addresses");
}

AddressPool::~AddressPool() {
    flush_metrics();
    PoolMetrics& metrics = pool_metrics();
    metrics.occupancy.add(-std::int64_t(reported_occupancy_));
    metrics.free_addresses.add(-std::int64_t(reported_free_));
}

void AddressPool::note_op() {
    if (++ops_since_flush_ >= kMetricsFlushOps) flush_metrics();
}

void AddressPool::flush_metrics() {
    ops_since_flush_ = 0;
    PoolMetrics& metrics = pool_metrics();
    if (pending_allocations_) {
        metrics.allocations.inc(pending_allocations_);
        pending_allocations_ = 0;
    }
    if (pending_releases_) {
        metrics.releases.inc(pending_releases_);
        pending_releases_ = 0;
    }
    if (pending_churn_) {
        metrics.churn.inc(pending_churn_);
        pending_churn_ = 0;
    }
    if (allocated_count() != reported_occupancy_) {
        metrics.occupancy.add(std::int64_t(allocated_count()) -
                              std::int64_t(reported_occupancy_));
        reported_occupancy_ = allocated_count();
    }
    if (total_free_ != reported_free_) {
        metrics.free_addresses.add(std::int64_t(total_free_) -
                                   std::int64_t(reported_free_));
        reported_free_ = total_free_;
    }
    publish_mem();
}

void AddressPool::publish_mem() {
    std::uint64_t bytes =
        free_words_.capacity() * sizeof(std::uint64_t) +
        alloc_words_.capacity() * sizeof(std::uint64_t) +
        free_pos_.capacity() * sizeof(std::uint32_t) +
        slot_base_.capacity() * sizeof(std::uint32_t) +
        free_by_prefix_.capacity() * sizeof(std::vector<std::uint32_t>) +
        clients_dense_.capacity() * sizeof(ClientEntry) +
        clients_sparse_.size() * (sizeof(ClientEntry) + sizeof(ClientId) +
                                  2 * sizeof(void*)) +
        weights_scratch_.capacity() * sizeof(double) +
        prefix_enabled_.capacity() / 8;
    for (const auto& bucket : free_by_prefix_)
        bytes += bucket.capacity() * sizeof(std::uint32_t);
    mem_.report(bytes, slot_count_);
}

void AddressPool::retire_prefix(std::size_t index) {
    if (index >= config_.prefixes.size()) throw Error("prefix index out of range");
    if (!prefix_enabled_[index]) return;
    prefix_enabled_[index] = false;
    auto& bucket = free_by_prefix_[index];
    for (const auto slot : bucket) clear_bit(free_words_, slot);
    total_free_ -= bucket.size();
    bucket.clear();
    flush_metrics();
    DYNADDR_LOG(Info, pool, "retired prefix ",
                config_.prefixes[index].to_string());
}

void AddressPool::enable_prefix(std::size_t index) {
    if (index >= config_.prefixes.size()) throw Error("prefix index out of range");
    if (prefix_enabled_[index]) return;
    prefix_enabled_[index] = true;
    const std::uint64_t size = config_.prefixes[index].size();
    auto& bucket = free_by_prefix_[index];
    for (std::uint64_t i = 0; i < size; ++i) {
        const auto slot = std::uint32_t(slot_base_[index] + i);
        if (test_bit(alloc_words_, slot)) continue;  // survived retirement
        set_bit(free_words_, slot);
        free_pos_[slot] = std::uint32_t(bucket.size());
        bucket.push_back(slot);
        ++total_free_;
    }
    flush_metrics();
    DYNADDR_LOG(Info, pool, "enabled prefix ",
                config_.prefixes[index].to_string());
}

bool AddressPool::is_retired(net::IPv4Address addr) const {
    const int p = prefix_index_of(addr);
    return p >= 0 && !prefix_enabled_[std::size_t(p)];
}

std::optional<net::IPv4Address> AddressPool::allocate(
    ClientId client, net::TimePoint now, std::optional<net::IPv4Address> hint,
    std::optional<net::TimePoint> absent_since) {
    last_now_ = now;

    // The remembered binding is kept as a slot; it is never materialized
    // as an address on this path (the slot→address→prefix round-trip was
    // measurable at line rate).
    std::uint32_t rem_slot = kNoSlot;
    if (const ClientEntry* entry = entry_find(client)) {
        // A client re-requesting while already holding an address keeps
        // it (lease renewal).
        if (entry->cur_slot != kNoSlot) return addr_of_slot(entry->cur_slot);
        rem_slot = entry->rem_slot;
    }

    // Fault-injected exhaustion: renewals above still succeed, but no
    // fresh address leaves the pool.
    if (fault_exhausted_) return std::nullopt;

    if (config_.strategy == AllocationStrategy::Sticky) {
        const net::Duration absent =
            absent_since ? now - *absent_since : net::Duration{0};
        // Honour the explicit hint first, then the server-side binding. A
        // candidate must pass membership and enabled-prefix checks before
        // anything else — a hint into foreign or retired space is declined
        // without touching the occupancy state. A failed survival draw
        // (someone else took the address while the client was away) rules
        // out the remaining candidate too, as the reference pool does.
        bool binding_lost = false;
        if (hint) {
            const int p = prefix_index_of(*hint);
            if (p >= 0 && prefix_enabled_[std::size_t(p)]) {
                const auto slot = std::uint32_t(
                    slot_base_[std::size_t(p)] +
                    (hint->value() -
                     config_.prefixes[std::size_t(p)].base().value()));
                if (test_bit(free_words_, slot)) {
                    if (binding_survives(absent)) {
                        take_slot(slot, std::size_t(p), client);
                        return hint;
                    }
                    binding_lost = true;
                }
            }
        }
        if (!binding_lost && rem_slot != kNoSlot) {
            const std::size_t p = prefix_of_slot(rem_slot);
            if (prefix_enabled_[p] && test_bit(free_words_, rem_slot) &&
                binding_survives(absent)) {
                take_slot(rem_slot, p, client);
                return addr_of_slot(rem_slot);
            }
        }
    }

    // The pickers only need the *prefix* of the previous address (locality
    // bias, hop avoidance). -1 encodes "previous address outside the
    // pool's space" — distinct from nullopt, which is "no previous address
    // at all", because the locality draw happens in the former case too.
    std::optional<int> prev_prefix;
    if (rem_slot != kNoSlot)
        prev_prefix = int(prefix_of_slot(rem_slot));
    else if (hint)
        prev_prefix = prefix_index_of(*hint);

    std::optional<Picked> chosen;
    switch (config_.strategy) {
        case AllocationStrategy::Sticky:
            // Binding gone: the server allocates fresh like any pool draw.
            chosen = pick_random_spread(prev_prefix);
            break;
        case AllocationStrategy::Sequential:
            chosen = pick_sequential();
            break;
        case AllocationStrategy::RandomSpread:
            chosen = pick_random_spread(prev_prefix);
            break;
        case AllocationStrategy::PrefixHop:
            chosen = pick_prefix_hop(prev_prefix);
            break;
    }
    if (!chosen) {
        DYNADDR_LOG(Warn, pool, "pool exhausted for client ", client);
        return std::nullopt;
    }
    const std::uint32_t slot = take_picked(*chosen, client);
    const std::size_t cp = chosen->prefix;
    const net::IPv4Address chosen_addr{config_.prefixes[cp].base().value() +
                                       (slot - slot_base_[cp])};
    // A fresh draw while a previous binding exists means the subscriber
    // came back and got a different address — pool-induced churn.
    if (rem_slot != kNoSlot && rem_slot != slot) ++pending_churn_;
    return chosen_addr;
}

void AddressPool::release(ClientId client) {
    ClientEntry* entry = entry_find(client);
    if (!entry || entry->cur_slot == kNoSlot) return;
    const std::uint32_t slot = entry->cur_slot;
    entry->cur_slot = kNoSlot;
    clear_bit(alloc_words_, slot);
    --total_allocated_;
    if (entry->rem_slot == kNoSlot) ++binding_count_;
    entry->rem_slot = slot;
    entry->rem_stamp = last_now_.unix_seconds();
    ++pending_releases_;
    // Every held slot came out of this pool's slot space, so the old
    // foreign-address case (prefix_index_of == -1 indexed as size_t) is
    // structurally impossible here.
    const std::size_t p = prefix_of_slot(slot);
    if (!prefix_enabled_[p]) {  // retired: abandon it
        note_op();
        maybe_prune_bindings();
        return;
    }
    auto& bucket = free_by_prefix_[p];
    set_bit(free_words_, slot);
    if (maintain_free_pos_) free_pos_[slot] = std::uint32_t(bucket.size());
    bucket.push_back(slot);
    ++total_free_;
    note_op();
    maybe_prune_bindings();
}

std::optional<net::IPv4Address> AddressPool::address_of(ClientId client) const {
    const ClientEntry* entry = entry_find(client);
    if (!entry || entry->cur_slot == kNoSlot) return std::nullopt;
    return addr_of_slot(entry->cur_slot);
}

void AddressPool::forget_binding(ClientId client) {
    ClientEntry* entry = entry_find(client);
    if (!entry || entry->rem_slot == kNoSlot) return;
    entry->rem_slot = kNoSlot;
    --binding_count_;
}

double AddressPool::utilization() const {
    const std::size_t cap = capacity();
    return cap == 0 ? 0.0 : double(allocated_count()) / double(cap);
}

bool AddressPool::binding_survives(net::Duration absent) {
    if (config_.churn_per_hour <= 0.0) return true;
    if (absent <= net::Duration{0}) return true;
    const double p_taken =
        1.0 - std::exp(-config_.churn_per_hour * absent.to_hours());
    return !rng_.bernoulli(p_taken);
}

std::uint32_t AddressPool::take_picked(Picked pick, ClientId client) {
    auto& bucket = free_by_prefix_[pick.prefix];
    const std::uint32_t slot = bucket[pick.pos];
    // Swap-remove, fixing up the moved slot's index.
    bucket[pick.pos] = bucket.back();
    if (maintain_free_pos_) free_pos_[bucket[pick.pos]] = pick.pos;
    bucket.pop_back();
    clear_bit(free_words_, slot);
    --total_free_;
    set_bit(alloc_words_, slot);
    ++total_allocated_;
    entry_ensure(client).cur_slot = slot;
    ++pending_allocations_;
    note_op();
    return slot;
}

void AddressPool::take_slot(std::uint32_t slot, std::size_t prefix,
                            ClientId client) {
    if (!test_bit(free_words_, slot)) throw Error("taking non-free address");
    take_picked(Picked{free_pos_[slot], std::uint32_t(prefix)}, client);
}

std::optional<AddressPool::Picked> AddressPool::pick_sequential() {
    for (std::size_t p = 0; p < free_by_prefix_.size(); ++p) {
        if (free_by_prefix_[p].empty()) continue;
        return Picked{free_pos_[first_free_slot_in(p)], std::uint32_t(p)};
    }
    return std::nullopt;
}

std::optional<AddressPool::Picked> AddressPool::pick_random() {
    if (total_free_ == 0) return std::nullopt;
    for (std::size_t p = 0; p < free_by_prefix_.size(); ++p)
        weights_scratch_[p] = double(free_by_prefix_[p].size());
    return pick_in_prefix(rng_.weighted_index(weights_scratch_));
}

std::optional<AddressPool::Picked> AddressPool::pick_in_prefix(
    std::size_t index) {
    auto& bucket = free_by_prefix_[index];
    if (bucket.empty()) return std::nullopt;
    const auto pos = std::uint32_t(
        rng_.uniform_int(0, std::int64_t(bucket.size()) - 1));
    return Picked{pos, std::uint32_t(index)};
}

std::optional<AddressPool::Picked> AddressPool::pick_random_spread(
    std::optional<int> prev_prefix) {
    if (prev_prefix && config_.locality_bias > 0.0 &&
        rng_.bernoulli(config_.locality_bias)) {
        if (*prev_prefix >= 0)
            if (auto local = pick_in_prefix(std::size_t(*prev_prefix)))
                return local;
    }
    return pick_random();
}

std::optional<AddressPool::Picked> AddressPool::pick_prefix_hop(
    std::optional<int> prev_prefix) {
    const int avoid = prev_prefix.value_or(-1);
    if (avoid < 0 || config_.prefixes.size() < 2) return pick_random();
    double other_total = 0.0;
    for (std::size_t p = 0; p < free_by_prefix_.size(); ++p) {
        weights_scratch_[p] =
            p == std::size_t(avoid) ? 0.0 : double(free_by_prefix_[p].size());
        other_total += weights_scratch_[p];
    }
    if (other_total <= 0.0) return pick_random();  // only the old prefix has space
    return pick_in_prefix(rng_.weighted_index(weights_scratch_));
}

int AddressPool::prefix_index_of(net::IPv4Address addr) const {
    for (std::size_t i = 0; i < config_.prefixes.size(); ++i)
        if (config_.prefixes[i].contains(addr)) return int(i);
    return -1;
}

std::size_t AddressPool::prefix_of_slot(std::uint32_t slot) const {
    // slot_base_ is ascending by construction; for the handful of prefixes
    // a pool holds this compiles to a short branchless scan.
    const auto it = std::upper_bound(slot_base_.begin(), slot_base_.end(), slot);
    return std::size_t(it - slot_base_.begin()) - 1;
}

net::IPv4Address AddressPool::addr_of_slot(std::uint32_t slot) const {
    const std::size_t p = prefix_of_slot(slot);
    return net::IPv4Address{config_.prefixes[p].base().value() +
                            (slot - slot_base_[p])};
}

std::uint32_t AddressPool::first_free_slot_in(std::size_t p) const {
    const std::uint32_t begin = slot_base_[p];
    const auto end = std::uint32_t(begin + config_.prefixes[p].size());
    const std::uint32_t first = begin >> 6, last = (end - 1) >> 6;
    for (std::uint32_t w = first; w <= last; ++w) {
        std::uint64_t word = free_words_[w];
        if (w == first) word &= ~std::uint64_t{0} << (begin & 63);
        if (w == last && (end & 63) != 0)
            word &= (std::uint64_t{1} << (end & 63)) - 1;
        if (word) return (w << 6) + std::uint32_t(std::countr_zero(word));
    }
    throw Error("free bitmap and bucket disagree");  // caller checked non-empty
}

const AddressPool::ClientEntry* AddressPool::entry_find(ClientId client) const {
    if (client < kDenseClientCap) {
        if (client >= clients_dense_.size()) return nullptr;
        return &clients_dense_[std::size_t(client)];
    }
    const auto it = clients_sparse_.find(client);
    return it == clients_sparse_.end() ? nullptr : &it->second;
}

AddressPool::ClientEntry* AddressPool::entry_find(ClientId client) {
    return const_cast<ClientEntry*>(
        static_cast<const AddressPool*>(this)->entry_find(client));
}

AddressPool::ClientEntry& AddressPool::entry_ensure(ClientId client) {
    if (client < kDenseClientCap) {
        if (client >= clients_dense_.size())
            clients_dense_.resize(std::size_t(client) + 1);
        return clients_dense_[std::size_t(client)];
    }
    return clients_sparse_[client];
}

void AddressPool::maybe_prune_bindings() {
    if (binding_count_ <= binding_trigger_) return;
    // With churn == 0 the model says bindings survive indefinitely, so
    // there is no horizon to prune against.
    if (config_.churn_per_hour <= 0.0) return;
    // Absence beyond this makes reclamation near-certain (p > 1 - 1e-9);
    // dropping such a binding is indistinguishable from the churn draw in
    // all but one case per billion.
    const double horizon_hours = std::log(1e9) / config_.churn_per_hour;
    const std::int64_t cutoff =
        last_now_.unix_seconds() - std::int64_t(horizon_hours * 3600.0) - 1;
    const auto prune = [&](ClientEntry& entry) {
        if (entry.rem_slot == kNoSlot || entry.rem_stamp > cutoff) return;
        entry.rem_slot = kNoSlot;
        --binding_count_;
    };
    for (auto& entry : clients_dense_) prune(entry);
    for (auto& [client, entry] : clients_sparse_) prune(entry);
    // Re-arm above the surviving population so sweeps stay amortized.
    binding_trigger_ = std::max(binding_bound_, binding_count_ + binding_bound_ / 4);
}

}  // namespace dynaddr::pool

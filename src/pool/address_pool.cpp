#include "pool/address_pool.hpp"

#include <algorithm>
#include <cmath>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"

DYNADDR_LOG_MODULE(pool);

namespace dynaddr::pool {

namespace {

/// Process-wide pool metrics; every AddressPool adds deltas so the gauges
/// read totals across all live pools, and the destructor unwinds them.
struct PoolMetrics {
    obs::Counter& allocations = obs::counter("pool.allocations");
    obs::Counter& releases = obs::counter("pool.releases");
    obs::Counter& churn = obs::counter("pool.churn");
    obs::Gauge& occupancy = obs::gauge("pool.occupancy");
    obs::Gauge& free_addresses = obs::gauge("pool.free");
};

PoolMetrics& pool_metrics() {
    static PoolMetrics metrics;
    return metrics;
}

}  // namespace

AddressPool::AddressPool(PoolConfig config, rng::Stream rng)
    : config_(std::move(config)), rng_(rng) {
    if (config_.prefixes.empty()) throw Error("address pool needs prefixes");
    for (std::size_t i = 0; i < config_.prefixes.size(); ++i)
        for (std::size_t j = i + 1; j < config_.prefixes.size(); ++j)
            if (config_.prefixes[i].contains(config_.prefixes[j]) ||
                config_.prefixes[j].contains(config_.prefixes[i]))
                throw Error("address pool prefixes overlap: " +
                            config_.prefixes[i].to_string() + " and " +
                            config_.prefixes[j].to_string());
    free_by_prefix_.resize(config_.prefixes.size());
    prefix_enabled_.assign(config_.prefixes.size(), true);
    for (std::size_t index : config_.initially_disabled) {
        if (index >= config_.prefixes.size())
            throw Error("initially_disabled index out of range");
        prefix_enabled_[index] = false;
    }
    for (std::size_t p = 0; p < config_.prefixes.size(); ++p) {
        if (!prefix_enabled_[p]) continue;
        const auto& prefix = config_.prefixes[p];
        auto& bucket = free_by_prefix_[p];
        bucket.reserve(prefix.size());
        for (std::uint64_t i = 0; i < prefix.size(); ++i) {
            free_pos_.emplace(prefix.at(i), std::pair{p, bucket.size()});
            bucket.push_back(prefix.at(i));
        }
        total_free_ += bucket.size();
    }
    sync_gauges();
    DYNADDR_LOG(Debug, pool, "pool created: ", config_.prefixes.size(),
                " prefixes, ", total_free_, " free addresses");
}

AddressPool::~AddressPool() {
    PoolMetrics& metrics = pool_metrics();
    metrics.occupancy.add(-std::int64_t(reported_occupancy_));
    metrics.free_addresses.add(-std::int64_t(reported_free_));
}

void AddressPool::sync_gauges() {
    PoolMetrics& metrics = pool_metrics();
    metrics.occupancy.add(std::int64_t(allocated_count()) -
                          std::int64_t(reported_occupancy_));
    metrics.free_addresses.add(std::int64_t(total_free_) -
                               std::int64_t(reported_free_));
    reported_occupancy_ = allocated_count();
    reported_free_ = total_free_;
}

void AddressPool::retire_prefix(std::size_t index) {
    if (index >= config_.prefixes.size()) throw Error("prefix index out of range");
    if (!prefix_enabled_[index]) return;
    prefix_enabled_[index] = false;
    auto& bucket = free_by_prefix_[index];
    for (const auto addr : bucket) free_pos_.erase(addr);
    total_free_ -= bucket.size();
    bucket.clear();
    sync_gauges();
    DYNADDR_LOG(Info, pool, "retired prefix ",
                config_.prefixes[index].to_string());
}

void AddressPool::enable_prefix(std::size_t index) {
    if (index >= config_.prefixes.size()) throw Error("prefix index out of range");
    if (prefix_enabled_[index]) return;
    prefix_enabled_[index] = true;
    const auto& prefix = config_.prefixes[index];
    auto& bucket = free_by_prefix_[index];
    for (std::uint64_t i = 0; i < prefix.size(); ++i) {
        const auto addr = prefix.at(i);
        if (holder_by_addr_.contains(addr)) continue;  // survived retirement
        free_pos_.emplace(addr, std::pair{index, bucket.size()});
        bucket.push_back(addr);
        ++total_free_;
    }
    sync_gauges();
    DYNADDR_LOG(Info, pool, "enabled prefix ",
                config_.prefixes[index].to_string());
}

bool AddressPool::is_retired(net::IPv4Address addr) const {
    const int p = prefix_index_of(addr);
    return p >= 0 && !prefix_enabled_[std::size_t(p)];
}

std::optional<net::IPv4Address> AddressPool::allocate(
    ClientId client, net::TimePoint now, std::optional<net::IPv4Address> hint,
    std::optional<net::TimePoint> absent_since) {
    // A client re-requesting while already holding an address keeps it
    // (lease renewal).
    if (auto held = address_of(client)) return held;

    // Fault-injected exhaustion: renewals above still succeed, but no
    // fresh address leaves the pool.
    if (fault_exhausted_) return std::nullopt;

    std::optional<net::IPv4Address> previous;
    if (auto it = remembered_binding_.find(client); it != remembered_binding_.end())
        previous = it->second;

    if (config_.strategy == AllocationStrategy::Sticky) {
        const net::Duration absent =
            absent_since ? now - *absent_since : net::Duration{0};
        // Honour the explicit hint first, then the server-side binding.
        for (auto candidate : {hint, previous}) {
            if (!candidate || !is_free(*candidate)) continue;
            if (prefix_index_of(*candidate) < 0) continue;  // not our space
            if (!binding_survives(absent)) break;  // someone else took it
            take(*candidate, client);
            return candidate;
        }
    }

    std::optional<net::IPv4Address> chosen;
    switch (config_.strategy) {
        case AllocationStrategy::Sticky:
            // Binding gone: the server allocates fresh like any pool draw.
            chosen = pick_random_spread(previous ? previous : hint);
            break;
        case AllocationStrategy::Sequential:
            chosen = pick_sequential();
            break;
        case AllocationStrategy::RandomSpread:
            chosen = pick_random_spread(previous ? previous : hint);
            break;
        case AllocationStrategy::PrefixHop:
            chosen = pick_prefix_hop(previous ? previous : hint);
            break;
    }
    if (!chosen) {
        DYNADDR_LOG(Warn, pool, "pool exhausted for client ", client);
        return std::nullopt;
    }
    take(*chosen, client);
    // A fresh draw while a previous binding exists means the subscriber
    // came back and got a different address — pool-induced churn.
    if (previous && *previous != *chosen) pool_metrics().churn.inc();
    return chosen;
}

void AddressPool::release(ClientId client) {
    auto it = addr_by_holder_.find(client);
    if (it == addr_by_holder_.end()) return;
    const net::IPv4Address addr = it->second;
    addr_by_holder_.erase(it);
    holder_by_addr_.erase(addr);
    remembered_binding_[client] = addr;
    pool_metrics().releases.inc();
    const int p = prefix_index_of(addr);
    if (!prefix_enabled_[std::size_t(p)]) {  // retired: abandon it
        sync_gauges();
        return;
    }
    auto& bucket = free_by_prefix_[std::size_t(p)];
    free_pos_.emplace(addr, std::pair{std::size_t(p), bucket.size()});
    bucket.push_back(addr);
    ++total_free_;
    sync_gauges();
}

std::optional<net::IPv4Address> AddressPool::address_of(ClientId client) const {
    auto it = addr_by_holder_.find(client);
    if (it == addr_by_holder_.end()) return std::nullopt;
    return it->second;
}

void AddressPool::forget_binding(ClientId client) {
    remembered_binding_.erase(client);
}

double AddressPool::utilization() const {
    const std::size_t cap = capacity();
    return cap == 0 ? 0.0 : double(allocated_count()) / double(cap);
}

bool AddressPool::binding_survives(net::Duration absent) {
    if (config_.churn_per_hour <= 0.0) return true;
    if (absent <= net::Duration{0}) return true;
    const double p_taken =
        1.0 - std::exp(-config_.churn_per_hour * absent.to_hours());
    return !rng_.bernoulli(p_taken);
}

bool AddressPool::is_free(net::IPv4Address addr) const {
    return free_pos_.contains(addr);
}

void AddressPool::take(net::IPv4Address addr, ClientId client) {
    auto pos_it = free_pos_.find(addr);
    if (pos_it == free_pos_.end()) throw Error("taking non-free address");
    const auto [p, pos] = pos_it->second;
    auto& bucket = free_by_prefix_[p];
    // Swap-remove, fixing up the moved entry's index.
    bucket[pos] = bucket.back();
    free_pos_[bucket[pos]] = {p, pos};
    bucket.pop_back();
    free_pos_.erase(addr);
    --total_free_;
    holder_by_addr_.emplace(addr, client);
    addr_by_holder_.emplace(client, addr);
    pool_metrics().allocations.inc();
    sync_gauges();
}

std::optional<net::IPv4Address> AddressPool::pick_sequential() {
    for (const auto& bucket : free_by_prefix_) {
        if (bucket.empty()) continue;
        return *std::min_element(bucket.begin(), bucket.end());
    }
    return std::nullopt;
}

std::optional<net::IPv4Address> AddressPool::pick_random() {
    if (total_free_ == 0) return std::nullopt;
    std::vector<double> weights(free_by_prefix_.size());
    for (std::size_t p = 0; p < free_by_prefix_.size(); ++p)
        weights[p] = double(free_by_prefix_[p].size());
    return pick_in_prefix(rng_.weighted_index(weights));
}

std::optional<net::IPv4Address> AddressPool::pick_in_prefix(std::size_t index) {
    auto& bucket = free_by_prefix_[index];
    if (bucket.empty()) return std::nullopt;
    return bucket[std::size_t(rng_.uniform_int(0, std::int64_t(bucket.size()) - 1))];
}

std::optional<net::IPv4Address> AddressPool::pick_random_spread(
    std::optional<net::IPv4Address> previous) {
    if (previous && config_.locality_bias > 0.0 &&
        rng_.bernoulli(config_.locality_bias)) {
        const int p = prefix_index_of(*previous);
        if (p >= 0)
            if (auto local = pick_in_prefix(std::size_t(p))) return local;
    }
    return pick_random();
}

std::optional<net::IPv4Address> AddressPool::pick_prefix_hop(
    std::optional<net::IPv4Address> previous) {
    const int avoid = previous ? prefix_index_of(*previous) : -1;
    if (avoid < 0 || config_.prefixes.size() < 2) return pick_random();
    std::vector<double> weights(free_by_prefix_.size());
    double other_total = 0.0;
    for (std::size_t p = 0; p < free_by_prefix_.size(); ++p) {
        weights[p] = p == std::size_t(avoid) ? 0.0 : double(free_by_prefix_[p].size());
        other_total += weights[p];
    }
    if (other_total <= 0.0) return pick_random();  // only the old prefix has space
    return pick_in_prefix(rng_.weighted_index(weights));
}

int AddressPool::prefix_index_of(net::IPv4Address addr) const {
    for (std::size_t i = 0; i < config_.prefixes.size(); ++i)
        if (config_.prefixes[i].contains(addr)) return int(i);
    return -1;
}

}  // namespace dynaddr::pool

#pragma once

// The original map-based AddressPool and LeaseDb, kept verbatim (minus the
// obs metrics plumbing) as differential-test oracles for the bitmap IPAM
// and the open-addressing lease table — the same pattern PR 2 used with
// sim::ReferenceEventQueue. These are *specifications*: every rng draw and
// every ordering decision here defines the behaviour the fast
// implementations must reproduce bit for bit. Not used outside tests and
// benches; do not optimize.

#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/rng.hpp"
#include "netcore/time.hpp"
#include "pool/address_pool.hpp"
#include "pool/lease_db.hpp"

namespace dynaddr::pool {

/// Pre-bitmap AddressPool: per-address hash-map bookkeeping over the same
/// PoolConfig. Identical draw sequence and allocation order by
/// construction; see tests/pool/pool_diff_test.cpp.
class ReferenceAddressPool {
public:
    ReferenceAddressPool(PoolConfig config, rng::Stream rng);

    std::optional<net::IPv4Address> allocate(
        ClientId client, net::TimePoint now,
        std::optional<net::IPv4Address> hint = std::nullopt,
        std::optional<net::TimePoint> absent_since = std::nullopt);

    void release(ClientId client);

    [[nodiscard]] std::optional<net::IPv4Address> address_of(ClientId client) const;

    void forget_binding(ClientId client);

    void retire_prefix(std::size_t index);

    void enable_prefix(std::size_t index);

    [[nodiscard]] bool is_retired(net::IPv4Address addr) const;

    void set_fault_exhausted(bool exhausted) { fault_exhausted_ = exhausted; }
    [[nodiscard]] bool fault_exhausted() const { return fault_exhausted_; }

    [[nodiscard]] std::size_t free_count() const { return total_free_; }
    [[nodiscard]] std::size_t allocated_count() const { return holder_by_addr_.size(); }
    [[nodiscard]] std::size_t capacity() const { return total_free_ + allocated_count(); }
    [[nodiscard]] const PoolConfig& config() const { return config_; }

private:
    bool binding_survives(net::Duration absent);

    [[nodiscard]] bool is_free(net::IPv4Address addr) const;
    void take(net::IPv4Address addr, ClientId client);
    std::optional<net::IPv4Address> pick_sequential();
    std::optional<net::IPv4Address> pick_random();
    std::optional<net::IPv4Address> pick_in_prefix(std::size_t index);
    std::optional<net::IPv4Address> pick_random_spread(
        std::optional<net::IPv4Address> previous);
    std::optional<net::IPv4Address> pick_prefix_hop(
        std::optional<net::IPv4Address> previous);

    [[nodiscard]] int prefix_index_of(net::IPv4Address addr) const;

    PoolConfig config_;
    rng::Stream rng_;
    bool fault_exhausted_ = false;
    std::vector<bool> prefix_enabled_;
    std::vector<std::vector<net::IPv4Address>> free_by_prefix_;
    std::unordered_map<net::IPv4Address, std::pair<std::size_t, std::size_t>> free_pos_;
    std::size_t total_free_ = 0;
    std::unordered_map<net::IPv4Address, ClientId> holder_by_addr_;
    std::unordered_map<ClientId, net::IPv4Address> addr_by_holder_;
    std::unordered_map<ClientId, net::IPv4Address> remembered_binding_;
};

/// Pre-open-addressing LeaseDb: unordered_maps plus a std::multimap expiry
/// index. Defines expiry ordering: by expiry time, ties in grant order.
class ReferenceLeaseDb {
public:
    ReferenceLeaseDb() = default;
    ReferenceLeaseDb(const ReferenceLeaseDb&) = delete;
    ReferenceLeaseDb& operator=(const ReferenceLeaseDb&) = delete;

    void grant(const Lease& lease);
    std::optional<Lease> revoke(ClientId client);
    [[nodiscard]] std::optional<Lease> find(ClientId client) const;
    [[nodiscard]] std::optional<Lease> find_by_address(net::IPv4Address addr) const;
    std::vector<Lease> expire_until(net::TimePoint now);
    [[nodiscard]] std::optional<net::TimePoint> next_expiry() const;
    [[nodiscard]] std::vector<Lease> all() const;
    [[nodiscard]] std::size_t size() const { return by_client_.size(); }

private:
    void unindex(const Lease& lease);

    std::unordered_map<ClientId, Lease> by_client_;
    std::unordered_map<net::IPv4Address, ClientId> client_by_addr_;
    std::multimap<net::TimePoint, ClientId> by_expiry_;
};

}  // namespace dynaddr::pool

#pragma once

// Branch-light delimiter scanning for the hot ingestion paths. The CSV
// splitter and the binary cursor both reduce to "find the next occurrence
// of byte X in a big buffer"; doing that one byte at a time caps
// ScanReader around 200 MB/s. On x86 we compare 16 bytes per instruction
// with SSE2; everywhere else a SWAR word-trick handles 8 bytes per
// iteration. Both paths fall back to a scalar tail and agree bit-for-bit
// with std::string_view::find.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace dynaddr::net::simd {

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

namespace detail {

// SWAR "has zero byte" trick (Mycroft): a word XORed with a broadcast of
// the needle has a zero byte exactly where the needle was.
inline constexpr std::uint64_t broadcast(char c) {
    return 0x0101010101010101ull * static_cast<std::uint8_t>(c);
}

inline constexpr std::uint64_t zero_byte_mask(std::uint64_t word) {
    return (word - 0x0101010101010101ull) & ~word & 0x8080808080808080ull;
}

}  // namespace detail

/// Index of the first `needle` in [data, data+size), or npos. Safe for
/// size 0 and unaligned data.
inline std::size_t find_byte(const char* data, std::size_t size, char needle) {
    std::size_t i = 0;
#if defined(__SSE2__)
    const __m128i pattern = _mm_set1_epi8(needle);
    for (; i + 16 <= size; i += 16) {
        const __m128i chunk =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
        const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, pattern));
        if (mask != 0)
            return i + static_cast<std::size_t>(
                           __builtin_ctz(static_cast<unsigned>(mask)));
    }
#else
    for (; i + 8 <= size; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, data + i, 8);
        const std::uint64_t hit =
            detail::zero_byte_mask(word ^ detail::broadcast(needle));
        if (hit != 0)
            return i + static_cast<std::size_t>(__builtin_ctzll(hit)) / 8;
    }
#endif
    for (; i < size; ++i)
        if (data[i] == needle) return i;
    return npos;
}

inline std::size_t find_byte(std::string_view text, char needle,
                             std::size_t from = 0) {
    if (from >= text.size()) return npos;
    const std::size_t at = find_byte(text.data() + from, text.size() - from, needle);
    return at == npos ? npos : from + at;
}

/// True when `needle` occurs anywhere in `text`. Used for the rare-path
/// quote check on every CSV row, so it must be as cheap as the scan above.
inline bool contains_byte(std::string_view text, char needle) {
    return find_byte(text.data(), text.size(), needle) != npos;
}

/// Calls `emit(begin, end)` for every `delim`-separated field of `line`
/// (no quote handling — the caller routes quoted rows elsewhere). Always
/// emits at least one field; the separators themselves are excluded.
template <typename Emit>
inline void split_unquoted(std::string_view line, char delim, Emit&& emit) {
    std::size_t start = 0;
    for (;;) {
        const std::size_t at = find_byte(line, delim, start);
        if (at == npos) {
            emit(start, line.size());
            return;
        }
        emit(start, at);
        start = at + 1;
    }
}

}  // namespace dynaddr::net::simd

#include "netcore/ipv4.hpp"

#include <charconv>

#include "netcore/error.hpp"

namespace dynaddr::net {

namespace {

// Parses a decimal octet in [0,255] at the front of `text`, advancing it.
// Rejects empty fields and anything std::from_chars would not accept as a
// plain non-negative decimal (signs, whitespace, hex).
std::optional<std::uint8_t> parse_octet(std::string_view& text) {
    unsigned value = 0;
    const char* begin = text.data();
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
    // Reject redundant leading zeros ("01") so formatting round-trips.
    if (ptr - begin > 1 && *begin == '0') return std::nullopt;
    text.remove_prefix(static_cast<std::size_t>(ptr - begin));
    return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        if (i > 0) {
            if (text.empty() || text.front() != '.') return std::nullopt;
            text.remove_prefix(1);
        }
        auto octet = parse_octet(text);
        if (!octet) return std::nullopt;
        value = (value << 8) | *octet;
    }
    if (!text.empty()) return std::nullopt;
    return IPv4Address{value};
}

IPv4Address IPv4Address::parse_or_throw(std::string_view text) {
    auto parsed = parse(text);
    if (!parsed) throw ParseError("bad IPv4 address '" + std::string(text) + "'");
    return *parsed;
}

std::string IPv4Address::to_string() const {
    std::string out;
    out.reserve(15);
    for (int i = 0; i < 4; ++i) {
        if (i > 0) out.push_back('.');
        out += std::to_string(octet(i));
    }
    return out;
}

IPv4Prefix::IPv4Prefix(IPv4Address base, int length) : length_(length) {
    if (length < 0 || length > 32)
        throw Error("prefix length out of range: " + std::to_string(length));
    base_ = IPv4Address{base.value() & mask()};
}

std::optional<IPv4Prefix> IPv4Prefix::parse(std::string_view text) {
    auto slash = text.find('/');
    if (slash == std::string_view::npos) return std::nullopt;
    auto addr = IPv4Address::parse(text.substr(0, slash));
    if (!addr) return std::nullopt;
    std::string_view len_text = text.substr(slash + 1);
    int length = 0;
    auto [ptr, ec] =
        std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
    if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) return std::nullopt;
    if (length < 0 || length > 32) return std::nullopt;
    return IPv4Prefix{*addr, length};
}

IPv4Prefix IPv4Prefix::parse_or_throw(std::string_view text) {
    auto parsed = parse(text);
    if (!parsed) throw ParseError("bad IPv4 prefix '" + std::string(text) + "'");
    return *parsed;
}

IPv4Prefix IPv4Prefix::slash16_of(IPv4Address addr) { return IPv4Prefix{addr, 16}; }

IPv4Prefix IPv4Prefix::slash8_of(IPv4Address addr) { return IPv4Prefix{addr, 8}; }

IPv4Address IPv4Prefix::at(std::uint64_t i) const {
    if (i >= size()) throw Error("prefix offset out of range");
    return IPv4Address{base_.value() + static_cast<std::uint32_t>(i)};
}

std::string IPv4Prefix::to_string() const {
    return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace dynaddr::net

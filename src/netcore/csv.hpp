#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dynaddr::csv {

/// Splits one CSV line on commas. Fields containing commas or quotes must
/// be double-quoted; embedded quotes are escaped by doubling ("" -> ").
/// Throws ParseError on an unterminated quoted field.
std::vector<std::string> split_line(std::string_view line);

/// Quotes a field if needed and appends it to `out`.
void append_field(std::string& out, std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string join_line(const std::vector<std::string>& fields);

/// Streaming CSV writer with a fixed header. Column counts are enforced:
/// writing a row of the wrong width throws Error.
class Writer {
public:
    /// Writes the header immediately. The stream must outlive the Writer.
    Writer(std::ostream& out, std::vector<std::string> header);

    void write_row(const std::vector<std::string>& fields);

    [[nodiscard]] std::size_t rows_written() const { return rows_; }

private:
    std::ostream* out_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

/// Zero-copy CSV scanner for hot read paths (the dataset loaders parse
/// millions of rows). Rows and delimiters are located with the SSE2/SWAR
/// scanner in netcore/simd_scan.hpp and yielded as string_views into one
/// contiguous buffer — no per-row or per-field allocation for plain
/// fields. A row containing a quote falls back to full split_line
/// semantics transparently. Header validation, width enforcement,
/// blank-line and CRLF handling match Reader exactly.
class ScanReader {
public:
    /// Reads the entire stream and parses the header line. Throws
    /// ParseError when the stream is empty.
    explicit ScanReader(std::istream& in);

    /// Scans an external buffer (an mmapped file via net::ByteSource)
    /// without copying it. The buffer must outlive the reader and every
    /// row view it hands out.
    explicit ScanReader(std::string_view buffer);

    /// The header fields.
    [[nodiscard]] const std::vector<std::string>& header() const { return header_; }

    /// Index of the named column; throws Error when absent.
    [[nodiscard]] std::size_t column(std::string_view name) const;

    /// Restricts next_row() to the named columns: other slots of the row
    /// vector come back empty and their bytes are never touched beyond
    /// delimiter scanning. Width enforcement still sees every column. The
    /// paper analyses read 3-4 columns of arbitrarily wide exports, so
    /// skipping the rest is a large fraction of the scan cost.
    void project(const std::vector<std::string_view>& names);

    /// Next row, or nullptr at end of input. The views stay valid only
    /// until the following next_row() call. Rows whose width differs from
    /// the header raise ParseError; blank lines are skipped.
    const std::vector<std::string_view>* next_row();

private:
    void parse_header();

    std::string buffer_;      ///< owns stream contents; empty in zero-copy mode
    std::string_view data_;   ///< what next_row() actually scans
    std::size_t pos_ = 0;
    std::vector<std::string> header_;
    std::vector<std::string_view> fields_;
    std::vector<bool> wanted_;           ///< empty = keep every column
    std::vector<std::string> fallback_;  ///< owns unquoted text of quoted rows
};

/// Streaming CSV reader that validates the header and yields rows.
class Reader {
public:
    /// Reads and stores the header line. Throws ParseError when the stream
    /// is empty. The stream must outlive the Reader.
    explicit Reader(std::istream& in);

    /// The header fields.
    [[nodiscard]] const std::vector<std::string>& header() const { return header_; }

    /// Index of the named column; throws Error when absent.
    [[nodiscard]] std::size_t column(std::string_view name) const;

    /// Reads the next row; nullopt at end of stream. Rows whose width
    /// differs from the header raise ParseError. Blank lines are skipped.
    std::optional<std::vector<std::string>> next_row();

private:
    std::istream* in_;
    std::vector<std::string> header_;
};

}  // namespace dynaddr::csv

#pragma once

// LEB128 varints and a bounds-checked cursor, the primitives under the
// columnar binary bundle format. Every read is range-checked and throws
// ParseError with the offending offset, so the binary readers are safe on
// hostile bytes (the fuzz harness feeds them mutated files directly).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "netcore/error.hpp"

namespace dynaddr::net {

/// Appends `value` to `out` as an unsigned LEB128 varint (7 bits per
/// byte, high bit = continuation).
inline void put_varint(std::string& out, std::uint64_t value) {
    while (value >= 0x80) {
        out.push_back(static_cast<char>(static_cast<std::uint8_t>(value) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

/// ZigZag maps signed to unsigned so small-magnitude negatives stay
/// short: 0,-1,1,-2,... -> 0,1,2,3,...
inline constexpr std::uint64_t zigzag_encode(std::int64_t value) {
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t value) {
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

inline void put_varint_signed(std::string& out, std::int64_t value) {
    put_varint(out, zigzag_encode(value));
}

/// Zero-copy reader over an immutable byte buffer. Never reads past the
/// end: a truncated or overlong field throws ParseError naming the
/// offset, which the lenient bundle reader turns into a rejected block.
class ByteCursor {
public:
    explicit ByteCursor(std::string_view data) : data_(data) {}

    [[nodiscard]] std::size_t offset() const { return pos_; }
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

    /// Repositions the cursor; lets the bundle reader jump between the
    /// footer index and individual blocks.
    void seek(std::size_t offset) {
        if (offset > data_.size())
            throw ParseError("binary cursor seek past end (offset " +
                             std::to_string(offset) + " > size " +
                             std::to_string(data_.size()) + ")");
        pos_ = offset;
    }

    std::uint8_t u8() {
        if (pos_ >= data_.size()) throw truncated("u8");
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint64_t varint() {
        std::uint64_t value = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (pos_ >= data_.size()) throw truncated("varint");
            const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
            value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0) {
                // Reject non-canonical trailing bits that would be shifted
                // out: they mean the encoder and decoder disagree.
                if (shift == 63 && byte > 1)
                    throw ParseError("binary cursor: overlong varint at offset " +
                                     std::to_string(pos_));
                return value;
            }
        }
        throw ParseError("binary cursor: varint longer than 10 bytes at offset " +
                         std::to_string(pos_));
    }

    std::int64_t varint_signed() { return zigzag_decode(varint()); }

    /// A varint that must fit a size_t used for counts/lengths; capped so
    /// hostile lengths cannot drive huge allocations before bounds checks.
    std::size_t length(std::size_t max) {
        const std::uint64_t value = varint();
        if (value > max)
            throw ParseError("binary cursor: length " + std::to_string(value) +
                             " exceeds limit " + std::to_string(max) +
                             " at offset " + std::to_string(pos_));
        return static_cast<std::size_t>(value);
    }

    std::string_view bytes(std::size_t count) {
        if (count > remaining()) throw truncated("bytes");
        const std::string_view view = data_.substr(pos_, count);
        pos_ += count;
        return view;
    }

private:
    [[nodiscard]] ParseError truncated(const char* what) const {
        return ParseError(std::string("binary cursor: truncated ") + what +
                          " at offset " + std::to_string(pos_));
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

}  // namespace dynaddr::net

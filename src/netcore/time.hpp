#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dynaddr::net {

/// A span of time with one-second resolution, signed.
///
/// One-second resolution matches the paper's datasets: connection logs,
/// k-root ping records and uptime counters all carry whole-second
/// timestamps.
class Duration {
public:
    constexpr Duration() = default;
    constexpr explicit Duration(std::int64_t seconds) : seconds_(seconds) {}

    static constexpr Duration seconds(std::int64_t n) { return Duration{n}; }
    static constexpr Duration minutes(std::int64_t n) { return Duration{n * 60}; }
    static constexpr Duration hours(std::int64_t n) { return Duration{n * 3600}; }
    static constexpr Duration days(std::int64_t n) { return Duration{n * 86400}; }
    static constexpr Duration weeks(std::int64_t n) { return Duration{n * 7 * 86400}; }

    [[nodiscard]] constexpr std::int64_t count() const { return seconds_; }
    [[nodiscard]] constexpr double to_hours() const { return double(seconds_) / 3600.0; }
    [[nodiscard]] constexpr double to_days() const { return double(seconds_) / 86400.0; }

    /// Human-readable rendering, e.g. "2d 3h 15m 9s"; "0s" for zero.
    [[nodiscard]] std::string to_string() const;

    constexpr Duration operator+(Duration o) const { return Duration{seconds_ + o.seconds_}; }
    constexpr Duration operator-(Duration o) const { return Duration{seconds_ - o.seconds_}; }
    constexpr Duration operator-() const { return Duration{-seconds_}; }
    constexpr Duration operator*(std::int64_t k) const { return Duration{seconds_ * k}; }
    constexpr Duration operator/(std::int64_t k) const { return Duration{seconds_ / k}; }
    constexpr Duration& operator+=(Duration o) { seconds_ += o.seconds_; return *this; }
    constexpr Duration& operator-=(Duration o) { seconds_ -= o.seconds_; return *this; }
    friend constexpr auto operator<=>(Duration, Duration) = default;

private:
    std::int64_t seconds_ = 0;
};

/// Broken-down UTC calendar time.
struct CivilTime {
    int year = 1970;
    int month = 1;   ///< 1..12
    int day = 1;     ///< 1..31
    int hour = 0;    ///< 0..23
    int minute = 0;  ///< 0..59
    int second = 0;  ///< 0..59
};

/// An absolute instant: seconds since the Unix epoch, UTC, one-second
/// resolution. Value type, totally ordered.
class TimePoint {
public:
    constexpr TimePoint() = default;
    constexpr explicit TimePoint(std::int64_t unix_seconds) : seconds_(unix_seconds) {}

    /// Builds a TimePoint from broken-down UTC time. Throws Error for
    /// out-of-range fields (month 0, hour 24, Feb 30, ...).
    static TimePoint from_civil(const CivilTime& civil);

    /// Shorthand for from_civil with zero time-of-day.
    static TimePoint from_date(int year, int month, int day);

    /// Parses "YYYY-MM-DD HH:MM:SS" or "YYYY-MM-DDTHH:MM:SS".
    static std::optional<TimePoint> parse(std::string_view text);

    [[nodiscard]] constexpr std::int64_t unix_seconds() const { return seconds_; }

    /// Broken-down UTC representation.
    [[nodiscard]] CivilTime to_civil() const;

    /// Hour of day in UTC, 0..23.
    [[nodiscard]] int hour_of_day() const;

    /// Zero-based day index since year start (Jan 1 -> 0).
    [[nodiscard]] int day_of_year() const;

    /// "YYYY-MM-DD HH:MM:SS" (UTC).
    [[nodiscard]] std::string to_string() const;

    /// Paper-style log rendering, e.g. "Jan  5 02:38:39".
    [[nodiscard]] std::string to_log_string() const;

    constexpr TimePoint operator+(Duration d) const { return TimePoint{seconds_ + d.count()}; }
    constexpr TimePoint operator-(Duration d) const { return TimePoint{seconds_ - d.count()}; }
    constexpr Duration operator-(TimePoint o) const { return Duration{seconds_ - o.seconds_}; }
    constexpr TimePoint& operator+=(Duration d) { seconds_ += d.count(); return *this; }
    friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

private:
    std::int64_t seconds_ = 0;
};

/// Half-open interval [begin, end). Used for outage windows, address
/// epochs and connection lifetimes.
struct TimeInterval {
    TimePoint begin;
    TimePoint end;

    [[nodiscard]] constexpr Duration length() const { return end - begin; }
    [[nodiscard]] constexpr bool empty() const { return end <= begin; }
    [[nodiscard]] constexpr bool contains(TimePoint t) const {
        return begin <= t && t < end;
    }
    /// True when the two intervals share at least one instant.
    [[nodiscard]] constexpr bool overlaps(const TimeInterval& o) const {
        return begin < o.end && o.begin < end;
    }
    friend constexpr auto operator<=>(const TimeInterval&, const TimeInterval&) = default;
};

}  // namespace dynaddr::net

#pragma once

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "netcore/histogram.hpp"

namespace dynaddr::chart {

/// One named series of an XY chart.
struct Series {
    std::string label;
    std::vector<stats::CdfPoint> points;  ///< x ascending
};

/// Options for ASCII chart rendering.
struct ChartOptions {
    int width = 72;        ///< plot columns (excluding axis labels)
    int height = 20;       ///< plot rows
    bool log_x = false;    ///< render the x axis in log10 scale
    std::string x_label;   ///< caption under the x axis
    std::string y_label;   ///< caption left of the y axis
};

/// Renders step-function CDF series as a multi-line ASCII chart. Each
/// series is drawn with its own glyph and listed in a legend. This is how
/// the bench harness prints the paper's figures on a terminal.
std::string render_cdf_chart(const std::vector<Series>& series,
                             const ChartOptions& options);

/// Renders a labelled horizontal bar chart; one row per (label, value).
/// `max_value` of 0 autoscales to the largest value.
std::string render_bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                             int width = 60, double max_value = 0.0);

/// Renders a stacked percentage bar per label: `parts` holds
/// (label, numerator, denominator); the bar shows numerator/denominator.
std::string render_fraction_chart(
    const std::vector<std::tuple<std::string, double, double>>& parts,
    int width = 50);

/// Formats a table with left-aligned first column and right-aligned
/// numeric columns, in the style of the paper's tables.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace dynaddr::chart

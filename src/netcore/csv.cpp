#include "netcore/csv.hpp"

#include <istream>
#include <iterator>
#include <ostream>

#include "netcore/error.hpp"

namespace dynaddr::csv {

std::vector<std::string> split_line(std::string_view line) {
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    std::size_t i = 0;
    while (i < line.size()) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current.push_back(c);
        }
        ++i;
    }
    if (in_quotes) throw ParseError("unterminated quoted CSV field");
    fields.push_back(std::move(current));
    return fields;
}

void append_field(std::string& out, std::string_view field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string_view::npos;
    if (!needs_quotes) {
        out += field;
        return;
    }
    out.push_back('"');
    for (char c : field) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
}

std::string join_line(const std::vector<std::string>& fields) {
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_field(out, fields[i]);
    }
    return out;
}

Writer::Writer(std::ostream& out, std::vector<std::string> header)
    : out_(&out), columns_(header.size()) {
    if (header.empty()) throw Error("CSV header must not be empty");
    *out_ << join_line(header) << '\n';
}

void Writer::write_row(const std::vector<std::string>& fields) {
    if (fields.size() != columns_)
        throw Error("CSV row width " + std::to_string(fields.size()) +
                    " != header width " + std::to_string(columns_));
    *out_ << join_line(fields) << '\n';
    ++rows_;
}

ScanReader::ScanReader(std::istream& in)
    : buffer_(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>()) {
    const std::size_t eol = buffer_.find('\n');
    std::string_view line(buffer_.data(),
                          eol == std::string::npos ? buffer_.size() : eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) throw ParseError("empty CSV stream");
    header_ = split_line(line);
    pos_ = eol == std::string::npos ? buffer_.size() : eol + 1;
}

std::size_t ScanReader::column(std::string_view name) const {
    for (std::size_t i = 0; i < header_.size(); ++i)
        if (header_[i] == name) return i;
    throw Error("CSV column '" + std::string(name) + "' not found");
}

const std::vector<std::string_view>* ScanReader::next_row() {
    while (pos_ < buffer_.size()) {
        const std::size_t eol = buffer_.find('\n', pos_);
        std::string_view line(
            buffer_.data() + pos_,
            (eol == std::string::npos ? buffer_.size() : eol) - pos_);
        pos_ = eol == std::string::npos ? buffer_.size() : eol + 1;
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (line.empty()) continue;
        fields_.clear();
        if (line.find('"') != std::string_view::npos) {
            // Rare quoted row: reuse the full parser and point the views
            // at its (owned) output.
            fallback_ = split_line(line);
            for (const auto& field : fallback_) fields_.emplace_back(field);
        } else {
            std::size_t start = 0;
            for (std::size_t i = 0; i <= line.size(); ++i) {
                if (i == line.size() || line[i] == ',') {
                    fields_.emplace_back(line.substr(start, i - start));
                    start = i + 1;
                }
            }
        }
        if (fields_.size() != header_.size())
            throw ParseError("CSV row width " + std::to_string(fields_.size()) +
                             " != header width " +
                             std::to_string(header_.size()));
        return &fields_;
    }
    return nullptr;
}

Reader::Reader(std::istream& in) : in_(&in) {
    std::string line;
    if (!std::getline(*in_, line)) throw ParseError("empty CSV stream");
    header_ = split_line(line);
}

std::size_t Reader::column(std::string_view name) const {
    for (std::size_t i = 0; i < header_.size(); ++i)
        if (header_[i] == name) return i;
    throw Error("CSV column '" + std::string(name) + "' not found");
}

std::optional<std::vector<std::string>> Reader::next_row() {
    std::string line;
    while (std::getline(*in_, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        auto fields = split_line(line);
        if (fields.size() != header_.size())
            throw ParseError("CSV row width " + std::to_string(fields.size()) +
                             " != header width " + std::to_string(header_.size()));
        return fields;
    }
    return std::nullopt;
}

}  // namespace dynaddr::csv

#include "netcore/csv.hpp"

#include <istream>
#include <iterator>
#include <ostream>

#include "netcore/error.hpp"
#include "netcore/simd_scan.hpp"

namespace dynaddr::csv {

std::vector<std::string> split_line(std::string_view line) {
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    std::size_t i = 0;
    while (i < line.size()) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current.push_back(c);
        }
        ++i;
    }
    if (in_quotes) throw ParseError("unterminated quoted CSV field");
    fields.push_back(std::move(current));
    return fields;
}

void append_field(std::string& out, std::string_view field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string_view::npos;
    if (!needs_quotes) {
        out += field;
        return;
    }
    out.push_back('"');
    for (char c : field) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
}

std::string join_line(const std::vector<std::string>& fields) {
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_field(out, fields[i]);
    }
    return out;
}

Writer::Writer(std::ostream& out, std::vector<std::string> header)
    : out_(&out), columns_(header.size()) {
    if (header.empty()) throw Error("CSV header must not be empty");
    *out_ << join_line(header) << '\n';
}

void Writer::write_row(const std::vector<std::string>& fields) {
    if (fields.size() != columns_)
        throw Error("CSV row width " + std::to_string(fields.size()) +
                    " != header width " + std::to_string(columns_));
    *out_ << join_line(fields) << '\n';
    ++rows_;
}

ScanReader::ScanReader(std::istream& in)
    : buffer_(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>()) {
    data_ = buffer_;
    parse_header();
}

ScanReader::ScanReader(std::string_view buffer) : data_(buffer) {
    parse_header();
}

void ScanReader::parse_header() {
    const std::size_t eol = net::simd::find_byte(data_, '\n');
    std::string_view line =
        data_.substr(0, eol == net::simd::npos ? data_.size() : eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) throw ParseError("empty CSV stream");
    header_ = split_line(line);
    pos_ = eol == net::simd::npos ? data_.size() : eol + 1;
}

std::size_t ScanReader::column(std::string_view name) const {
    for (std::size_t i = 0; i < header_.size(); ++i)
        if (header_[i] == name) return i;
    throw Error("CSV column '" + std::string(name) + "' not found");
}

void ScanReader::project(const std::vector<std::string_view>& names) {
    wanted_.assign(header_.size(), false);
    for (const auto& name : names) wanted_[column(name)] = true;
}

const std::vector<std::string_view>* ScanReader::next_row() {
    while (pos_ < data_.size()) {
        const std::size_t eol = net::simd::find_byte(data_, '\n', pos_);
        std::string_view line = data_.substr(
            pos_, (eol == net::simd::npos ? data_.size() : eol) - pos_);
        pos_ = eol == net::simd::npos ? data_.size() : eol + 1;
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (line.empty()) continue;
        fields_.clear();
        if (net::simd::contains_byte(line, '"')) {
            // Rare quoted row: reuse the full parser and point the views
            // at its (owned) output.
            fallback_ = split_line(line);
            for (const auto& field : fallback_) fields_.emplace_back(field);
        } else if (wanted_.empty()) {
            net::simd::split_unquoted(line, ',',
                                      [&](std::size_t begin, std::size_t end) {
                                          fields_.push_back(
                                              line.substr(begin, end - begin));
                                      });
        } else {
            // Projected scan: count every delimiter (width must still be
            // enforced) but only publish the requested columns.
            fields_.resize(header_.size());
            std::size_t index = 0;
            net::simd::split_unquoted(
                line, ',', [&](std::size_t begin, std::size_t end) {
                    if (index < fields_.size() && wanted_[index])
                        fields_[index] = line.substr(begin, end - begin);
                    ++index;
                });
            if (index != header_.size()) {
                fields_.resize(index);  // make the error below truthful
            }
        }
        if (fields_.size() != header_.size())
            throw ParseError("CSV row width " + std::to_string(fields_.size()) +
                             " != header width " +
                             std::to_string(header_.size()));
        return &fields_;
    }
    return nullptr;
}

Reader::Reader(std::istream& in) : in_(&in) {
    std::string line;
    if (!std::getline(*in_, line)) throw ParseError("empty CSV stream");
    header_ = split_line(line);
}

std::size_t Reader::column(std::string_view name) const {
    for (std::size_t i = 0; i < header_.size(); ++i)
        if (header_[i] == name) return i;
    throw Error("CSV column '" + std::string(name) + "' not found");
}

std::optional<std::vector<std::string>> Reader::next_row() {
    std::string line;
    while (std::getline(*in_, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        auto fields = split_line(line);
        if (fields.size() != header_.size())
            throw ParseError("CSV row width " + std::to_string(fields.size()) +
                             " != header width " + std::to_string(header_.size()));
        return fields;
    }
    return std::nullopt;
}

}  // namespace dynaddr::csv

#include "netcore/bytesource.hpp"

#include <fstream>
#include <iterator>
#include <utility>

#include "netcore/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DYNADDR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dynaddr::net {

ByteSource ByteSource::map_file(const std::string& path) {
#if DYNADDR_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st{};
        if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
            const auto size = static_cast<std::size_t>(st.st_size);
            if (size == 0) {
                ::close(fd);
                return ByteSource{};
            }
            void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
            ::close(fd);  // the mapping keeps the file alive
            if (addr != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
                ::madvise(addr, size, MADV_SEQUENTIAL);
#endif
                ByteSource source;
                source.data_ = static_cast<const char*>(addr);
                source.size_ = size;
                source.mapped_ = true;
                return source;
            }
        } else {
            ::close(fd);
        }
    }
    // Fall through to the slurp path: pipes, /proc files and exotic
    // filesystems are readable but not mappable.
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot open " + path + " for reading");
    return from_string(std::string(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()));
}

ByteSource ByteSource::from_string(std::string data) {
    ByteSource source;
    source.owned_ = std::move(data);
    source.data_ = source.owned_.data();
    source.size_ = source.owned_.size();
    return source;
}

ByteSource::ByteSource(ByteSource&& other) noexcept { *this = std::move(other); }

ByteSource& ByteSource::operator=(ByteSource&& other) noexcept {
    if (this == &other) return *this;
#if DYNADDR_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<char*>(data_), size_);
#endif
    owned_ = std::move(other.owned_);
    mapped_ = other.mapped_;
    size_ = other.size_;
    // owned_'s move may reallocate on SSO; re-anchor rather than copying
    // the stale pointer.
    data_ = mapped_ ? other.data_ : owned_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    return *this;
}

ByteSource::~ByteSource() {
#if DYNADDR_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<char*>(data_), size_);
#endif
}

}  // namespace dynaddr::net

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dynaddr::rng {

/// Mixes a 64-bit value with the splitmix64 finalizer. Used for seeding
/// and for deriving child stream seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// A deterministic xoshiro256** random stream.
///
/// Every stochastic decision in the simulator draws from a Stream. Streams
/// form a tree: `child("purpose")` / `child(index)` derive independent
/// substreams, so adding probes or reordering draws in one subsystem never
/// perturbs another — experiments stay bit-reproducible.
class Stream {
public:
    /// Seeds the stream; any seed (including 0) is valid.
    explicit Stream(std::uint64_t seed);

    /// Derives an independent child stream keyed by a label.
    [[nodiscard]] Stream child(std::string_view label) const;

    /// Derives an independent child stream keyed by an index.
    [[nodiscard]] Stream child(std::uint64_t index) const;

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform integer in [lo, hi] inclusive. Throws Error if lo > hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p);

    /// Exponential deviate with the given mean (> 0).
    double exponential(double mean);

    /// Log-normal deviate parameterized by the *median* and sigma of the
    /// underlying normal. median > 0, sigma >= 0.
    double lognormal(double median, double sigma);

    /// Standard normal deviate (Box-Muller).
    double normal(double mean, double stddev);

    /// Bounded Pareto deviate on [lo, hi] with shape alpha > 0.
    double pareto(double lo, double hi, double alpha);

    /// Picks an index in [0, weights.size()) with probability proportional
    /// to weights[i]. Throws Error when weights are empty or sum to zero.
    std::size_t weighted_index(std::span<const double> weights);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            auto j = std::size_t(uniform_int(0, std::int64_t(i) - 1));
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

private:
    std::uint64_t state_[4];
};

}  // namespace dynaddr::rng

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "netcore/error.hpp"

namespace dynaddr::rng {

/// Mixes a 64-bit value with the splitmix64 finalizer. Used for seeding
/// and for deriving child stream seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// A deterministic xoshiro256** random stream.
///
/// Every stochastic decision in the simulator draws from a Stream. Streams
/// form a tree: `child("purpose")` / `child(index)` derive independent
/// substreams, so adding probes or reordering draws in one subsystem never
/// perturbs another — experiments stay bit-reproducible.
class Stream {
public:
    /// Seeds the stream; any seed (including 0) is valid.
    explicit Stream(std::uint64_t seed);

    /// Derives an independent child stream keyed by a label.
    [[nodiscard]] Stream child(std::string_view label) const;

    /// Derives an independent child stream keyed by an index.
    [[nodiscard]] Stream child(std::uint64_t index) const;

    // The per-draw primitives below are defined inline: the address-pool
    // data plane draws on every allocation, and an out-of-line call (plus
    // the lost constant propagation) costs more than the draw itself.

    /// Next raw 64-bit value.
    std::uint64_t next_u64() {
        const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl_(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double next_double() { return double(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform integer in [lo, hi] inclusive. Throws Error if lo > hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        if (lo > hi) throw Error("uniform_int: lo > hi");
        const std::uint64_t range = std::uint64_t(hi) - std::uint64_t(lo) + 1;
        if (range == 0) return std::int64_t(next_u64());  // full 64-bit range
        // Rejection sampling to avoid modulo bias. Tight allocation loops
        // draw from the same range over and over, so the rejection limit
        // and a 2^64/range reciprocal are cached per range, replacing the
        // two hardware divides with one multiply-high plus fixups. The
        // accepted draw and the returned value are identical to the plain
        // draw % range formulation.
        if (range != cached_range_) {
            const std::uint64_t quot = UINT64_MAX / range;
            cached_range_ = range;
            cached_limit_ = range * quot;
            // floor(2^64 / range); for range == 1 the true value 2^64
            // does not fit, but the modulo below is a constant 0 there.
            cached_recip_ = quot + (UINT64_MAX % range + 1 == range ? 1 : 0);
        }
        const std::uint64_t limit = cached_limit_;
        std::uint64_t draw;
        do {
            draw = next_u64();
        } while (draw >= limit);
        if (range == 1) return lo;
        // q underestimates draw / range by at most 2; fix up.
        const std::uint64_t q = std::uint64_t(
            (unsigned __int128)(draw)*cached_recip_ >> 64);
        std::uint64_t rem = draw - q * range;
        if (rem >= range) rem -= range;
        if (rem >= range) rem -= range;
        return lo + std::int64_t(rem);
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return lo + (hi - lo) * next_double();
    }

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return next_double() < p;
    }

    /// Exponential deviate with the given mean (> 0).
    double exponential(double mean);

    /// Log-normal deviate parameterized by the *median* and sigma of the
    /// underlying normal. median > 0, sigma >= 0.
    double lognormal(double median, double sigma);

    /// Standard normal deviate (Box-Muller).
    double normal(double mean, double stddev);

    /// Bounded Pareto deviate on [lo, hi] with shape alpha > 0.
    double pareto(double lo, double hi, double alpha);

    /// Picks an index in [0, weights.size()) with probability proportional
    /// to weights[i]. Throws Error when weights are empty or sum to zero.
    std::size_t weighted_index(std::span<const double> weights) {
        if (weights.empty()) throw Error("weighted_index: empty weights");
        if (weights.size() == 2) {
            // Branchless two-bin path: the address pools draw between two
            // prefixes at line rate, and the 50/50 data-dependent branch
            // in the generic walk mispredicts half the time. Same
            // clamping, same summation order, same single draw and same
            // comparison as the loop below — bit-identical results.
            const double w0 = weights[0] > 0.0 ? weights[0] : 0.0;
            const double w1 = weights[1] > 0.0 ? weights[1] : 0.0;
            const double total = w0 + w1;
            if (total <= 0.0) throw Error("weighted_index: weights sum to zero");
            return std::size_t(!(next_double() * total < w0));
        }
        double total = 0.0;
        for (double w : weights) total += w > 0.0 ? w : 0.0;
        if (total <= 0.0) throw Error("weighted_index: weights sum to zero");
        double draw = next_double() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            const double w = weights[i] > 0.0 ? weights[i] : 0.0;
            if (draw < w) return i;
            draw -= w;
        }
        return weights.size() - 1;  // floating-point slack lands on the last bin
    }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            auto j = std::size_t(uniform_int(0, std::int64_t(i) - 1));
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

private:
    static constexpr std::uint64_t rotl_(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    // uniform_int rejection-limit cache; pure derived state, not part of
    // the stream's identity (draw sequences are unaffected by it).
    std::uint64_t cached_range_ = 0;
    std::uint64_t cached_limit_ = 0;
    std::uint64_t cached_recip_ = 0;
};

}  // namespace dynaddr::rng

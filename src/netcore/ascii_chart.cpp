#include "netcore/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"

DYNADDR_LOG_MODULE(chart);

namespace dynaddr::chart {

namespace {

constexpr const char* kGlyphs = "*+o#x@%&";

std::string format_value(double v) {
    char buffer[32];
    if (v == 0.0) return "0";
    if (std::abs(v) < 1e7 && v == std::floor(v))
        std::snprintf(buffer, sizeof buffer, "%.0f", v);
    else if (std::abs(v) >= 1.0)
        std::snprintf(buffer, sizeof buffer, "%.4g", v);
    else
        std::snprintf(buffer, sizeof buffer, "%.3g", v);
    return buffer;
}

}  // namespace

std::string render_cdf_chart(const std::vector<Series>& series,
                             const ChartOptions& options) {
    if (series.empty()) {
        DYNADDR_LOG(Warn, chart, "CDF chart requested with no series");
        return "(no series)\n";
    }
    const int width = std::max(options.width, 10);
    const int height = std::max(options.height, 4);

    double min_x = 0.0, max_x = 0.0;
    bool have_x = false;
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            if (options.log_x && p.x <= 0.0) continue;
            const double x = options.log_x ? std::log10(p.x) : p.x;
            if (!have_x) {
                min_x = max_x = x;
                have_x = true;
            } else {
                min_x = std::min(min_x, x);
                max_x = std::max(max_x, x);
            }
        }
    }
    if (!have_x || max_x == min_x) max_x = min_x + 1.0;

    // grid[row][col]; row 0 is the top (y = 1.0).
    std::vector<std::string> grid(std::size_t(height), std::string(std::size_t(width), ' '));

    for (std::size_t si = 0; si < series.size(); ++si) {
        const char glyph = kGlyphs[si % 8];
        const auto& pts = series[si].points;
        // Render the CDF as a step function sampled per column.
        for (int col = 0; col < width; ++col) {
            const double xv = min_x + (max_x - min_x) * (double(col) / (width - 1));
            const double x = options.log_x ? std::pow(10.0, xv) : xv;
            // y = greatest CDF value among points with p.x <= x.
            double y = -1.0;
            for (const auto& p : pts) {
                if (p.x <= x)
                    y = p.y;
                else
                    break;
            }
            if (y < 0.0) continue;
            int row = height - 1 - int(std::lround(y * (height - 1)));
            row = std::clamp(row, 0, height - 1);
            grid[std::size_t(row)][std::size_t(col)] = glyph;
        }
    }

    std::string out;
    if (!options.y_label.empty()) out += options.y_label + "\n";
    for (int row = 0; row < height; ++row) {
        const double y = 1.0 - double(row) / (height - 1);
        char axis[8];
        std::snprintf(axis, sizeof axis, "%4.2f", y);
        out += axis;
        out += " |";
        out += grid[std::size_t(row)];
        out += '\n';
    }
    out += "     +";
    out += std::string(std::size_t(width), '-');
    out += '\n';
    {
        // x-axis tick labels at the ends and middle.
        auto tick = [&](double frac) {
            const double xv = min_x + (max_x - min_x) * frac;
            return format_value(options.log_x ? std::pow(10.0, xv) : xv);
        };
        std::string line(std::size_t(width + 6), ' ');
        const std::string lo = tick(0.0), mid = tick(0.5), hi = tick(1.0);
        line.replace(6, lo.size(), lo);
        const std::size_t mid_pos = 6 + std::size_t(width) / 2 - mid.size() / 2;
        line.replace(mid_pos, mid.size(), mid);
        const std::size_t hi_pos = 6 + std::size_t(width) - hi.size();
        line.replace(hi_pos, hi.size(), hi);
        out += line;
        out += '\n';
    }
    if (!options.x_label.empty()) out += "      " + options.x_label + "\n";
    out += "      legend:";
    for (std::size_t si = 0; si < series.size(); ++si) {
        out += "  ";
        out += kGlyphs[si % 8];
        out += "=" + series[si].label;
    }
    out += '\n';
    return out;
}

std::string render_bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                             int width, double max_value) {
    if (bars.empty()) {
        DYNADDR_LOG(Warn, chart, "bar chart requested with no data");
        return "(no data)\n";
    }
    std::size_t label_width = 0;
    double peak = max_value;
    for (const auto& [label, value] : bars) {
        label_width = std::max(label_width, label.size());
        if (max_value <= 0.0) peak = std::max(peak, value);
    }
    if (peak <= 0.0) peak = 1.0;
    std::string out;
    for (const auto& [label, value] : bars) {
        out += label;
        out += std::string(label_width - label.size(), ' ');
        out += " |";
        const int len = int(std::lround(std::clamp(value / peak, 0.0, 1.0) * width));
        out += std::string(std::size_t(len), '#');
        out += " " + format_value(value) + "\n";
    }
    return out;
}

std::string render_fraction_chart(
    const std::vector<std::tuple<std::string, double, double>>& parts, int width) {
    if (parts.empty()) return "(no data)\n";
    std::size_t label_width = 0;
    for (const auto& [label, num, den] : parts)
        label_width = std::max(label_width, label.size());
    std::string out;
    for (const auto& [label, num, den] : parts) {
        out += label;
        out += std::string(label_width - label.size(), ' ');
        out += " |";
        const double frac = den > 0.0 ? std::clamp(num / den, 0.0, 1.0) : 0.0;
        const int filled = int(std::lround(frac * width));
        out += std::string(std::size_t(filled), '#');
        out += std::string(std::size_t(width - filled), '.');
        char buffer[48];
        std::snprintf(buffer, sizeof buffer, "| %5.1f%% (%g/%g)\n", frac * 100.0,
                      num, den);
        out += buffer;
    }
    return out;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
    if (header.empty()) throw Error("table needs a header");
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
    for (const auto& row : rows) {
        if (row.size() != header.size())
            throw Error("table row width mismatch");
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto emit_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) line += "  ";
            const std::size_t pad = widths[c] - row[c].size();
            if (c == 0)
                line += row[c] + std::string(pad, ' ');  // left-align names
            else
                line += std::string(pad, ' ') + row[c];  // right-align numbers
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ') line.pop_back();
        return line + "\n";
    };
    std::string out = emit_row(header);
    std::size_t total = header.size() * 2 - 2;
    for (auto w : widths) total += w;
    out += std::string(total, '-') + "\n";
    for (const auto& row : rows) out += emit_row(row);
    return out;
}

}  // namespace dynaddr::chart

#include "netcore/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "netcore/obs/metrics.hpp"
#include "netcore/obs/profiler.hpp"

namespace dynaddr::par {

namespace {

// Work-split accounting. On a single-core CI box the wall-clock speedup
// of a threaded bench is meaningless; these counters record how the work
// actually divided — `par.shards_offloaded` is the share claimed by pool
// workers rather than the calling thread, the figure BM_PipelineThreads /
// BM_ParallelForShards put in the bench report as their speedup argument.
obs::Counter& shards_executed_counter() {
    static obs::Counter& counter = obs::counter("par.shards_executed");
    return counter;
}
obs::Counter& shards_offloaded_counter() {
    static obs::Counter& counter = obs::counter("par.shards_offloaded");
    return counter;
}
obs::Counter& fanout_calls_counter() {
    static obs::Counter& counter = obs::counter("par.fanout_calls");
    return counter;
}

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : std::size_t(hw);
}

struct ThreadPool::Impl {
    std::mutex mutex;
    std::condition_variable work_ready;
    std::condition_variable work_done;
    std::vector<std::thread> workers;

    // Current job; generations serialize parallel_for_shards calls.
    std::uint64_t generation = 0;
    bool stop = false;
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t shards = 0;
    std::atomic<std::size_t> next{0};
    std::size_t active = 0;  ///< workers still draining this generation
    std::exception_ptr error;

    /// Claims shards off the shared counter until none remain. The
    /// counter, not the scheduler, defines the work split — results land
    /// in caller-owned slots, so scheduling order never shows in output.
    void drain(bool offloaded) noexcept {
        std::size_t executed = 0;
        for (;;) {
            const std::size_t shard =
                next.fetch_add(1, std::memory_order_relaxed);
            if (shard >= shards) break;
            ++executed;
            try {
                (*job)(shard);
            } catch (...) {
                std::scoped_lock lock(mutex);
                if (!error) error = std::current_exception();
            }
        }
        // One amortized add per drain, not one per shard.
        if (executed > 0) {
            shards_executed_counter().inc(executed);
            if (offloaded) shards_offloaded_counter().inc(executed);
        }
    }

    void worker_loop() {
        // Visible to the sampling self-profiler for the thread's lifetime.
        obs::ScopedProfiledThread profiled("pipeline-worker");
        std::uint64_t seen = 0;
        std::unique_lock lock(mutex);
        for (;;) {
            work_ready.wait(lock, [&] { return stop || generation != seen; });
            if (stop) return;
            seen = generation;
            lock.unlock();
            drain(/*offloaded=*/true);
            lock.lock();
            if (--active == 0) work_done.notify_all();
        }
    }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
    if (threads < 1) threads = 1;
    impl_->workers.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::scoped_lock lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->work_ready.notify_all();
    for (auto& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::thread_count() const {
    return impl_->workers.size() + 1;
}

void ThreadPool::parallel_for_shards(
    std::size_t shards, const std::function<void(std::size_t)>& fn) {
    if (shards == 0) return;
    fanout_calls_counter().inc();
    if (impl_->workers.empty() || shards == 1) {
        for (std::size_t shard = 0; shard < shards; ++shard) fn(shard);
        shards_executed_counter().inc(shards);
        return;
    }
    {
        std::scoped_lock lock(impl_->mutex);
        impl_->job = &fn;
        impl_->shards = shards;
        impl_->next.store(0, std::memory_order_relaxed);
        impl_->error = nullptr;
        impl_->active = impl_->workers.size();
        ++impl_->generation;
    }
    impl_->work_ready.notify_all();
    impl_->drain(/*offloaded=*/false);  // the caller is one of the executors
    std::unique_lock lock(impl_->mutex);
    impl_->work_done.wait(lock, [&] { return impl_->active == 0; });
    impl_->job = nullptr;
    if (impl_->error) {
        auto error = impl_->error;
        impl_->error = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void parallel_for_shards(std::size_t shards, std::size_t threads,
                         const std::function<void(std::size_t)>& fn) {
    ThreadPool pool(resolve_threads(threads));
    pool.parallel_for_shards(shards, fn);
}

}  // namespace dynaddr::par

#pragma once

// Read-only byte buffers for the ingestion paths. ByteSource::map_file
// mmaps the file when the platform allows it (zero-copy, the kernel pages
// data in as the SIMD scanner walks it) and silently falls back to a
// slurp elsewhere, so callers never branch on platform. The view stays
// valid for the lifetime of the ByteSource.

#include <cstddef>
#include <string>
#include <string_view>

namespace dynaddr::net {

class ByteSource {
public:
    /// Maps (or, on failure to map, reads) the whole file. Throws Error
    /// naming the path when the file cannot be opened or read.
    static ByteSource map_file(const std::string& path);

    /// Wraps an in-memory buffer; used by tests and the fuzz harness.
    static ByteSource from_string(std::string data);

    ByteSource() = default;
    ByteSource(ByteSource&& other) noexcept;
    ByteSource& operator=(ByteSource&& other) noexcept;
    ByteSource(const ByteSource&) = delete;
    ByteSource& operator=(const ByteSource&) = delete;
    ~ByteSource();

    [[nodiscard]] std::string_view view() const {
        return {data_, size_};
    }
    [[nodiscard]] std::size_t size() const { return size_; }
    /// True when the bytes come straight from the page cache (mmap)
    /// rather than a heap copy. Informational: benches report it.
    [[nodiscard]] bool mapped() const { return mapped_; }

private:
    const char* data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
    std::string owned_;  ///< backing store for the fallback/string paths
};

}  // namespace dynaddr::net

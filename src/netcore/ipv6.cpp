#include "netcore/ipv6.hpp"

#include <array>
#include <charconv>
#include <cstdio>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"

DYNADDR_LOG_MODULE(ipv6);

namespace dynaddr::net {

namespace {

/// Parses one hex group (1-4 digits) at the front of `text`, advancing it.
std::optional<std::uint16_t> parse_group(std::string_view& text) {
    unsigned value = 0;
    const char* begin = text.data();
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value, 16);
    if (ec != std::errc{} || ptr == begin || ptr - begin > 4 || value > 0xFFFF)
        return std::nullopt;
    text.remove_prefix(std::size_t(ptr - begin));
    return std::uint16_t(value);
}

}  // namespace

std::optional<IPv6Address> IPv6Address::parse(std::string_view text) {
    if (text.empty()) return std::nullopt;
    std::array<std::uint16_t, 8> head{};
    std::array<std::uint16_t, 8> tail{};
    int head_count = 0, tail_count = 0;
    bool seen_gap = false;

    // Leading "::".
    if (text.rfind("::", 0) == 0) {
        seen_gap = true;
        text.remove_prefix(2);
    }
    while (!text.empty()) {
        if (text.front() == ':') {
            // Only valid as the second colon of "::", handled below.
            if (seen_gap) return std::nullopt;  // second "::"
            return std::nullopt;                // stray ':'
        }
        auto group = parse_group(text);
        if (!group) return std::nullopt;
        if (seen_gap) {
            if (tail_count == 8) return std::nullopt;
            tail[std::size_t(tail_count++)] = *group;
        } else {
            if (head_count == 8) return std::nullopt;
            head[std::size_t(head_count++)] = *group;
        }
        if (text.empty()) break;
        if (text.front() != ':') return std::nullopt;
        text.remove_prefix(1);
        if (!text.empty() && text.front() == ':') {
            if (seen_gap) return std::nullopt;
            seen_gap = true;
            text.remove_prefix(1);
            if (text.empty()) break;  // trailing "::"
        } else if (text.empty()) {
            return std::nullopt;  // trailing single ':'
        }
    }

    const int total = head_count + tail_count;
    if (seen_gap ? total >= 8 : total != 8) return std::nullopt;

    std::array<std::uint16_t, 8> groups{};
    for (int i = 0; i < head_count; ++i) groups[std::size_t(i)] = head[std::size_t(i)];
    for (int i = 0; i < tail_count; ++i)
        groups[std::size_t(8 - tail_count + i)] = tail[std::size_t(i)];
    std::uint64_t hi = 0, lo = 0;
    for (int i = 0; i < 4; ++i) hi = (hi << 16) | groups[std::size_t(i)];
    for (int i = 4; i < 8; ++i) lo = (lo << 16) | groups[std::size_t(i)];
    return IPv6Address{hi, lo};
}

IPv6Address IPv6Address::parse_or_throw(std::string_view text) {
    auto parsed = parse(text);
    if (!parsed) {
        DYNADDR_LOG(Debug, ipv6, "rejected IPv6 address '", text, "'");
        throw ParseError("bad IPv6 address '" + std::string(text) + "'");
    }
    return *parsed;
}

std::string IPv6Address::to_string() const {
    // Find the longest run of zero groups (length >= 2) for "::".
    int best_start = -1, best_len = 0;
    for (int i = 0; i < 8;) {
        if (group(i) != 0) {
            ++i;
            continue;
        }
        int j = i;
        while (j < 8 && group(j) == 0) ++j;
        if (j - i > best_len) {
            best_start = i;
            best_len = j - i;
        }
        i = j;
    }
    if (best_len < 2) best_start = -1;

    std::string out;
    char buffer[8];
    for (int i = 0; i < 8;) {
        if (i == best_start) {
            out += "::";
            i += best_len;
            continue;
        }
        if (!out.empty() && out.back() != ':') out.push_back(':');
        std::snprintf(buffer, sizeof buffer, "%x", unsigned(group(i)));
        out += buffer;
        ++i;
    }
    if (out.empty()) out = "::";
    return out;
}

IPv6Prefix::IPv6Prefix(IPv6Address base, int length) : length_(length) {
    if (length < 0 || length > 128)
        throw Error("IPv6 prefix length out of range: " + std::to_string(length));
    std::uint64_t hi = base.hi(), lo = base.lo();
    if (length <= 64) {
        lo = 0;
        if (length == 0)
            hi = 0;
        else if (length < 64)
            hi &= ~std::uint64_t{0} << (64 - length);
    } else if (length < 128) {
        lo &= ~std::uint64_t{0} << (128 - length);
    }
    base_ = IPv6Address{hi, lo};
}

std::optional<IPv6Prefix> IPv6Prefix::parse(std::string_view text) {
    const auto slash = text.find('/');
    if (slash == std::string_view::npos) return std::nullopt;
    auto base = IPv6Address::parse(text.substr(0, slash));
    if (!base) return std::nullopt;
    const auto len_text = text.substr(slash + 1);
    int length = 0;
    auto [ptr, ec] =
        std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
    if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) return std::nullopt;
    if (length < 0 || length > 128) return std::nullopt;
    return IPv6Prefix{*base, length};
}

IPv6Prefix IPv6Prefix::parse_or_throw(std::string_view text) {
    auto parsed = parse(text);
    if (!parsed) {
        DYNADDR_LOG(Debug, ipv6, "rejected IPv6 prefix '", text, "'");
        throw ParseError("bad IPv6 prefix '" + std::string(text) + "'");
    }
    return *parsed;
}

std::string IPv6Prefix::to_string() const {
    return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace dynaddr::net

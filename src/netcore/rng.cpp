#include "netcore/rng.hpp"

#include <cmath>
#include <numbers>

#include "netcore/error.hpp"

namespace dynaddr::rng {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, used to key child streams.
constexpr std::uint64_t fnv1a(std::string_view text) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (char c : text) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Stream::Stream(std::uint64_t seed) {
    // xoshiro256** must not be seeded all-zero; splitmix64 expansion of the
    // seed guarantees a valid state for every input.
    for (auto& word : state_) word = splitmix64(seed);
}

Stream Stream::child(std::string_view label) const {
    // Derive deterministically from the parent's state *without* advancing
    // the parent, so sibling derivation order does not matter.
    std::uint64_t seed = state_[0] ^ rotl(state_[1], 17) ^ fnv1a(label);
    return Stream{seed};
}

Stream Stream::child(std::uint64_t index) const {
    std::uint64_t seed = state_[0] ^ rotl(state_[1], 17) ^
                         (index * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
    return Stream{seed};
}

double Stream::exponential(double mean) {
    if (mean <= 0.0) throw Error("exponential: mean must be positive");
    double u;
    do {
        u = next_double();
    } while (u == 0.0);
    return -mean * std::log(u);
}

double Stream::lognormal(double median, double sigma) {
    if (median <= 0.0) throw Error("lognormal: median must be positive");
    if (sigma < 0.0) throw Error("lognormal: sigma must be non-negative");
    return median * std::exp(sigma * normal(0.0, 1.0));
}

double Stream::normal(double mean, double stddev) {
    double u1;
    do {
        u1 = next_double();
    } while (u1 == 0.0);
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Stream::pareto(double lo, double hi, double alpha) {
    if (lo <= 0.0 || hi <= lo) throw Error("pareto: need 0 < lo < hi");
    if (alpha <= 0.0) throw Error("pareto: alpha must be positive");
    const double u = next_double();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    // Inverse CDF of the bounded Pareto: u=0 -> lo, u->1 -> hi.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace dynaddr::rng

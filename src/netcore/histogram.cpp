#include "netcore/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "netcore/error.hpp"

namespace dynaddr::stats {

void Cdf::add(double value, double weight) {
    if (weight <= 0.0) return;
    weight_by_value_[value] += weight;
    total_weight_ += weight;
    ++count_;
}

double Cdf::fraction_at_or_below(double x) const {
    if (total_weight_ <= 0.0) return 0.0;
    double below = 0.0;
    for (const auto& [value, weight] : weight_by_value_) {
        if (value > x) break;
        below += weight;
    }
    return below / total_weight_;
}

double Cdf::fraction_at(double x) const {
    if (total_weight_ <= 0.0) return 0.0;
    auto it = weight_by_value_.find(x);
    return it == weight_by_value_.end() ? 0.0 : it->second / total_weight_;
}

double Cdf::quantile(double q) const {
    if (weight_by_value_.empty()) throw Error("quantile of empty CDF");
    if (q < 0.0 || q > 1.0) throw Error("quantile q out of [0,1]");
    double cumulative = 0.0;
    for (const auto& [value, weight] : weight_by_value_) {
        cumulative += weight;
        if (cumulative / total_weight_ >= q) return value;
    }
    return weight_by_value_.rbegin()->first;
}

std::vector<CdfPoint> Cdf::points() const {
    std::vector<CdfPoint> out;
    out.reserve(weight_by_value_.size());
    double cumulative = 0.0;
    for (const auto& [value, weight] : weight_by_value_) {
        cumulative += weight;
        out.push_back({value, total_weight_ > 0 ? cumulative / total_weight_ : 0.0});
    }
    return out;
}

std::vector<CdfPoint> Cdf::modes(double min_fraction) const {
    std::vector<CdfPoint> out;
    if (total_weight_ <= 0.0) return out;
    for (const auto& [value, weight] : weight_by_value_) {
        const double fraction = weight / total_weight_;
        if (fraction >= min_fraction) out.push_back({value, fraction});
    }
    // Largest mass first.
    std::sort(out.begin(), out.end(),
              [](const CdfPoint& a, const CdfPoint& b) { return a.y > b.y; });
    return out;
}

BinnedHistogram::BinnedHistogram(std::vector<double> edges, bool saturate)
    : edges_(std::move(edges)), saturate_(saturate) {
    if (edges_.size() < 2) throw Error("histogram needs at least two edges");
    if (!std::is_sorted(edges_.begin(), edges_.end()) ||
        std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end())
        throw Error("histogram edges must be strictly increasing");
    counts_.assign(edges_.size() - 1, 0.0);
}

BinnedHistogram BinnedHistogram::outage_duration_bins() {
    const double m = 60.0, h = 3600.0, d = 86400.0;
    return BinnedHistogram{{0.0, 5 * m, 10 * m, 20 * m, 30 * m, 60 * m, 3 * h,
                            6 * h, 12 * h, 24 * h, 3 * d, 7 * d, 365 * d},
                           /*saturate=*/true};
}

void BinnedHistogram::add(double value, double weight) {
    auto bin = bin_of(value);
    if (bin) counts_[*bin] += weight;
}

double BinnedHistogram::total_weight() const {
    double total = 0.0;
    for (double c : counts_) total += c;
    return total;
}

std::optional<std::size_t> BinnedHistogram::bin_of(double value) const {
    if (value < edges_.front()) {
        if (!saturate_) return std::nullopt;
        return 0;
    }
    if (value >= edges_.back()) {
        if (!saturate_) return std::nullopt;
        return counts_.size() - 1;
    }
    auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
    return std::size_t(std::distance(edges_.begin(), it)) - 1;
}

std::string BinnedHistogram::bin_label(std::size_t bin) const {
    if (bin >= counts_.size()) throw Error("bin index out of range");
    auto render = [](double seconds) -> std::string {
        if (seconds >= 7 * 86400.0 && std::fmod(seconds, 7 * 86400.0) == 0.0)
            return std::to_string(std::int64_t(seconds / (7 * 86400.0))) + "w";
        if (seconds >= 86400.0 && std::fmod(seconds, 86400.0) == 0.0)
            return std::to_string(std::int64_t(seconds / 86400.0)) + "d";
        if (seconds >= 3600.0 && std::fmod(seconds, 3600.0) == 0.0)
            return std::to_string(std::int64_t(seconds / 3600.0)) + "h";
        if (seconds >= 60.0 && std::fmod(seconds, 60.0) == 0.0)
            return std::to_string(std::int64_t(seconds / 60.0)) + "m";
        return std::to_string(std::int64_t(seconds)) + "s";
    };
    const double lo = edges_[bin];
    const double hi = edges_[bin + 1];
    if (bin == 0) return "< " + render(hi);
    if (bin == counts_.size() - 1) return "> " + render(lo);
    return render(lo) + "-" + render(hi);
}

void Summary::add(double value) {
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    // Welford's online update.
    const double delta = value - mean_;
    mean_ += delta / double(count_);
    m2_ += delta * (value - mean_);
}

double Summary::mean() const { return count_ > 0 ? mean_ : 0.0; }
double Summary::min() const { return count_ > 0 ? min_ : 0.0; }
double Summary::max() const { return count_ > 0 ? max_ : 0.0; }

double Summary::variance() const {
    return count_ > 1 ? m2_ / double(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

}  // namespace dynaddr::stats

#include "netcore/obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <thread>
#include <unordered_map>

#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/time.hpp"

namespace dynaddr::obs {

namespace {

/// Metric ids index the recorder's own tables; the sign of nothing is
/// overloaded — kind lives in a parallel vector.
enum class Kind : std::uint8_t { Counter, Gauge };

struct Change {
    std::uint32_t id;
    std::int64_t value;  ///< counter delta or gauge level
};

struct Sample {
    double t = 0.0;
    std::vector<Change> changes;
};

}  // namespace

struct SeriesRecorder::Impl {
    mutable std::mutex mutex;
    SeriesConfig config;

    // Metric table: names and kinds by recorder-local id, plus the cached
    // registry index used to read values without re-snapshotting maps.
    std::vector<std::string> names;
    std::vector<Kind> kinds;
    std::unordered_map<std::string, std::uint32_t> id_by_name;
    MetricsIndex index;
    std::uint64_t index_generation = ~std::uint64_t{0};

    // Last seen value per id (counters: last cumulative reading since the
    // delta baseline; gauges: last reported level).
    std::vector<std::int64_t> last_value;
    std::vector<bool> seen;

    // Ring of samples: `ring[(start + i) % ring.size()]` for i < size.
    std::vector<Sample> ring;
    std::size_t start = 0;
    std::size_t size = 0;
    std::uint64_t taken = 0;

    // Wall-clock sampler.
    std::thread wall_thread;
    bool wall_running = false;
    bool wall_stop = false;
    std::condition_variable wall_cv;
    std::mutex wall_mutex;
    std::atomic<int> attached_sims{0};

    std::uint32_t id_for(const std::string& name, Kind kind) {
        if (auto it = id_by_name.find(name); it != id_by_name.end())
            return it->second;
        const auto id = std::uint32_t(names.size());
        names.push_back(name);
        kinds.push_back(kind);
        id_by_name.emplace(name, id);
        last_value.push_back(0);
        seen.push_back(false);
        return id;
    }

    Sample& slot(std::size_t i) { return ring[(start + i) % ring.size()]; }
    const Sample& slot(std::size_t i) const {
        return ring[(start + i) % ring.size()];
    }

    /// Downsampling step: merges the two oldest samples into one so the
    /// ring never exceeds its capacity. Counter deltas sum; for gauges
    /// the later reading wins (earlier ids without a later entry are
    /// carried forward). Cumulative counts are exactly preserved.
    void merge_oldest_pair() {
        Sample& older = slot(0);
        Sample& newer = slot(1);
        std::vector<Change> merged;
        merged.reserve(older.changes.size() + newer.changes.size());
        // Both change lists are sorted by id (built by a sorted scan).
        std::size_t a = 0, b = 0;
        while (a < older.changes.size() || b < newer.changes.size()) {
            if (b >= newer.changes.size() ||
                (a < older.changes.size() &&
                 older.changes[a].id < newer.changes[b].id)) {
                merged.push_back(older.changes[a++]);
            } else if (a >= older.changes.size() ||
                       newer.changes[b].id < older.changes[a].id) {
                merged.push_back(newer.changes[b++]);
            } else {
                Change combined = newer.changes[b];
                if (kinds[combined.id] == Kind::Counter)
                    combined.value += older.changes[a].value;
                merged.push_back(combined);
                ++a;
                ++b;
            }
        }
        newer.changes = std::move(merged);
        older.changes.clear();
        start = (start + 1) % ring.size();
        --size;
    }

    void reset_samples() {
        ring.assign(config.capacity, Sample{});
        start = 0;
        size = 0;
        taken = 0;
        std::fill(seen.begin(), seen.end(), false);
        std::fill(last_value.begin(), last_value.end(), 0);
    }
};

SeriesRecorder& SeriesRecorder::instance() {
    static SeriesRecorder recorder;
    return recorder;
}

SeriesRecorder::Impl& SeriesRecorder::impl() const {
    // Leaked on purpose: destroying a joinable wall-sampler thread at
    // static destruction would call std::terminate, and the stats server
    // may still read samples while the process exits.
    static Impl* impl = new Impl;
    return *impl;
}

void SeriesRecorder::configure(const SeriesConfig& config) {
    Impl& state = impl();
    std::lock_guard lock(state.mutex);
    state.config = config;
    if (state.config.interval_seconds <= 0.0)
        state.config.interval_seconds = 1.0;
    if (state.config.capacity < 2) state.config.capacity = 2;
    state.reset_samples();
}

SeriesConfig SeriesRecorder::config() const {
    Impl& state = impl();
    std::lock_guard lock(state.mutex);
    return state.config;
}

void SeriesRecorder::enable() {
    Impl& state = impl();
    {
        std::lock_guard lock(state.mutex);
        if (state.ring.empty()) state.reset_samples();
        // Delta baseline: the next sample reports changes relative to the
        // registry's state *now*, so series start at zero even though the
        // registry is process-global.
        state.index = metrics_index();
        state.index_generation = metrics_generation();
        for (const auto& [name, metric] : state.index.counters) {
            const auto id = state.id_for(name, Kind::Counter);
            state.last_value[id] = std::int64_t(metric->value());
            state.seen[id] = true;
        }
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void SeriesRecorder::disable() {
    enabled_.store(false, std::memory_order_relaxed);
}

void SeriesRecorder::sample(double when_unix_seconds) {
    if (!enabled()) return;
    Impl& state = impl();
    std::lock_guard lock(state.mutex);
    if (state.ring.empty()) return;

    // Refresh the cached registry index only when a registration happened
    // since the last tick; the common tick touches no maps at all.
    const auto generation = metrics_generation();
    if (generation != state.index_generation) {
        state.index = metrics_index();
        state.index_generation = generation;
    }

    if (state.size == state.ring.size()) state.merge_oldest_pair();
    Sample& sample = state.slot(state.size);
    sample.t = when_unix_seconds;
    sample.changes.clear();

    // The index is name-sorted and ids are assigned in scan order, so a
    // fresh recorder produces id-sorted change lists; ids minted by later
    // registrations can interleave, so sort when needed below.
    // A metric's first observation after enable counts as "changed" only
    // when it is nonzero — metrics registered mid-run at zero would
    // otherwise emit a noise row saying nothing happened.
    for (const auto& [name, metric] : state.index.counters) {
        const auto id = state.id_for(name, Kind::Counter);
        const auto value = std::int64_t(metric->value());
        const auto baseline = state.seen[id] ? state.last_value[id] : 0;
        if (value != baseline) sample.changes.push_back({id, value - baseline});
        state.last_value[id] = value;
        state.seen[id] = true;
    }
    for (const auto& [name, metric] : state.index.gauges) {
        const auto id = state.id_for(name, Kind::Gauge);
        const auto value = metric->value();
        if (value != (state.seen[id] ? state.last_value[id] : 0))
            sample.changes.push_back({id, value});
        state.last_value[id] = value;
        state.seen[id] = true;
    }
    std::sort(sample.changes.begin(), sample.changes.end(),
              [](const Change& a, const Change& b) { return a.id < b.id; });
    ++state.size;
    ++state.taken;
}

void SeriesRecorder::sample_now() {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    sample(std::chrono::duration<double>(now).count());
}

void SeriesRecorder::sim_attached() {
    impl().attached_sims.fetch_add(1, std::memory_order_relaxed);
}

void SeriesRecorder::sim_detached() {
    impl().attached_sims.fetch_sub(1, std::memory_order_relaxed);
}

bool SeriesRecorder::sim_active() const {
    return impl().attached_sims.load(std::memory_order_relaxed) > 0;
}

void SeriesRecorder::start_wall_sampler() {
    Impl& state = impl();
    std::lock_guard lock(state.wall_mutex);
    if (state.wall_running) return;
    state.wall_running = true;
    state.wall_stop = false;
    state.wall_thread = std::thread([this, &state] {
        std::unique_lock lock(state.wall_mutex);
        while (!state.wall_stop) {
            const double interval = config().interval_seconds;
            state.wall_cv.wait_for(
                lock, std::chrono::duration<double>(interval),
                [&state] { return state.wall_stop; });
            if (state.wall_stop) break;
            // Simulated time owns the cadence while a simulation runs.
            if (!sim_active()) sample_now();
        }
    });
}

void SeriesRecorder::stop_wall_sampler() {
    Impl& state = impl();
    std::thread finished;
    {
        std::lock_guard lock(state.wall_mutex);
        if (!state.wall_running) return;
        state.wall_stop = true;
        state.wall_cv.notify_all();
        finished = std::move(state.wall_thread);
        state.wall_running = false;
    }
    finished.join();
}

void SeriesRecorder::clear() {
    Impl& state = impl();
    std::lock_guard lock(state.mutex);
    state.reset_samples();
}

std::size_t SeriesRecorder::sample_count() const {
    Impl& state = impl();
    std::lock_guard lock(state.mutex);
    return state.size;
}

std::uint64_t SeriesRecorder::samples_taken() const {
    Impl& state = impl();
    std::lock_guard lock(state.mutex);
    return state.taken;
}

std::vector<SeriesRow> SeriesRecorder::rows() const {
    Impl& state = impl();
    std::lock_guard lock(state.mutex);
    std::vector<SeriesRow> rows;
    std::vector<std::int64_t> cumulative(state.names.size(), 0);
    double prev_t = 0.0;
    bool have_prev = false;
    for (std::size_t i = 0; i < state.size; ++i) {
        const Sample& sample = state.slot(i);
        const double interval = have_prev ? sample.t - prev_t
                                          : state.config.interval_seconds;
        for (const Change& change : sample.changes) {
            SeriesRow row;
            row.t = sample.t;
            row.metric = state.names[change.id];
            row.is_counter = state.kinds[change.id] == Kind::Counter;
            row.value = change.value;
            if (row.is_counter) {
                cumulative[change.id] += change.value;
                row.cumulative = cumulative[change.id];
                row.rate = interval > 0.0 ? double(change.value) / interval
                                          : 0.0;
            }
            rows.push_back(std::move(row));
        }
        prev_t = sample.t;
        have_prev = true;
    }
    return rows;
}

namespace {

/// Timestamps are unix seconds; whole-second values also get a readable
/// UTC rendering (simulated clocks are always whole seconds).
std::string time_column(double t) {
    const auto whole = std::int64_t(t);
    if (double(whole) == t)
        return net::TimePoint{whole}.to_string();
    return {};
}

void write_double(std::ostream& out, double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.6f", value);
    out << buffer;
}

}  // namespace

void SeriesRecorder::write_json(std::ostream& out) const {
    const auto all = rows();
    out << "{\n  \"interval_seconds\": ";
    write_double(out, config().interval_seconds);
    out << ",\n  \"series\": [";
    bool first = true;
    for (const SeriesRow& row : all) {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        out << "{\"t\": ";
        write_double(out, row.t);
        out << ", \"metric\": \"" << row.metric << "\", \"kind\": \""
            << (row.is_counter ? "counter" : "gauge")
            << "\", \"value\": " << row.value;
        if (row.is_counter) {
            out << ", \"cumulative\": " << row.cumulative << ", \"rate\": ";
            write_double(out, row.rate);
        }
        out << "}";
    }
    out << (first ? "" : "\n  ") << "]\n}\n";
}

void SeriesRecorder::write_csv(std::ostream& out) const {
    out << "t,time,kind,metric,value,cumulative,rate\n";
    for (const SeriesRow& row : rows()) {
        write_double(out, row.t);
        out << ',' << time_column(row.t) << ','
            << (row.is_counter ? "counter" : "gauge") << ',' << row.metric
            << ',' << row.value << ',';
        if (row.is_counter) {
            out << row.cumulative << ',';
            write_double(out, row.rate);
        } else {
            out << ',';
        }
        out << '\n';
    }
}

void SeriesRecorder::write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw Error("cannot open " + path + " for writing");
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        write_csv(out);
    else
        write_json(out);
}

}  // namespace dynaddr::obs

#include "netcore/obs/memaccount.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::obs {

namespace {

/// Leaked, like the other obs singletons: subsystems may unregister from
/// static destructors after a non-leaked registry would already be gone.
class MemRegistry {
public:
    static MemRegistry& instance() {
        static MemRegistry* registry = new MemRegistry();
        return *registry;
    }

    MemSource* add(std::string_view name) {
        std::scoped_lock lock(mutex_);
        sources_.push_back(
            std::unique_ptr<MemSource>(new MemSource(std::string(name))));
        return sources_.back().get();
    }

    void remove(MemSource* source) {
        std::scoped_lock lock(mutex_);
        std::erase_if(sources_,
                      [source](const auto& owned) { return owned.get() == source; });
    }

    std::vector<MemSubsystem> aggregate() const {
        std::map<std::string, MemSubsystem> by_name;
        {
            std::scoped_lock lock(mutex_);
            for (const auto& source : sources_) {
                MemSubsystem& row = by_name[source->name()];
                row.name = source->name();
                row.bytes += source->bytes();
                row.items += source->items();
                ++row.sources;
            }
        }
        std::vector<MemSubsystem> rows;
        rows.reserve(by_name.size());
        for (auto& [name, row] : by_name) rows.push_back(std::move(row));
        std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
            return a.bytes != b.bytes ? a.bytes > b.bytes : a.name < b.name;
        });
        return rows;
    }

private:
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<MemSource>> sources_;
};

/// End-of-plan snapshot (see mem_capture_final): guarded by its own mutex,
/// leaked for the same static-destructor reason as the registry.
struct FinalCapture {
    std::mutex mutex;
    bool present = false;
    MemReport report;
};

FinalCapture& final_capture() {
    static FinalCapture* capture = new FinalCapture();
    return *capture;
}

}  // namespace

MemRegistration::MemRegistration(std::string_view name)
    : source_(MemRegistry::instance().add(name)) {}

MemRegistration::~MemRegistration() {
    if (source_ != nullptr) MemRegistry::instance().remove(source_);
}

MemRegistration& MemRegistration::operator=(MemRegistration&& other) noexcept {
    if (this != &other) {
        if (source_ != nullptr) MemRegistry::instance().remove(source_);
        source_ = other.source_;
        other.source_ = nullptr;
    }
    return *this;
}

std::uint64_t process_rss_bytes() {
    // /proc/self/statm: size resident shared text lib data dt, in pages.
    std::FILE* statm = std::fopen("/proc/self/statm", "r");
    if (statm == nullptr) return 0;
    unsigned long long size = 0, resident = 0;
    const int got = std::fscanf(statm, "%llu %llu", &size, &resident);
    std::fclose(statm);
    if (got != 2) return 0;
    static const long page = ::sysconf(_SC_PAGESIZE);
    return std::uint64_t(resident) * std::uint64_t(page > 0 ? page : 4096);
}

std::uint64_t process_peak_rss_bytes() {
    rusage usage{};
    if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
    return std::uint64_t(usage.ru_maxrss) * 1024;  // Linux: KiB
}

MemReport mem_report() {
    MemReport report;
    report.subsystems = MemRegistry::instance().aggregate();
    for (const auto& row : report.subsystems) report.accounted_bytes += row.bytes;
    report.process_rss_bytes = process_rss_bytes();
    report.process_peak_rss_bytes = process_peak_rss_bytes();
    return report;
}

void publish_mem_gauges() {
    const MemReport report = mem_report();
    for (const auto& row : report.subsystems) {
        gauge("mem." + row.name + ".bytes").set(std::int64_t(row.bytes));
        gauge("mem." + row.name + ".items").set(std::int64_t(row.items));
    }
    gauge("mem.process.rss_bytes").set(std::int64_t(report.process_rss_bytes));
    gauge("mem.process.peak_rss_bytes")
        .set(std::int64_t(report.process_peak_rss_bytes));
    gauge("mem.accounted_bytes").set(std::int64_t(report.accounted_bytes));
    gauge("mem.residual_bytes").set(report.residual_bytes());
}

void write_mem_report_json(std::ostream& out, const MemReport& report) {
    out << "{\n  \"accounted_bytes\": " << report.accounted_bytes
        << ",\n  \"process_rss_bytes\": " << report.process_rss_bytes
        << ",\n  \"process_peak_rss_bytes\": " << report.process_peak_rss_bytes
        << ",\n  \"residual_bytes\": " << report.residual_bytes()
        << ",\n  \"subsystems\": [";
    for (std::size_t i = 0; i < report.subsystems.size(); ++i) {
        const MemSubsystem& row = report.subsystems[i];
        out << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << row.name
            << "\", \"bytes\": " << row.bytes << ", \"items\": " << row.items
            << ", \"sources\": " << row.sources << "}";
    }
    out << "\n  ]\n}\n";
}

void mem_capture_final() {
    MemReport report = mem_report();
    auto& capture = final_capture();
    std::scoped_lock lock(capture.mutex);
    capture.present = true;
    capture.report = std::move(report);
}

std::optional<MemReport> mem_final_report() {
    auto& capture = final_capture();
    std::scoped_lock lock(capture.mutex);
    if (!capture.present) return std::nullopt;
    return capture.report;
}

void write_mem_report_file(const std::string& path) {
    std::ofstream out(path);
    if (!out) throw Error("cannot open " + path + " for writing");
    // Prefer the end-of-plan capture: by the time a CLI run writes its
    // outputs the scenario's subsystems (and their registrations) are
    // already destroyed, so the live report would be empty.
    const auto captured = mem_final_report();
    write_mem_report_json(out, captured ? *captured : mem_report());
}

}  // namespace dynaddr::obs

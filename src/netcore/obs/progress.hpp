#pragma once

// Run-progress telemetry: where a long run *is* and when it will finish.
// run_scenario publishes the plan horizon (begin_plan/end_plan); the sim
// loop publishes its sim-time watermark and executed-event count with one
// relaxed store each per event; the streaming pipeline publishes its
// sealed-probe watermark. snapshot() derives the rates — events/s,
// sim-seconds-per-wall-second, ETA against the horizon — at read time, so
// the hot path pays only the stores. Same purity contract as the rest of
// obs: publishers never read, readers (the /top endpoint, progress.*
// gauges, `dynaddr top`) never touch simulation state.

#include <cstdint>
#include <iosfwd>

#include "netcore/time.hpp"

namespace dynaddr::obs {

/// Point-in-time derived view of a run's progress.
struct ProgressSnapshot {
    bool plan_active = false;           ///< between begin_plan and end_plan
    net::TimePoint plan_begin;          ///< scenario window begin
    net::TimePoint plan_end;            ///< scenario window end (the horizon)
    net::TimePoint sim_now;             ///< sim-time watermark
    std::uint64_t events_executed = 0;
    double wall_elapsed_s = 0;          ///< since begin_plan
    double events_per_s = 0;            ///< executed / wall_elapsed
    double sim_rate = 0;                ///< sim-seconds per wall-second
    double fraction_done = 0;           ///< (sim_now-begin)/(end-begin), clamped
    double eta_s = -1;                  ///< wall seconds to horizon; -1 unknown
    std::int64_t sealed_probe = -1;     ///< streaming watermark; -1 none sealed
};

/// Marks the start of a planned run with horizon [begin, end). Resets the
/// event counter and wall clock. Called by run_scenario.
void progress_begin_plan(net::TimePoint begin, net::TimePoint end);

/// Marks the plan finished; the final snapshot stays readable.
void progress_end_plan();

/// Hot-path publishers: one relaxed store each.
void progress_note_sim_time(net::TimePoint now);
void progress_note_events(std::uint64_t executed_total);
void progress_note_sealed_probe(std::int64_t probe);

/// Derives rates/ETA from the published watermarks and a monotonic wall
/// clock. Safe from any thread at any time.
[[nodiscard]] ProgressSnapshot progress_snapshot();

/// Pushes the snapshot into the metrics registry: `progress.sim_now_unix`,
/// `progress.events_executed`, `progress.events_per_s`,
/// `progress.sim_rate`, `progress.fraction_done_pct`, `progress.eta_s`,
/// `progress.sealed_probe`. The stats server calls this before /metrics
/// and /top.
void publish_progress_gauges();

/// The "progress" object of /top:
/// `{"plan_active": ..., "sim_now": "...", "plan_end": "...", ...}`.
void write_progress_json(std::ostream& out, const ProgressSnapshot& snapshot);

}  // namespace dynaddr::obs

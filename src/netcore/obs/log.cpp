#include "netcore/obs/log.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "netcore/error.hpp"
#include "netcore/obs/flight_recorder.hpp"

namespace dynaddr::obs {

namespace {

/// Per-thread stack of simulated clocks; the innermost Simulation wins.
thread_local std::vector<const net::TimePoint*> tls_sim_clocks;

}  // namespace

/// All module state behind one mutex. Registration and level changes are
/// rare; the hot path touches only LogModule::effective_.
struct LogRegistry {
    /// Leaked on purpose: destructors of other static objects may still
    /// log (and the flight recorder may capture) while the process exits.
    static LogRegistry& instance() {
        static LogRegistry* registry = new LogRegistry;
        return *registry;
    }

    LogModule& get(std::string_view name) {
        std::lock_guard lock(mutex);
        if (auto it = by_name.find(std::string(name)); it != by_name.end())
            return *it->second;
        // LogModule is non-movable (atomic member) and its ctor private;
        // LogRegistry is a friend, so construct via new.
        modules.push_back(
            std::unique_ptr<LogModule>(new LogModule(std::string(name))));
        LogModule& module = *modules.back();
        recompute(module);
        by_name.emplace(module.name(), &module);
        return module;
    }

    /// Derives both published levels from the mutex-guarded state: the
    /// sink level (override or global) and the enabled() gate (sink level
    /// raised to the flight-recorder capture floor).
    void recompute(LogModule& module) const {
        const int sink =
            module.override_ >= 0 ? module.override_ : global;
        module.sink_level_.store(sink, std::memory_order_relaxed);
        module.effective_.store(std::max(sink, capture_floor),
                                std::memory_order_relaxed);
    }

    void set_global(LogLevel level) {
        std::lock_guard lock(mutex);
        global = int(level);
        for (auto& module : modules) recompute(*module);
    }

    void set_override(std::string_view name, int override_level) {
        LogModule& module = get(name);
        std::lock_guard lock(mutex);
        module.override_ = override_level;
        recompute(module);
    }

    void set_floor(LogLevel floor) {
        std::lock_guard lock(mutex);
        capture_floor = floor == LogLevel::Off ? 0 : int(floor);
        for (auto& module : modules) recompute(*module);
    }

    std::mutex mutex;
    std::deque<std::unique_ptr<LogModule>> modules;  ///< stable addresses
    std::unordered_map<std::string, LogModule*> by_name;
    int global = int(LogLevel::Warn);
    int capture_floor = 0;  ///< 0 = no flight-recorder capture

    std::mutex sink_mutex;
    std::ostream* sink = nullptr;  ///< nullptr = stderr
    std::uint64_t sequence = 0;
};

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Off: return "off";
        case LogLevel::Error: return "error";
        case LogLevel::Warn: return "warn";
        case LogLevel::Info: return "info";
        case LogLevel::Debug: return "debug";
        case LogLevel::Trace: return "trace";
    }
    return "?";
}

std::optional<LogLevel> parse_level(std::string_view name) {
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(char(std::tolower(static_cast<unsigned char>(c))));
    if (lower == "off") return LogLevel::Off;
    if (lower == "error" || lower == "err") return LogLevel::Error;
    if (lower == "warn" || lower == "warning") return LogLevel::Warn;
    if (lower == "info") return LogLevel::Info;
    if (lower == "debug" || lower == "dbg") return LogLevel::Debug;
    if (lower == "trace") return LogLevel::Trace;
    return std::nullopt;
}

LogModule& LogModule::get(std::string_view name) {
    return LogRegistry::instance().get(name);
}

void LogModule::emit(LogLevel level, std::string_view message) const {
    // Flight-recorder capture comes first and is independent of the sink
    // gate: crash dumps retain records at every level while the recorder
    // is on. flight_capture is a relaxed-load no-op when it is not.
    flight_capture(level, name_, message);
    if (int(level) > sink_level_.load(std::memory_order_relaxed)) return;
    LogRegistry& registry = LogRegistry::instance();
    std::string line;
    line.reserve(message.size() + name_.size() + 48);
    std::uint64_t seq;
    {
        std::lock_guard lock(registry.sink_mutex);
        seq = ++registry.sequence;
    }
    char seq_text[24];
    std::snprintf(seq_text, sizeof seq_text, "%05llu",
                  static_cast<unsigned long long>(seq));
    line += seq_text;
    line += '|';
    if (!tls_sim_clocks.empty()) {
        line += "sim ";
        line += tls_sim_clocks.back()->to_string();
        line += '|';
    }
    line += name_;
    line += '|';
    line += level_name(level);
    line += '|';
    line += message;
    line += '\n';
    std::lock_guard lock(registry.sink_mutex);
    if (registry.sink != nullptr) {
        registry.sink->write(line.data(), std::streamsize(line.size()));
        registry.sink->flush();
    } else {
        std::fwrite(line.data(), 1, line.size(), stderr);
    }
}

void set_log_level(LogLevel level) { LogRegistry::instance().set_global(level); }

LogLevel log_level() {
    LogRegistry& registry = LogRegistry::instance();
    std::lock_guard lock(registry.mutex);
    return LogLevel(registry.global);
}

void set_module_level(std::string_view module, LogLevel level) {
    LogRegistry::instance().set_override(module, int(level));
}

void clear_module_level(std::string_view module) {
    LogRegistry::instance().set_override(module, -1);
}

void apply_module_spec(std::string_view spec) {
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        auto comma = spec.find(',', pos);
        if (comma == std::string_view::npos) comma = spec.size();
        const std::string_view item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty()) continue;
        const auto colon = item.find(':');
        if (colon == std::string_view::npos || colon == 0)
            throw Error("bad --log-module item '" + std::string(item) +
                        "' (want module:level)");
        const auto level = parse_level(item.substr(colon + 1));
        if (!level)
            throw Error("unknown log level '" +
                        std::string(item.substr(colon + 1)) + "'");
        set_module_level(item.substr(0, colon), *level);
    }
}

void set_capture_floor(LogLevel floor) {
    LogRegistry::instance().set_floor(floor);
}

void set_log_sink(std::ostream* sink) {
    LogRegistry& registry = LogRegistry::instance();
    std::lock_guard lock(registry.sink_mutex);
    registry.sink = sink;
}

void push_sim_clock(const net::TimePoint* now) { tls_sim_clocks.push_back(now); }

std::int64_t current_sim_unix_seconds_or_min() {
    if (tls_sim_clocks.empty())
        return std::numeric_limits<std::int64_t>::min();
    return tls_sim_clocks.back()->unix_seconds();
}

void pop_sim_clock(const net::TimePoint* now) {
    // Tolerate non-LIFO destruction: erase the last matching entry.
    for (auto it = tls_sim_clocks.rbegin(); it != tls_sim_clocks.rend(); ++it) {
        if (*it == now) {
            tls_sim_clocks.erase(std::next(it).base());
            return;
        }
    }
}

}  // namespace dynaddr::obs

#include "netcore/obs/stats_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <sstream>
#include <string>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/profiler.hpp"
#include "netcore/obs/progress.hpp"
#include "netcore/obs/timeseries.hpp"

// Build identity, injected by CMake onto this translation unit only (see
// src/netcore/CMakeLists.txt). Falls back to "unknown" for builds driven
// without git or outside the repo.
#ifndef DYNADDR_GIT_SHA
#define DYNADDR_GIT_SHA "unknown"
#endif
#ifndef DYNADDR_BUILD_TYPE
#define DYNADDR_BUILD_TYPE "unknown"
#endif

DYNADDR_LOG_MODULE(stats_server);

namespace dynaddr::obs {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (our
/// separator) and anything else exotic become underscores.
std::string prometheus_name(std::string_view dotted) {
    std::string name;
    name.reserve(dotted.size());
    for (char c : dotted) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9' && !name.empty()) || c == '_' ||
                        c == ':';
        name.push_back(ok ? c : '_');
    }
    return name;
}

void write_prometheus_double(std::ostream& out, double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.9g", value);
    out << buffer;
}

/// Process start, for /healthz uptime. Static init runs early enough that
/// "uptime of this object" and "uptime of the process" agree for our use.
const std::chrono::steady_clock::time_point process_start =
    std::chrono::steady_clock::now();

double process_uptime_seconds() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         process_start)
        .count();
}

/// /healthz: still "ok" on the first line (existing probes key on it),
/// now followed by build identity and uptime.
std::string healthz_body() {
    std::ostringstream out;
    out << "ok\n"
        << "git_sha: " << DYNADDR_GIT_SHA << '\n'
        << "build_type: " << DYNADDR_BUILD_TYPE << '\n'
        << "compiler: " << __VERSION__ << '\n';
    char uptime[48];
    std::snprintf(uptime, sizeof uptime, "uptime_s: %.1f\n",
                  process_uptime_seconds());
    out << uptime;
    return std::move(out).str();
}

/// /top: the capacity-and-progress view `dynaddr top` renders — one JSON
/// object combining the progress snapshot and the memory report.
std::string top_body() {
    std::ostringstream out;
    out << "{\n\"progress\": ";
    write_progress_json(out, progress_snapshot());
    out << ",\n\"memory\": ";
    write_mem_report_json(out, mem_report());
    out << "}\n";
    return std::move(out).str();
}

/// /causes: the live cause-ledger counters (causes.*) as one flat JSON
/// object, keyed without the prefix. Empty object when no ledger ran.
std::string causes_body() {
    std::ostringstream out;
    out << '{';
    bool first = true;
    for (const auto& [name, value] : metrics_snapshot().counters) {
        if (name.rfind("causes.", 0) != 0) continue;
        out << (first ? "\n" : ",\n") << "\"" << name.substr(7)
            << "\": " << value;
        first = false;
    }
    out << (first ? "}\n" : "\n}\n");
    return std::move(out).str();
}

}  // namespace

void write_metrics_prometheus(std::ostream& out,
                              const MetricsSnapshot& snapshot) {
    for (const auto& [dotted, value] : snapshot.counters) {
        const auto name = prometheus_name(dotted);
        out << "# TYPE " << name << " counter\n"
            << name << ' ' << value << '\n';
    }
    for (const auto& [dotted, value] : snapshot.gauges) {
        const auto name = prometheus_name(dotted);
        out << "# TYPE " << name << " gauge\n"
            << name << ' ' << value << '\n';
    }
    for (const auto& [dotted, sample] : snapshot.histograms) {
        const auto name = prometheus_name(dotted);
        out << "# TYPE " << name << " histogram\n";
        // Exposition buckets are cumulative; ours are per-bucket.
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
            cumulative += sample.buckets[i];
            out << name << "_bucket{le=\"";
            write_prometheus_double(out, sample.bounds[i]);
            out << "\"} " << cumulative << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << sample.count << '\n';
        out << name << "_sum ";
        write_prometheus_double(out, sample.sum);
        out << '\n' << name << "_count " << sample.count << '\n';
    }
}

StatsServer::StatsServer(std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw Error("stats server: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // observe, not expose
    address.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        ::close(listen_fd_);
        throw Error("stats server: cannot bind 127.0.0.1:" +
                    std::to_string(port));
    }
    socklen_t length = sizeof address;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
    port_ = ntohs(address.sin_port);

    thread_ = std::thread([this] { serve(); });
    DYNADDR_LOG(Info, stats_server, "serving /metrics /series /top /causes "
                "/healthz on 127.0.0.1:", port_);
}

StatsServer::~StatsServer() { stop(); }

void StatsServer::stop() {
    if (stop_.exchange(true)) return;
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void StatsServer::serve() {
    // Visible to the sampling self-profiler, like the pipeline workers.
    ScopedProfiledThread profiled("stats-server");
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd poll_entry{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&poll_entry, 1, 100 /* ms */);
        if (ready <= 0) continue;
        const int connection = ::accept(listen_fd_, nullptr, nullptr);
        if (connection < 0) continue;
        handle(connection);
        // Count before close: a client that saw EOF must see the count.
        served_.fetch_add(1, std::memory_order_relaxed);
        ::close(connection);
    }
}

void StatsServer::handle(int connection) {
    // Read the request head. HTTP/1.0, one request per connection; the
    // request line is all that matters and comfortably fits one read, but
    // keep reading until the blank line or the buffer fills.
    char buffer[4096];
    std::size_t used = 0;
    while (used < sizeof buffer - 1) {
        const auto got =
            ::recv(connection, buffer + used, sizeof buffer - 1 - used, 0);
        if (got <= 0) break;
        used += std::size_t(got);
        buffer[used] = '\0';
        if (std::strstr(buffer, "\r\n\r\n") != nullptr ||
            std::strstr(buffer, "\n\n") != nullptr)
            break;
    }
    buffer[used] = '\0';

    std::string_view request(buffer, used);
    std::string body;
    std::string content_type = "text/plain; charset=utf-8";
    const char* status = "200 OK";

    const bool is_get = request.rfind("GET ", 0) == 0;
    std::string_view path;
    if (is_get) {
        const auto path_start = 4;
        const auto path_end = request.find(' ', path_start);
        if (path_end != std::string_view::npos)
            path = request.substr(path_start, path_end - path_start);
    }

    if (!is_get) {
        status = "405 Method Not Allowed";
        body = "method not allowed\n";
    } else if (path == "/metrics") {
        // Refresh the derived gauges so every scrape sees live capacity
        // and progress figures, not the last publisher's cadence.
        publish_mem_gauges();
        publish_progress_gauges();
        std::ostringstream out;
        write_metrics_prometheus(out, metrics_snapshot());
        body = std::move(out).str();
        content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (path == "/series") {
        std::ostringstream out;
        SeriesRecorder::instance().write_json(out);
        body = std::move(out).str();
        content_type = "application/json";
    } else if (path == "/top") {
        publish_mem_gauges();
        publish_progress_gauges();
        body = top_body();
        content_type = "application/json";
    } else if (path == "/causes") {
        body = causes_body();
        content_type = "application/json";
    } else if (path == "/healthz") {
        body = healthz_body();
    } else {
        status = "404 Not Found";
        body = "not found\n";
    }

    std::ostringstream response;
    response << "HTTP/1.0 " << status << "\r\nContent-Type: " << content_type
             << "\r\nContent-Length: " << body.size()
             << "\r\nConnection: close\r\n\r\n" << body;
    const std::string text = std::move(response).str();
    std::size_t sent = 0;
    while (sent < text.size()) {
        const auto wrote =
            ::send(connection, text.data() + sent, text.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote <= 0) break;
        sent += std::size_t(wrote);
    }
}

}  // namespace dynaddr::obs

#pragma once

// Sampling self-profiler: answers "where does a long run spend its time"
// from inside the process, with nothing attached. Worker threads register
// themselves (the sim loop, pipeline-pool executors, the stats thread); a
// dedicated sampler thread wakes at `hz` and interrupts each registered
// thread with SIGPROF, whose handler captures a backtrace into that
// thread's preallocated slot. The sampler folds the captured stacks into
// (stack → count) aggregates, flame-graph-ready: write_profile_folded
// emits `thread;outermost;...;innermost count` lines that
// flamegraph.pl / speedscope consume directly.
//
// Signal-safety rules (DESIGN.md §10): the handler does exactly two
// things — backtrace() into a buffer owned by the interrupted thread, and
// one release store of the "captured" flag. No malloc, no locks, no
// formatting; backtrace() is warmed up once at start_profiler so its
// lazy-loading first call never happens in signal context. Symbolization
// (dladdr, with raw addresses as fallback) runs only at export time on
// the exporting thread. Handlers install with SA_RESTART so interrupted
// syscalls in the profiled threads resume instead of surfacing EINTR —
// that, plus touching no simulation state, is the observer-purity
// argument (LiveObsDeterminism runs fingerprints under 97 Hz sampling).
//
// Disabled cost ≈ 0 by construction: with the profiler off there is no
// sampler thread and no signals; the only residue is one registration
// (mutex + push) per thread lifetime. profiler_enabled() is a single
// relaxed load (BM_ProfilerDisabledCheck).

#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace dynaddr::obs {

/// True while the sampler thread is running. One relaxed load.
[[nodiscard]] bool profiler_enabled();

/// Starts sampling every registered thread at `hz` (clamped to
/// [1, 10000]). Idempotent while running; keeps any prior aggregate so
/// repeated start/stop cycles accumulate.
void start_profiler(double hz);

/// Stops the sampler thread (joins it). The aggregate survives for
/// export. Idempotent.
void stop_profiler();

/// Drops the aggregated stacks and sample counters.
void clear_profile();

/// Adds the calling thread to the sampled set under `name`. Threads that
/// outlive their interest must unregister before exiting (a signal to a
/// dead thread is undefined); prefer ScopedProfiledThread.
void profiler_register_current_thread(std::string_view name);
void profiler_unregister_current_thread();

/// RAII thread registration for worker loops.
class ScopedProfiledThread {
public:
    explicit ScopedProfiledThread(std::string_view name) {
        profiler_register_current_thread(name);
    }
    ~ScopedProfiledThread() { profiler_unregister_current_thread(); }
    ScopedProfiledThread(const ScopedProfiledThread&) = delete;
    ScopedProfiledThread& operator=(const ScopedProfiledThread&) = delete;
};

/// Stacks successfully captured / sample attempts that found the target
/// uninterruptible in time (skipped, never blocked on).
[[nodiscard]] std::uint64_t profiler_samples_taken();
[[nodiscard]] std::uint64_t profiler_samples_missed();

/// One synchronous sweep over the registered threads from the calling
/// thread (the calling thread itself is sampled inline, without a
/// signal). Returns stacks captured. Installs the handler if needed —
/// the test/bench hook behind BM_ProfilerSampleCost; the sampler thread
/// runs exactly this per tick.
std::uint64_t profiler_sample_once();

/// Folded-stack export: one `thread;frame;...;frame count` line per
/// distinct stack, outermost frame first, sorted by line for determinism.
/// Frames symbolize via dladdr when the symbol is visible (link the
/// binary with -rdynamic for full names) and print as hex otherwise.
void write_profile_folded(std::ostream& out);

/// As --profile-out: writes the folded aggregate to `path`. Throws Error
/// when the file cannot be opened.
void write_profile_file(const std::string& path);

}  // namespace dynaddr::obs

#include "netcore/obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "netcore/error.hpp"

namespace dynaddr::obs {

namespace {

constexpr int kMaxFrames = 64;

/// Per-registered-thread capture slot. The signal handler writes frames_
/// and then release-stores captured_; the sampler acquire-loads captured_
/// before reading frames_. pending_ keeps a late-delivered signal (the
/// sampler timed out waiting) from scribbling over a slot the sampler
/// has already folded into the aggregate on a later round.
struct ThreadSlot {
    std::string name;
    pthread_t handle{};
    std::atomic<bool> pending{false};   ///< signal sent, capture not consumed
    std::atomic<bool> captured{false};  ///< handler finished writing frames
    void* frames[kMaxFrames] = {};
    std::atomic<int> depth{0};
};

/// Leaked (flight-recorder pattern): worker threads unregister from static
/// destructors after a non-leaked state object would be gone.
struct ProfilerState {
    std::mutex mutex;  ///< guards slots, aggregate, sampler lifecycle
    std::vector<std::unique_ptr<ThreadSlot>> slots;
    /// folded stack key ("thread;addr;addr;...") → sample count; keys use
    /// raw addresses, symbolized only at export.
    std::map<std::string, std::uint64_t> aggregate;
    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> taken{0};
    std::atomic<std::uint64_t> missed{0};
    std::thread sampler;
    std::condition_variable stop_cv;
    bool stop_requested = false;
    bool handler_installed = false;
};

ProfilerState& state() {
    static ProfilerState* s = new ProfilerState();
    return *s;
}

thread_local ThreadSlot* this_thread_slot = nullptr;

/// Async-signal-safe by construction: backtrace() into a preallocated
/// buffer plus one release store. No allocation, no locking, no I/O.
void sigprof_handler(int, siginfo_t*, void*) {
    ThreadSlot* slot = this_thread_slot;
    if (slot == nullptr || !slot->pending.load(std::memory_order_acquire)) return;
    const int depth = ::backtrace(slot->frames, kMaxFrames);
    slot->depth.store(depth, std::memory_order_relaxed);
    slot->captured.store(true, std::memory_order_release);
}

void install_handler_locked() {
    if (state().handler_installed) return;
    // Warm up backtrace(): its first call may dlopen/malloc, which must
    // never happen inside the signal handler.
    void* warmup[kMaxFrames];
    ::backtrace(warmup, kMaxFrames);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = sigprof_handler;
    sa.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPROF, &sa, nullptr);
    state().handler_installed = true;
}

/// Folds one captured stack into the aggregate under the state mutex.
/// Key format: thread-name;outer-addr;...;inner-addr (root first, so the
/// folded output is directly flame-graph shaped).
void fold_capture_locked(const ThreadSlot& slot, void* const* frames, int depth) {
    std::ostringstream key;
    key << slot.name;
    for (int i = depth - 1; i >= 0; --i) key << ';' << frames[i];
    ++state().aggregate[key.str()];
}

/// Samples every registered thread. Called with the state mutex held.
/// The calling thread (if registered) is sampled inline — signalling
/// ourselves and then spin-waiting for our own handler would deadlock.
std::uint64_t sample_all_locked() {
    std::uint64_t captured_count = 0;
    const pthread_t self = ::pthread_self();
    for (const auto& slot : state().slots) {
        if (::pthread_equal(slot->handle, self)) {
            void* frames[kMaxFrames];
            const int depth = ::backtrace(frames, kMaxFrames);
            fold_capture_locked(*slot, frames, depth);
            ++captured_count;
            state().taken.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        slot->captured.store(false, std::memory_order_relaxed);
        slot->pending.store(true, std::memory_order_release);
        if (::pthread_kill(slot->handle, SIGPROF) != 0) {
            slot->pending.store(false, std::memory_order_relaxed);
            state().missed.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        // Bounded wait: a thread parked in an uninterruptible state just
        // misses this round; the sampler never blocks on it.
        bool got = false;
        for (int spin = 0; spin < 2000; ++spin) {
            if (slot->captured.load(std::memory_order_acquire)) {
                got = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(5));
        }
        slot->pending.store(false, std::memory_order_release);
        if (got) {
            fold_capture_locked(*slot, slot->frames,
                                slot->depth.load(std::memory_order_relaxed));
            ++captured_count;
            state().taken.fetch_add(1, std::memory_order_relaxed);
        } else {
            state().missed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return captured_count;
}

void sampler_loop(double hz) {
    const auto period =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / hz));
    std::unique_lock lock(state().mutex);
    while (!state().stop_requested) {
        sample_all_locked();
        state().stop_cv.wait_for(lock, period,
                                 [] { return state().stop_requested; });
    }
}

/// Best-effort frame name: dladdr symbol + offset when visible (link with
/// -rdynamic), hex address otherwise. Cached per address — symbolization
/// runs only at export time, never on the sampling path.
std::string symbolize(void* addr,
                      std::map<void*, std::string>& cache) {
    auto it = cache.find(addr);
    if (it != cache.end()) return it->second;
    std::string name;
    Dl_info info{};
    if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
        int status = 0;
        char* pretty =
            abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
        name = (status == 0 && pretty != nullptr) ? pretty : info.dli_sname;
        std::free(pretty);
        // Folded-stack separators are ';' — scrub any from symbols.
        std::replace(name.begin(), name.end(), ';', ':');
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%p", addr);
        name = buf;
    }
    cache.emplace(addr, name);
    return name;
}

}  // namespace

bool profiler_enabled() {
    return state().enabled.load(std::memory_order_relaxed);
}

void start_profiler(double hz) {
    hz = std::clamp(hz, 1.0, 10000.0);
    std::scoped_lock lock(state().mutex);
    if (state().enabled.load(std::memory_order_relaxed)) return;
    install_handler_locked();
    state().stop_requested = false;
    state().enabled.store(true, std::memory_order_relaxed);
    state().sampler = std::thread(sampler_loop, hz);
}

void stop_profiler() {
    std::thread sampler;
    {
        std::scoped_lock lock(state().mutex);
        if (!state().enabled.load(std::memory_order_relaxed)) return;
        state().stop_requested = true;
        state().enabled.store(false, std::memory_order_relaxed);
        state().stop_cv.notify_all();
        sampler = std::move(state().sampler);
    }
    if (sampler.joinable()) sampler.join();
}

void clear_profile() {
    std::scoped_lock lock(state().mutex);
    state().aggregate.clear();
    state().taken.store(0, std::memory_order_relaxed);
    state().missed.store(0, std::memory_order_relaxed);
}

void profiler_register_current_thread(std::string_view name) {
    std::scoped_lock lock(state().mutex);
    auto slot = std::make_unique<ThreadSlot>();
    slot->name = std::string(name);
    slot->handle = ::pthread_self();
    this_thread_slot = slot.get();
    state().slots.push_back(std::move(slot));
}

void profiler_unregister_current_thread() {
    std::scoped_lock lock(state().mutex);
    ThreadSlot* slot = this_thread_slot;
    this_thread_slot = nullptr;
    std::erase_if(state().slots,
                  [slot](const auto& owned) { return owned.get() == slot; });
}

std::uint64_t profiler_samples_taken() {
    return state().taken.load(std::memory_order_relaxed);
}

std::uint64_t profiler_samples_missed() {
    return state().missed.load(std::memory_order_relaxed);
}

std::uint64_t profiler_sample_once() {
    std::scoped_lock lock(state().mutex);
    install_handler_locked();
    return sample_all_locked();
}

void write_profile_folded(std::ostream& out) {
    // Copy the aggregate out, then symbolize without the lock held.
    std::map<std::string, std::uint64_t> aggregate;
    {
        std::scoped_lock lock(state().mutex);
        aggregate = state().aggregate;
    }
    std::map<void*, std::string> cache;
    std::vector<std::string> lines;
    lines.reserve(aggregate.size());
    for (const auto& [key, count] : aggregate) {
        std::string line;
        std::size_t pos = 0;
        bool first = true;
        while (pos <= key.size()) {
            const std::size_t next = key.find(';', pos);
            const std::string tok =
                key.substr(pos, next == std::string::npos ? next : next - pos);
            if (first) {
                line = tok;  // thread name
                first = false;
            } else {
                void* addr = nullptr;
                std::sscanf(tok.c_str(), "%p", &addr);
                line += ';';
                line += symbolize(addr, cache);
            }
            if (next == std::string::npos) break;
            pos = next + 1;
        }
        line += ' ';
        line += std::to_string(count);
        lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    for (const auto& line : lines) out << line << '\n';
}

void write_profile_file(const std::string& path) {
    std::ofstream out(path);
    if (!out) throw Error("cannot open " + path + " for writing");
    write_profile_folded(out);
}

}  // namespace dynaddr::obs

#pragma once

// Structured leveled logging, OVS-vlog style: one LogModule per subsystem,
// a global default level plus per-module runtime overrides, and a macro
// front end with compile-time elision below DYNADDR_LOG_COMPILE_FLOOR.
//
// Usage (file scope, once per .cpp):
//
//     DYNADDR_LOG_MODULE(pipeline);
//     ...
//     DYNADDR_LOG(Info, pipeline, "filtered ", n, " probes");
//
// The disabled path is one relaxed atomic load plus a compare — cheap
// enough to leave Debug statements in hot loops (BM_LogDisabled tracks
// it). Statements above the compile floor vanish entirely, arguments
// unevaluated. Records are written under a mutex to stderr (or a sink set
// with set_log_sink) and tagged with simulated time whenever the emitting
// thread is inside a sim::Simulation.

#include <atomic>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "netcore/time.hpp"

namespace dynaddr::obs {

/// Severity levels, most severe first. Off disables a module entirely.
enum class LogLevel : int { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4, Trace = 5 };

/// "error", "warn", ... for rendering; "?" for out-of-range values.
[[nodiscard]] const char* level_name(LogLevel level);

/// Case-insensitive parse of a level name ("off", "error", "warn"/"warning",
/// "info", "debug", "trace"); nullopt when unknown.
[[nodiscard]] std::optional<LogLevel> parse_level(std::string_view name);

/// One named logging module. Instances live forever in the registry;
/// references stay valid for the process lifetime.
class LogModule {
public:
    /// Get-or-create the module named `name`. Thread-safe; the same name
    /// always yields the same instance.
    static LogModule& get(std::string_view name);

    [[nodiscard]] const std::string& name() const { return name_; }

    /// Hot-path check: true when a record at `level` would be emitted to
    /// the sink OR captured by the flight recorder (whose capture floor
    /// is Trace while enabled — crash dumps retain records regardless of
    /// the sink level).
    [[nodiscard]] bool enabled(LogLevel level) const {
        return int(level) <= effective_.load(std::memory_order_relaxed);
    }

    /// The cold path: streams the arguments and hands the record to the
    /// sink. Callers go through DYNADDR_LOG, which gates on enabled().
    template <typename... Args>
    void write(LogLevel level, const Args&... args) const {
        std::ostringstream text;
        (text << ... << args);
        emit(level, std::move(text).str());
    }

    /// Emits a preformatted record (timestamp/level/module framing added).
    void emit(LogLevel level, std::string_view message) const;

private:
    friend struct LogRegistry;
    explicit LogModule(std::string name) : name_(std::move(name)) {}

    std::string name_;
    /// The gate enabled() reads: max(sink level, flight-recorder capture
    /// floor). Recomputed by the registry on every set_log_level /
    /// set_module_level / capture-floor change; reads are one relaxed
    /// load.
    std::atomic<int> effective_{int(LogLevel::Warn)};
    /// What the *sink* honours (override when set, else the global
    /// default) — emit() drops records above this after capture.
    std::atomic<int> sink_level_{int(LogLevel::Warn)};
    int override_ = -1;  ///< -1 = follow global; registry-mutex guarded
};

/// Sets the default level for every module without an override.
void set_log_level(LogLevel level);

/// Current global default level.
[[nodiscard]] LogLevel log_level();

/// Per-module runtime override (creates the module when unseen).
void set_module_level(std::string_view module, LogLevel level);

/// Clears a module's override so it follows the global level again.
void clear_module_level(std::string_view module);

/// Applies a CLI-style spec: "mod:level" or "mod1:level1,mod2:level2".
/// Throws Error on a malformed spec or unknown level name.
void apply_module_spec(std::string_view spec);

/// Redirects records to `sink` (nullptr restores stderr). The sink must
/// outlive its installation. Intended for tests and file capture.
void set_log_sink(std::ostream* sink);

/// Raises every module's enabled() gate to at least `floor` without
/// changing what reaches the sink — records between the sink level and
/// the floor are captured by the flight recorder only. LogLevel::Off
/// clears the floor. Installed by enable_flight_recorder().
void set_capture_floor(LogLevel floor);

/// Registers/unregisters a simulated clock for the calling thread; while
/// registered, records carry the simulation's current time. Balanced
/// push/pop pairs nest (sim::Simulation does this in ctor/dtor).
void push_sim_clock(const net::TimePoint* now);
void pop_sim_clock(const net::TimePoint* now);

/// The calling thread's innermost simulated time as unix seconds, or
/// INT64_MIN when no simulation is registered (flight-recorder records
/// carry this so crash dumps line up with the scenario clock).
[[nodiscard]] std::int64_t current_sim_unix_seconds_or_min();

}  // namespace dynaddr::obs

// Statements at levels whose numeric value exceeds the floor compile to
// nothing (arguments unevaluated). Default floor: Debug — Trace statements
// are elided from release binaries unless the build overrides the floor.
#ifndef DYNADDR_LOG_COMPILE_FLOOR
#define DYNADDR_LOG_COMPILE_FLOOR 4
#endif

/// File-scope module definition. The reference is resolved once during
/// static initialization, so DYNADDR_LOG pays no lookup and no init-guard.
#define DYNADDR_LOG_MODULE(name)                                          \
    namespace {                                                           \
    [[maybe_unused]] ::dynaddr::obs::LogModule& dynaddr_log_module_##name = \
        ::dynaddr::obs::LogModule::get(#name);                            \
    }

/// DYNADDR_LOG(Level, module, args...) — `module` must have been declared
/// in this file with DYNADDR_LOG_MODULE(module).
#define DYNADDR_LOG(level, module, ...)                                   \
    do {                                                                  \
        if constexpr (int(::dynaddr::obs::LogLevel::level) <=             \
                      DYNADDR_LOG_COMPILE_FLOOR) {                        \
            if (dynaddr_log_module_##module.enabled(                      \
                    ::dynaddr::obs::LogLevel::level)) [[unlikely]]        \
                dynaddr_log_module_##module.write(                        \
                    ::dynaddr::obs::LogLevel::level, __VA_ARGS__);        \
        }                                                                 \
    } while (0)

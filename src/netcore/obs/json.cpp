#include "netcore/obs/json.hpp"

#include <cctype>
#include <cstddef>
#include <cstdlib>

namespace dynaddr::obs {

namespace {

/// Recursive-descent cursor over the input. Each parse_* consumes one
/// grammar production and returns false on the first violation.
struct JsonCursor {
    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;

    static constexpr int kMaxDepth = 256;

    bool at_end() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void skip_ws() {
        while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                             text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c) {
        if (at_end() || text[pos] != c) return false;
        ++pos;
        return true;
    }

    bool consume_literal(std::string_view word) {
        if (text.substr(pos, word.size()) != word) return false;
        pos += word.size();
        return true;
    }

    bool parse_string() {
        if (!consume('"')) return false;
        while (!at_end()) {
            const char c = text[pos++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) return false;
            if (c == '\\') {
                if (at_end()) return false;
                const char esc = text[pos++];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (at_end() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text[pos])))
                            return false;
                        ++pos;
                    }
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return false;
                }
            }
        }
        return false;  // unterminated
    }

    bool parse_number() {
        consume('-');
        if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        if (peek() == '0') {
            ++pos;
        } else {
            while (!at_end() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!at_end() && peek() == '.') {
            ++pos;
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!at_end() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!at_end() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!at_end() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }

    bool parse_value() {
        if (++depth > kMaxDepth) return false;
        skip_ws();
        if (at_end()) return false;
        bool ok;
        switch (peek()) {
            case '{': ok = parse_object(); break;
            case '[': ok = parse_array(); break;
            case '"': ok = parse_string(); break;
            case 't': ok = consume_literal("true"); break;
            case 'f': ok = consume_literal("false"); break;
            case 'n': ok = consume_literal("null"); break;
            default: ok = parse_number(); break;
        }
        --depth;
        return ok;
    }

    bool parse_object() {
        if (!consume('{')) return false;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
            skip_ws();
            if (!parse_string()) return false;
            skip_ws();
            if (!consume(':')) return false;
            if (!parse_value()) return false;
            skip_ws();
            if (consume('}')) return true;
            if (!consume(',')) return false;
        }
    }

    bool parse_array() {
        if (!consume('[')) return false;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
            if (!parse_value()) return false;
            skip_ws();
            if (consume(']')) return true;
            if (!consume(',')) return false;
        }
    }
};

/// DOM-building sibling of JsonCursor. Kept separate so the validator
/// stays allocation-free; the DOM path is only used on small /top
/// payloads by `dynaddr top`.
struct JsonBuilder {
    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;

    static constexpr int kMaxDepth = 256;

    bool at_end() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void skip_ws() {
        while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                             text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c) {
        if (at_end() || text[pos] != c) return false;
        ++pos;
        return true;
    }

    static void append_utf8(std::string& out, unsigned code) {
        if (code < 0x80) {
            out.push_back(char(code));
        } else if (code < 0x800) {
            out.push_back(char(0xC0 | (code >> 6)));
            out.push_back(char(0x80 | (code & 0x3F)));
        } else {
            out.push_back(char(0xE0 | (code >> 12)));
            out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(char(0x80 | (code & 0x3F)));
        }
    }

    bool parse_string(std::string& out) {
        if (!consume('"')) return false;
        while (!at_end()) {
            const char c = text[pos++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) return false;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (at_end()) return false;
            const char esc = text[pos++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (at_end()) return false;
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
                        else return false;
                    }
                    append_utf8(out, code);
                    break;
                }
                default: return false;
            }
        }
        return false;  // unterminated
    }

    bool parse_number(double& out) {
        const std::size_t start = pos;
        JsonCursor cursor{text, pos};
        if (!cursor.parse_number()) return false;
        pos = cursor.pos;
        out = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                          nullptr);
        return true;
    }

    bool parse_value(JsonValue& out) {
        if (++depth > kMaxDepth) return false;
        skip_ws();
        if (at_end()) return false;
        bool ok;
        switch (peek()) {
            case '{': out.type = JsonValue::Type::Object; ok = parse_object(out); break;
            case '[': out.type = JsonValue::Type::Array; ok = parse_array(out); break;
            case '"': out.type = JsonValue::Type::String; ok = parse_string(out.string); break;
            case 't':
                out.type = JsonValue::Type::Bool;
                out.boolean = true;
                ok = consume_literal("true");
                break;
            case 'f':
                out.type = JsonValue::Type::Bool;
                ok = consume_literal("false");
                break;
            case 'n': ok = consume_literal("null"); break;
            default:
                out.type = JsonValue::Type::Number;
                ok = parse_number(out.number);
                break;
        }
        --depth;
        return ok;
    }

    bool consume_literal(std::string_view word) {
        if (text.substr(pos, word.size()) != word) return false;
        pos += word.size();
        return true;
    }

    bool parse_object(JsonValue& out) {
        if (!consume('{')) return false;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (!consume(':')) return false;
            JsonValue value;
            if (!parse_value(value)) return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (consume('}')) return true;
            if (!consume(',')) return false;
        }
    }

    bool parse_array(JsonValue& out) {
        if (!consume('[')) return false;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
            JsonValue value;
            if (!parse_value(value)) return false;
            out.array.push_back(std::move(value));
            skip_ws();
            if (consume(']')) return true;
            if (!consume(',')) return false;
        }
    }
};

}  // namespace

bool json_valid(std::string_view text) {
    JsonCursor cursor{text};
    if (!cursor.parse_value()) return false;
    cursor.skip_ws();
    return cursor.at_end();
}

std::optional<JsonValue> json_parse(std::string_view text) {
    JsonBuilder builder{text};
    JsonValue value;
    if (!builder.parse_value(value)) return std::nullopt;
    builder.skip_ws();
    if (!builder.at_end()) return std::nullopt;
    return value;
}

}  // namespace dynaddr::obs

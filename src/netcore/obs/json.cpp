#include "netcore/obs/json.hpp"

#include <cctype>
#include <cstddef>

namespace dynaddr::obs {

namespace {

/// Recursive-descent cursor over the input. Each parse_* consumes one
/// grammar production and returns false on the first violation.
struct JsonCursor {
    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;

    static constexpr int kMaxDepth = 256;

    bool at_end() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void skip_ws() {
        while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                             text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c) {
        if (at_end() || text[pos] != c) return false;
        ++pos;
        return true;
    }

    bool consume_literal(std::string_view word) {
        if (text.substr(pos, word.size()) != word) return false;
        pos += word.size();
        return true;
    }

    bool parse_string() {
        if (!consume('"')) return false;
        while (!at_end()) {
            const char c = text[pos++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) return false;
            if (c == '\\') {
                if (at_end()) return false;
                const char esc = text[pos++];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (at_end() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text[pos])))
                            return false;
                        ++pos;
                    }
                } else if (esc != '"' && esc != '\\' && esc != '/' &&
                           esc != 'b' && esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return false;
                }
            }
        }
        return false;  // unterminated
    }

    bool parse_number() {
        consume('-');
        if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        if (peek() == '0') {
            ++pos;
        } else {
            while (!at_end() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!at_end() && peek() == '.') {
            ++pos;
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!at_end() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!at_end() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!at_end() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }

    bool parse_value() {
        if (++depth > kMaxDepth) return false;
        skip_ws();
        if (at_end()) return false;
        bool ok;
        switch (peek()) {
            case '{': ok = parse_object(); break;
            case '[': ok = parse_array(); break;
            case '"': ok = parse_string(); break;
            case 't': ok = consume_literal("true"); break;
            case 'f': ok = consume_literal("false"); break;
            case 'n': ok = consume_literal("null"); break;
            default: ok = parse_number(); break;
        }
        --depth;
        return ok;
    }

    bool parse_object() {
        if (!consume('{')) return false;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
            skip_ws();
            if (!parse_string()) return false;
            skip_ws();
            if (!consume(':')) return false;
            if (!parse_value()) return false;
            skip_ws();
            if (consume('}')) return true;
            if (!consume(',')) return false;
        }
    }

    bool parse_array() {
        if (!consume('[')) return false;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
            if (!parse_value()) return false;
            skip_ws();
            if (consume(']')) return true;
            if (!consume(',')) return false;
        }
    }
};

}  // namespace

bool json_valid(std::string_view text) {
    JsonCursor cursor{text};
    if (!cursor.parse_value()) return false;
    cursor.skip_ws();
    return cursor.at_end();
}

}  // namespace dynaddr::obs

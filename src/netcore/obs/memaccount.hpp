#pragma once

// Memory accounting: the capacity half of the observability layer. Every
// owning subsystem (timer-wheel slabs, pool bitmaps, lease tables,
// DIR-24-8 tables, streaming-pipeline buffers, DAB2 writer blocks,
// flight-recorder rings) registers a MemSource and *publishes* its byte
// and item figures into it at its own mutation points.
//
// Ownership rule (the one that keeps concurrent /top polling TSan-clean):
// the registry never reaches into a subsystem. A MemSource is a pair of
// relaxed atomics; the owner stores into them on its own thread, amortized
// at whatever cadence its hot path can afford (capacity changes, every
// N ops, phase boundaries), and readers — the stats server, --mem-report,
// the mem.* gauges — only ever load those atomics. Reading a vector's
// capacity from another thread while the owner grows it would be a data
// race; publishing the computed figure through an atomic is not. The
// price is bounded staleness (a source lags its owner by at most one
// publish interval), which a capacity report can afford.
//
// The report is two-sided on purpose: accounted bytes (sum of sources)
// next to process RSS and peak RSS from /proc/self/statm + getrusage, with
// the residual = RSS − accounted reported explicitly. Un-accounted growth
// shows up as a growing residual instead of hiding — the instrument every
// scaling PR reads before trusting its "peak RSS bounded" claim.
//
// Pure observer: registration and publishing touch no simulation state and
// draw no randomness; LiveObsDeterminism covers it.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dynaddr::obs {

/// Live figures for one accounted subsystem instance. Owned by the
/// registry; the owning subsystem holds it through a MemRegistration.
class MemSource {
public:
    /// The owner's publish point: two relaxed stores.
    void report(std::uint64_t bytes, std::uint64_t items = 0) {
        bytes_.store(bytes, std::memory_order_relaxed);
        items_.store(items, std::memory_order_relaxed);
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::uint64_t bytes() const {
        return bytes_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t items() const {
        return items_.load(std::memory_order_relaxed);
    }

    /// Construction goes through MemRegistration; the registry owns every
    /// instance.
    explicit MemSource(std::string name) : name_(std::move(name)) {}

private:
    std::string name_;
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> items_{0};
};

/// RAII registration: constructing adds a source under `name` (several
/// instances may share a name — a scenario has many pools — and aggregate
/// in the report), destroying removes it. Move-only; a default-constructed
/// registration is empty and report() on it is a no-op, so subsystems can
/// hold one unconditionally.
class MemRegistration {
public:
    MemRegistration() = default;
    explicit MemRegistration(std::string_view name);
    ~MemRegistration();
    MemRegistration(MemRegistration&& other) noexcept
        : source_(other.source_) {
        other.source_ = nullptr;
    }
    MemRegistration& operator=(MemRegistration&& other) noexcept;
    MemRegistration(const MemRegistration&) = delete;
    MemRegistration& operator=(const MemRegistration&) = delete;

    void report(std::uint64_t bytes, std::uint64_t items = 0) {
        if (source_ != nullptr) source_->report(bytes, items);
    }
    [[nodiscard]] bool empty() const { return source_ == nullptr; }

private:
    MemSource* source_ = nullptr;
};

/// One aggregated row of the report (same-name sources summed).
struct MemSubsystem {
    std::string name;
    std::uint64_t bytes = 0;
    std::uint64_t items = 0;
    std::size_t sources = 0;  ///< live instances aggregated into this row
};

/// Accounted-vs-process view at one instant.
struct MemReport {
    std::vector<MemSubsystem> subsystems;     ///< sorted by bytes, descending
    std::uint64_t accounted_bytes = 0;        ///< sum over subsystems
    std::uint64_t process_rss_bytes = 0;      ///< /proc/self/statm resident
    std::uint64_t process_peak_rss_bytes = 0; ///< getrusage ru_maxrss
    /// process_rss_bytes − accounted_bytes: what no subsystem owns up to
    /// (allocator slack, code+stacks, raw dataset payloads, un-instrumented
    /// growth). Reported, never hidden.
    [[nodiscard]] std::int64_t residual_bytes() const {
        return std::int64_t(process_rss_bytes) - std::int64_t(accounted_bytes);
    }
};

/// Current resident set from /proc/self/statm (0 when unreadable).
[[nodiscard]] std::uint64_t process_rss_bytes();
/// Lifetime peak resident set from getrusage(RUSAGE_SELF).
[[nodiscard]] std::uint64_t process_peak_rss_bytes();

/// Snapshot of every live source plus the process figures.
[[nodiscard]] MemReport mem_report();

/// Pushes the report into the metrics registry as gauges:
/// `mem.<subsystem>.bytes` / `.items` per row, plus `mem.process.rss_bytes`,
/// `mem.process.peak_rss_bytes`, `mem.accounted_bytes`,
/// `mem.residual_bytes`. The stats server calls this before serving
/// /metrics and /top so scrapes always see fresh capacity gauges.
void publish_mem_gauges();

/// `{"accounted_bytes": ..., "process_rss_bytes": ..., ...,
///   "subsystems": [{"name", "bytes", "items", "sources"}, ...]}` —
/// the --mem-report artifact and the "memory" object of /top.
void write_mem_report_json(std::ostream& out, const MemReport& report);

/// Freezes mem_report() as the "final" snapshot. The scenario runner calls
/// this at the end of the plan, while every subsystem is still alive —
/// the instant --mem-report wants, since by the time the CLI writes its
/// outputs the RAII registrations have already been torn down.
void mem_capture_final();

/// The last mem_capture_final() snapshot, if one was taken this process.
[[nodiscard]] std::optional<MemReport> mem_final_report();

/// Writes the final snapshot (falling back to the live mem_report() when
/// none was captured) to `path` as JSON. Throws Error on open failure.
void write_mem_report_file(const std::string& path);

}  // namespace dynaddr::obs

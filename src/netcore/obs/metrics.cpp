#include "netcore/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

#include "netcore/error.hpp"

namespace dynaddr::obs {

namespace {

/// Registry of all metrics. Deques give stable addresses; the maps index
/// them by name. Constructed on first use and deliberately leaked: crash
/// dumps, exit hooks, and the stats server thread may all read metrics
/// during static destruction, when a destroyed registry would be a
/// use-after-free.
struct MetricsRegistry {
    static MetricsRegistry& instance() {
        static MetricsRegistry* registry = new MetricsRegistry;
        return *registry;
    }

    std::mutex mutex;
    std::deque<Counter> counters;
    std::deque<Gauge> gauges;
    std::deque<Histogram> histograms;
    std::unordered_map<std::string, Counter*> counters_by_name;
    std::unordered_map<std::string, Gauge*> gauges_by_name;
    std::unordered_map<std::string, Histogram*> histograms_by_name;
    std::set<std::string> blocks;
    /// Bumped (relaxed) on every registration so index caches can detect
    /// staleness without taking the mutex.
    std::atomic<std::uint64_t> generation{0};
};

/// Numbers must round-trip and stay valid JSON (no inf/nan literals).
void write_json_number(std::ostream& out, double value) {
    if (!std::isfinite(value)) {
        out << (value > 0 ? "1e308" : (value < 0 ? "-1e308" : "0"));
        return;
    }
    std::ostringstream text;
    text.precision(17);
    text << value;
    out << std::move(text).str();
}

void write_json_string(std::ostream& out, std::string_view s) {
    out << '"';
    for (char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out << buf;
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    std::sort(bounds_.begin(), bounds_.end());
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_nano_.fetch_add(std::llround(value * 1e9), std::memory_order_relaxed);
}

double Histogram::sum() const {
    return double(sum_nano_.load(std::memory_order_relaxed)) * 1e-9;
}

Counter& counter(std::string_view name) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    std::lock_guard lock(registry.mutex);
    std::string key(name);
    if (auto it = registry.counters_by_name.find(key);
        it != registry.counters_by_name.end())
        return *it->second;
    registry.counters.emplace_back();
    Counter& metric = registry.counters.back();
    registry.counters_by_name.emplace(std::move(key), &metric);
    registry.generation.fetch_add(1, std::memory_order_relaxed);
    return metric;
}

Gauge& gauge(std::string_view name) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    std::lock_guard lock(registry.mutex);
    std::string key(name);
    if (auto it = registry.gauges_by_name.find(key);
        it != registry.gauges_by_name.end())
        return *it->second;
    registry.gauges.emplace_back();
    Gauge& metric = registry.gauges.back();
    registry.gauges_by_name.emplace(std::move(key), &metric);
    registry.generation.fetch_add(1, std::memory_order_relaxed);
    return metric;
}

Histogram& histogram(std::string_view name, std::vector<double> bounds) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    std::lock_guard lock(registry.mutex);
    std::string key(name);
    if (auto it = registry.histograms_by_name.find(key);
        it != registry.histograms_by_name.end())
        return *it->second;
    registry.histograms.emplace_back(std::move(bounds));
    Histogram& metric = registry.histograms.back();
    registry.histograms_by_name.emplace(std::move(key), &metric);
    registry.generation.fetch_add(1, std::memory_order_relaxed);
    return metric;
}

Histogram& latency_histogram(std::string_view name) {
    // 1 µs .. 100 s in decades with a 1-3 split: enough resolution for
    // stage timings without per-histogram tuning.
    static const std::vector<double> kLatencyBounds = {
        1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
        1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0, 30.0, 100.0};
    return histogram(name, kLatencyBounds);
}

void metrics_block(std::string_view prefix) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    std::lock_guard lock(registry.mutex);
    registry.blocks.emplace(prefix);
}

MetricsSnapshot metrics_snapshot() {
    MetricsRegistry& registry = MetricsRegistry::instance();
    std::lock_guard lock(registry.mutex);
    MetricsSnapshot snapshot;
    for (const auto& [name, metric] : registry.counters_by_name)
        snapshot.counters.emplace(name, metric->value());
    for (const auto& [name, metric] : registry.gauges_by_name)
        snapshot.gauges.emplace(name, metric->value());
    for (const auto& [name, metric] : registry.histograms_by_name) {
        MetricsSnapshot::HistogramSample sample;
        sample.bounds = metric->bounds();
        sample.buckets.resize(sample.bounds.size() + 1);
        for (std::size_t i = 0; i < sample.buckets.size(); ++i)
            sample.buckets[i] = metric->bucket_count(i);
        sample.count = metric->count();
        sample.sum = metric->sum();
        snapshot.histograms.emplace(name, std::move(sample));
    }
    return snapshot;
}

MetricsIndex metrics_index() {
    MetricsRegistry& registry = MetricsRegistry::instance();
    std::lock_guard lock(registry.mutex);
    MetricsIndex index;
    index.counters.reserve(registry.counters_by_name.size());
    for (const auto& [name, metric] : registry.counters_by_name)
        index.counters.emplace_back(name, metric);
    index.gauges.reserve(registry.gauges_by_name.size());
    for (const auto& [name, metric] : registry.gauges_by_name)
        index.gauges.emplace_back(name, metric);
    std::sort(index.counters.begin(), index.counters.end());
    std::sort(index.gauges.begin(), index.gauges.end());
    return index;
}

std::uint64_t metrics_generation() {
    return MetricsRegistry::instance().generation.load(
        std::memory_order_relaxed);
}

void visit_metrics_for_crash_dump(
    void (*visit)(void* ctx, const char* name, const char* kind,
                  std::int64_t value),
    void* ctx) {
    // Deliberately lock-free: a crashed thread may hold the registry
    // mutex. Registration is static-init-heavy and rare afterwards, so
    // walking the maps read-only is a tolerable risk on the way down.
    MetricsRegistry& registry = MetricsRegistry::instance();
    for (const auto& [name, metric] : registry.counters_by_name)
        visit(ctx, name.c_str(), "counter", std::int64_t(metric->value()));
    for (const auto& [name, metric] : registry.gauges_by_name)
        visit(ctx, name.c_str(), "gauge", metric->value());
}

MetricsSnapshot metrics_diff(const MetricsSnapshot& after,
                             const MetricsSnapshot& before) {
    MetricsSnapshot diff;
    for (const auto& [name, value] : after.counters) {
        auto it = before.counters.find(name);
        diff.counters.emplace(
            name, it == before.counters.end() ? value : value - it->second);
    }
    diff.gauges = after.gauges;
    for (const auto& [name, sample] : after.histograms) {
        auto it = before.histograms.find(name);
        if (it == before.histograms.end() ||
            it->second.bounds != sample.bounds) {
            diff.histograms.emplace(name, sample);
            continue;
        }
        MetricsSnapshot::HistogramSample delta = sample;
        delta.count -= it->second.count;
        delta.sum -= it->second.sum;
        for (std::size_t i = 0; i < delta.buckets.size(); ++i)
            delta.buckets[i] -= it->second.buckets[i];
        diff.histograms.emplace(name, std::move(delta));
    }
    return diff;
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
    std::set<std::string> blocks;
    {
        MetricsRegistry& registry = MetricsRegistry::instance();
        std::lock_guard lock(registry.mutex);
        blocks = registry.blocks;
    }
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : snapshot.counters) {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        write_json_string(out, name);
        out << ": " << value;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : snapshot.gauges) {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        write_json_string(out, name);
        out << ": " << value;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, sample] : snapshot.histograms) {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        write_json_string(out, name);
        out << ": {\"count\": " << sample.count << ", \"sum\": ";
        write_json_number(out, sample.sum);
        out << ", \"bounds\": [";
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
            if (i) out << ", ";
            write_json_number(out, sample.bounds[i]);
        }
        out << "], \"buckets\": [";
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
            if (i) out << ", ";
            out << sample.buckets[i];
        }
        out << "]}";
    }
    out << (first ? "" : "\n  ") << "}";
    // Registered blocks re-export their counters as a named top-level
    // object, e.g. table2_funnel.analyzable -> "table2_funnel": {...}.
    for (const auto& block : blocks) {
        const std::string prefix = block + '.';
        out << ",\n  ";
        write_json_string(out, block);
        out << ": {";
        first = true;
        for (const auto& [name, value] : snapshot.counters) {
            if (name.rfind(prefix, 0) != 0) continue;
            out << (first ? "\n    " : ",\n    ");
            first = false;
            write_json_string(out, name.substr(prefix.size()));
            out << ": " << value;
        }
        out << (first ? "" : "\n  ") << "}";
    }
    out << "\n}\n";
}

void write_metrics_file(const std::string& path) {
    std::ofstream out(path);
    if (!out) throw Error("cannot open " + path + " for writing");
    const auto snapshot = metrics_snapshot();
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        write_metrics_csv(out, snapshot);
    else
        write_metrics_json(out, snapshot);
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
    out << "kind,name,value\n";
    for (const auto& [name, value] : snapshot.counters)
        out << "counter," << name << ',' << value << '\n';
    for (const auto& [name, value] : snapshot.gauges)
        out << "gauge," << name << ',' << value << '\n';
    for (const auto& [name, sample] : snapshot.histograms) {
        out << "histogram_count," << name << ',' << sample.count << '\n';
        out << "histogram_sum," << name << ',' << sample.sum << '\n';
    }
}

}  // namespace dynaddr::obs

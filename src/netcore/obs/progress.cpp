#include "netcore/obs/progress.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ostream>

#include "netcore/obs/metrics.hpp"

namespace dynaddr::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// All watermarks a publisher can touch are individual atomics; begin/end
/// plan also only store. Readers derive everything else. A torn multi-field
/// view across publishers is acceptable (each field is itself consistent,
/// and progress is advisory), which is why no lock is needed.
struct ProgressState {
    std::atomic<bool> active{false};
    std::atomic<std::int64_t> plan_begin_unix{0};
    std::atomic<std::int64_t> plan_end_unix{0};
    std::atomic<std::int64_t> sim_now_unix{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::int64_t> sealed_probe{-1};
    /// Clock::now() at begin_plan, as nanoseconds-since-clock-epoch.
    std::atomic<std::int64_t> wall_begin_ns{0};
    /// Wall duration frozen at end_plan (ns); -1 while the plan runs.
    std::atomic<std::int64_t> wall_final_ns{-1};
};

ProgressState& state() {
    static ProgressState s;
    return s;
}

std::int64_t wall_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

}  // namespace

void progress_begin_plan(net::TimePoint begin, net::TimePoint end) {
    auto& s = state();
    s.plan_begin_unix.store(begin.unix_seconds(), std::memory_order_relaxed);
    s.plan_end_unix.store(end.unix_seconds(), std::memory_order_relaxed);
    s.sim_now_unix.store(begin.unix_seconds(), std::memory_order_relaxed);
    s.events.store(0, std::memory_order_relaxed);
    s.sealed_probe.store(-1, std::memory_order_relaxed);
    s.wall_final_ns.store(-1, std::memory_order_relaxed);
    s.wall_begin_ns.store(wall_now_ns(), std::memory_order_relaxed);
    s.active.store(true, std::memory_order_release);
}

void progress_end_plan() {
    auto& s = state();
    const std::int64_t elapsed =
        wall_now_ns() - s.wall_begin_ns.load(std::memory_order_relaxed);
    s.wall_final_ns.store(elapsed, std::memory_order_relaxed);
    s.active.store(false, std::memory_order_release);
}

void progress_note_sim_time(net::TimePoint now) {
    state().sim_now_unix.store(now.unix_seconds(), std::memory_order_relaxed);
}

void progress_note_events(std::uint64_t executed_total) {
    state().events.store(executed_total, std::memory_order_relaxed);
}

void progress_note_sealed_probe(std::int64_t probe) {
    state().sealed_probe.store(probe, std::memory_order_relaxed);
}

ProgressSnapshot progress_snapshot() {
    auto& s = state();
    ProgressSnapshot snap;
    snap.plan_active = s.active.load(std::memory_order_acquire);
    snap.plan_begin =
        net::TimePoint(s.plan_begin_unix.load(std::memory_order_relaxed));
    snap.plan_end =
        net::TimePoint(s.plan_end_unix.load(std::memory_order_relaxed));
    snap.sim_now = net::TimePoint(s.sim_now_unix.load(std::memory_order_relaxed));
    snap.events_executed = s.events.load(std::memory_order_relaxed);
    snap.sealed_probe = s.sealed_probe.load(std::memory_order_relaxed);

    const std::int64_t final_ns = s.wall_final_ns.load(std::memory_order_relaxed);
    const std::int64_t begin_ns = s.wall_begin_ns.load(std::memory_order_relaxed);
    const std::int64_t elapsed_ns =
        final_ns >= 0 ? final_ns : (begin_ns > 0 ? wall_now_ns() - begin_ns : 0);
    snap.wall_elapsed_s = double(elapsed_ns) / 1e9;

    if (snap.wall_elapsed_s > 0) {
        snap.events_per_s = double(snap.events_executed) / snap.wall_elapsed_s;
        snap.sim_rate =
            double((snap.sim_now - snap.plan_begin).count()) / snap.wall_elapsed_s;
    }
    const std::int64_t horizon = (snap.plan_end - snap.plan_begin).count();
    if (horizon > 0) {
        snap.fraction_done = std::clamp(
            double((snap.sim_now - snap.plan_begin).count()) / double(horizon),
            0.0, 1.0);
        if (snap.sim_rate > 0)
            snap.eta_s =
                double((snap.plan_end - snap.sim_now).count()) / snap.sim_rate;
    }
    return snap;
}

void publish_progress_gauges() {
    const ProgressSnapshot snap = progress_snapshot();
    gauge("progress.plan_active").set(snap.plan_active ? 1 : 0);
    gauge("progress.sim_now_unix").set(snap.sim_now.unix_seconds());
    gauge("progress.plan_end_unix").set(snap.plan_end.unix_seconds());
    gauge("progress.events_executed").set(std::int64_t(snap.events_executed));
    gauge("progress.events_per_s").set(std::int64_t(snap.events_per_s));
    gauge("progress.sim_rate").set(std::int64_t(snap.sim_rate));
    gauge("progress.fraction_done_pct")
        .set(std::int64_t(snap.fraction_done * 100.0));
    gauge("progress.eta_s").set(std::int64_t(snap.eta_s));
    gauge("progress.sealed_probe").set(snap.sealed_probe);
}

void write_progress_json(std::ostream& out, const ProgressSnapshot& snap) {
    out << "{\"plan_active\": " << (snap.plan_active ? "true" : "false")
        << ", \"sim_now\": \"" << snap.sim_now.to_string()
        << "\", \"plan_begin\": \"" << snap.plan_begin.to_string()
        << "\", \"plan_end\": \"" << snap.plan_end.to_string()
        << "\", \"events_executed\": " << snap.events_executed
        << ", \"wall_elapsed_s\": " << snap.wall_elapsed_s
        << ", \"events_per_s\": " << snap.events_per_s
        << ", \"sim_rate\": " << snap.sim_rate
        << ", \"fraction_done\": " << snap.fraction_done
        << ", \"eta_s\": " << snap.eta_s
        << ", \"sealed_probe\": " << snap.sealed_probe << "}";
}

}  // namespace dynaddr::obs

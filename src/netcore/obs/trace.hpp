#pragma once

// Span tracing in Chrome trace_event format. Collection is off by
// default; when enabled (CLI --trace-out), RAII ObsSpan records complete
// ("ph":"X") events that chrome://tracing and https://ui.perfetto.dev
// render as a flame graph. Spans on the same thread nest naturally
// because Perfetto stacks overlapping events per tid.
//
//     { obs::ObsSpan span("pipeline.filter_probes"); ... }
//
// An optional Histogram target makes a span double as a latency sample
// even when tracing is disabled.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "netcore/obs/metrics.hpp"

namespace dynaddr::obs {

/// True when spans are being collected. One relaxed load.
[[nodiscard]] bool trace_enabled();

/// Turns collection on/off. Enabling resets the trace epoch so
/// timestamps start near zero.
void enable_trace();
void disable_trace();

/// Drops all collected events (does not change enabled state).
void clear_trace();

/// Number of events collected so far.
[[nodiscard]] std::size_t trace_event_count();

/// Writes {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome
/// trace_event JSON object form, loadable in Perfetto.
void write_trace_json(std::ostream& out);

/// Records one complete event directly (used by ObsSpan; exposed for
/// instrumentation that cannot use RAII scoping).
void record_complete_event(std::string_view name, std::string_view category,
                           std::uint64_t start_us, std::uint64_t duration_us);

/// Microseconds since the trace epoch (process start or last enable).
[[nodiscard]] std::uint64_t trace_now_us();

/// Crash-path iteration: visits the most recent `max_events` collected
/// events WITHOUT taking the collector mutex and without allocating.
/// Only for the flight recorder's crash dump, where the process is
/// already dying and a torn read beats a deadlock.
void visit_trace_for_crash_dump(
    std::size_t max_events,
    void (*visit)(void* ctx, const char* name, const char* category,
                  std::uint64_t start_us, std::uint64_t duration_us),
    void* ctx);

/// RAII span: measures its scope and, on destruction, records a trace
/// event (when tracing is enabled) and observes the duration into the
/// optional histogram (always).
class ObsSpan {
public:
    explicit ObsSpan(std::string name, std::string category = "dynaddr",
                     Histogram* latency = nullptr)
        : name_(std::move(name)),
          category_(std::move(category)),
          latency_(latency),
          active_(latency != nullptr || trace_enabled()),
          start_us_(active_ ? trace_now_us() : 0) {}

    ObsSpan(const ObsSpan&) = delete;
    ObsSpan& operator=(const ObsSpan&) = delete;

    ~ObsSpan() {
        if (!active_) return;
        const std::uint64_t end_us = trace_now_us();
        const std::uint64_t duration = end_us - start_us_;
        if (latency_ != nullptr) latency_->observe(double(duration) * 1e-6);
        if (trace_enabled())
            record_complete_event(name_, category_, start_us_, duration);
    }

private:
    std::string name_;
    std::string category_;
    Histogram* latency_;
    bool active_;
    std::uint64_t start_us_;
};

}  // namespace dynaddr::obs

#pragma once

// Embedded live-stats endpoint: a minimal HTTP/1.0 server (own socket
// code, loopback only, no dependencies) that serves the observability
// state of a running process:
//
//   GET /metrics  — Prometheus text exposition format (version 0.0.4)
//   GET /series   — the time-series recorder's ring buffer as JSON
//   GET /top      — capacity + progress JSON (memory report, sim-time
//                   watermark, events/s, ETA) for `dynaddr top`
//   GET /healthz  — "ok" plus build identity (git SHA, build type,
//                   compiler) and process uptime
//
// Non-GET requests get 405. The server runs on its own thread and is a
// pure observer: request handling reads only the metrics registry
// (relaxed atomics under the registry mutex), the series recorder's ring
// (its own mutex), and the mem/progress watermarks (owner-published
// atomics); it never touches simulation state, so polling cannot perturb
// determinism (LiveObsDeterminism proves byte-identical analysis output
// while being polled). Off unless constructed — the CLI gates it on
// --stats-port.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <thread>

#include "netcore/obs/metrics.hpp"

namespace dynaddr::obs {

/// Writes a snapshot in Prometheus text exposition format: dotted names
/// map to underscores, counters/gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
void write_metrics_prometheus(std::ostream& out,
                              const MetricsSnapshot& snapshot);

class StatsServer {
public:
    /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()),
    /// starts the serving thread. Throws Error when the bind fails.
    explicit StatsServer(std::uint16_t port);
    ~StatsServer();
    StatsServer(const StatsServer&) = delete;
    StatsServer& operator=(const StatsServer&) = delete;

    /// The actually bound port (useful with port 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Stops accepting and joins the serving thread. Idempotent; the
    /// destructor calls it.
    void stop();

    /// Requests served so far (any path).
    [[nodiscard]] std::uint64_t requests_served() const {
        return served_.load(std::memory_order_relaxed);
    }

private:
    void serve();
    void handle(int connection);

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> served_{0};
    std::thread thread_;
};

}  // namespace dynaddr::obs

#pragma once

// Crash flight recorder: per-thread lock-free rings retaining the last N
// log records *regardless of level* — while enabled, the log layer's
// capture floor is raised to Trace, records between the sink level and
// Trace are stored in the ring only (a relaxed store, never a sink
// write), and on a crash the rings are dumped together with a final
// metrics snapshot and the most recent trace spans to
// `dynaddr-crash-<pid>.json` before the signal is re-raised.
//
// Crash coverage:
//   - SIGSEGV / SIGABRT / SIGBUS via sigaction handlers that use an
//     async-signal-safe dump path only: no malloc, no stdio, no locks —
//     raw open/write with hand-rolled formatting. Registry structures
//     are walked read-only without their mutexes (the process is dying;
//     a torn value beats a deadlock).
//   - std::terminate via a terminate handler that also flushes the
//     emergency --metrics-out file (see below), then aborts into the
//     SIGABRT handler path (the dump-once flag prevents double dumps).
//
// Emergency metrics flush: independent of the flight recorder, the CLI
// registers its --metrics-out path here; an atexit hook and the
// terminate handler write the file if the normal success path didn't, so
// a run that throws never silently produces an empty/missing file.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netcore/obs/log.hpp"

namespace dynaddr::obs {

/// One captured record (the testing/export view; the in-ring layout is a
/// fixed-size POD).
struct FlightRecordView {
    std::uint64_t seq = 0;     ///< capture order within its thread (1-based)
    std::int64_t sim_time = 0; ///< unix seconds; INT64_MIN when none
    LogLevel level = LogLevel::Info;
    std::uint32_t tid = 0;     ///< small stable per-thread id
    std::string module;
    std::string message;       ///< truncated to the ring's record size
};

/// True while capture is on: one relaxed load (the per-record gate).
[[nodiscard]] bool flight_recorder_enabled();

/// Turns capture on with rings of `ring_size` records per thread and
/// raises the log capture floor to Trace. When `install_handlers` is set
/// (the CLI default), also installs the SIGSEGV/SIGABRT/SIGBUS handlers
/// and the std::terminate hook. Reconfiguring ring_size applies to rings
/// created afterwards; existing rings keep their size.
void enable_flight_recorder(std::size_t ring_size = 256,
                            bool install_handlers = true);

/// Stops capture and restores the log capture floor. Installed signal
/// handlers stay installed (they dump empty rings harmlessly).
void disable_flight_recorder();

/// The capture hot path (BM_FlightRecorderRecord measures exactly this):
/// a bounded copy of a fixed-size record into the calling thread's ring
/// plus one release store of the ring index. No locks, no allocation
/// after the thread's first record. Assumes the recorder is enabled.
void flight_record(LogLevel level, std::string_view module,
                   std::string_view message);

/// What LogModule::emit calls for every record that passed its enabled()
/// gate: captures when the recorder is on, one relaxed load otherwise.
inline void flight_capture(LogLevel level, std::string_view module,
                           std::string_view message) {
    if (flight_recorder_enabled()) flight_record(level, module, message);
}

/// Where crash dumps go; the file name is always
/// `dynaddr-crash-<pid>.json`. Default: the current working directory.
void set_crash_dump_dir(std::string dir);

/// The full path the next crash dump would be written to.
[[nodiscard]] std::string crash_dump_path();

/// Writes a crash dump (rings + metrics snapshot + last trace spans) to
/// `path` using the async-signal-safe writer. Returns false when the
/// file cannot be opened. Exposed so tests can validate the dump JSON
/// without crashing; the signal handlers call the same code.
bool write_crash_dump(const char* path, const char* reason);

/// Copies every thread's ring, oldest record first per thread, sorted by
/// (seq, tid) — exact order within a thread, approximate across threads
/// (exact global ordering would need an atomic shared by every capture,
/// which the hot-path budget rules out). Test/export path (takes the
/// ring registry lock; not signal-safe).
[[nodiscard]] std::vector<FlightRecordView> flight_records();

/// Drops all captured records (rings stay allocated).
void clear_flight_records();

// -- emergency metrics flush (satellite of the crash path) ----------------

/// Registers `path` to be written by write_metrics_file() from atexit /
/// std::terminate if the normal output path never ran. Empty clears.
void set_emergency_metrics_path(std::string path);

/// Marks the normal --metrics-out write as done, disarming the hooks.
void mark_metrics_written();

}  // namespace dynaddr::obs

#pragma once

// Process-wide metrics registry: lock-free counters, gauges and
// fixed-bucket latency histograms, registered by dotted name
// (`subsystem.name`). The hot path is a single relaxed atomic op on a
// cached reference; registration (a mutex + map lookup) happens once per
// call site, typically during static initialization:
//
//     namespace { struct M {
//         obs::Counter& fired = obs::counter("sim.wheel.fired");
//     } metrics; }
//     ...
//     metrics.fired.inc();
//
// Snapshots are value copies usable for before/after diffing; JSON/CSV
// export orders names lexicographically so output is deterministic.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dynaddr::obs {

/// Monotonic event counter. inc() is one relaxed fetch_add.
class Counter {
public:
    void inc(std::uint64_t n = 1) {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Signed instantaneous value (occupancy, free count, queue depth).
class Gauge {
public:
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
    [[nodiscard]] std::int64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds, with an
/// implicit +inf bucket at the end. observe() is a linear bound scan (the
/// bucket count is small) plus one relaxed add.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const;

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
    std::atomic<std::uint64_t> count_{0};
    /// Sum as fixed-point nanounits so fetch_add stays integral (portable
    /// lock-free; atomic<double> RMW can fall back to locks).
    std::atomic<std::int64_t> sum_nano_{0};
};

/// Get-or-create registry accessors. References stay valid for the
/// process lifetime. For histogram(), `bounds` is honoured only on first
/// registration of a name.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> bounds);

/// Histogram with default latency buckets (1 µs .. 100 s, exponential) —
/// the stage-timing shape every ObsSpan consumer wants.
Histogram& latency_histogram(std::string_view name);

/// Registers a block prefix: counters named `<prefix>.x` are additionally
/// grouped into a top-level `"prefix": {"x": n, ...}` object in the JSON
/// export (e.g. the pipeline's `table2_funnel`).
void metrics_block(std::string_view prefix);

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
    struct HistogramSample {
        std::vector<double> bounds;
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;
    };
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSample> histograms;
};

[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// Name-sorted stable pointers to every registered counter and gauge.
/// Metric objects live for the process lifetime, so a cached index stays
/// valid; re-fetch when metrics_generation() changes. This is the cheap
/// read path the time-series recorder ticks on — no per-tick map copies.
struct MetricsIndex {
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
};

[[nodiscard]] MetricsIndex metrics_index();

/// Bumped on every counter/gauge/histogram registration.
[[nodiscard]] std::uint64_t metrics_generation();

/// Writes a snapshot to `path`, choosing CSV for a ".csv" suffix and JSON
/// otherwise (the --metrics-out convention). Throws Error when the file
/// cannot be opened.
void write_metrics_file(const std::string& path);

/// Crash-path iteration: visits every counter and gauge WITHOUT taking the
/// registry mutex and without allocating (kind is "counter" or "gauge").
/// Only safe when registration has quiesced or the process is already
/// dying — used by the flight recorder's signal-handler dump.
void visit_metrics_for_crash_dump(
    void (*visit)(void* ctx, const char* name, const char* kind,
                  std::int64_t value),
    void* ctx);

/// after − before, per name: counters and histogram counts subtract
/// (names only in `after` keep their value); gauges keep `after`'s value.
[[nodiscard]] MetricsSnapshot metrics_diff(const MetricsSnapshot& after,
                                           const MetricsSnapshot& before);

/// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...},
/// "<block>": {...} per metrics_block prefix}. Keys sorted.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// CSV: kind,name,value (histograms flatten to count/sum rows).
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot);

/// RAII wall-clock timer: observes elapsed seconds into a histogram.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& target)
        : target_(&target), start_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        target_->observe(std::chrono::duration<double>(elapsed).count());
    }

private:
    Histogram* target_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace dynaddr::obs

#include "netcore/obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <vector>

#include "netcore/obs/memaccount.hpp"

#include <fcntl.h>
#include <unistd.h>

#include "netcore/obs/metrics.hpp"
#include "netcore/obs/trace.hpp"

namespace dynaddr::obs {

namespace {

constexpr std::size_t kModuleBytes = 16;
constexpr std::size_t kMessageBytes = 164;
constexpr std::size_t kMaxRings = 256;
constexpr std::size_t kCrashSpans = 64;

/// Fixed-size in-ring record. seq is not stored: slot k of a ring whose
/// write index is n holds record number n - live + offset, reconstructed
/// at dump time, which keeps the hot path one field shorter.
struct FlightRecord {
    std::int64_t sim_time;
    std::int32_t level;
    char module[kModuleBytes];
    char message[kMessageBytes];
};

struct ThreadRing {
    ThreadRing(std::size_t capacity, std::uint32_t tid)
        : records(capacity), mask(capacity - 1), tid(tid) {}

    std::vector<FlightRecord> records;  ///< capacity is a power of two
    std::size_t mask;
    std::uint32_t tid;
    /// Total records ever written. Release store after the slot is
    /// filled; acquire loads on the copy path see completed records.
    std::atomic<std::uint64_t> next{0};
};

struct FlightState {
    std::atomic<bool> enabled{false};
    std::atomic<std::size_t> ring_size{256};

    std::mutex mutex;  ///< ring registration and test accessors
    ThreadRing* rings[kMaxRings] = {};
    std::atomic<std::size_t> ring_count{0};

    /// Precomputed so the signal handler never concatenates strings.
    std::mutex path_mutex;
    std::string dump_dir = ".";
    char dump_path[512] = "";

    std::atomic<bool> dumped{false};
    bool handlers_installed = false;

    std::mutex emergency_mutex;
    std::string emergency_path;
    std::atomic<bool> metrics_written{false};
    std::atomic<bool> hooks_registered{false};
};

/// Leaked on purpose: signal handlers and atexit hooks may run during
/// static destruction, when a destroyed registry would be worse than a
/// small one-time leak.
FlightState& state() {
    static FlightState* instance = new FlightState;
    return *instance;
}

/// Rings are never freed — a thread may exit before the crash whose dump
/// should include its records.
ThreadRing* this_thread_ring() {
    thread_local ThreadRing* ring = nullptr;
    if (ring == nullptr) [[unlikely]] {
        FlightState& s = state();
        std::lock_guard lock(s.mutex);
        const std::size_t index = s.ring_count.load(std::memory_order_relaxed);
        if (index >= kMaxRings) return nullptr;
        const std::size_t capacity =
            std::bit_ceil(std::max<std::size_t>(s.ring_size.load(), 2));
        ring = new ThreadRing(capacity, std::uint32_t(index));
        s.rings[index] = ring;
        s.ring_count.store(index + 1, std::memory_order_release);
        // Capacity accounting: rings are allocated here and never freed,
        // so creation is the only point ring memory can change. The
        // registration leaks with the rings — by design, the figure stays
        // visible for the life of the process.
        static MemRegistration* mem =
            new MemRegistration("obs.flight_recorder");
        std::uint64_t bytes = 0;
        for (std::size_t i = 0; i <= index; ++i)
            bytes += sizeof(ThreadRing) +
                     s.rings[i]->records.capacity() * sizeof(FlightRecord);
        mem->report(bytes, index + 1);
    }
    return ring;
}

void copy_bounded(char* dst, std::size_t cap, std::string_view src) {
    const std::size_t n = std::min(src.size(), cap - 1);
    // Inlined 8-byte chunks: libc memcpy's runtime-size dispatch costs
    // more than the whole copy at these sizes (measured 3-4x on the CI
    // host), and this sits on the per-record hot path.
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t word;
        __builtin_memcpy(&word, src.data() + i, 8);
        __builtin_memcpy(dst + i, &word, 8);
    }
    for (; i < n; ++i) dst[i] = src[i];
    dst[n] = '\0';
}

// -- async-signal-safe JSON writer ----------------------------------------

/// Buffered fd writer using only write(2): no stdio, no allocation.
struct SafeWriter {
    int fd;
    std::size_t len = 0;
    char buf[4096];

    void flush() {
        std::size_t done = 0;
        while (done < len) {
            const ssize_t n = ::write(fd, buf + done, len - done);
            if (n <= 0) break;
            done += std::size_t(n);
        }
        len = 0;
    }

    void put(char c) {
        if (len == sizeof buf) flush();
        buf[len++] = c;
    }

    void raw(const char* s) {
        while (*s != '\0') put(*s++);
    }

    void num(std::int64_t v) {
        char digits[24];
        std::size_t n = 0;
        std::uint64_t u =
            v < 0 ? ~std::uint64_t(v) + 1 : std::uint64_t(v);
        do {
            digits[n++] = char('0' + u % 10);
            u /= 10;
        } while (u != 0);
        if (v < 0) put('-');
        while (n > 0) put(digits[--n]);
    }

    void quoted(const char* s) {
        static const char* hex = "0123456789abcdef";
        put('"');
        for (; *s != '\0'; ++s) {
            const unsigned char c = static_cast<unsigned char>(*s);
            if (c == '"' || c == '\\') {
                put('\\');
                put(char(c));
            } else if (c < 0x20) {
                raw("\\u00");
                put(hex[c >> 4]);
                put(hex[c & 0xf]);
            } else {
                put(char(c));
            }
        }
        put('"');
    }
};

struct VisitCtx {
    SafeWriter* writer;
    bool first;
};

void metrics_visitor(void* ctx, const char* name, const char* kind,
                     std::int64_t value) {
    auto* v = static_cast<VisitCtx*>(ctx);
    SafeWriter& w = *v->writer;
    if (!v->first) w.raw(",\n");
    v->first = false;
    w.raw("    {\"name\": ");
    w.quoted(name);
    w.raw(", \"kind\": ");
    w.quoted(kind);
    w.raw(", \"value\": ");
    w.num(value);
    w.put('}');
}

void trace_visitor(void* ctx, const char* name, const char* category,
                   std::uint64_t start_us, std::uint64_t duration_us) {
    auto* v = static_cast<VisitCtx*>(ctx);
    SafeWriter& w = *v->writer;
    if (!v->first) w.raw(",\n");
    v->first = false;
    w.raw("    {\"name\": ");
    w.quoted(name);
    w.raw(", \"cat\": ");
    w.quoted(category);
    w.raw(", \"ts_us\": ");
    w.num(std::int64_t(start_us));
    w.raw(", \"dur_us\": ");
    w.num(std::int64_t(duration_us));
    w.put('}');
}

void recompute_dump_path_locked(FlightState& s) {
    std::string path = s.dump_dir;
    if (!path.empty() && path.back() != '/') path += '/';
    path += "dynaddr-crash-";
    path += std::to_string(::getpid());
    path += ".json";
    copy_bounded(s.dump_path, sizeof s.dump_path, path);
}

void flush_emergency_metrics() {
    FlightState& s = state();
    std::string path;
    {
        std::lock_guard lock(s.emergency_mutex);
        path = s.emergency_path;
    }
    if (path.empty()) return;
    if (s.metrics_written.exchange(true)) return;
    try {
        write_metrics_file(path);
    } catch (...) {
        // An emergency hook must never throw out of exit/terminate.
    }
}

void dump_once(const char* reason) {
    FlightState& s = state();
    if (!s.enabled.load(std::memory_order_relaxed)) return;
    if (s.dumped.exchange(true)) return;
    write_crash_dump(s.dump_path, reason);
}

void crash_signal_handler(int signo) {
    const char* reason = signo == SIGSEGV  ? "SIGSEGV"
                         : signo == SIGABRT ? "SIGABRT"
                         : signo == SIGBUS  ? "SIGBUS"
                                            : "signal";
    dump_once(reason);
    // SA_RESETHAND restored the default disposition before we ran; the
    // re-raise terminates with the original signal's exit status.
    ::raise(signo);
}

[[noreturn]] void terminate_hook() {
    flush_emergency_metrics();
    dump_once("std::terminate");
    // abort() raises SIGABRT; dumped is already set, so the signal
    // handler (when installed) does not dump a second time.
    std::abort();
}

void register_exit_hooks() {
    FlightState& s = state();
    if (s.hooks_registered.exchange(true)) return;
    std::set_terminate(&terminate_hook);
    std::atexit(&flush_emergency_metrics);
}

}  // namespace

bool flight_recorder_enabled() {
    return state().enabled.load(std::memory_order_relaxed);
}

void enable_flight_recorder(std::size_t ring_size, bool install_handlers) {
    FlightState& s = state();
    s.ring_size.store(std::max<std::size_t>(ring_size, 2));
    {
        std::lock_guard lock(s.path_mutex);
        recompute_dump_path_locked(s);
    }
    if (install_handlers) {
        std::lock_guard lock(s.mutex);
        if (!s.handlers_installed) {
            s.handlers_installed = true;
            struct sigaction action;
            std::memset(&action, 0, sizeof action);
            action.sa_handler = &crash_signal_handler;
            action.sa_flags = SA_RESETHAND;
            sigemptyset(&action.sa_mask);
            ::sigaction(SIGSEGV, &action, nullptr);
            ::sigaction(SIGABRT, &action, nullptr);
            ::sigaction(SIGBUS, &action, nullptr);
        }
        register_exit_hooks();
    }
    s.enabled.store(true, std::memory_order_relaxed);
    set_capture_floor(LogLevel::Trace);
}

void disable_flight_recorder() {
    state().enabled.store(false, std::memory_order_relaxed);
    set_capture_floor(LogLevel::Off);
}

void flight_record(LogLevel level, std::string_view module,
                   std::string_view message) {
    ThreadRing* ring = this_thread_ring();
    if (ring == nullptr) [[unlikely]] return;
    const std::uint64_t n = ring->next.load(std::memory_order_relaxed);
    FlightRecord& record = ring->records[std::size_t(n) & ring->mask];
    record.sim_time = current_sim_unix_seconds_or_min();
    record.level = std::int32_t(level);
    copy_bounded(record.module, kModuleBytes, module);
    copy_bounded(record.message, kMessageBytes, message);
    ring->next.store(n + 1, std::memory_order_release);
}

void set_crash_dump_dir(std::string dir) {
    FlightState& s = state();
    std::lock_guard lock(s.path_mutex);
    s.dump_dir = dir.empty() ? "." : std::move(dir);
    recompute_dump_path_locked(s);
}

std::string crash_dump_path() {
    FlightState& s = state();
    std::lock_guard lock(s.path_mutex);
    if (s.dump_path[0] == '\0') recompute_dump_path_locked(s);
    return s.dump_path;
}

bool write_crash_dump(const char* path, const char* reason) {
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    FlightState& s = state();
    SafeWriter w{fd};
    w.raw("{\n  \"reason\": ");
    w.quoted(reason);
    w.raw(",\n  \"pid\": ");
    w.num(::getpid());
    w.raw(",\n  \"records\": [\n");
    bool first = true;
    const std::size_t ring_count =
        s.ring_count.load(std::memory_order_acquire);
    for (std::size_t r = 0; r < ring_count; ++r) {
        const ThreadRing* ring = s.rings[r];
        if (ring == nullptr) continue;
        const std::uint64_t n = ring->next.load(std::memory_order_acquire);
        const std::uint64_t capacity = ring->records.size();
        const std::uint64_t from = n > capacity ? n - capacity : 0;
        for (std::uint64_t k = from; k < n; ++k) {
            const FlightRecord& record =
                ring->records[std::size_t(k) & ring->mask];
            if (!first) w.raw(",\n");
            first = false;
            w.raw("    {\"seq\": ");
            w.num(std::int64_t(k + 1));
            w.raw(", \"tid\": ");
            w.num(ring->tid);
            w.raw(", \"sim_time\": ");
            if (record.sim_time == INT64_MIN)
                w.raw("null");
            else
                w.num(record.sim_time);
            w.raw(", \"level\": ");
            w.quoted(level_name(LogLevel(record.level)));
            w.raw(", \"module\": ");
            w.quoted(record.module);
            w.raw(", \"message\": ");
            w.quoted(record.message);
            w.put('}');
        }
    }
    w.raw("\n  ],\n  \"metrics\": [\n");
    VisitCtx metrics_ctx{&w, true};
    visit_metrics_for_crash_dump(&metrics_visitor, &metrics_ctx);
    w.raw("\n  ],\n  \"spans\": [\n");
    VisitCtx trace_ctx{&w, true};
    visit_trace_for_crash_dump(kCrashSpans, &trace_visitor, &trace_ctx);
    w.raw("\n  ]\n}\n");
    w.flush();
    ::close(fd);
    return true;
}

std::vector<FlightRecordView> flight_records() {
    FlightState& s = state();
    std::lock_guard lock(s.mutex);
    std::vector<FlightRecordView> out;
    const std::size_t ring_count =
        s.ring_count.load(std::memory_order_acquire);
    for (std::size_t r = 0; r < ring_count; ++r) {
        const ThreadRing* ring = s.rings[r];
        if (ring == nullptr) continue;
        const std::uint64_t n = ring->next.load(std::memory_order_acquire);
        const std::uint64_t capacity = ring->records.size();
        const std::uint64_t from = n > capacity ? n - capacity : 0;
        for (std::uint64_t k = from; k < n; ++k) {
            const FlightRecord& record =
                ring->records[std::size_t(k) & ring->mask];
            FlightRecordView view;
            view.seq = k + 1;
            view.sim_time = record.sim_time;
            view.level = LogLevel(record.level);
            view.tid = ring->tid;
            view.module = record.module;
            view.message = record.message;
            out.push_back(std::move(view));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecordView& a, const FlightRecordView& b) {
                  return a.seq != b.seq ? a.seq < b.seq : a.tid < b.tid;
              });
    return out;
}

void clear_flight_records() {
    FlightState& s = state();
    std::lock_guard lock(s.mutex);
    const std::size_t ring_count =
        s.ring_count.load(std::memory_order_acquire);
    for (std::size_t r = 0; r < ring_count; ++r)
        if (s.rings[r] != nullptr)
            s.rings[r]->next.store(0, std::memory_order_release);
}

void set_emergency_metrics_path(std::string path) {
    FlightState& s = state();
    {
        std::lock_guard lock(s.emergency_mutex);
        s.emergency_path = std::move(path);
    }
    s.metrics_written.store(false);
    register_exit_hooks();
}

void mark_metrics_written() { state().metrics_written.store(true); }

}  // namespace dynaddr::obs

#pragma once

// Time-series recorder: periodically snapshots the metrics registry so a
// run can be *watched*, not just summed up afterwards. The paper's
// phenomena (periodic renumbering modes, hour-of-day synchronization,
// outage bursts) are time-series phenomena, and — following Magnien et
// al.'s observation that sampling cadence changes what dynamics are
// visible — the cadence here is explicit and configurable, never implied.
//
// Cadence semantics:
//   - Inside a `sim::Simulation`, samples are taken every
//     `interval_seconds` of *simulated* time (the Simulation schedules a
//     periodic recorder tick via its event engine when the recorder is
//     enabled at construction time).
//   - Otherwise an optional wall-clock sampler thread ticks every
//     `interval_seconds` of real time. The wall sampler parks itself
//     while any simulation is attached so the two modes never interleave.
//
// Storage is delta-compressed: each sample records only the metrics that
// changed since the previous sample, as (metric-id, delta) for counters
// and (metric-id, value) for gauges. Samples live in a bounded ring; on
// overflow the two oldest samples are merged (counter deltas summed,
// gauges keep the later value) — drop-oldest with downsampling, so old
// history gets coarser but cumulative counts stay exact and memory never
// grows past `capacity` samples.
//
// The recorder is a pure observer: sampling reads relaxed atomics from
// the registry and touches no simulation state, so enabling it cannot
// perturb analysis output (LiveObsDeterminism asserts this).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dynaddr::obs {

struct SeriesConfig {
    /// Sampling cadence in seconds — simulated seconds when a simulation
    /// is attached, wall-clock seconds otherwise.
    double interval_seconds = 60.0;
    /// Ring capacity in samples (>= 2). Memory bound: capacity samples,
    /// each holding only the metrics that changed in its interval.
    std::size_t capacity = 8192;
};

/// One exported row: a (timestamp, metric) observation. Counters carry
/// the per-interval delta, the cumulative count since the recorder was
/// enabled, and the per-second rate over the interval; gauges carry only
/// their value.
struct SeriesRow {
    double t = 0.0;  ///< unix seconds (simulated or wall, by mode)
    std::string metric;
    bool is_counter = false;
    std::int64_t value = 0;       ///< counter delta / gauge level
    std::int64_t cumulative = 0;  ///< counters only: sum since enable
    double rate = 0.0;            ///< counters only: value / interval
};

class SeriesRecorder {
public:
    /// Process-wide instance (the CLI and the Simulation hook share it).
    static SeriesRecorder& instance();

    /// Replaces the configuration and clears any recorded samples.
    void configure(const SeriesConfig& config);
    [[nodiscard]] SeriesConfig config() const;

    /// Enabled is the master switch: a disabled recorder schedules no
    /// simulation ticks, the wall sampler skips, and sample() is a no-op,
    /// so the disabled cost is zero.
    void enable();
    void disable();
    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Takes one snapshot at `when_unix_seconds` (simulated or wall
    /// time). No-op when disabled. Thread-safe.
    void sample(double when_unix_seconds);

    /// Convenience: sample at current wall-clock time (used for the final
    /// flush before export so short runs still produce rows).
    void sample_now();

    /// Simulation attach bookkeeping (sim::Simulation ctor/dtor). While
    /// any simulation is attached the wall sampler stays parked.
    void sim_attached();
    void sim_detached();
    [[nodiscard]] bool sim_active() const;

    /// Starts/stops the wall-clock sampler thread. Idempotent.
    void start_wall_sampler();
    void stop_wall_sampler();

    /// Drops all samples and the delta baseline (config unchanged).
    void clear();

    [[nodiscard]] std::size_t sample_count() const;
    /// Total samples ever taken (survives ring downsampling merges).
    [[nodiscard]] std::uint64_t samples_taken() const;

    /// Expands the delta-compressed ring into rows, oldest first.
    [[nodiscard]] std::vector<SeriesRow> rows() const;

    /// {"interval_seconds": ..., "series": [{...}, ...]} — one object per
    /// (timestamp, metric) row.
    void write_json(std::ostream& out) const;
    /// Header t,time,kind,metric,value,cumulative,rate; one row per
    /// (timestamp, metric).
    void write_csv(std::ostream& out) const;

    /// As --metrics-out: ".csv" suffix selects CSV, anything else JSON.
    void write_file(const std::string& path) const;

private:
    SeriesRecorder() = default;
    struct Impl;
    [[nodiscard]] Impl& impl() const;

    std::atomic<bool> enabled_{false};
};

}  // namespace dynaddr::obs

#pragma once

// Minimal JSON syntax validator — no parse tree, no dependencies. Used
// by obs tests and the obs_smoke ctest to assert that the metrics and
// trace exports are well-formed without pulling in a JSON library.

#include <string_view>

namespace dynaddr::obs {

/// True when `text` is exactly one valid JSON value (RFC 8259 grammar,
/// surrounding whitespace allowed). Strings are checked for escape
/// validity; numbers for JSON number syntax.
[[nodiscard]] bool json_valid(std::string_view text);

}  // namespace dynaddr::obs

#pragma once

// Minimal JSON support — no dependencies. Two layers:
//   json_valid()  — syntax validator (no parse tree), used by obs tests
//                   and the obs_smoke ctest to assert exports are
//                   well-formed without pulling in a JSON library.
//   json_parse()  — tiny DOM for the consumers that must *read* obs JSON
//                   (the `dynaddr top` renderer polling /top). Built for
//                   small trusted payloads from our own endpoints, not as
//                   a general-purpose parser.

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dynaddr::obs {

/// True when `text` is exactly one valid JSON value (RFC 8259 grammar,
/// surrounding whitespace allowed). Strings are checked for escape
/// validity; numbers for JSON number syntax.
[[nodiscard]] bool json_valid(std::string_view text);

/// One parsed JSON value. Numbers are kept as double (the obs payloads
/// stay far below 2^53); object keys keep insertion order.
struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const {
        if (type != Type::Object) return nullptr;
        for (const auto& [name, value] : object)
            if (name == key) return &value;
        return nullptr;
    }
    /// Member's number, or `fallback` when absent / not a number.
    [[nodiscard]] double number_or(std::string_view key,
                                   double fallback) const {
        const JsonValue* value = find(key);
        return value != nullptr && value->type == Type::Number ? value->number
                                                               : fallback;
    }
    /// Member's string, or `fallback` when absent / not a string.
    [[nodiscard]] std::string string_or(std::string_view key,
                                        std::string_view fallback) const {
        const JsonValue* value = find(key);
        return value != nullptr && value->type == Type::String
                   ? value->string
                   : std::string(fallback);
    }
};

/// Parses exactly one JSON value (same grammar json_valid accepts);
/// nullopt on any syntax error. \uXXXX escapes decode to UTF-8.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace dynaddr::obs

#include "netcore/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

namespace dynaddr::obs {

namespace {

struct TraceEvent {
    std::string name;
    std::string category;
    std::uint64_t start_us;
    std::uint64_t duration_us;
    int tid;
};

struct TraceCollector {
    /// Leaked on purpose: the crash dump path may walk events during
    /// static destruction.
    static TraceCollector& instance() {
        static TraceCollector* collector = new TraceCollector;
        return *collector;
    }

    std::atomic<bool> enabled{false};
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    int next_tid = 0;
};

/// Small stable per-thread id: trace viewers group events by tid, and
/// std::thread::id does not render as a number.
int this_thread_tid() {
    thread_local int tid = [] {
        TraceCollector& collector = TraceCollector::instance();
        std::lock_guard lock(collector.mutex);
        return collector.next_tid++;
    }();
    return tid;
}

void write_json_escaped(std::ostream& out, std::string_view s) {
    for (char c : s) {
        if (c == '"' || c == '\\') out << '\\';
        out << c;
    }
}

}  // namespace

bool trace_enabled() {
    return TraceCollector::instance().enabled.load(std::memory_order_relaxed);
}

void enable_trace() {
    TraceCollector& collector = TraceCollector::instance();
    std::lock_guard lock(collector.mutex);
    collector.epoch = std::chrono::steady_clock::now();
    collector.enabled.store(true, std::memory_order_relaxed);
}

void disable_trace() {
    TraceCollector::instance().enabled.store(false, std::memory_order_relaxed);
}

void clear_trace() {
    TraceCollector& collector = TraceCollector::instance();
    std::lock_guard lock(collector.mutex);
    collector.events.clear();
}

std::size_t trace_event_count() {
    TraceCollector& collector = TraceCollector::instance();
    std::lock_guard lock(collector.mutex);
    return collector.events.size();
}

std::uint64_t trace_now_us() {
    TraceCollector& collector = TraceCollector::instance();
    const auto elapsed = std::chrono::steady_clock::now() - collector.epoch;
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void record_complete_event(std::string_view name, std::string_view category,
                           std::uint64_t start_us, std::uint64_t duration_us) {
    const int tid = this_thread_tid();
    TraceCollector& collector = TraceCollector::instance();
    std::lock_guard lock(collector.mutex);
    collector.events.push_back(TraceEvent{std::string(name),
                                          std::string(category), start_us,
                                          duration_us, tid});
}

void visit_trace_for_crash_dump(
    std::size_t max_events,
    void (*visit)(void* ctx, const char* name, const char* category,
                  std::uint64_t start_us, std::uint64_t duration_us),
    void* ctx) {
    TraceCollector& collector = TraceCollector::instance();
    const std::size_t count = collector.events.size();
    const std::size_t from = count > max_events ? count - max_events : 0;
    for (std::size_t i = from; i < count; ++i) {
        const TraceEvent& event = collector.events[i];
        visit(ctx, event.name.c_str(), event.category.c_str(),
              event.start_us, event.duration_us);
    }
}

void write_trace_json(std::ostream& out) {
    TraceCollector& collector = TraceCollector::instance();
    std::lock_guard lock(collector.mutex);
    out << "{\"traceEvents\": [";
    bool first = true;
    for (const TraceEvent& event : collector.events) {
        out << (first ? "\n" : ",\n") << "  {\"name\": \"";
        first = false;
        write_json_escaped(out, event.name);
        out << "\", \"cat\": \"";
        write_json_escaped(out, event.category);
        out << "\", \"ph\": \"X\", \"ts\": " << event.start_us
            << ", \"dur\": " << event.duration_us
            << ", \"pid\": 1, \"tid\": " << event.tid << "}";
    }
    out << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace dynaddr::obs

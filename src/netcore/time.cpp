#include "netcore/time.hpp"

#include <array>
#include <charconv>

#include "netcore/error.hpp"

namespace dynaddr::net {

namespace {

constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

constexpr bool is_leap(int y) {
    return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) {
    constexpr std::array<int, 12> lengths = {31, 28, 31, 30, 31, 30,
                                             31, 31, 30, 31, 30, 31};
    return m == 2 && is_leap(y) ? 29 : lengths[std::size_t(m - 1)];
}

// Days since 1970-01-01 for a civil date. Howard Hinnant's algorithm,
// valid across the full int range we care about.
constexpr std::int64_t days_from_civil(int y, int m, int d) {
    y -= m <= 2;
    const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);
    const unsigned doy =
        static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + std::int64_t(doe) - 719468;
}

// Inverse of days_from_civil.
constexpr CivilTime civil_from_days(std::int64_t z) {
    z += 719468;
    const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);
    const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const std::int64_t y = std::int64_t(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;
    const unsigned m = mp + (mp < 10 ? 3 : -9);
    CivilTime civil;
    civil.year = static_cast<int>(y + (m <= 2));
    civil.month = static_cast<int>(m);
    civil.day = static_cast<int>(d);
    return civil;
}

// Non-negative modulus.
constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t b) {
    return ((a % b) + b) % b;
}

constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
    return (a - floor_mod(a, b)) / b;
}

std::string two_digits(int v) {
    std::string out = std::to_string(v);
    return v < 10 ? "0" + out : out;
}

bool parse_int_field(std::string_view text, std::size_t pos, std::size_t len, int& out) {
    if (pos + len > text.size()) return false;
    auto field = text.substr(pos, len);
    auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), out);
    return ec == std::errc{} && ptr == field.data() + field.size();
}

}  // namespace

std::string Duration::to_string() const {
    std::int64_t s = seconds_;
    std::string out;
    if (s < 0) {
        out.push_back('-');
        s = -s;
    }
    const std::int64_t d = s / 86400;
    const std::int64_t h = (s / 3600) % 24;
    const std::int64_t m = (s / 60) % 60;
    const std::int64_t sec = s % 60;
    bool wrote = false;
    auto piece = [&](std::int64_t v, char suffix) {
        if (v == 0) return;
        if (wrote) out.push_back(' ');
        out += std::to_string(v);
        out.push_back(suffix);
        wrote = true;
    };
    piece(d, 'd');
    piece(h, 'h');
    piece(m, 'm');
    piece(sec, 's');
    if (!wrote) out += "0s";
    return out;
}

TimePoint TimePoint::from_civil(const CivilTime& civil) {
    if (civil.month < 1 || civil.month > 12)
        throw Error("bad month " + std::to_string(civil.month));
    if (civil.day < 1 || civil.day > days_in_month(civil.year, civil.month))
        throw Error("bad day " + std::to_string(civil.day));
    if (civil.hour < 0 || civil.hour > 23 || civil.minute < 0 || civil.minute > 59 ||
        civil.second < 0 || civil.second > 59)
        throw Error("bad time of day");
    const std::int64_t days = days_from_civil(civil.year, civil.month, civil.day);
    return TimePoint{days * 86400 + civil.hour * 3600 + civil.minute * 60 +
                     civil.second};
}

TimePoint TimePoint::from_date(int year, int month, int day) {
    return from_civil({year, month, day, 0, 0, 0});
}

std::optional<TimePoint> TimePoint::parse(std::string_view text) {
    // "YYYY-MM-DD HH:MM:SS" with 'T' accepted as the separator.
    if (text.size() != 19) return std::nullopt;
    if (text[4] != '-' || text[7] != '-' || (text[10] != ' ' && text[10] != 'T') ||
        text[13] != ':' || text[16] != ':')
        return std::nullopt;
    CivilTime civil;
    if (!parse_int_field(text, 0, 4, civil.year) ||
        !parse_int_field(text, 5, 2, civil.month) ||
        !parse_int_field(text, 8, 2, civil.day) ||
        !parse_int_field(text, 11, 2, civil.hour) ||
        !parse_int_field(text, 14, 2, civil.minute) ||
        !parse_int_field(text, 17, 2, civil.second))
        return std::nullopt;
    try {
        return from_civil(civil);
    } catch (const Error&) {
        return std::nullopt;
    }
}

CivilTime TimePoint::to_civil() const {
    const std::int64_t days = floor_div(seconds_, 86400);
    const std::int64_t in_day = floor_mod(seconds_, 86400);
    CivilTime civil = civil_from_days(days);
    civil.hour = static_cast<int>(in_day / 3600);
    civil.minute = static_cast<int>((in_day / 60) % 60);
    civil.second = static_cast<int>(in_day % 60);
    return civil;
}

int TimePoint::hour_of_day() const {
    return static_cast<int>(floor_mod(seconds_, 86400) / 3600);
}

int TimePoint::day_of_year() const {
    const CivilTime civil = to_civil();
    const std::int64_t year_start = days_from_civil(civil.year, 1, 1);
    return static_cast<int>(floor_div(seconds_, 86400) - year_start);
}

std::string TimePoint::to_string() const {
    const CivilTime c = to_civil();
    return std::to_string(c.year) + "-" + two_digits(c.month) + "-" +
           two_digits(c.day) + " " + two_digits(c.hour) + ":" +
           two_digits(c.minute) + ":" + two_digits(c.second);
}

std::string TimePoint::to_log_string() const {
    const CivilTime c = to_civil();
    std::string day = std::to_string(c.day);
    if (day.size() == 1) day = " " + day;
    return std::string(kMonthNames[std::size_t(c.month - 1)]) + " " + day + " " +
           two_digits(c.hour) + ":" + two_digits(c.minute) + ":" +
           two_digits(c.second);
}

}  // namespace dynaddr::net

#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace dynaddr::par {

/// Maps a configured thread count to an actual one: 0 means "use the
/// hardware" (std::thread::hardware_concurrency, at least 1), any other
/// value is taken literally. 1 disables worker threads entirely.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// A small fixed-size thread pool built for deterministic sharded
/// fan-out. The only primitive is `parallel_for_shards(n, fn)`: invoke
/// `fn(shard)` once for every shard in [0, n), distributed over the pool,
/// and block until all shards finished.
///
/// Determinism contract: the pool assigns shard *indices*, never data.
/// Callers make output order independent of scheduling by writing each
/// shard's result into a pre-sized slot (`slots[shard] = ...`) and
/// concatenating slots in shard order after the call returns — the merged
/// output is then bit-identical to a sequential run for any thread count.
///
/// A pool of size 1 spawns no workers; parallel_for_shards degenerates to
/// a plain loop on the calling thread. With N > 1 the calling thread
/// participates as one of the N executors, so a pool of size N uses N-1
/// background threads.
class ThreadPool {
public:
    /// `threads` is the executor count (callers usually pass
    /// resolve_threads(config)). Values < 1 are clamped to 1.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t thread_count() const;

    /// Runs fn(0) .. fn(shards-1), each exactly once, blocking until all
    /// complete. Shards may run on any executor in any order; fn must not
    /// touch another shard's slot. If one or more shards throw, the
    /// remaining shards still run and the first captured exception is
    /// rethrown here.
    void parallel_for_shards(std::size_t shards,
                             const std::function<void(std::size_t)>& fn);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// One-shot convenience: builds a transient pool of
/// resolve_threads(threads) executors and runs the sharded loop.
void parallel_for_shards(std::size_t shards, std::size_t threads,
                         const std::function<void(std::size_t)>& fn);

}  // namespace dynaddr::par

#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dynaddr::net {

/// An IPv4 address held as a host-order 32-bit integer value type.
///
/// The class is a regular value type: cheap to copy, totally ordered by
/// numeric value, hashable, and convertible to/from dotted-quad text.
class IPv4Address {
public:
    /// The unspecified address 0.0.0.0.
    constexpr IPv4Address() = default;

    /// Constructs from a host-order 32-bit value.
    constexpr explicit IPv4Address(std::uint32_t host_order) : value_(host_order) {}

    /// Constructs from four octets, most significant first: {a,b,c,d} is
    /// "a.b.c.d".
    constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                 (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

    /// Parses dotted-quad text ("192.0.2.7"). Returns std::nullopt on any
    /// deviation: empty fields, values > 255, trailing garbage, leading '+'.
    static std::optional<IPv4Address> parse(std::string_view text);

    /// Parses dotted-quad text, throwing ParseError on failure.
    static IPv4Address parse_or_throw(std::string_view text);

    /// Host-order numeric value.
    [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

    /// The n-th octet, 0 = most significant ("a" in a.b.c.d).
    [[nodiscard]] constexpr std::uint8_t octet(int n) const {
        return static_cast<std::uint8_t>(value_ >> (8 * (3 - n)));
    }

    /// Dotted-quad representation.
    [[nodiscard]] std::string to_string() const;

    /// True for RFC 1918 private space (10/8, 172.16/12, 192.168/16).
    [[nodiscard]] constexpr bool is_rfc1918() const {
        return (value_ >> 24) == 10 || (value_ >> 20) == 0xAC1 ||
               (value_ >> 16) == 0xC0A8;
    }

    /// True for 127/8.
    [[nodiscard]] constexpr bool is_loopback() const { return (value_ >> 24) == 127; }

    /// True for 0.0.0.0.
    [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }

    friend constexpr auto operator<=>(IPv4Address, IPv4Address) = default;

private:
    std::uint32_t value_ = 0;
};

/// A CIDR prefix: a base address plus a length in [0, 32]. The base is
/// canonicalized (host bits zeroed) on construction.
class IPv4Prefix {
public:
    /// 0.0.0.0/0.
    constexpr IPv4Prefix() = default;

    /// Builds `base/length`, zeroing host bits. Throws Error if length > 32.
    IPv4Prefix(IPv4Address base, int length);

    /// Parses "a.b.c.d/len". Returns std::nullopt on malformed input.
    static std::optional<IPv4Prefix> parse(std::string_view text);

    /// Parses "a.b.c.d/len", throwing ParseError on failure.
    static IPv4Prefix parse_or_throw(std::string_view text);

    /// The /16 enclosing `addr` (convenience for the paper's Table 7).
    static IPv4Prefix slash16_of(IPv4Address addr);

    /// The /8 enclosing `addr` (convenience for the paper's Table 7).
    static IPv4Prefix slash8_of(IPv4Address addr);

    [[nodiscard]] constexpr IPv4Address base() const { return base_; }
    [[nodiscard]] constexpr int length() const { return length_; }

    /// The network mask as a host-order value (e.g. /24 -> 0xFFFFFF00).
    [[nodiscard]] constexpr std::uint32_t mask() const {
        return length_ == 0 ? 0u : ~std::uint32_t{0} << (32 - length_);
    }

    /// True iff `addr` lies inside this prefix.
    [[nodiscard]] constexpr bool contains(IPv4Address addr) const {
        return (addr.value() & mask()) == base_.value();
    }

    /// True iff `other` is fully contained in this prefix (shorter or equal
    /// length and matching network bits).
    [[nodiscard]] constexpr bool contains(const IPv4Prefix& other) const {
        return length_ <= other.length_ && contains(other.base_);
    }

    /// Number of addresses spanned (2^(32-length)); 2^32 reported as
    /// 4294967296 via 64-bit return.
    [[nodiscard]] constexpr std::uint64_t size() const {
        return std::uint64_t{1} << (32 - length_);
    }

    /// First address of the prefix (== base()).
    [[nodiscard]] constexpr IPv4Address first() const { return base_; }

    /// Last address of the prefix.
    [[nodiscard]] constexpr IPv4Address last() const {
        return IPv4Address{base_.value() | ~mask()};
    }

    /// The address at zero-based offset `i`; throws Error when out of range.
    [[nodiscard]] IPv4Address at(std::uint64_t i) const;

    /// "a.b.c.d/len".
    [[nodiscard]] std::string to_string() const;

    friend constexpr auto operator<=>(const IPv4Prefix&, const IPv4Prefix&) = default;

private:
    IPv4Address base_{};
    int length_ = 0;
};

}  // namespace dynaddr::net

template <>
struct std::hash<dynaddr::net::IPv4Address> {
    std::size_t operator()(dynaddr::net::IPv4Address a) const noexcept {
        return std::hash<std::uint32_t>{}(a.value());
    }
};

template <>
struct std::hash<dynaddr::net::IPv4Prefix> {
    std::size_t operator()(const dynaddr::net::IPv4Prefix& p) const noexcept {
        return std::hash<std::uint64_t>{}(
            (std::uint64_t{p.base().value()} << 6) | std::uint64_t(p.length()));
    }
};

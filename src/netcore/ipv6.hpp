#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dynaddr::net {

/// An IPv6 address held as two host-order 64-bit halves.
///
/// Regular value type like IPv4Address. Formatting follows RFC 5952
/// (lowercase hex, longest zero run compressed with "::", ties broken by
/// the first run, no single-group compression).
class IPv6Address {
public:
    /// The unspecified address ::.
    constexpr IPv6Address() = default;

    /// Constructs from the high (network) and low (interface) 64 bits.
    constexpr IPv6Address(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

    /// Parses full or "::"-compressed textual form. Returns std::nullopt
    /// on malformed input (embedded-IPv4 tails are not supported).
    static std::optional<IPv6Address> parse(std::string_view text);

    /// Parses, throwing ParseError on failure.
    static IPv6Address parse_or_throw(std::string_view text);

    [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
    [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }

    /// The n-th 16-bit group, 0 = leftmost.
    [[nodiscard]] constexpr std::uint16_t group(int n) const {
        const std::uint64_t half = n < 4 ? hi_ : lo_;
        return std::uint16_t(half >> (16 * (3 - (n & 3))));
    }

    /// The enclosing /64 as an address with the interface id zeroed.
    [[nodiscard]] constexpr IPv6Address prefix64() const {
        return IPv6Address{hi_, 0};
    }

    /// The 64-bit interface identifier.
    [[nodiscard]] constexpr std::uint64_t interface_id() const { return lo_; }

    [[nodiscard]] constexpr bool is_unspecified() const {
        return hi_ == 0 && lo_ == 0;
    }

    /// RFC 5952 canonical text.
    [[nodiscard]] std::string to_string() const;

    friend constexpr auto operator<=>(IPv6Address, IPv6Address) = default;

private:
    std::uint64_t hi_ = 0;
    std::uint64_t lo_ = 0;
};

/// A CIDR prefix over IPv6, base canonicalized (host bits zeroed).
class IPv6Prefix {
public:
    /// ::/0.
    constexpr IPv6Prefix() = default;

    /// Builds base/length, zeroing host bits. Throws Error if length > 128.
    IPv6Prefix(IPv6Address base, int length);

    /// Parses "addr/len".
    static std::optional<IPv6Prefix> parse(std::string_view text);
    static IPv6Prefix parse_or_throw(std::string_view text);

    [[nodiscard]] constexpr IPv6Address base() const { return base_; }
    [[nodiscard]] constexpr int length() const { return length_; }

    [[nodiscard]] constexpr bool contains(IPv6Address addr) const {
        if (length_ == 0) return true;
        if (length_ <= 64) {
            const std::uint64_t mask =
                length_ == 64 ? ~std::uint64_t{0} : ~std::uint64_t{0} << (64 - length_);
            return (addr.hi() & mask) == base_.hi();
        }
        if (addr.hi() != base_.hi()) return false;
        const int low_bits = length_ - 64;
        const std::uint64_t mask =
            low_bits == 64 ? ~std::uint64_t{0} : ~std::uint64_t{0} << (64 - low_bits);
        return (addr.lo() & mask) == base_.lo();
    }

    [[nodiscard]] std::string to_string() const;

    friend constexpr auto operator<=>(const IPv6Prefix&, const IPv6Prefix&) = default;

private:
    IPv6Address base_{};
    int length_ = 0;
};

}  // namespace dynaddr::net

template <>
struct std::hash<dynaddr::net::IPv6Address> {
    std::size_t operator()(const dynaddr::net::IPv6Address& a) const noexcept {
        return std::hash<std::uint64_t>{}(a.hi() * 0x9e3779b97f4a7c15ULL ^ a.lo());
    }
};

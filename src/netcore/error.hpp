#pragma once

#include <stdexcept>
#include <string>

namespace dynaddr {

/// Base exception for all dynaddr errors. Thrown for programmer errors,
/// malformed input (e.g. unparseable addresses or log lines), and violated
/// preconditions. Recoverable "absence of data" is expressed with
/// std::optional return values instead.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when textual input (an address, a timestamp, a CSV field) cannot
/// be parsed.
class ParseError : public Error {
public:
    explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

}  // namespace dynaddr

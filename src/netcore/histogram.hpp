#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dynaddr::stats {

/// One (x, y) point of an empirical CDF.
struct CdfPoint {
    double x = 0.0;
    double y = 0.0;  ///< cumulative fraction in [0, 1]
};

/// An empirical weighted CDF over double-valued samples.
///
/// This is the workhorse behind the paper's Figures 1-3 and 7-8: each
/// sample may carry a weight (the paper's total-time-fraction weights
/// durations by their own length), and the CDF reports the cumulative
/// weight fraction at or below each distinct sample value.
class Cdf {
public:
    /// Adds a sample with the given weight (default 1). Non-positive
    /// weights are ignored.
    void add(double value, double weight = 1.0);

    /// Number of samples accepted.
    [[nodiscard]] std::size_t sample_count() const { return count_; }

    /// Sum of accepted weights.
    [[nodiscard]] double total_weight() const { return total_weight_; }

    /// Cumulative weight fraction of samples with value <= x; 0 when empty.
    [[nodiscard]] double fraction_at_or_below(double x) const;

    /// Weight fraction of samples exactly equal to x (mode mass).
    [[nodiscard]] double fraction_at(double x) const;

    /// Smallest sample value v such that fraction_at_or_below(v) >= q.
    /// Throws Error when empty or q outside [0, 1].
    [[nodiscard]] double quantile(double q) const;

    /// The full step-function as sorted points, one per distinct value.
    [[nodiscard]] std::vector<CdfPoint> points() const;

    /// Distinct values with at least `min_fraction` of the total weight,
    /// i.e. the modes the paper reads off vertical CDF segments.
    [[nodiscard]] std::vector<CdfPoint> modes(double min_fraction) const;

private:
    std::map<double, double> weight_by_value_;
    double total_weight_ = 0.0;
    std::size_t count_ = 0;
};

/// A histogram over user-supplied bin edges; values below the first edge
/// or at/above the last are counted in saturating end bins when
/// `saturate` is set, otherwise dropped.
class BinnedHistogram {
public:
    /// `edges` must be strictly increasing with at least two entries;
    /// bin i covers [edges[i], edges[i+1]).
    explicit BinnedHistogram(std::vector<double> edges, bool saturate = true);

    /// Standard log-scale duration bins used by the paper's Figure 9:
    /// <5m, 5-10m, 10-20m, 20-30m, 30-60m, 1-3h, 3-6h, 6-12h, 12-24h,
    /// 1-3d, 3d-7d, >1w. Values are in seconds.
    static BinnedHistogram outage_duration_bins();

    void add(double value, double weight = 1.0);

    [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
    [[nodiscard]] double bin_weight(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] double total_weight() const;

    /// Index of the bin that would receive `value`; nullopt when out of
    /// range and saturation is off.
    [[nodiscard]] std::optional<std::size_t> bin_of(double value) const;

    /// Human label for a bin, e.g. "5-10m" for duration bins (seconds) or
    /// "[a, b)" for generic edges.
    [[nodiscard]] std::string bin_label(std::size_t bin) const;

private:
    std::vector<double> edges_;
    std::vector<double> counts_;
    bool saturate_;
};

/// Simple streaming summary statistics.
class Summary {
public:
    void add(double value);
    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace dynaddr::stats

#include "ppp/radius.hpp"

namespace dynaddr::ppp {

RadiusServer::RadiusServer(RadiusConfig config, pool::AddressPool& pool,
                           sim::Simulation& sim)
    : config_(config), pool_(&pool), sim_(&sim) {}

std::optional<RadiusServer::AccessAccept> RadiusServer::authorize(
    pool::ClientId client) {
    // A duplicate Access-Request for an open session tears the old one
    // down first (a real BRAS would reject or kill the stale session).
    if (open_.contains(client)) account_stop(client, StopReason::AdminReset);
    auto address = pool_->allocate(client, sim_->now());
    if (!address) return std::nullopt;
    open_.emplace(client, OpenSession{*address, sim_->now()});
    return AccessAccept{*address, config_.session_timeout};
}

void RadiusServer::account_stop(pool::ClientId client, StopReason reason) {
    auto it = open_.find(client);
    if (it == open_.end()) return;
    records_.push_back(AccountingRecord{client, it->second.address,
                                        it->second.start, sim_->now(), reason});
    open_.erase(it);
    pool_->release(client);
}

}  // namespace dynaddr::ppp

#include "ppp/radius.hpp"

#include <algorithm>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"

DYNADDR_LOG_MODULE(radius);

namespace dynaddr::ppp {

namespace {

struct RadiusMetrics {
    obs::Counter& accept = obs::counter("radius.access_accept");
    obs::Counter& reject = obs::counter("radius.access_reject");
    obs::Counter& account_stop = obs::counter("radius.account_stop");
};

RadiusMetrics& radius_metrics() {
    static RadiusMetrics metrics;
    return metrics;
}

}  // namespace

RadiusServer::RadiusServer(RadiusConfig config, pool::AddressPool& pool,
                           sim::Simulation& sim)
    : config_(config), pool_(&pool), sim_(&sim) {}

void RadiusServer::crash(bool amnesia) {
    if (!online_) return;
    online_ = false;
    if (amnesia) {
        // Open sessions vanish without Accounting-Stops: addresses return
        // to the pool, but the records are lost forever.
        std::vector<pool::ClientId> clients;
        clients.reserve(open_.size());
        for (const auto& [client, session] : open_) clients.push_back(client);
        std::sort(clients.begin(), clients.end());
        for (pool::ClientId client : clients) pool_->release(client);
        open_.clear();
        DYNADDR_LOG(Warn, radius, "server crashed with session amnesia (",
                    clients.size(), " sessions lost)");
    } else {
        DYNADDR_LOG(Warn, radius, "server crashed (sessions intact)");
    }
}

void RadiusServer::restart() {
    if (online_) return;
    online_ = true;
    DYNADDR_LOG(Info, radius, "server restarted");
}

std::optional<RadiusServer::AccessAccept> RadiusServer::authorize(
    pool::ClientId client) {
    if (!online_) throw Error("RADIUS exchange with offline server");
    // A duplicate Access-Request for an open session tears the old one
    // down first (a real BRAS would reject or kill the stale session).
    if (open_.contains(client)) account_stop(client, StopReason::AdminReset);
    auto address = pool_->allocate(client, sim_->now());
    if (!address) {
        radius_metrics().reject.inc();
        DYNADDR_LOG(Debug, radius, "access-reject client ", client,
                    " (pool exhausted)");
        return std::nullopt;
    }
    open_.emplace(client, OpenSession{*address, sim_->now()});
    radius_metrics().accept.inc();
    DYNADDR_LOG(Debug, radius, "access-accept client ", client, " -> ",
                address->to_string());
    return AccessAccept{*address, config_.session_timeout};
}

void RadiusServer::account_stop(pool::ClientId client, StopReason reason) {
    if (!online_) throw Error("RADIUS exchange with offline server");
    auto it = open_.find(client);
    if (it == open_.end()) return;
    records_.push_back(AccountingRecord{client, it->second.address,
                                        it->second.start, sim_->now(), reason});
    open_.erase(it);
    pool_->release(client);
    radius_metrics().account_stop.inc();
}

}  // namespace dynaddr::ppp

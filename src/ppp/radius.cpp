#include "ppp/radius.hpp"

#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"

DYNADDR_LOG_MODULE(radius);

namespace dynaddr::ppp {

namespace {

struct RadiusMetrics {
    obs::Counter& accept = obs::counter("radius.access_accept");
    obs::Counter& reject = obs::counter("radius.access_reject");
    obs::Counter& account_stop = obs::counter("radius.account_stop");
};

RadiusMetrics& radius_metrics() {
    static RadiusMetrics metrics;
    return metrics;
}

}  // namespace

RadiusServer::RadiusServer(RadiusConfig config, pool::AddressPool& pool,
                           sim::Simulation& sim)
    : config_(config), pool_(&pool), sim_(&sim) {}

std::optional<RadiusServer::AccessAccept> RadiusServer::authorize(
    pool::ClientId client) {
    // A duplicate Access-Request for an open session tears the old one
    // down first (a real BRAS would reject or kill the stale session).
    if (open_.contains(client)) account_stop(client, StopReason::AdminReset);
    auto address = pool_->allocate(client, sim_->now());
    if (!address) {
        radius_metrics().reject.inc();
        DYNADDR_LOG(Debug, radius, "access-reject client ", client,
                    " (pool exhausted)");
        return std::nullopt;
    }
    open_.emplace(client, OpenSession{*address, sim_->now()});
    radius_metrics().accept.inc();
    DYNADDR_LOG(Debug, radius, "access-accept client ", client, " -> ",
                address->to_string());
    return AccessAccept{*address, config_.session_timeout};
}

void RadiusServer::account_stop(pool::ClientId client, StopReason reason) {
    auto it = open_.find(client);
    if (it == open_.end()) return;
    records_.push_back(AccountingRecord{client, it->second.address,
                                        it->second.start, sim_->now(), reason});
    open_.erase(it);
    pool_->release(client);
    radius_metrics().account_stop.inc();
}

}  // namespace dynaddr::ppp

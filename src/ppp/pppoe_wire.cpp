#include "ppp/pppoe_wire.hpp"

#include "netcore/error.hpp"

namespace dynaddr::ppp {

namespace {

constexpr std::uint8_t kVersionType = 0x11;  // ver 1, type 1
constexpr std::size_t kHeader = 6;

bool valid_code(std::uint8_t code) {
    switch (PppoeCode{code}) {
        case PppoeCode::Padi:
        case PppoeCode::Pado:
        case PppoeCode::Padr:
        case PppoeCode::Pads:
        case PppoeCode::Padt:
            return true;
    }
    return false;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
    out.push_back(std::uint8_t(value >> 8));
    out.push_back(std::uint8_t(value));
}

std::uint16_t get_u16(std::span<const std::uint8_t> bytes, std::size_t at) {
    return std::uint16_t(bytes[at] << 8 | bytes[at + 1]);
}

}  // namespace

const PppoeTag* PppoePacket::find_tag(std::uint16_t type) const {
    for (const auto& tag : tags)
        if (tag.type == type) return &tag;
    return nullptr;
}

void PppoePacket::add_tag(std::uint16_t type, std::string_view text) {
    PppoeTag tag;
    tag.type = type;
    tag.value.assign(text.begin(), text.end());
    tags.push_back(std::move(tag));
}

std::vector<std::uint8_t> encode(const PppoePacket& packet) {
    std::size_t payload = 0;
    for (const auto& tag : packet.tags) {
        if (tag.value.size() > 0xFFFF) throw Error("PPPoE tag too long");
        payload += 4 + tag.value.size();
    }
    if (payload > 0xFFFF) throw Error("PPPoE payload too long");

    std::vector<std::uint8_t> out;
    out.reserve(kHeader + payload);
    out.push_back(kVersionType);
    out.push_back(std::uint8_t(packet.code));
    put_u16(out, packet.session_id);
    put_u16(out, std::uint16_t(payload));
    for (const auto& tag : packet.tags) {
        put_u16(out, tag.type);
        put_u16(out, std::uint16_t(tag.value.size()));
        out.insert(out.end(), tag.value.begin(), tag.value.end());
    }
    return out;
}

PppoePacket decode(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < kHeader) throw ParseError("PPPoE packet too short");
    if (bytes[0] != kVersionType)
        throw ParseError("PPPoE version/type is not 1/1");
    if (!valid_code(bytes[1]))
        throw ParseError("unknown PPPoE code " + std::to_string(bytes[1]));

    PppoePacket packet;
    packet.code = PppoeCode{bytes[1]};
    packet.session_id = get_u16(bytes, 2);
    const std::size_t payload = get_u16(bytes, 4);
    if (kHeader + payload > bytes.size())
        throw ParseError("PPPoE length field overruns the buffer");

    std::size_t at = kHeader;
    const std::size_t end = kHeader + payload;
    while (at < end) {
        if (at + 4 > end) throw ParseError("truncated PPPoE tag header");
        PppoeTag tag;
        tag.type = get_u16(bytes, at);
        const std::size_t length = get_u16(bytes, at + 2);
        at += 4;
        if (at + length > end) throw ParseError("PPPoE tag overruns payload");
        if (tag.type == PppoeTag::kEndOfList) break;
        tag.value.assign(bytes.begin() + std::ptrdiff_t(at),
                         bytes.begin() + std::ptrdiff_t(at + length));
        packet.tags.push_back(std::move(tag));
        at += length;
    }
    return packet;
}

}  // namespace dynaddr::ppp

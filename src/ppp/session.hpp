#pragma once

#include <functional>
#include <optional>

#include "netcore/rng.hpp"
#include "ppp/radius.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::ppp {

/// PPP phases (RFC 1661 §3.2). Authenticate and Network (IPCP) complete
/// synchronously here since transport is a reliable direct call, but the
/// phase progression is preserved and observable in tests.
enum class Phase { Dead, Establish, Authenticate, Network, Open };

/// Client-side session behaviour knobs.
struct SessionConfig {
    /// Probability that an elapsed Session-Timeout is *not* enforced this
    /// cycle — the session silently continues for another period. This is
    /// the paper's "Harmonics" mechanism: a skipped renumbering makes the
    /// address duration a multiple of d.
    double skip_renumber_probability = 0.0;
    /// Delay between losing a session and redialing once the link allows
    /// (CPE auto-reconnect, typically seconds).
    net::Duration redial_delay = net::Duration::seconds(15);
    /// Cap on the exponential redial backoff used when the BRAS goes
    /// *silent* (fault injection: lost Access-Request or dead server).
    /// A definitive Access-Reject keeps the flat `redial_delay`, so this
    /// knob is inert in fault-free runs.
    net::Duration redial_max = net::Duration::minutes(16);
};

/// A PPP(oE) client session for one CPE WAN interface.
///
/// Key behavioural contrast with dhcp::Client, straight from the paper:
/// PPP keeps no address state across connections. *Any* loss of carrier
/// — reboot, cable unplug, network outage of any duration — ends the
/// session, and the next session draws a fresh address from the pool.
class Session {
public:
    using AcquiredCallback = std::function<void(net::IPv4Address)>;
    using LostCallback = std::function<void(StopReason)>;

    Session(SessionConfig config, pool::ClientId id, RadiusServer& server,
            sim::Simulation& sim, rng::Stream rng,
            std::function<bool()> reachable);

    /// Powers the CPE WAN on and dials.
    void power_on();

    /// Powers off. PPP has no state to keep: the session drops.
    void power_off();

    /// Link came back: redial after the configured delay.
    void link_restored();

    /// Carrier lost: the session terminates immediately (LCP keepalive
    /// failure is detected server-side too; both ends drop state).
    void link_lost();

    /// Subscriber-initiated reconnect (the CPE "privacy" feature the
    /// paper's large European ISP described): terminate and redial now.
    void reconnect_now();

    [[nodiscard]] Phase phase() const { return phase_; }
    [[nodiscard]] std::optional<net::IPv4Address> address() const { return address_; }

    void set_on_acquired(AcquiredCallback cb) { on_acquired_ = std::move(cb); }
    void set_on_lost(LostCallback cb) { on_lost_ = std::move(cb); }

private:
    void dial();
    void drop(StopReason reason, bool redial);
    void schedule_redial(net::Duration delay);
    void schedule_timeout(net::Duration timeout);
    void on_session_timeout();
    void cancel_timers();
    [[nodiscard]] net::Duration next_redial_backoff();

    SessionConfig config_;
    pool::ClientId id_;
    RadiusServer* server_;
    sim::Simulation* sim_;
    rng::Stream rng_;
    std::function<bool()> reachable_;
    AcquiredCallback on_acquired_;
    LostCallback on_lost_;

    Phase phase_ = Phase::Dead;
    bool powered_ = false;
    std::optional<net::IPv4Address> address_;
    std::optional<sim::EventId> timeout_event_;
    std::optional<sim::EventId> redial_event_;
    /// Current silence backoff; zero = next silence starts at redial_delay.
    /// Reset by any definitive reply (Accept or Reject).
    net::Duration redial_backoff_{0};
};

}  // namespace dynaddr::ppp

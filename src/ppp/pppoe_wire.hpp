#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dynaddr::ppp {

/// PPPoE discovery-stage packet codes (RFC 2516 §5). The discovery
/// exchange (PADI → PADO → PADR → PADS, torn down by PADT) is how a DSL
/// CPE finds its access concentrator before LCP/IPCP run — the hop the
/// paper's PPPoE ISPs (Orange, DTAG, ...) perform on every reconnect.
enum class PppoeCode : std::uint8_t {
    Padi = 0x09,  ///< initiation (broadcast)
    Pado = 0x07,  ///< offer
    Padr = 0x19,  ///< request
    Pads = 0x65,  ///< session confirmation (carries the session id)
    Padt = 0xA7,  ///< termination
};

/// One PPPoE discovery tag.
struct PppoeTag {
    enum : std::uint16_t {
        kEndOfList = 0x0000,
        kServiceName = 0x0101,
        kAcName = 0x0102,
        kHostUniq = 0x0103,
        kAcCookie = 0x0104,
        kGenericError = 0x0203,
    };
    std::uint16_t type = kEndOfList;
    std::vector<std::uint8_t> value;

    friend bool operator==(const PppoeTag&, const PppoeTag&) = default;
};

/// A PPPoE discovery packet: version/type nibbles (fixed 1/1), code,
/// session id, and the tag list (the RFC's payload).
struct PppoePacket {
    PppoeCode code = PppoeCode::Padi;
    std::uint16_t session_id = 0;
    std::vector<PppoeTag> tags;

    /// Convenience: the first tag of a type, if present.
    [[nodiscard]] const PppoeTag* find_tag(std::uint16_t type) const;
    /// Convenience: appends a string-valued tag.
    void add_tag(std::uint16_t type, std::string_view text);

    friend bool operator==(const PppoePacket&, const PppoePacket&) = default;
};

/// Serializes to the Ethernet payload (6-byte header + tags); the length
/// field is computed.
std::vector<std::uint8_t> encode(const PppoePacket& packet);

/// Parses an Ethernet payload. Throws ParseError on a short packet, a
/// version/type other than 1/1, an unknown code, a length field that
/// disagrees with the buffer, or a tag overrunning the payload.
PppoePacket decode(std::span<const std::uint8_t> bytes);

}  // namespace dynaddr::ppp

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/rng.hpp"
#include "netcore/time.hpp"
#include "pool/address_pool.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::ppp {

/// Why a PPP session ended. Mirrors RADIUS Acct-Terminate-Cause values.
enum class StopReason {
    SessionTimeout,  ///< ISP-imposed Session-Timeout elapsed
    LostCarrier,     ///< link or power failure at the subscriber
    UserRequest,     ///< subscriber-initiated disconnect (privacy reconnect)
    AdminReset,      ///< operator action
};

/// One RADIUS accounting session (Start + Stop collapsed into a record).
/// This is the simulated equivalent of the proprietary RADIUS logs Maier
/// et al. analyzed; tests use it as ground truth.
struct AccountingRecord {
    pool::ClientId client = 0;
    net::IPv4Address address;
    net::TimePoint start;
    net::TimePoint stop;
    StopReason reason = StopReason::LostCarrier;

    [[nodiscard]] net::Duration duration() const { return stop - start; }
};

/// RADIUS-side policy for a PPP ISP.
struct RadiusConfig {
    /// Session-Timeout attribute: the ISP terminates sessions after this
    /// long, forcing periodic renumbering ("Zwangstrennung"). Unset = no
    /// periodic limit.
    std::optional<net::Duration> session_timeout;
};

/// A RADIUS-style authorization and accounting server fronting an
/// AddressPool. PPP ISPs do not remember subscriber addresses: every new
/// session draws from the pool per its strategy (typically RandomSpread
/// or PrefixHop).
class RadiusServer {
public:
    /// `pool` must outlive the server.
    RadiusServer(RadiusConfig config, pool::AddressPool& pool, sim::Simulation& sim);

    /// Access-Request -> Access-Accept with a Framed-IP-Address and
    /// optional Session-Timeout. nullopt when the pool is exhausted
    /// (Access-Reject).
    struct AccessAccept {
        net::IPv4Address address;
        std::optional<net::Duration> session_timeout;
    };
    std::optional<AccessAccept> authorize(pool::ClientId client);

    /// Accounting-Stop: ends the client's session, releasing its address.
    void account_stop(pool::ClientId client, StopReason reason);

    /// Whether the BRAS/RADIUS pair is up. Exchanges with an offline
    /// server throw — callers treat downtime as silence. Always true
    /// without fault injection.
    [[nodiscard]] bool online() const { return online_; }

    /// Fault injection: the server dies. With `amnesia` every open session
    /// is forgotten *without* an accounting record — the address returns to
    /// the pool but the stop is lost, the gap the paper flags in real
    /// RADIUS logs.
    void crash(bool amnesia);

    /// Fault injection: the server comes back.
    void restart();

    /// All completed sessions, in stop order.
    [[nodiscard]] const std::vector<AccountingRecord>& records() const {
        return records_;
    }

    /// Number of currently open sessions.
    [[nodiscard]] std::size_t open_sessions() const { return open_.size(); }

    [[nodiscard]] const RadiusConfig& config() const { return config_; }

private:
    struct OpenSession {
        net::IPv4Address address;
        net::TimePoint start;
    };

    RadiusConfig config_;
    pool::AddressPool* pool_;
    sim::Simulation* sim_;
    std::unordered_map<pool::ClientId, OpenSession> open_;
    std::vector<AccountingRecord> records_;
    bool online_ = true;
};

}  // namespace dynaddr::ppp

#include "ppp/session.hpp"

#include <algorithm>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "ppp/pppoe_wire.hpp"
#include "sim/cause_ledger.hpp"
#include "sim/faults.hpp"

DYNADDR_LOG_MODULE(ppp);

namespace dynaddr::ppp {

namespace {

struct SessionMetrics {
    obs::Counter& dials = obs::counter("ppp.dials");
    obs::Counter& opened = obs::counter("ppp.opened");
    obs::Counter& dropped = obs::counter("ppp.dropped");
    obs::Counter& timeouts = obs::counter("ppp.session_timeouts");
    obs::Counter& skipped_renumber = obs::counter("ppp.renumber_skipped");
};

SessionMetrics& session_metrics() {
    static SessionMetrics metrics;
    return metrics;
}

using Kind = sim::MessageDecision::Kind;

/// Round-trips the PADI opening this discovery through fault corruption
/// and reports whether the access concentrator would still answer: a
/// mutation that breaks parsing (or mangles the tags) goes unanswered.
bool corrupted_dial_lost(pool::ClientId id, net::TimePoint now) {
    sim::FaultInjector* injector = sim::fault_injector();
    if (injector == nullptr) return false;
    PppoePacket padi;
    padi.code = PppoeCode::Padi;
    padi.add_tag(PppoeTag::kServiceName, "");
    std::string uniq;
    const std::uint64_t token = id ^ std::uint64_t(now.unix_seconds());
    for (int i = 0; i < 8; ++i) uniq.push_back(char(token >> (8 * i)));
    padi.add_tag(PppoeTag::kHostUniq, uniq);
    auto bytes = encode(padi);
    if (!injector->corrupt_wire(sim::FaultSite::RadiusAuthorize, id, bytes))
        return true;
    try {
        return !(decode(bytes) == padi);
    } catch (const ParseError&) {
        return true;
    }
}

const char* stop_reason_name(StopReason reason) {
    switch (reason) {
        case StopReason::SessionTimeout: return "session-timeout";
        case StopReason::LostCarrier: return "lost-carrier";
        case StopReason::UserRequest: return "user-request";
        case StopReason::AdminReset: return "admin-reset";
    }
    return "?";
}

}  // namespace

Session::Session(SessionConfig config, pool::ClientId id, RadiusServer& server,
                 sim::Simulation& sim, rng::Stream rng,
                 std::function<bool()> reachable)
    : config_(config),
      id_(id),
      server_(&server),
      sim_(&sim),
      rng_(rng),
      reachable_(std::move(reachable)) {}

void Session::power_on() {
    if (powered_) return;
    powered_ = true;
    dial();
}

void Session::power_off() {
    if (!powered_) return;
    powered_ = false;
    cancel_timers();
    if (phase_ == Phase::Open) drop(StopReason::LostCarrier, /*redial=*/false);
    phase_ = Phase::Dead;
}

void Session::link_restored() {
    if (!powered_) return;
    if (phase_ == Phase::Dead && !redial_event_) dial();
}

void Session::link_lost() {
    if (phase_ == Phase::Open) drop(StopReason::LostCarrier, /*redial=*/true);
}

void Session::reconnect_now() {
    if (phase_ != Phase::Open) return;
    drop(StopReason::UserRequest, /*redial=*/true);
}

void Session::dial() {
    if (!powered_ || phase_ == Phase::Open) return;
    if (!reachable_()) {
        phase_ = Phase::Dead;  // wait for link_restored()
        return;
    }
    const net::TimePoint now = sim_->now();
    if (!server_->online()) {
        // BRAS down: silence. Redial with exponential backoff, capped.
        sim::cause_note(id_, sim::CauseKind::ServerDown,
                        sim::CauseSite::RadiusServerOffline, now);
        phase_ = Phase::Dead;
        schedule_redial(next_redial_backoff());
        return;
    }
    const auto decision =
        sim::gate_message(sim::FaultSite::RadiusAuthorize, id_, now);
    if (decision.kind == Kind::Defer) {
        // Jittered, not lost: the whole discovery retries when it clears,
        // without growing the backoff.
        phase_ = Phase::Dead;
        schedule_redial(decision.defer);
        return;
    }
    if (decision.kind == Kind::Drop ||
        (decision.kind == Kind::Corrupt && corrupted_dial_lost(id_, now))) {
        sim::cause_note(id_, sim::CauseKind::MessageFault,
                        sim::CauseSite::FaultMessage, now);
        phase_ = Phase::Dead;
        schedule_redial(next_redial_backoff());
        return;
    }
    // Duplicate Access-Requests are absorbed by the BRAS's own stale-
    // session teardown, so a Duplicate decision delivers once.
    session_metrics().dials.inc();
    // LCP establish -> authenticate (PAP/CHAP) -> IPCP address assignment.
    phase_ = Phase::Establish;
    phase_ = Phase::Authenticate;
    auto accept = server_->authorize(id_);
    redial_backoff_ = net::Duration{0};  // a definitive reply either way
    if (!accept) {
        // Access-Reject / pool exhausted: retry after the redial delay.
        sim::cause_note(id_, sim::CauseKind::PoolExhausted,
                        sim::CauseSite::RadiusPoolExhausted, now);
        phase_ = Phase::Dead;
        schedule_redial(config_.redial_delay);
        return;
    }
    phase_ = Phase::Network;
    address_ = accept->address;
    phase_ = Phase::Open;
    session_metrics().opened.inc();
    DYNADDR_LOG(Debug, ppp, "session ", id_, " open on ",
                accept->address.to_string());
    if (accept->session_timeout) schedule_timeout(*accept->session_timeout);
    if (on_acquired_) on_acquired_(accept->address);
}

void Session::schedule_redial(net::Duration delay) {
    if (redial_event_) sim_->cancel(*redial_event_);
    redial_event_ = sim_->after(delay, [this](net::TimePoint) {
        redial_event_.reset();
        dial();
    });
}

net::Duration Session::next_redial_backoff() {
    redial_backoff_ = redial_backoff_.count() <= 0
                          ? config_.redial_delay
                          : std::min(redial_backoff_ + redial_backoff_,
                                     config_.redial_max);
    return redial_backoff_;
}

void Session::drop(StopReason reason, bool redial) {
    session_metrics().dropped.inc();
    DYNADDR_LOG(Debug, ppp, "session ", id_, " dropped: ",
                stop_reason_name(reason));
    cancel_timers();
    if (server_->online()) {
        // Accounting-Stop is fire-and-forget: a swallowed one leaves a
        // stale open session for the next Access-Request to tear down (as
        // AdminReset). Defer ≈ deliver — it arrives, just late.
        const auto decision = sim::gate_message(
            sim::FaultSite::RadiusAccounting, id_, sim_->now());
        if (decision.kind != Kind::Drop &&
            decision.kind != Kind::Corrupt) {
            server_->account_stop(id_, reason);
            if (decision.kind == Kind::Duplicate)
                server_->account_stop(id_, reason);  // replay is a no-op
        }
    }
    address_.reset();
    phase_ = Phase::Dead;
    if (on_lost_) on_lost_(reason);
    if (redial && powered_) schedule_redial(config_.redial_delay);
}

void Session::schedule_timeout(net::Duration timeout) {
    timeout_event_ = sim_->after(timeout, [this](net::TimePoint) {
        timeout_event_.reset();
        on_session_timeout();
    });
}

void Session::on_session_timeout() {
    if (phase_ != Phase::Open) return;
    session_metrics().timeouts.inc();
    if (rng_.bernoulli(config_.skip_renumber_probability)) {
        // Enforcement skipped this cycle; session survives another period.
        session_metrics().skipped_renumber.inc();
        if (auto timeout = server_->config().session_timeout)
            schedule_timeout(*timeout);
        return;
    }
    drop(StopReason::SessionTimeout, /*redial=*/true);
}

void Session::cancel_timers() {
    if (timeout_event_) {
        sim_->cancel(*timeout_event_);
        timeout_event_.reset();
    }
    if (redial_event_) {
        sim_->cancel(*redial_event_);
        redial_event_.reset();
    }
}

}  // namespace dynaddr::ppp

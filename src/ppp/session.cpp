#include "ppp/session.hpp"

#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"

DYNADDR_LOG_MODULE(ppp);

namespace dynaddr::ppp {

namespace {

struct SessionMetrics {
    obs::Counter& dials = obs::counter("ppp.dials");
    obs::Counter& opened = obs::counter("ppp.opened");
    obs::Counter& dropped = obs::counter("ppp.dropped");
    obs::Counter& timeouts = obs::counter("ppp.session_timeouts");
    obs::Counter& skipped_renumber = obs::counter("ppp.renumber_skipped");
};

SessionMetrics& session_metrics() {
    static SessionMetrics metrics;
    return metrics;
}

const char* stop_reason_name(StopReason reason) {
    switch (reason) {
        case StopReason::SessionTimeout: return "session-timeout";
        case StopReason::LostCarrier: return "lost-carrier";
        case StopReason::UserRequest: return "user-request";
        case StopReason::AdminReset: return "admin-reset";
    }
    return "?";
}

}  // namespace

Session::Session(SessionConfig config, pool::ClientId id, RadiusServer& server,
                 sim::Simulation& sim, rng::Stream rng,
                 std::function<bool()> reachable)
    : config_(config),
      id_(id),
      server_(&server),
      sim_(&sim),
      rng_(rng),
      reachable_(std::move(reachable)) {}

void Session::power_on() {
    if (powered_) return;
    powered_ = true;
    dial();
}

void Session::power_off() {
    if (!powered_) return;
    powered_ = false;
    cancel_timers();
    if (phase_ == Phase::Open) drop(StopReason::LostCarrier, /*redial=*/false);
    phase_ = Phase::Dead;
}

void Session::link_restored() {
    if (!powered_) return;
    if (phase_ == Phase::Dead && !redial_event_) dial();
}

void Session::link_lost() {
    if (phase_ == Phase::Open) drop(StopReason::LostCarrier, /*redial=*/true);
}

void Session::reconnect_now() {
    if (phase_ != Phase::Open) return;
    drop(StopReason::UserRequest, /*redial=*/true);
}

void Session::dial() {
    if (!powered_ || phase_ == Phase::Open) return;
    if (!reachable_()) {
        phase_ = Phase::Dead;  // wait for link_restored()
        return;
    }
    session_metrics().dials.inc();
    // LCP establish -> authenticate (PAP/CHAP) -> IPCP address assignment.
    phase_ = Phase::Establish;
    phase_ = Phase::Authenticate;
    auto accept = server_->authorize(id_);
    if (!accept) {
        // Access-Reject / pool exhausted: retry after the redial delay.
        phase_ = Phase::Dead;
        redial_event_ = sim_->after(config_.redial_delay, [this](net::TimePoint) {
            redial_event_.reset();
            dial();
        });
        return;
    }
    phase_ = Phase::Network;
    address_ = accept->address;
    phase_ = Phase::Open;
    session_metrics().opened.inc();
    DYNADDR_LOG(Debug, ppp, "session ", id_, " open on ",
                accept->address.to_string());
    if (accept->session_timeout) schedule_timeout(*accept->session_timeout);
    if (on_acquired_) on_acquired_(accept->address);
}

void Session::drop(StopReason reason, bool redial) {
    session_metrics().dropped.inc();
    DYNADDR_LOG(Debug, ppp, "session ", id_, " dropped: ",
                stop_reason_name(reason));
    cancel_timers();
    server_->account_stop(id_, reason);
    address_.reset();
    phase_ = Phase::Dead;
    if (on_lost_) on_lost_(reason);
    if (redial && powered_) {
        redial_event_ = sim_->after(config_.redial_delay, [this](net::TimePoint) {
            redial_event_.reset();
            dial();
        });
    }
}

void Session::schedule_timeout(net::Duration timeout) {
    timeout_event_ = sim_->after(timeout, [this](net::TimePoint) {
        timeout_event_.reset();
        on_session_timeout();
    });
}

void Session::on_session_timeout() {
    if (phase_ != Phase::Open) return;
    session_metrics().timeouts.inc();
    if (rng_.bernoulli(config_.skip_renumber_probability)) {
        // Enforcement skipped this cycle; session survives another period.
        session_metrics().skipped_renumber.inc();
        if (auto timeout = server_->config().session_timeout)
            schedule_timeout(*timeout);
        return;
    }
    drop(StopReason::SessionTimeout, /*redial=*/true);
}

void Session::cancel_timers() {
    if (timeout_event_) {
        sim_->cancel(*timeout_event_);
        timeout_event_.reset();
    }
    if (redial_event_) {
        sim_->cancel(*redial_event_);
        redial_event_.reset();
    }
}

}  // namespace dynaddr::ppp

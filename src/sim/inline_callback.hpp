#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "netcore/time.hpp"

namespace dynaddr::sim {

/// Move-only callable wrapper for `void(net::TimePoint)` with small-buffer
/// optimisation.
///
/// Simulation callbacks are almost always lambdas capturing a `this`
/// pointer plus at most a handful of words (see atlas::Probe, atlas::Cpe,
/// dhcp::Client, ppp::Session, isp::schedule_outages). The 48-byte inline
/// buffer holds all of those without a heap allocation; larger callables
/// (including a captured std::function) fall back to the heap
/// transparently. Unlike std::function there is no copyability
/// requirement, no RTTI and no virtual dispatch — one indirect call
/// through a static ops table.
class InlineCallback {
public:
    static constexpr std::size_t kInlineSize = 48;

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_v<std::decay_t<F>&, net::TimePoint>>>
    InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
            ops_ = &inline_ops<Fn>;
        } else {
            *reinterpret_cast<void**>(storage_) = new Fn(std::forward<F>(fn));
            ops_ = &heap_ops<Fn>;
        }
    }

    InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

    InlineCallback& operator=(InlineCallback&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback&) = delete;
    InlineCallback& operator=(const InlineCallback&) = delete;

    ~InlineCallback() { reset(); }

    void operator()(net::TimePoint when) { ops_->invoke(storage_, when); }

    [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

    void reset() {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

private:
    struct Ops {
        void (*invoke)(void*, net::TimePoint);
        void (*move)(void* dst, void* src);  ///< move-construct dst from src
        void (*destroy)(void*);
    };

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void* s, net::TimePoint t) { (*std::launder(reinterpret_cast<Fn*>(s)))(t); },
        [](void* dst, void* src) {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heap_ops = {
        [](void* s, net::TimePoint t) { (*static_cast<Fn*>(*reinterpret_cast<void**>(s)))(t); },
        [](void* dst, void* src) {
            *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
        },
        [](void* s) { delete static_cast<Fn*>(*reinterpret_cast<void**>(s)); },
    };

    void move_from(InlineCallback& other) noexcept {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->move(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace dynaddr::sim

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "netcore/time.hpp"
#include "sim/event_queue.hpp"

namespace dynaddr::sim {

/// The original std::map-based event queue, kept ONLY as (a) the baseline
/// for the BM_EventEngine benchmark comparison and (b) the naive oracle
/// the property test checks the timer-wheel engine against. Do not use in
/// simulation code — it collapses under millions of timer events (two
/// ordered maps plus a heap-allocated std::function per event).
///
/// Same observable contract as EventQueue: time order, FIFO at equal
/// times, cancel() false after firing.
class ReferenceEventQueue {
public:
    using Callback = std::function<void(net::TimePoint)>;

    EventId schedule(net::TimePoint when, Callback callback);
    bool cancel(EventId id);
    [[nodiscard]] std::optional<net::TimePoint> next_time() const;
    [[nodiscard]] bool empty() const { return events_.empty(); }
    [[nodiscard]] std::size_t size() const { return events_.size(); }
    bool run_next();

private:
    struct Key {
        net::TimePoint when;
        std::uint64_t sequence;
        friend constexpr auto operator<=>(const Key&, const Key&) = default;
    };
    std::map<Key, Callback> events_;
    std::map<std::uint64_t, Key> key_by_id_;
    std::uint64_t next_sequence_ = 1;
};

}  // namespace dynaddr::sim

#include "sim/cause_ledger.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>

#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::sim {

namespace {

constexpr const char* kKindNames[kCauseKindCount] = {
    "unknown",          "session_expiry", "lease_expiry",
    "nightly_reconnect", "max_age_eviction", "admin_renumbering",
    "cross_as_move",    "server_amnesia", "server_down",
    "pool_exhausted",   "power_outage",   "network_outage",
    "message_fault",
};

constexpr const char* kSiteNames[kCauseSiteCount] = {
    "unspecified",
    "ppp_session_timeout",
    "dhcp_lease_timer",
    "cpe_nightly_reconnect",
    "dhcp_max_age",
    "dhcp_retired_prefix",
    "dhcp_amnesia_crash",
    "dhcp_server_offline",
    "dhcp_pool_exhausted",
    "radius_server_offline",
    "radius_pool_exhausted",
    "outage_power",
    "outage_network",
    "fault_storm",
    "fault_radius_crash",
    "fault_exhaustion",
    "fault_message",
    "admin_event",
    "scenario_mover",
};

/// Live `causes.*` counters. Created on first ledger construction so a
/// ledger-free process never grows its metrics registry.
struct CauseCounters {
    obs::Counter& records = obs::counter("causes.records");
    std::array<obs::Counter*, kCauseKindCount> by_kind{};

    CauseCounters() {
        obs::metrics_block("causes");
        for (std::size_t k = 0; k < kCauseKindCount; ++k)
            by_kind[k] = &obs::counter(std::string("causes.") + kKindNames[k]);
    }
};

CauseCounters& cause_counters() {
    static CauseCounters counters;
    return counters;
}

}  // namespace

const char* cause_kind_name(CauseKind kind) {
    const auto k = std::size_t(kind);
    return k < kCauseKindCount ? kKindNames[k] : "?";
}

const char* cause_site_name(CauseSite site) {
    const auto s = std::size_t(site);
    return s < kCauseSiteCount ? kSiteNames[s] : "?";
}

std::optional<CauseKind> cause_kind_from_name(std::string_view name) {
    for (std::size_t k = 0; k < kCauseKindCount; ++k)
        if (name == kKindNames[k]) return CauseKind(k);
    return std::nullopt;
}

std::optional<CauseSite> cause_site_from_name(std::string_view name) {
    for (std::size_t s = 0; s < kCauseSiteCount; ++s)
        if (name == kSiteNames[s]) return CauseSite(s);
    return std::nullopt;
}

// -- ledger ---------------------------------------------------------------

CauseLedger::CauseLedger(CauseLedgerConfig config) : config_(config) {
    cause_counters();  // materialize the causes.* block up front
}

CauseLedger::ClientState& CauseLedger::state(std::uint64_t client) {
    return clients_[client];
}

void CauseLedger::register_client(std::uint64_t client, std::uint64_t probe) {
    state(client).probe = probe;
}

void CauseLedger::clear_tenure_state(ClientState& s) {
    s.lost = false;
    s.loss_kind = CauseKind::Unknown;
    s.loss_site = CauseSite::Unspecified;
    s.amnesia.set = s.max_age.set = s.admin.set = s.mover.set = false;
    s.server_down.set = s.pool_exhausted.set = s.message_fault.set = false;
    // A completed environment episode is consumed with the tenure; an
    // episode still in progress stays relevant for the next change.
    if (s.power && !s.power->active()) s.power.reset();
    if (s.net && !s.net->active()) s.net.reset();
}

void CauseLedger::lost(std::uint64_t client, net::TimePoint t, CauseKind kind,
                       CauseSite site) {
    ClientState& s = state(client);
    if (s.lost) return;  // the tenure already ended; keep the first verdict
    s.lost = true;
    s.lost_at = t;
    s.loss_kind = kind;
    s.loss_site = site;
}

void CauseLedger::renew_ok(std::uint64_t client) {
    ClientState& s = state(client);
    // The tenure survived: whatever was blocking exchanges (or claimed to
    // have forgotten the lease) did not end it.
    s.amnesia.set = s.max_age.set = false;
    s.server_down.set = s.pool_exhausted.set = s.message_fault.set = false;
}

void CauseLedger::note(std::uint64_t client, CauseKind kind, CauseSite site,
                       net::TimePoint t) {
    ClientState& s = state(client);
    Note* slot = nullptr;
    switch (kind) {
        case CauseKind::ServerAmnesia: slot = &s.amnesia; break;
        case CauseKind::MaxAgeEviction: slot = &s.max_age; break;
        case CauseKind::AdminRenumbering: slot = &s.admin; break;
        case CauseKind::CrossAsMove: slot = &s.mover; break;
        case CauseKind::ServerDown: slot = &s.server_down; break;
        case CauseKind::PoolExhausted: slot = &s.pool_exhausted; break;
        case CauseKind::MessageFault: slot = &s.message_fault; break;
        default: return;  // other kinds are loss reasons, not notes
    }
    // Keep the earliest observation per kind: the root is when the
    // condition first bit, not the latest retry that met it.
    if (slot->set) return;
    slot->set = true;
    slot->at = t;
    slot->site = site;
}

void CauseLedger::power_down(std::uint64_t client, net::TimePoint t,
                             CauseSite site) {
    ClientState& s = state(client);
    if (s.power && s.power->active()) return;
    s.power = Episode{t, std::nullopt, site};
}

void CauseLedger::power_up(std::uint64_t client, net::TimePoint t) {
    ClientState& s = state(client);
    if (s.power && s.power->active()) s.power->end = t;
}

void CauseLedger::net_down(std::uint64_t client, net::TimePoint t,
                           CauseSite site) {
    ClientState& s = state(client);
    if (s.net && s.net->active()) return;
    s.net = Episode{t, std::nullopt, site};
}

void CauseLedger::net_up(std::uint64_t client, net::TimePoint t) {
    ClientState& s = state(client);
    if (s.net && s.net->active()) s.net->end = t;
}

void CauseLedger::admin_retire(net::IPv4Prefix prefix, net::TimePoint when) {
    retired_.emplace_back(prefix, when);
}

void CauseLedger::emit(const ClientState& s, std::uint64_t client,
                       net::TimePoint t, net::IPv4Address addr, CauseKind kind,
                       CauseSite site, net::TimePoint root_at,
                       net::Duration root_duration) {
    CauseRecord record;
    record.probe = s.probe;
    record.client = client;
    record.at = t;
    record.lost_at = s.lost ? s.lost_at : t;
    record.root_at = root_at;
    record.kind = kind;
    record.site = site;
    record.old_addr = s.addr;
    record.new_addr = addr;
    record.root_duration = root_duration;
    ++total_;
    CauseCounters& counters = cause_counters();
    counters.records.inc();
    counters.by_kind[std::size_t(kind)]->inc();
    if (sink_ != nullptr) sink_->append(record);
    if (config_.keep_records) records_.push_back(record);
}

void CauseLedger::acquired(std::uint64_t client, net::TimePoint t,
                           net::IPv4Address addr) {
    ClientState& s = state(client);
    if (s.has_addr && addr != s.addr) {
        // Resolve exactly one root cause. Priority ladder (DESIGN.md §11):
        // administrative verdicts, then mover, then server-side tenure
        // verdicts, then environment episodes overlapping the gap, then
        // blocking observations that preceded (and so caused) the loss,
        // then the protocol's own definitive loss reason, then blocking
        // observations during reacquisition, else unknown.
        const net::TimePoint lost_at = s.lost ? s.lost_at : t;
        CauseKind kind = CauseKind::Unknown;
        CauseSite site = s.loss_site;
        net::TimePoint root_at = lost_at;
        net::Duration root_duration{0};

        auto overlap = [&](const std::optional<Episode>& e) {
            return e && e->begin <= t && (e->active() || *e->end >= lost_at);
        };
        auto pick_note = [&](const Note& note, CauseKind k) {
            kind = k;
            site = note.site;
            root_at = note.at;
        };
        auto pick_episode = [&](const Episode& e, CauseKind k) {
            kind = k;
            site = e.site;
            root_at = e.begin;
            root_duration = e.end.value_or(t) - e.begin;
        };
        // Blocking observations in `window`, most decisive first.
        auto pick_blocking = [&](const net::TimeInterval& window) {
            auto in = [&](const Note& note) {
                return note.set && window.begin <= note.at &&
                       note.at <= window.end;
            };
            if (in(s.pool_exhausted))
                pick_note(s.pool_exhausted, CauseKind::PoolExhausted);
            else if (in(s.server_down))
                pick_note(s.server_down, CauseKind::ServerDown);
            else if (in(s.message_fault))
                pick_note(s.message_fault, CauseKind::MessageFault);
            return kind != CauseKind::Unknown;
        };
        auto admin_retired = [&]() -> const net::TimePoint* {
            for (const auto& [prefix, when] : retired_)
                if (prefix.contains(s.addr) && when <= t) return &when;
            return nullptr;
        };

        if (s.admin.set) {
            pick_note(s.admin, CauseKind::AdminRenumbering);
        } else if (const net::TimePoint* when = admin_retired()) {
            kind = CauseKind::AdminRenumbering;
            site = CauseSite::AdminEvent;
            root_at = *when;
        } else if (s.mover.set) {
            pick_note(s.mover, CauseKind::CrossAsMove);
        } else if (s.amnesia.set) {
            pick_note(s.amnesia, CauseKind::ServerAmnesia);
        } else if (s.max_age.set) {
            pick_note(s.max_age, CauseKind::MaxAgeEviction);
        } else if (overlap(s.net)) {
            // Network before power when both overlap, matching the
            // analysis-side §3.6 priority.
            pick_episode(*s.net, CauseKind::NetworkOutage);
        } else if (overlap(s.power)) {
            pick_episode(*s.power, CauseKind::PowerOutage);
        } else if (pick_blocking({s.acquired_at, lost_at})) {
            // blocking observation ended the tenure (e.g. the lease ran
            // out because every renew met a dead server)
        } else if (s.loss_kind != CauseKind::Unknown) {
            kind = s.loss_kind;
            site = s.loss_site;
            root_at = lost_at;
        } else if (pick_blocking({lost_at, t})) {
            // blocking observation explains the gap after an otherwise
            // unexplained loss
        }
        emit(s, client, t, addr, kind, site, root_at, root_duration);
    }
    s.has_addr = true;
    s.addr = addr;
    s.acquired_at = t;
    clear_tenure_state(s);
}

// -- global install -------------------------------------------------------

namespace detail {
CauseLedger* g_cause_ledger = nullptr;
}

void install_cause_ledger(CauseLedger* ledger) {
    detail::g_cause_ledger = ledger;
}

// -- CSV ------------------------------------------------------------------

namespace {

constexpr std::string_view kCsvHeader =
    "probe,client,at,lost_at,root_at,kind,site,old_addr,new_addr,"
    "root_duration_s";

void append_csv_row(std::string& out, const CauseRecord& r) {
    out += std::to_string(r.probe);
    out += ',';
    out += std::to_string(r.client);
    out += ',';
    out += std::to_string(r.at.unix_seconds());
    out += ',';
    out += std::to_string(r.lost_at.unix_seconds());
    out += ',';
    out += std::to_string(r.root_at.unix_seconds());
    out += ',';
    out += cause_kind_name(r.kind);
    out += ',';
    out += cause_site_name(r.site);
    out += ',';
    out += r.old_addr.to_string();
    out += ',';
    out += r.new_addr.to_string();
    out += ',';
    out += std::to_string(r.root_duration.count());
    out += '\n';
}

std::optional<std::int64_t> parse_i64(std::string_view field) {
    std::int64_t value = 0;
    const char* begin = field.data();
    const char* end = begin + field.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) return std::nullopt;
    return value;
}

std::optional<CauseRecord> parse_csv_row(std::string_view line) {
    std::array<std::string_view, 10> fields;
    std::size_t count = 0;
    while (count < fields.size()) {
        const std::size_t comma = line.find(',');
        fields[count++] = line.substr(0, comma);
        if (comma == std::string_view::npos) break;
        line.remove_prefix(comma + 1);
    }
    if (count != fields.size() ||
        fields.back().find(',') != std::string_view::npos)
        return std::nullopt;
    CauseRecord r;
    const auto probe = parse_i64(fields[0]);
    const auto client = parse_i64(fields[1]);
    const auto at = parse_i64(fields[2]);
    const auto lost = parse_i64(fields[3]);
    const auto root = parse_i64(fields[4]);
    const auto kind = cause_kind_from_name(fields[5]);
    const auto site = cause_site_from_name(fields[6]);
    const auto old_addr = net::IPv4Address::parse(std::string(fields[7]));
    const auto new_addr = net::IPv4Address::parse(std::string(fields[8]));
    const auto duration = parse_i64(fields[9]);
    if (!probe || !client || !at || !lost || !root || !kind || !site ||
        !old_addr || !new_addr || !duration || *probe < 0 || *client < 0 ||
        *duration < 0)
        return std::nullopt;
    r.probe = std::uint64_t(*probe);
    r.client = std::uint64_t(*client);
    r.at = net::TimePoint{*at};
    r.lost_at = net::TimePoint{*lost};
    r.root_at = net::TimePoint{*root};
    r.kind = *kind;
    r.site = *site;
    r.old_addr = *old_addr;
    r.new_addr = *new_addr;
    r.root_duration = net::Duration{*duration};
    return r;
}

}  // namespace

std::string cause_ledger_to_csv(const std::vector<CauseRecord>& records) {
    std::string out{kCsvHeader};
    out += '\n';
    for (const auto& r : records) append_csv_row(out, r);
    return out;
}

std::vector<CauseRecord> cause_ledger_from_csv(std::string_view text,
                                               bool strict,
                                               CauseDecodeStats* stats) {
    std::vector<CauseRecord> records;
    bool saw_header = false;
    std::size_t lineno = 0;
    while (!text.empty()) {
        ++lineno;
        const std::size_t nl = text.find('\n');
        std::string_view line = text.substr(0, nl);
        text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (line.empty()) continue;
        if (!saw_header) {
            saw_header = true;
            if (line == kCsvHeader) continue;
            if (strict)
                throw ParseError("cause ledger CSV: bad header at line 1");
            if (stats != nullptr) ++stats->rows_rejected;
            continue;
        }
        if (auto record = parse_csv_row(line)) {
            records.push_back(*record);
        } else if (strict) {
            throw ParseError("cause ledger CSV: bad row at line " +
                             std::to_string(lineno));
        } else if (stats != nullptr) {
            ++stats->rows_rejected;
        }
    }
    return records;
}

// -- DCL1 columnar block format ------------------------------------------
//
// Layout:
//   header  'D' 'C' 'L' '1'
//   block   0xB1, varint payload_len, payload:
//             varint count, then per-column arrays over `count` rows:
//             probe/client/at as zigzag deltas (reset per block),
//             at-lost_at and at-root_at as zigzag, kind/site raw bytes,
//             old/new address as u32 varints, root_duration as zigzag.
//   footer  0xFE, varint block_count, varint absolute block offsets
//   tail    u64 LE footer offset, 'D' 'C' 'L' 'E'
//
// Strict decode demands contiguous blocks, a valid footer index and
// in-range enum values; lenient decode walks blocks sequentially and
// drops what does not parse.

namespace {

constexpr char kMagic[4] = {'D', 'C', 'L', '1'};
constexpr char kTailMagic[4] = {'D', 'C', 'L', 'E'};
constexpr std::uint8_t kBlockTag = 0xB1;
constexpr std::uint8_t kFooterTag = 0xFE;

void put_varint(std::string& out, std::uint64_t value) {
    while (value >= 0x80) {
        out.push_back(char(std::uint8_t(value) | 0x80));
        value >>= 7;
    }
    out.push_back(char(std::uint8_t(value)));
}

std::uint64_t zigzag(std::int64_t value) {
    return (std::uint64_t(value) << 1) ^ std::uint64_t(value >> 63);
}

std::int64_t unzigzag(std::uint64_t value) {
    return std::int64_t(value >> 1) ^ -std::int64_t(value & 1);
}

/// Bounded byte cursor; every read throws ParseError past the end.
struct Cursor {
    const std::uint8_t* p;
    const std::uint8_t* end;

    std::uint8_t u8() {
        if (p >= end) throw ParseError("cause ledger: truncated");
        return *p++;
    }
    std::uint64_t varint() {
        std::uint64_t value = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            const std::uint8_t byte = u8();
            value |= std::uint64_t(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0) return value;
        }
        throw ParseError("cause ledger: varint overflow");
    }
    [[nodiscard]] std::size_t remaining() const { return std::size_t(end - p); }
};

void encode_block(std::string& out, const CauseRecord* rows, std::size_t n) {
    std::string payload;
    put_varint(payload, n);
    std::int64_t prev_probe = 0, prev_client = 0, prev_at = 0;
    for (std::size_t i = 0; i < n; ++i) {
        put_varint(payload, zigzag(std::int64_t(rows[i].probe) - prev_probe));
        prev_probe = std::int64_t(rows[i].probe);
    }
    for (std::size_t i = 0; i < n; ++i) {
        put_varint(payload, zigzag(std::int64_t(rows[i].client) - prev_client));
        prev_client = std::int64_t(rows[i].client);
    }
    for (std::size_t i = 0; i < n; ++i) {
        put_varint(payload, zigzag(rows[i].at.unix_seconds() - prev_at));
        prev_at = rows[i].at.unix_seconds();
    }
    for (std::size_t i = 0; i < n; ++i)
        put_varint(payload, zigzag((rows[i].at - rows[i].lost_at).count()));
    for (std::size_t i = 0; i < n; ++i)
        put_varint(payload, zigzag((rows[i].at - rows[i].root_at).count()));
    for (std::size_t i = 0; i < n; ++i)
        payload.push_back(char(std::uint8_t(rows[i].kind)));
    for (std::size_t i = 0; i < n; ++i)
        payload.push_back(char(std::uint8_t(rows[i].site)));
    for (std::size_t i = 0; i < n; ++i)
        put_varint(payload, rows[i].old_addr.value());
    for (std::size_t i = 0; i < n; ++i)
        put_varint(payload, rows[i].new_addr.value());
    for (std::size_t i = 0; i < n; ++i)
        put_varint(payload, zigzag(rows[i].root_duration.count()));
    out.push_back(char(kBlockTag));
    put_varint(out, payload.size());
    out += payload;
}

/// Decodes one block payload. `strict` rejects out-of-range enums with
/// ParseError; lenient drops those rows into `stats`.
void decode_block_payload(Cursor cursor, std::vector<CauseRecord>& out,
                          bool strict, CauseDecodeStats* stats) {
    const std::uint64_t n = cursor.varint();
    // A row costs at least 10 bytes across its columns; this bounds
    // hostile counts before any allocation.
    if (n > cursor.remaining())
        throw ParseError("cause ledger: block count exceeds payload");
    std::vector<CauseRecord> rows(n);
    std::int64_t probe = 0, client = 0, at = 0;
    for (auto& r : rows) {
        probe += unzigzag(cursor.varint());
        r.probe = std::uint64_t(probe);
    }
    for (auto& r : rows) {
        client += unzigzag(cursor.varint());
        r.client = std::uint64_t(client);
    }
    for (auto& r : rows) {
        at += unzigzag(cursor.varint());
        r.at = net::TimePoint{at};
    }
    for (auto& r : rows)
        r.lost_at = r.at - net::Duration{unzigzag(cursor.varint())};
    for (auto& r : rows)
        r.root_at = r.at - net::Duration{unzigzag(cursor.varint())};
    for (auto& r : rows) r.kind = CauseKind(cursor.u8());
    for (auto& r : rows) r.site = CauseSite(cursor.u8());
    for (auto& r : rows) r.old_addr = net::IPv4Address{std::uint32_t(cursor.varint())};
    for (auto& r : rows) r.new_addr = net::IPv4Address{std::uint32_t(cursor.varint())};
    for (auto& r : rows)
        r.root_duration = net::Duration{unzigzag(cursor.varint())};
    if (cursor.remaining() != 0)
        throw ParseError("cause ledger: trailing bytes in block payload");
    for (auto& r : rows) {
        const bool valid = std::size_t(r.kind) < kCauseKindCount &&
                           std::size_t(r.site) < kCauseSiteCount;
        if (valid) {
            out.push_back(r);
        } else if (strict) {
            throw ParseError("cause ledger: out-of-range cause enum");
        } else if (stats != nullptr) {
            ++stats->rows_rejected;
        }
    }
}

}  // namespace

bool is_cause_ledger_binary(std::string_view bytes) {
    return bytes.size() >= 4 &&
           std::equal(kMagic, kMagic + 4, bytes.begin());
}

std::string encode_cause_ledger(const std::vector<CauseRecord>& records) {
    constexpr std::size_t kBlockRecords = 512;
    std::string out(kMagic, 4);
    std::vector<std::uint64_t> offsets;
    for (std::size_t i = 0; i < records.size(); i += kBlockRecords) {
        offsets.push_back(out.size());
        encode_block(out, records.data() + i,
                     std::min(kBlockRecords, records.size() - i));
    }
    const std::uint64_t footer_at = out.size();
    out.push_back(char(kFooterTag));
    put_varint(out, offsets.size());
    for (std::uint64_t offset : offsets) put_varint(out, offset);
    for (int i = 0; i < 8; ++i)
        out.push_back(char(std::uint8_t(footer_at >> (8 * i))));
    out.append(kTailMagic, 4);
    return out;
}

namespace {

std::vector<CauseRecord> decode_strict(std::string_view bytes) {
    if (!is_cause_ledger_binary(bytes))
        throw ParseError("cause ledger: bad magic");
    if (bytes.size() < 4 + 1 + 1 + 8 + 4)
        throw ParseError("cause ledger: too short");
    const auto* base = reinterpret_cast<const std::uint8_t*>(bytes.data());
    if (!std::equal(kTailMagic, kTailMagic + 4, bytes.end() - 4))
        throw ParseError("cause ledger: bad tail magic");
    std::uint64_t footer_at = 0;
    for (int i = 0; i < 8; ++i)
        footer_at |= std::uint64_t(base[bytes.size() - 12 + i]) << (8 * i);
    if (footer_at < 4 || footer_at > bytes.size() - 12)
        throw ParseError("cause ledger: footer offset out of range");
    Cursor footer{base + footer_at, base + bytes.size() - 12};
    if (footer.u8() != kFooterTag)
        throw ParseError("cause ledger: bad footer tag");
    const std::uint64_t block_count = footer.varint();
    if (block_count > bytes.size())
        throw ParseError("cause ledger: absurd block count");
    std::vector<std::uint64_t> offsets(block_count);
    for (auto& offset : offsets) offset = footer.varint();
    if (footer.remaining() != 0)
        throw ParseError("cause ledger: trailing bytes after footer");

    std::vector<CauseRecord> records;
    std::uint64_t expect = 4;  // first block starts right after the header
    for (std::uint64_t offset : offsets) {
        if (offset != expect)
            throw ParseError("cause ledger: non-contiguous block offset");
        Cursor cursor{base + offset, base + footer_at};
        if (cursor.u8() != kBlockTag)
            throw ParseError("cause ledger: bad block tag");
        const std::uint64_t payload_len = cursor.varint();
        if (payload_len > cursor.remaining())
            throw ParseError("cause ledger: block payload out of range");
        const std::uint8_t* payload = cursor.p;
        decode_block_payload({payload, payload + payload_len}, records,
                             /*strict=*/true, nullptr);
        expect = std::uint64_t(payload + payload_len - base);
    }
    if (expect != footer_at)
        throw ParseError("cause ledger: gap between blocks and footer");
    return records;
}

std::vector<CauseRecord> decode_lenient(std::string_view bytes,
                                        CauseDecodeStats* stats) {
    std::vector<CauseRecord> records;
    if (!is_cause_ledger_binary(bytes)) {
        if (stats != nullptr) ++stats->blocks_rejected;
        return records;
    }
    const auto* base = reinterpret_cast<const std::uint8_t*>(bytes.data());
    std::size_t data_end = bytes.size();
    if (data_end >= 12 &&
        std::equal(kTailMagic, kTailMagic + 4, bytes.end() - 4)) {
        std::uint64_t footer_at = 0;
        for (int i = 0; i < 8; ++i)
            footer_at |= std::uint64_t(base[bytes.size() - 12 + i]) << (8 * i);
        if (footer_at >= 4 && footer_at <= bytes.size() - 12)
            data_end = std::size_t(footer_at);
    }
    Cursor cursor{base + 4, base + data_end};
    while (cursor.remaining() > 0) {
        try {
            const std::uint8_t tag = cursor.u8();
            if (tag == kFooterTag) break;
            if (tag != kBlockTag) {
                if (stats != nullptr) ++stats->blocks_rejected;
                break;  // framing lost; no resync marker inside blocks
            }
            const std::uint64_t payload_len = cursor.varint();
            if (payload_len > cursor.remaining())
                throw ParseError("cause ledger: block payload out of range");
            const std::uint8_t* payload = cursor.p;
            cursor.p += payload_len;  // next block regardless of outcome
            try {
                decode_block_payload({payload, payload + payload_len}, records,
                                     /*strict=*/false, stats);
            } catch (const ParseError&) {
                if (stats != nullptr) ++stats->blocks_rejected;
            }
        } catch (const ParseError&) {
            if (stats != nullptr) ++stats->blocks_rejected;
            break;
        }
    }
    return records;
}

}  // namespace

std::vector<CauseRecord> decode_cause_ledger(std::string_view bytes,
                                             bool strict,
                                             CauseDecodeStats* stats) {
    return strict ? decode_strict(bytes) : decode_lenient(bytes, stats);
}

std::vector<CauseRecord> read_cause_ledger_file(const std::string& path,
                                                CauseDecodeStats* stats) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot open cause ledger: " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (is_cause_ledger_binary(data))
        return decode_cause_ledger(data, /*strict=*/false, stats);
    return cause_ledger_from_csv(data, /*strict=*/false, stats);
}

// -- streaming writers ----------------------------------------------------

struct CsvCauseWriter::Impl {
    std::ofstream out;
    std::string buffer;
};

CsvCauseWriter::CsvCauseWriter(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
    impl_->out.open(path, std::ios::binary | std::ios::trunc);
    if (!impl_->out) throw Error("cannot write cause ledger: " + path);
    impl_->out << kCsvHeader << '\n';
}

CsvCauseWriter::~CsvCauseWriter() = default;

void CsvCauseWriter::append(const CauseRecord& record) {
    impl_->buffer.clear();
    append_csv_row(impl_->buffer, record);
    impl_->out << impl_->buffer;
}

void CsvCauseWriter::close() { impl_->out.flush(); }

struct BinaryCauseWriter::Impl {
    std::ofstream out;
    std::size_t block_records;
    std::vector<CauseRecord> pending;
    std::vector<std::uint64_t> offsets;
    std::uint64_t written = 0;
    bool closed = false;

    void flush_block() {
        if (pending.empty()) return;
        std::string bytes;
        encode_block(bytes, pending.data(), pending.size());
        offsets.push_back(written);
        out.write(bytes.data(), std::streamsize(bytes.size()));
        written += bytes.size();
        pending.clear();
    }
};

BinaryCauseWriter::BinaryCauseWriter(const std::string& path,
                                     std::size_t block_records)
    : impl_(std::make_unique<Impl>()) {
    impl_->block_records = std::max<std::size_t>(1, block_records);
    impl_->out.open(path, std::ios::binary | std::ios::trunc);
    if (!impl_->out) throw Error("cannot write cause ledger: " + path);
    impl_->out.write(kMagic, 4);
    impl_->written = 4;
}

BinaryCauseWriter::~BinaryCauseWriter() = default;

void BinaryCauseWriter::append(const CauseRecord& record) {
    impl_->pending.push_back(record);
    if (impl_->pending.size() >= impl_->block_records) impl_->flush_block();
}

void BinaryCauseWriter::close() {
    if (impl_->closed) return;
    impl_->closed = true;
    impl_->flush_block();
    std::string tail;
    const std::uint64_t footer_at = impl_->written;
    tail.push_back(char(kFooterTag));
    put_varint(tail, impl_->offsets.size());
    for (std::uint64_t offset : impl_->offsets) put_varint(tail, offset);
    for (int i = 0; i < 8; ++i)
        tail.push_back(char(std::uint8_t(footer_at >> (8 * i))));
    tail.append(kTailMagic, 4);
    impl_->out.write(tail.data(), std::streamsize(tail.size()));
    impl_->out.flush();
}

}  // namespace dynaddr::sim

#include "sim/simulation.hpp"

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"

namespace dynaddr::sim {

Simulation::Simulation(net::TimePoint start) : now_(start) {
    obs::push_sim_clock(&now_);
}

Simulation::~Simulation() { obs::pop_sim_clock(&now_); }

EventId Simulation::at(net::TimePoint when, EventQueue::Callback callback) {
    if (when < now_)
        throw Error("scheduling event in the past: " + when.to_string() +
                    " < " + now_.to_string());
    return queue_.schedule(when, std::move(callback));
}

EventId Simulation::after(net::Duration delay, EventQueue::Callback callback) {
    if (delay < net::Duration{0}) throw Error("negative event delay");
    return queue_.schedule(now_ + delay, std::move(callback));
}

EventId Simulation::every(net::TimePoint first, net::Duration period,
                          EventQueue::Callback callback) {
    if (first < now_)
        throw Error("scheduling periodic event in the past: " +
                    first.to_string() + " < " + now_.to_string());
    return queue_.schedule_every(first, period, std::move(callback));
}

std::uint64_t Simulation::run_until(net::TimePoint end) {
    std::uint64_t ran = 0;
    while (auto next = queue_.next_time()) {
        if (*next > end) break;
        now_ = *next;
        queue_.run_next();
        ++ran;
        ++executed_;
    }
    if (end > now_) now_ = end;
    return ran;
}

std::uint64_t Simulation::run_all() {
    std::uint64_t ran = 0;
    while (auto next = queue_.next_time()) {
        now_ = *next;
        queue_.run_next();
        ++ran;
        ++executed_;
    }
    return ran;
}

}  // namespace dynaddr::sim

#include "sim/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/progress.hpp"
#include "netcore/obs/timeseries.hpp"

namespace dynaddr::sim {

namespace {
struct SimMetrics {
    /// Rate-worthy twin of the end-of-run `scenario.sim_events` total:
    /// incremented per event so the time-series recorder can chart event
    /// throughput over simulated time.
    obs::Counter& executed = obs::counter("sim.events_executed");
};
SimMetrics& sim_metrics() {
    static SimMetrics metrics;
    return metrics;
}
}  // namespace

Simulation::Simulation(net::TimePoint start) : now_(start) {
    obs::push_sim_clock(&now_);
    // Live observability: while this simulation exists, time-series
    // samples follow simulated time. The tick is a pure observer (it only
    // reads metric atomics), so its interleaving cannot perturb the world.
    auto& recorder = obs::SeriesRecorder::instance();
    if (recorder.enabled()) {
        recorder.sim_attached();
        series_attached_ = true;
        const auto period = net::Duration::seconds(std::max<std::int64_t>(
            1, std::llround(recorder.config().interval_seconds)));
        queue_.schedule_every(start + period, period, [](net::TimePoint t) {
            obs::SeriesRecorder::instance().sample(
                double(t.unix_seconds()));
        });
    }
}

Simulation::~Simulation() {
    if (series_attached_) obs::SeriesRecorder::instance().sim_detached();
    obs::pop_sim_clock(&now_);
}

EventId Simulation::at(net::TimePoint when, EventQueue::Callback callback) {
    if (when < now_)
        throw Error("scheduling event in the past: " + when.to_string() +
                    " < " + now_.to_string());
    return queue_.schedule(when, std::move(callback));
}

EventId Simulation::after(net::Duration delay, EventQueue::Callback callback) {
    if (delay < net::Duration{0}) throw Error("negative event delay");
    return queue_.schedule(now_ + delay, std::move(callback));
}

EventId Simulation::every(net::TimePoint first, net::Duration period,
                          EventQueue::Callback callback) {
    if (first < now_)
        throw Error("scheduling periodic event in the past: " +
                    first.to_string() + " < " + now_.to_string());
    return queue_.schedule_every(first, period, std::move(callback));
}

std::uint64_t Simulation::run_until(net::TimePoint end) {
    std::uint64_t ran = 0;
    while (auto next = queue_.next_time()) {
        if (*next > end) break;
        now_ = *next;
        queue_.run_next();
        ++ran;
        ++executed_;
        // Per-event (not bulk at return) so recorder ticks that fire
        // mid-run see a moving count — the series is a real rate.
        sim_metrics().executed.inc();
        // Progress watermarks for /top: two relaxed stores per event.
        obs::progress_note_sim_time(now_);
        obs::progress_note_events(executed_);
    }
    if (end > now_) now_ = end;
    return ran;
}

std::uint64_t Simulation::run_all() {
    std::uint64_t ran = 0;
    while (auto next = queue_.next_time()) {
        now_ = *next;
        queue_.run_next();
        ++ran;
        ++executed_;
        sim_metrics().executed.inc();
        obs::progress_note_sim_time(now_);
        obs::progress_note_events(executed_);
    }
    return ran;
}

}  // namespace dynaddr::sim

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netcore/obs/memaccount.hpp"
#include "netcore/time.hpp"
#include "sim/inline_callback.hpp"

namespace dynaddr::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
///
/// Ids are generation-stamped: the low half names a slot in the engine's
/// event slab, the high half the slot's generation at scheduling time. A
/// reused slot gets a new generation, so a stale id can never cancel an
/// unrelated later event.
struct EventId {
    std::uint64_t value = 0;
    friend constexpr auto operator<=>(EventId, EventId) = default;
};

/// A time-ordered queue of callbacks — the simulation's event engine.
///
/// Implementation: a three-level hierarchical timer wheel (256 buckets per
/// level at 1 s / 256 s / 65536 s granularity, covering ~194 days from the
/// current cursor) backed by a 4-ary min-heap for far-future events.
/// Scheduling and cancellation are O(1); finding the next event is a
/// bitmap scan plus amortised cascading. Events at equal times fire in
/// scheduling order (FIFO, via per-event sequence numbers), which keeps
/// runs deterministic. Cancellation is O(1) by id: the event is
/// tombstoned in place and reclaimed lazily when the wheel reaches it.
///
/// Periodic events (`schedule_every`) fire on a fixed cadence and
/// reschedule in place — one slab slot and one callback for the lifetime
/// of the recurrence, no per-firing allocation. Their id stays valid
/// across firings; cancel() stops the recurrence.
class EventQueue {
public:
    using Callback = InlineCallback;

    EventQueue();
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /// Schedules `callback` at absolute time `when`. Returns an id usable
    /// with cancel().
    EventId schedule(net::TimePoint when, Callback callback);

    /// Schedules a recurring callback: first firing at `first`, then every
    /// `period` (> 0) after, forever (until cancelled). The returned id
    /// stays valid across firings.
    EventId schedule_every(net::TimePoint first, net::Duration period,
                           Callback callback);

    /// Removes a pending event in O(1) (lazy tombstone; storage is
    /// reclaimed when the wheel reaches it). Returns false when the event
    /// already fired or was cancelled.
    bool cancel(EventId id);

    /// Time of the earliest pending event. May advance internal cursors
    /// (cascading wheel levels, pruning tombstones) but never observable
    /// state.
    [[nodiscard]] std::optional<net::TimePoint> next_time();

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }

    /// Pops and runs the earliest event; returns false when empty.
    bool run_next();

private:
    static constexpr int kLevels = 3;
    static constexpr int kSlotBits = 8;
    static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;
    static constexpr std::uint32_t kSlotMask = kSlotsPerLevel - 1;
    /// Horizon of the wheel: events further out live in the overflow heap.
    static constexpr std::int64_t kWheelSpan = std::int64_t(1)
                                               << (kSlotBits * kLevels);
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    enum class State : std::uint8_t { Free, Pending, Firing, Cancelled };

    struct Event {
        std::int64_t when = 0;     ///< absolute fire time, unix seconds
        std::uint64_t seq = 0;     ///< FIFO tiebreak at equal times
        std::int64_t period = 0;   ///< 0 = one-shot
        std::uint32_t gen = 1;     ///< bumped on slot reuse
        std::uint32_t next = kNil; ///< bucket chain / free-list link
        State state = State::Free;
        InlineCallback cb;
    };

    struct HeapEntry {
        std::int64_t when;
        std::uint64_t seq;
        std::uint32_t slot;
        [[nodiscard]] bool before(const HeapEntry& o) const {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    EventId schedule_impl(std::int64_t when, std::int64_t period, Callback cb);
    std::uint32_t alloc_slot();
    void free_slot(std::uint32_t slot);
    /// Places a pending slot into the wheel, ready list or heap.
    void place(std::uint32_t slot);
    void ready_insert(std::uint32_t slot);
    void bucket_append(int level, std::uint32_t index, std::uint32_t slot);
    /// Detaches a level-0 bucket into ready_, sorted by (when, seq).
    void detach_into_ready(std::uint32_t index);
    /// Redistributes an upper-level bucket to lower levels.
    void cascade(int level, std::uint32_t index);
    void heap_push(HeapEntry entry);
    void heap_pop();
    /// Moves heap events now inside the wheel horizon into the wheel and
    /// drops cancelled heap tops.
    void migrate_heap();
    /// Index of the first occupied bucket at `level`, scanning rotated
    /// from the cursor's position; -1 when the level is empty.
    [[nodiscard]] int first_occupied(int level) const;
    /// Ensures ready_ holds the earliest pending event at its front.
    /// Returns its time, or nullopt when the queue is empty.
    std::optional<std::int64_t> find_next();

    std::vector<Event> slab_;
    std::uint32_t free_head_ = kNil;
    std::vector<HeapEntry> heap_;

    std::uint32_t bucket_head_[kLevels][kSlotsPerLevel];
    std::uint32_t bucket_tail_[kLevels][kSlotsPerLevel];
    std::uint64_t occupied_[kLevels][kSlotsPerLevel / 64] = {};

    /// Detached current-second events, sorted by (when, seq); front at
    /// ready_head_.
    std::vector<std::uint32_t> ready_;
    std::size_t ready_head_ = 0;

    bool started_ = false;       ///< cursor_ is meaningful
    std::int64_t cursor_ = 0;    ///< wheel position; <= every pending when
    std::int64_t ready_second_ = 0;  ///< second last detached into ready_

    std::uint64_t next_seq_ = 0;
    std::size_t size_ = 0;

    /// Capacity accounting (mem.sim.event_queue): slab + overflow heap +
    /// ready list, published through owner-side atomics. Amortized like
    /// the pool's metrics flush so the schedule/fire hot path pays a
    /// counter increment, not a publish, most of the time.
    void note_mem_op() {
        if ((++mem_ops_ & (kMemFlushOps - 1)) == 0) publish_mem();
    }
    void publish_mem();
    static constexpr std::uint64_t kMemFlushOps = 64;
    std::uint64_t mem_ops_ = 0;
    obs::MemRegistration mem_{"sim.event_queue"};
};

}  // namespace dynaddr::sim

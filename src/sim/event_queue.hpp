#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "netcore/time.hpp"

namespace dynaddr::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
    std::uint64_t value = 0;
    friend constexpr auto operator<=>(EventId, EventId) = default;
};

/// A time-ordered queue of callbacks.
///
/// Events at equal times fire in scheduling order (FIFO), which keeps
/// runs deterministic. Cancellation is O(log n) by id.
class EventQueue {
public:
    using Callback = std::function<void(net::TimePoint)>;

    /// Schedules `callback` at absolute time `when`. Returns an id usable
    /// with cancel().
    EventId schedule(net::TimePoint when, Callback callback);

    /// Removes a pending event. Returns false when the event already fired
    /// or was cancelled.
    bool cancel(EventId id);

    /// Time of the earliest pending event.
    [[nodiscard]] std::optional<net::TimePoint> next_time() const;

    [[nodiscard]] bool empty() const { return events_.empty(); }
    [[nodiscard]] std::size_t size() const { return events_.size(); }

    /// Pops and runs the earliest event; returns false when empty.
    bool run_next();

private:
    struct Key {
        net::TimePoint when;
        std::uint64_t sequence;
        friend constexpr auto operator<=>(const Key&, const Key&) = default;
    };
    std::map<Key, Callback> events_;
    std::map<std::uint64_t, Key> key_by_id_;
    std::uint64_t next_sequence_ = 1;
};

}  // namespace dynaddr::sim

#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"

DYNADDR_LOG_MODULE(faults);

namespace dynaddr::sim {

namespace {

constexpr net::TimePoint kNever{std::numeric_limits<std::int64_t>::max()};

/// Injection counters, one set per access link plus the input side.
struct FaultMetrics {
    obs::Counter& dhcp_dropped = obs::counter("faults.dhcp.dropped");
    obs::Counter& dhcp_deferred = obs::counter("faults.dhcp.deferred");
    obs::Counter& dhcp_corrupted = obs::counter("faults.dhcp.corrupted");
    obs::Counter& dhcp_duplicated = obs::counter("faults.dhcp.duplicated");
    obs::Counter& ppp_dropped = obs::counter("faults.ppp.dropped");
    obs::Counter& ppp_deferred = obs::counter("faults.ppp.deferred");
    obs::Counter& ppp_corrupted = obs::counter("faults.ppp.corrupted");
    obs::Counter& ppp_duplicated = obs::counter("faults.ppp.duplicated");
    obs::Counter& csv_garbled = obs::counter("faults.csv.rows_garbled");
    obs::Counter& binary_garbled = obs::counter("faults.binary.cells_garbled");
};

FaultMetrics& fault_metrics() {
    static FaultMetrics metrics;
    return metrics;
}

FaultInjector* g_injector = nullptr;

FaultLink link_for(FaultSite site) {
    switch (site) {
        case FaultSite::DhcpDiscover:
        case FaultSite::DhcpRequest:
        case FaultSite::DhcpRenew:
        case FaultSite::DhcpRelease:
            return FaultLink::Dhcp;
        case FaultSite::RadiusAuthorize:
        case FaultSite::RadiusAccounting:
            return FaultLink::Ppp;
        default:
            throw Error("fault site has no message link");
    }
}

void count_decision(FaultLink link, MessageDecision::Kind kind) {
    FaultMetrics& metrics = fault_metrics();
    const bool dhcp = link == FaultLink::Dhcp;
    switch (kind) {
        case MessageDecision::Kind::Drop:
            (dhcp ? metrics.dhcp_dropped : metrics.ppp_dropped).inc();
            break;
        case MessageDecision::Kind::Defer:
            (dhcp ? metrics.dhcp_deferred : metrics.ppp_deferred).inc();
            break;
        case MessageDecision::Kind::Corrupt:
            (dhcp ? metrics.dhcp_corrupted : metrics.ppp_corrupted).inc();
            break;
        case MessageDecision::Kind::Duplicate:
            (dhcp ? metrics.dhcp_duplicated : metrics.ppp_duplicated).inc();
            break;
        case MessageDecision::Kind::Deliver:
            break;
    }
}

double parse_number(const std::string& key, const std::string& value) {
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw Error("trailing junk");
        return parsed;
    } catch (const std::exception&) {
        throw Error("bad fault-plan value '" + value + "' for '" + key + "'");
    }
}

void apply_key(FaultPlan& plan, const std::string& key,
               const std::string& value) {
    const double v = key == "seed" ? 0.0 : parse_number(key, value);
    auto message_key = [&](MessageFaults& link,
                           std::string_view suffix) -> bool {
        if (suffix == "drop") link.drop = v;
        else if (suffix == "dup") link.duplicate = v;
        else if (suffix == "delay") link.delay = v;
        else if (suffix == "delay-mean") link.delay_mean_s = v;
        else if (suffix == "corrupt") link.corrupt = v;
        else if (suffix == "burst-p") link.burst_p = v;
        else if (suffix == "burst-r") link.burst_r = v;
        else if (suffix == "burst-drop") link.burst_drop = v;
        else return false;
        return true;
    };
    auto crash_key = [&](CrashFaults& crash, std::string_view suffix) -> bool {
        if (suffix == "rate") crash.crashes_per_day = v;
        else if (suffix == "down-mean") crash.downtime_mean_s = v;
        else if (suffix == "amnesia") crash.amnesia = v;
        else return false;
        return true;
    };

    if (key == "seed") {
        try {
            plan.seed = std::stoull(value);
        } catch (const std::exception&) {
            throw Error("bad fault-plan seed '" + value + "'");
        }
        return;
    }
    if (key == "active") {
        if (v <= 0.0 || v > 1.0)
            throw Error("fault-plan 'active' must be in (0, 1]");
        plan.active_fraction = v;
        return;
    }
    if (key.rfind("dhcp.", 0) == 0 && message_key(plan.dhcp, key.substr(5)))
        return;
    if (key.rfind("ppp.", 0) == 0 && message_key(plan.ppp, key.substr(4)))
        return;
    if (key.rfind("dhcp-server.", 0) == 0 &&
        crash_key(plan.dhcp_server, key.substr(12)))
        return;
    if (key.rfind("radius-server.", 0) == 0 &&
        crash_key(plan.radius_server, key.substr(14)))
        return;
    if (key == "pool.rate") { plan.exhaustion.windows_per_day = v; return; }
    if (key == "pool.down-mean") { plan.exhaustion.duration_mean_s = v; return; }
    if (key == "cpe.rate") { plan.storms.storms_per_day = v; return; }
    if (key == "cpe.fraction") { plan.storms.cpe_fraction = v; return; }
    if (key == "cpe.down-mean") { plan.storms.downtime_mean_s = v; return; }
    if (key == "cpe.spread") { plan.storms.spread_s = v; return; }
    if (key == "csv.rate") { plan.csv.row_rate = v; return; }
    throw Error("unknown fault-plan key '" + key + "'");
}

void apply_profile(FaultPlan& plan, const std::string& name) {
    auto lossy = [&] { plan.dhcp.drop = 0.15; plan.ppp.drop = 0.15; };
    auto bursty = [&] {
        for (MessageFaults* link : {&plan.dhcp, &plan.ppp}) {
            link->burst_p = 0.05;
            link->burst_r = 0.3;
            link->burst_drop = 0.9;
        }
    };
    auto flaky = [&] {
        for (MessageFaults* link : {&plan.dhcp, &plan.ppp}) {
            link->delay = 0.2;
            link->delay_mean_s = 5.0;
            link->duplicate = 0.05;
            link->corrupt = 0.05;
        }
    };
    auto crashy = [&] {
        plan.dhcp_server = {4.0, 1800.0, 0.5};
        plan.radius_server = {4.0, 600.0, 0.5};
    };
    auto storms = [&] { plan.storms = {2.0, 0.3, 180.0, 900.0}; };
    auto exhaustion = [&] { plan.exhaustion = {2.0, 3600.0}; };
    auto garbage = [&] { plan.csv.row_rate = 0.02; };

    if (name == "lossy") lossy();
    else if (name == "bursty") bursty();
    else if (name == "flaky") flaky();
    else if (name == "crashy") crashy();
    else if (name == "storms") storms();
    else if (name == "exhaustion") exhaustion();
    else if (name == "garbage") garbage();
    else if (name == "chaos") {
        plan.dhcp.drop = plan.ppp.drop = 0.08;
        bursty();
        flaky();
        plan.dhcp_server = {2.0, 900.0, 0.5};
        plan.radius_server = {2.0, 600.0, 0.5};
        plan.storms = {1.0, 0.2, 180.0, 900.0};
        plan.exhaustion = {1.0, 1800.0};
        garbage();
    } else {
        throw Error("unknown fault profile '" + name + "'");
    }
}

std::string trimmed(std::string_view text) {
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) return {};
    const auto last = text.find_last_not_of(" \t\r");
    return std::string(text.substr(first, last - first + 1));
}

void append_number(std::string& out, const char* key, double value,
                   double base) {
    if (value == base) return;
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%s=%.17g", key, value);
    if (!out.empty()) out.push_back(',');
    out += buffer;
}

void append_message(std::string& out, const char* prefix,
                    const MessageFaults& link) {
    const MessageFaults base;
    auto key = [&](const char* suffix) {
        return std::string(prefix) + "." + suffix;
    };
    append_number(out, key("drop").c_str(), link.drop, base.drop);
    append_number(out, key("dup").c_str(), link.duplicate, base.duplicate);
    append_number(out, key("delay").c_str(), link.delay, base.delay);
    append_number(out, key("delay-mean").c_str(), link.delay_mean_s,
                  base.delay_mean_s);
    append_number(out, key("corrupt").c_str(), link.corrupt, base.corrupt);
    append_number(out, key("burst-p").c_str(), link.burst_p, base.burst_p);
    append_number(out, key("burst-r").c_str(), link.burst_r, base.burst_r);
    append_number(out, key("burst-drop").c_str(), link.burst_drop,
                  base.burst_drop);
}

void append_crash(std::string& out, const char* prefix,
                  const CrashFaults& crash) {
    const CrashFaults base;
    auto key = [&](const char* suffix) {
        return std::string(prefix) + "." + suffix;
    };
    append_number(out, key("rate").c_str(), crash.crashes_per_day,
                  base.crashes_per_day);
    append_number(out, key("down-mean").c_str(), crash.downtime_mean_s,
                  base.downtime_mean_s);
    append_number(out, key("amnesia").c_str(), crash.amnesia, base.amnesia);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
    switch (site) {
        case FaultSite::DhcpDiscover: return "dhcp.discover";
        case FaultSite::DhcpRequest: return "dhcp.request";
        case FaultSite::DhcpRenew: return "dhcp.renew";
        case FaultSite::DhcpRelease: return "dhcp.release";
        case FaultSite::RadiusAuthorize: return "radius.authorize";
        case FaultSite::RadiusAccounting: return "radius.accounting";
        case FaultSite::DhcpServer: return "dhcp.server";
        case FaultSite::RadiusServer: return "radius.server";
        case FaultSite::Pool: return "pool";
        case FaultSite::Cpe: return "cpe";
        case FaultSite::Csv: return "csv";
    }
    return "?";
}

bool FaultPlan::any() const {
    return dhcp.any() || ppp.any() || dhcp_server.any() ||
           radius_server.any() || exhaustion.any() || storms.any() ||
           csv.any();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
    FaultPlan plan;
    // Files arrive as multi-line text: strip #-comments, then treat
    // newlines like commas.
    std::istringstream lines(spec);
    std::string line;
    while (std::getline(lines, line)) {
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::size_t pos = 0;
        while (pos <= line.size()) {
            auto comma = line.find(',', pos);
            if (comma == std::string::npos) comma = line.size();
            const std::string token =
                trimmed(std::string_view(line).substr(pos, comma - pos));
            pos = comma + 1;
            if (token.empty()) continue;
            if (const auto eq = token.find('='); eq != std::string::npos)
                apply_key(plan, trimmed(token.substr(0, eq)),
                          trimmed(token.substr(eq + 1)));
            else
                apply_profile(plan, token);
        }
    }
    return plan;
}

std::string FaultPlan::to_string() const {
    const FaultPlan base;
    std::string out;
    if (seed != base.seed) out += "seed=" + std::to_string(seed);
    append_number(out, "active", active_fraction, base.active_fraction);
    append_message(out, "dhcp", dhcp);
    append_message(out, "ppp", ppp);
    append_crash(out, "dhcp-server", dhcp_server);
    append_crash(out, "radius-server", radius_server);
    append_number(out, "pool.rate", exhaustion.windows_per_day, 0.0);
    append_number(out, "pool.down-mean", exhaustion.duration_mean_s, 3600.0);
    append_number(out, "cpe.rate", storms.storms_per_day, 0.0);
    append_number(out, "cpe.fraction", storms.cpe_fraction, 0.25);
    append_number(out, "cpe.down-mean", storms.downtime_mean_s, 180.0);
    append_number(out, "cpe.spread", storms.spread_s, 900.0);
    append_number(out, "csv.rate", csv.row_rate, 0.0);
    return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), root_(plan.seed), horizon_(kNever) {}

void FaultInjector::set_window(net::TimeInterval window) {
    const double length = double(window.length().count());
    horizon_ = window.begin +
               net::Duration{std::int64_t(length * plan_.active_fraction)};
}

FaultInjector::LinkState& FaultInjector::link_state(FaultLink link,
                                                    std::uint64_t entity) {
    auto& links = link == FaultLink::Dhcp ? dhcp_links_ : ppp_links_;
    auto it = links.find(entity);
    if (it == links.end()) {
        const char* name = link == FaultLink::Dhcp ? "dhcp-link" : "ppp-link";
        it = links.emplace(entity,
                           LinkState{root_.child(name).child(entity), false})
                 .first;
    }
    return it->second;
}

MessageDecision FaultInjector::on_message(FaultSite site, std::uint64_t entity,
                                          net::TimePoint now) {
    const FaultLink link = link_for(site);
    if (auto forced = forced_.find(site); forced != forced_.end()) {
        MessageDecision decision{forced->second, net::Duration{0}};
        if (decision.kind == MessageDecision::Kind::Defer)
            decision.defer = net::Duration{
                std::max<std::int64_t>(1, std::int64_t(faults_for(link).delay_mean_s))};
        count_decision(link, decision.kind);
        return decision;
    }
    if (now >= horizon_) return {};
    const MessageFaults& faults = faults_for(link);
    if (!faults.any()) return {};

    LinkState& state = link_state(link, entity);
    MessageDecision decision;
    bool dropped = false;
    if (faults.burst_p > 0) {
        // Gilbert-Elliott: advance the chain once per message.
        if (state.burst_bad) {
            if (state.stream.bernoulli(faults.burst_r)) state.burst_bad = false;
        } else {
            if (state.stream.bernoulli(faults.burst_p)) state.burst_bad = true;
        }
        if (state.burst_bad && state.stream.bernoulli(faults.burst_drop))
            dropped = true;
    }
    if (!dropped && faults.drop > 0 && state.stream.bernoulli(faults.drop))
        dropped = true;
    if (dropped) {
        decision.kind = MessageDecision::Kind::Drop;
    } else if (faults.corrupt > 0 && state.stream.bernoulli(faults.corrupt)) {
        decision.kind = MessageDecision::Kind::Corrupt;
    } else if (faults.delay > 0 && state.stream.bernoulli(faults.delay)) {
        decision.kind = MessageDecision::Kind::Defer;
        decision.defer = net::Duration{std::max<std::int64_t>(
            1, std::int64_t(state.stream.exponential(faults.delay_mean_s)))};
    } else if (faults.duplicate > 0 &&
               state.stream.bernoulli(faults.duplicate)) {
        decision.kind = MessageDecision::Kind::Duplicate;
    }
    if (decision.kind != MessageDecision::Kind::Deliver) {
        count_decision(link, decision.kind);
        DYNADDR_LOG(Trace, faults, "message fault at ", fault_site_name(site),
                    " entity ", entity, ": kind ", int(decision.kind));
    }
    return decision;
}

bool FaultInjector::corrupt_wire(FaultSite site, std::uint64_t entity,
                                 std::vector<std::uint8_t>& bytes) {
    LinkState& state = link_state(link_for(site), entity);
    rng::Stream& stream = state.stream;
    const auto op = stream.uniform_int(0, 2);
    if (op == 0 && !bytes.empty()) {
        // Flip 1..4 bytes.
        const auto flips = stream.uniform_int(1, 4);
        for (std::int64_t i = 0; i < flips; ++i) {
            const auto pos = std::size_t(
                stream.uniform_int(0, std::int64_t(bytes.size()) - 1));
            bytes[pos] ^= std::uint8_t(stream.uniform_int(1, 255));
        }
    } else if (op == 1 && !bytes.empty()) {
        // Truncate.
        bytes.resize(std::size_t(
            stream.uniform_int(0, std::int64_t(bytes.size()) - 1)));
    } else {
        // Extend with trailing garbage.
        const auto extra = stream.uniform_int(1, 8);
        for (std::int64_t i = 0; i < extra; ++i)
            bytes.push_back(std::uint8_t(stream.uniform_int(0, 255)));
    }
    return !bytes.empty();
}

void FaultInjector::corrupt_csv(std::string& text) {
    if (!plan_.csv.any()) return;
    rng::Stream stream = root_.child("csv").child(
        std::uint64_t(text.size()) ^ (std::uint64_t(text.size()) << 17));
    std::string out;
    out.reserve(text.size() + 64);
    std::size_t pos = 0;
    bool header = true;
    std::uint64_t garbled = 0;
    while (pos < text.size()) {
        auto eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (!header && !line.empty() &&
            stream.bernoulli(plan_.csv.row_rate)) {
            ++garbled;
            switch (stream.uniform_int(0, 3)) {
                case 0:  // truncate the row
                    line.resize(std::size_t(stream.uniform_int(
                        0, std::int64_t(line.size()) - 1)));
                    break;
                case 1: {  // garble a few bytes
                    const auto hits = stream.uniform_int(1, 6);
                    for (std::int64_t i = 0; i < hits && !line.empty(); ++i) {
                        const auto at = std::size_t(stream.uniform_int(
                            0, std::int64_t(line.size()) - 1));
                        char byte = char(stream.uniform_int(1, 255));
                        if (byte == '\n') byte = '?';
                        line[at] = byte;
                    }
                    break;
                }
                case 2: {  // eat one delimiter
                    if (const auto comma = line.find(',');
                        comma != std::string::npos)
                        line.erase(comma, 1);
                    break;
                }
                default: {  // splice: split the row mid-field
                    if (!line.empty())
                        line.insert(std::size_t(stream.uniform_int(
                                        0, std::int64_t(line.size()) - 1)),
                                    1, '\n');
                    break;
                }
            }
        }
        header = false;
        out += line;
        out.push_back('\n');
    }
    fault_metrics().csv_garbled.inc(garbled);
    if (garbled > 0)
        DYNADDR_LOG(Debug, faults, "garbled ", garbled, " CSV rows");
    text = std::move(out);
}

void FaultInjector::corrupt_binary(std::string& data, std::size_t begin,
                                   std::size_t end) {
    if (!plan_.csv.any()) return;
    end = std::min(end, data.size());
    if (begin >= end) return;
    rng::Stream stream = root_.child("binary").child(
        std::uint64_t(data.size()) ^ (std::uint64_t(end - begin) << 17));
    std::uint64_t garbled = 0;
    // One decision per 64-byte cell, the binary stand-in for a data row.
    for (std::size_t cell = begin; cell < end; cell += 64) {
        if (!stream.bernoulli(plan_.csv.row_rate)) continue;
        ++garbled;
        const std::size_t cell_end = std::min(cell + 64, end);
        const auto hits = stream.uniform_int(1, 6);
        for (std::int64_t i = 0; i < hits; ++i) {
            const auto at = cell + std::size_t(stream.uniform_int(
                                      0, std::int64_t(cell_end - cell) - 1));
            data[at] = char(stream.uniform_int(0, 255));
        }
    }
    fault_metrics().binary_garbled.inc(garbled);
    if (garbled > 0)
        DYNADDR_LOG(Debug, faults, "garbled ", garbled, " binary cells");
}

std::vector<FaultInjector::CrashEvent> FaultInjector::crash_schedule(
    FaultSite site, std::uint64_t index, net::TimeInterval window) {
    const CrashFaults& crash = site == FaultSite::DhcpServer
                                   ? plan_.dhcp_server
                                   : plan_.radius_server;
    std::vector<CrashEvent> events;
    if (!crash.any()) return events;
    rng::Stream stream =
        root_.child("sched").child(fault_site_name(site)).child(index);
    const net::TimePoint stop = std::min(horizon_, window.end);
    const double mean_gap_s = 86400.0 / crash.crashes_per_day;
    net::TimePoint t = window.begin;
    while (events.size() < 10000) {
        t += net::Duration{std::max<std::int64_t>(
            1, std::int64_t(stream.exponential(mean_gap_s)))};
        if (t >= stop) break;
        const net::Duration down{std::max<std::int64_t>(
            10, std::int64_t(stream.exponential(crash.downtime_mean_s)))};
        const bool amnesia = stream.bernoulli(crash.amnesia);
        events.push_back(CrashEvent{t, down, amnesia});
        t += down;
    }
    return events;
}

std::vector<FaultInjector::Window> FaultInjector::exhaustion_schedule(
    std::uint64_t index, net::TimeInterval window) {
    std::vector<Window> windows;
    if (!plan_.exhaustion.any()) return windows;
    rng::Stream stream = root_.child("sched").child("pool").child(index);
    const net::TimePoint stop = std::min(horizon_, window.end);
    const double mean_gap_s = 86400.0 / plan_.exhaustion.windows_per_day;
    net::TimePoint t = window.begin;
    while (windows.size() < 10000) {
        t += net::Duration{std::max<std::int64_t>(
            1, std::int64_t(stream.exponential(mean_gap_s)))};
        if (t >= stop) break;
        const net::Duration len{std::max<std::int64_t>(
            60,
            std::int64_t(stream.exponential(plan_.exhaustion.duration_mean_s)))};
        windows.push_back(Window{t, len});
        t += len;
    }
    return windows;
}

std::vector<net::TimePoint> FaultInjector::storm_schedule(
    net::TimeInterval window) {
    std::vector<net::TimePoint> storms;
    if (!plan_.storms.any()) return storms;
    rng::Stream stream = root_.child("sched").child("storms");
    const net::TimePoint stop = std::min(horizon_, window.end);
    const double mean_gap_s = 86400.0 / plan_.storms.storms_per_day;
    net::TimePoint t = window.begin;
    while (storms.size() < 10000) {
        t += net::Duration{std::max<std::int64_t>(
            1, std::int64_t(stream.exponential(mean_gap_s)))};
        if (t >= stop) break;
        storms.push_back(t);
    }
    return storms;
}

std::optional<FaultInjector::StormHit> FaultInjector::storm_hit(
    std::uint64_t storm_index, std::uint64_t cpe_index) {
    rng::Stream stream = root_.child("sched")
                             .child("storm-hit")
                             .child(storm_index)
                             .child(cpe_index);
    if (!stream.bernoulli(plan_.storms.cpe_fraction)) return std::nullopt;
    StormHit hit;
    hit.offset = net::Duration{
        stream.uniform_int(0, std::max<std::int64_t>(
                                  0, std::int64_t(plan_.storms.spread_s)))};
    hit.downtime = net::Duration{std::max<std::int64_t>(
        5, std::int64_t(stream.exponential(plan_.storms.downtime_mean_s)))};
    return hit;
}

void FaultInjector::force_site(FaultSite site,
                               std::optional<MessageDecision::Kind> kind) {
    if (kind)
        forced_[site] = *kind;
    else
        forced_.erase(site);
}

FaultInjector* fault_injector() { return g_injector; }

void install_fault_injector(FaultInjector* injector) {
    if (injector != nullptr && g_injector != nullptr)
        throw Error("a fault injector is already installed");
    g_injector = injector;
    if (injector != nullptr)
        DYNADDR_LOG(Info, faults, "fault injector installed: plan '",
                    injector->plan().to_string(), "'");
}

}  // namespace dynaddr::sim

#include "sim/reference_queue.hpp"

#include <utility>

namespace dynaddr::sim {

EventId ReferenceEventQueue::schedule(net::TimePoint when, Callback callback) {
    const std::uint64_t id = next_sequence_++;
    const Key key{when, id};
    events_.emplace(key, std::move(callback));
    key_by_id_.emplace(id, key);
    return EventId{id};
}

bool ReferenceEventQueue::cancel(EventId id) {
    auto it = key_by_id_.find(id.value);
    if (it == key_by_id_.end()) return false;
    events_.erase(it->second);
    key_by_id_.erase(it);
    return true;
}

std::optional<net::TimePoint> ReferenceEventQueue::next_time() const {
    if (events_.empty()) return std::nullopt;
    return events_.begin()->first.when;
}

bool ReferenceEventQueue::run_next() {
    if (events_.empty()) return false;
    auto it = events_.begin();
    const Key key = it->first;
    Callback callback = std::move(it->second);
    events_.erase(it);
    key_by_id_.erase(key.sequence);
    callback(key.when);
    return true;
}

}  // namespace dynaddr::sim

#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace dynaddr::sim {

/// A discrete-event simulation: a clock plus an event queue.
///
/// Components schedule callbacks relative to `now()`; `run_until` drains
/// events in time order, advancing the clock to each event's timestamp.
/// Scheduling in the past throws Error — a simulation must never travel
/// backwards.
class Simulation {
public:
    /// Starts the clock at `start`. The simulation registers its clock
    /// with the logging layer for its lifetime, so records emitted from
    /// inside callbacks carry simulated time. When the obs time-series
    /// recorder is enabled at construction time, the simulation also
    /// schedules a periodic recorder tick at the configured cadence, so
    /// series are sampled in *simulated* time; note the tick re-arms
    /// forever, so prefer run_until over run_all while recording.
    explicit Simulation(net::TimePoint start);
    ~Simulation();
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Current simulation time.
    [[nodiscard]] net::TimePoint now() const { return now_; }

    /// Schedules a callback at an absolute time >= now(). Throws Error on
    /// a past time.
    EventId at(net::TimePoint when, EventQueue::Callback callback);

    /// Schedules a callback `delay` from now (delay >= 0).
    EventId after(net::Duration delay, EventQueue::Callback callback);

    /// Schedules a recurring callback: first firing at `first` (>= now()),
    /// repeating every `period` (> 0) until cancelled. The event
    /// reschedules in place inside the engine — one allocation for the
    /// whole recurrence — which is the cheap way to model fixed cadences
    /// (k-root ping intervals, nightly reconnects). The id stays valid
    /// across firings.
    EventId every(net::TimePoint first, net::Duration period,
                  EventQueue::Callback callback);

    /// Cancels a pending event; false when already fired/cancelled.
    bool cancel(EventId id) { return queue_.cancel(id); }

    /// Runs events up to and including time `end`, then sets now() = end.
    /// Events scheduled by callbacks are honoured if they fall within the
    /// window. Returns the number of events executed.
    std::uint64_t run_until(net::TimePoint end);

    /// Runs until the queue empties. Returns events executed.
    std::uint64_t run_all();

    /// Pending event count.
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }

    /// Total events executed since construction.
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

private:
    net::TimePoint now_;
    EventQueue queue_;
    std::uint64_t executed_ = 0;
    bool series_attached_ = false;
};

}  // namespace dynaddr::sim

#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "netcore/error.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::sim {

namespace {

/// Wheel counters, bound once at static init: the per-event cost is a
/// couple of relaxed adds — noise next to the wheel's own bucket work.
struct WheelMetrics {
    obs::Counter& scheduled = obs::counter("sim.wheel.scheduled");
    obs::Counter& fired = obs::counter("sim.wheel.fired");
    obs::Counter& cancelled = obs::counter("sim.wheel.cancelled");
    obs::Counter& cascaded = obs::counter("sim.wheel.cascaded");
    obs::Counter& overflow = obs::counter("sim.wheel.overflow");
};

WheelMetrics& wheel_metrics() {
    static WheelMetrics metrics;
    return metrics;
}

constexpr std::uint64_t kSlotFieldMask = 0xFFFFFFFFull;

constexpr std::uint64_t encode_id(std::uint32_t gen, std::uint32_t slot) {
    return (std::uint64_t(gen) << 32) | slot;
}

}  // namespace

EventQueue::EventQueue() {
    for (int level = 0; level < kLevels; ++level) {
        std::fill(std::begin(bucket_head_[level]), std::end(bucket_head_[level]),
                  kNil);
        std::fill(std::begin(bucket_tail_[level]), std::end(bucket_tail_[level]),
                  kNil);
    }
}

EventId EventQueue::schedule(net::TimePoint when, Callback callback) {
    return schedule_impl(when.unix_seconds(), 0, std::move(callback));
}

EventId EventQueue::schedule_every(net::TimePoint first, net::Duration period,
                                   Callback callback) {
    if (period.count() <= 0) throw Error("periodic event needs period > 0");
    return schedule_impl(first.unix_seconds(), period.count(),
                         std::move(callback));
}

EventId EventQueue::schedule_impl(std::int64_t when, std::int64_t period,
                                  Callback cb) {
    if (!started_) {
        // Anchor the wheel at the first event ever scheduled.
        started_ = true;
        cursor_ = when;
        ready_second_ = when - 1;
    }
    const std::uint32_t slot = alloc_slot();
    Event& e = slab_[slot];
    e.when = when;
    e.seq = next_seq_++;
    e.period = period;
    e.next = kNil;
    e.state = State::Pending;
    e.cb = std::move(cb);
    place(slot);
    ++size_;
    wheel_metrics().scheduled.inc();
    note_mem_op();
    return EventId{encode_id(e.gen, slot)};
}

void EventQueue::publish_mem() {
    const std::uint64_t bytes =
        std::uint64_t(slab_.capacity()) * sizeof(Event) +
        std::uint64_t(heap_.capacity()) * sizeof(HeapEntry) +
        std::uint64_t(ready_.capacity()) * sizeof(std::uint32_t) +
        sizeof(bucket_head_) + sizeof(bucket_tail_) + sizeof(occupied_);
    mem_.report(bytes, size_);
}

bool EventQueue::cancel(EventId id) {
    const std::uint32_t slot = std::uint32_t(id.value & kSlotFieldMask);
    const std::uint32_t gen = std::uint32_t(id.value >> 32);
    if (slot >= slab_.size()) return false;
    Event& e = slab_[slot];
    if (e.gen != gen) return false;
    if (e.state != State::Pending && e.state != State::Firing) return false;
    // Tombstone in place; the wheel reclaims the slot when it gets there.
    // Cancelling a periodic event mid-callback (State::Firing) stops the
    // recurrence.
    e.state = State::Cancelled;
    --size_;
    wheel_metrics().cancelled.inc();
    return true;
}

std::optional<net::TimePoint> EventQueue::next_time() {
    auto next = find_next();
    if (!next) return std::nullopt;
    return net::TimePoint{*next};
}

bool EventQueue::run_next() {
    if (!find_next()) return false;
    wheel_metrics().fired.inc();
    note_mem_op();
    const std::uint32_t slot = ready_[ready_head_++];
    Event& e = slab_[slot];
    const std::int64_t when = e.when;
    if (e.period > 0) {
        // Periodic: reschedule in place after the callback so a callback
        // that cancels its own id (or one that runs right before the next
        // occurrence) behaves exactly like an explicit re-schedule.
        e.state = State::Firing;
        InlineCallback cb = std::move(e.cb);
        cb(net::TimePoint{when});
        Event& e2 = slab_[slot];  // the callback may have grown the slab
        if (e2.state == State::Cancelled) {
            free_slot(slot);
        } else {
            e2.state = State::Pending;
            e2.when = when + e2.period;
            e2.seq = next_seq_++;
            e2.cb = std::move(cb);
            place(slot);
        }
    } else {
        InlineCallback cb = std::move(e.cb);
        free_slot(slot);  // before invoking: cancel(id) inside the callback
                          // must report "already fired"
        --size_;
        cb(net::TimePoint{when});
    }
    return true;
}

std::uint32_t EventQueue::alloc_slot() {
    if (free_head_ != kNil) {
        const std::uint32_t slot = free_head_;
        free_head_ = slab_[slot].next;
        return slot;
    }
    slab_.emplace_back();
    return std::uint32_t(slab_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t slot) {
    Event& e = slab_[slot];
    ++e.gen;
    e.state = State::Free;
    e.period = 0;
    e.cb.reset();
    e.next = free_head_;
    free_head_ = slot;
}

void EventQueue::place(std::uint32_t slot) {
    const Event& e = slab_[slot];
    const std::int64_t when = e.when;
    if (when <= cursor_) {
        if (ready_second_ == cursor_) {
            // The current second was already detached; join it in sorted
            // position so FIFO-at-equal-time holds.
            ready_insert(slot);
            return;
        }
        // Park in the cursor bucket; detach sorts by (when, seq), so both
        // firing order and reported times stay exact.
        bucket_append(0, std::uint32_t(cursor_) & kSlotMask, slot);
        return;
    }
    // Level L holds the event only when it shares the level-(L+1) frame
    // with the cursor (identical high bits). This is what makes
    // bucket_start() exact: an occupied bucket can never alias an event a
    // full wheel revolution ahead, so every cascade strictly lowers the
    // event's level and find_next() always makes progress.
    if ((when >> kSlotBits) == (cursor_ >> kSlotBits)) {
        bucket_append(0, std::uint32_t(when) & kSlotMask, slot);
    } else if ((when >> (2 * kSlotBits)) == (cursor_ >> (2 * kSlotBits))) {
        bucket_append(1, std::uint32_t(when >> kSlotBits) & kSlotMask, slot);
    } else if ((when >> (3 * kSlotBits)) == (cursor_ >> (3 * kSlotBits))) {
        bucket_append(2, std::uint32_t(when >> (2 * kSlotBits)) & kSlotMask,
                      slot);
    } else {
        heap_push({when, e.seq, slot});
    }
}

void EventQueue::ready_insert(std::uint32_t slot) {
    auto it = std::upper_bound(
        ready_.begin() + std::ptrdiff_t(ready_head_), ready_.end(), slot,
        [this](std::uint32_t a, std::uint32_t b) {
            const Event& ea = slab_[a];
            const Event& eb = slab_[b];
            return ea.when != eb.when ? ea.when < eb.when : ea.seq < eb.seq;
        });
    ready_.insert(it, slot);
}

void EventQueue::bucket_append(int level, std::uint32_t index,
                               std::uint32_t slot) {
    slab_[slot].next = kNil;
    if (bucket_head_[level][index] == kNil) {
        bucket_head_[level][index] = slot;
        occupied_[level][index >> 6] |= std::uint64_t(1) << (index & 63);
    } else {
        slab_[bucket_tail_[level][index]].next = slot;
    }
    bucket_tail_[level][index] = slot;
}

void EventQueue::detach_into_ready(std::uint32_t index) {
    ready_.clear();
    ready_head_ = 0;
    std::uint32_t slot = bucket_head_[0][index];
    bucket_head_[0][index] = kNil;
    bucket_tail_[0][index] = kNil;
    occupied_[0][index >> 6] &= ~(std::uint64_t(1) << (index & 63));
    while (slot != kNil) {
        const std::uint32_t next = slab_[slot].next;
        if (slab_[slot].state == State::Cancelled) {
            free_slot(slot);
        } else {
            ready_.push_back(slot);
        }
        slot = next;
    }
    std::sort(ready_.begin(), ready_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  const Event& ea = slab_[a];
                  const Event& eb = slab_[b];
                  return ea.when != eb.when ? ea.when < eb.when
                                            : ea.seq < eb.seq;
              });
}

void EventQueue::cascade(int level, std::uint32_t index) {
    std::uint32_t slot = bucket_head_[level][index];
    bucket_head_[level][index] = kNil;
    bucket_tail_[level][index] = kNil;
    occupied_[level][index >> 6] &= ~(std::uint64_t(1) << (index & 63));
    std::uint64_t moved = 0;
    while (slot != kNil) {
        const std::uint32_t next = slab_[slot].next;
        if (slab_[slot].state == State::Cancelled) {
            free_slot(slot);
        } else {
            place(slot);
            ++moved;
        }
        slot = next;
    }
    wheel_metrics().cascaded.inc(moved);
}

void EventQueue::heap_push(HeapEntry entry) {
    wheel_metrics().overflow.inc();
    heap_.push_back(entry);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!heap_[i].before(heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void EventQueue::heap_pop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= heap_.size()) break;
        std::size_t best = first_child;
        const std::size_t last_child = std::min(first_child + 4, heap_.size());
        for (std::size_t c = first_child + 1; c < last_child; ++c)
            if (heap_[c].before(heap_[best])) best = c;
        if (!heap_[best].before(heap_[i])) break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

void EventQueue::migrate_heap() {
    while (!heap_.empty()) {
        const HeapEntry top = heap_.front();
        if (slab_[top.slot].state == State::Cancelled) {
            heap_pop();
            free_slot(top.slot);
        } else if ((top.when >> (3 * kSlotBits)) ==
                   (cursor_ >> (3 * kSlotBits))) {
            // Same level-2 frame as the cursor: the event now has a
            // non-aliasing wheel bucket.
            heap_pop();
            place(top.slot);
        } else {
            break;
        }
    }
}

int EventQueue::first_occupied(int level) const {
    const std::uint32_t cur =
        std::uint32_t(cursor_ >> (kSlotBits * level)) & kSlotMask;
    const std::uint32_t word = cur >> 6;
    const std::uint32_t offset = cur & 63;
    // [cur, 256)
    std::uint64_t masked = occupied_[level][word] & (~std::uint64_t(0) << offset);
    if (masked != 0)
        return int(word * 64 + std::uint32_t(std::countr_zero(masked)));
    for (std::uint32_t w = word + 1; w < kSlotsPerLevel / 64; ++w)
        if (occupied_[level][w] != 0)
            return int(w * 64 + std::uint32_t(std::countr_zero(occupied_[level][w])));
    // wrap: [0, cur)
    for (std::uint32_t w = 0; w < word; ++w)
        if (occupied_[level][w] != 0)
            return int(w * 64 + std::uint32_t(std::countr_zero(occupied_[level][w])));
    masked = occupied_[level][word] & ~(~std::uint64_t(0) << offset);
    if (masked != 0)
        return int(word * 64 + std::uint32_t(std::countr_zero(masked)));
    return -1;
}

std::optional<std::int64_t> EventQueue::find_next() {
    for (;;) {
        // 1. The detached current second, pruning leading tombstones.
        while (ready_head_ < ready_.size()) {
            const std::uint32_t slot = ready_[ready_head_];
            if (slab_[slot].state == State::Cancelled) {
                free_slot(slot);
                ++ready_head_;
                continue;
            }
            return slab_[slot].when;
        }
        if (size_ == 0 && heap_.empty()) {
            // Fast path out; tombstones may still sit in buckets but no
            // live event exists anywhere.
            bool wheel_empty = true;
            for (int level = 0; level < kLevels && wheel_empty; ++level)
                for (std::uint32_t w = 0; w < kSlotsPerLevel / 64; ++w)
                    if (occupied_[level][w] != 0) {
                        wheel_empty = false;
                        break;
                    }
            if (wheel_empty) return std::nullopt;
        }

        // 2. Pull heap events that entered the wheel horizon.
        migrate_heap();

        // 3. Earliest wheel candidates per level. Upper-level buckets are
        // known only by their start time; any bucket starting at or before
        // the level-0 minimum must cascade first.
        int idx0 = first_occupied(0);
        int idx1 = first_occupied(1);
        int idx2 = first_occupied(2);
        auto bucket_start = [this](int level, int index) {
            const int shift = kSlotBits * level;
            const std::int64_t cur = cursor_ >> shift;
            const std::int64_t dist =
                std::int64_t((std::uint32_t(index) - std::uint32_t(cur)) &
                             kSlotMask);
            return (cur + dist) << shift;
        };
        const std::int64_t t0 =
            idx0 >= 0 ? bucket_start(0, idx0) : std::int64_t(0);
        const std::int64_t s1 =
            idx1 >= 0 ? bucket_start(1, idx1) : std::int64_t(0);
        const std::int64_t s2 =
            idx2 >= 0 ? bucket_start(2, idx2) : std::int64_t(0);

        if (idx0 < 0 && idx1 < 0 && idx2 < 0) {
            if (heap_.empty()) return std::nullopt;
            // Jump the wheel to the far future and retry; migrate_heap will
            // move everything within the new horizon in.
            cursor_ = heap_.front().when;
            continue;
        }
        if (idx2 >= 0 && (idx0 < 0 || s2 <= t0) && (idx1 < 0 || s2 <= s1)) {
            cursor_ = std::max(cursor_, s2);
            cascade(2, std::uint32_t(idx2));
            continue;
        }
        if (idx1 >= 0 && (idx0 < 0 || s1 <= t0)) {
            cursor_ = std::max(cursor_, s1);
            cascade(1, std::uint32_t(idx1));
            continue;
        }
        cursor_ = t0;
        detach_into_ready(std::uint32_t(idx0));
        ready_second_ = t0;
    }
}

}  // namespace dynaddr::sim

#pragma once

// Deterministic fault-injection layer.
//
// A FaultPlan describes adverse events — message loss, duplication, delay
// and wire corruption on the access links; server crash/restart with
// lease-state amnesia; address-pool exhaustion windows; CPE power-cycle
// storms; garbled dataset rows — and a FaultInjector turns the plan into
// concrete, bit-reproducible decisions. Protocol code interposes on its
// exchanges via gate_message(); run_scenario() turns the component models
// into scheduled simulation events.
//
// Determinism rules:
//   * Every decision draws from a stream keyed by (plan.seed, fault site,
//     entity). Decisions for one entity form their own sequence, so adding
//     entities or reordering the global event interleaving never perturbs
//     another entity's faults.
//   * With no injector installed (the default) every gate is a null check:
//     zero draws, zero behaviour change — fingerprints are byte-identical
//     to a fault-free build.
//   * Component schedules are generated once, at scenario build time, from
//     their own streams; injection order cannot affect them.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netcore/rng.hpp"
#include "netcore/time.hpp"

namespace dynaddr::sim {

/// Where a fault can strike. Message sites gate one request/response
/// exchange; component sites key schedule generation.
enum class FaultSite : std::uint8_t {
    DhcpDiscover,
    DhcpRequest,
    DhcpRenew,
    DhcpRelease,
    RadiusAuthorize,
    RadiusAccounting,
    DhcpServer,    ///< component: DHCP server crash/restart
    RadiusServer,  ///< component: RADIUS/BRAS crash/restart
    Pool,          ///< component: pool exhaustion windows
    Cpe,           ///< component: power-cycle storms
    Csv,           ///< input: dataset row corruption
};

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// Which access link a message site belongs to.
enum class FaultLink : std::uint8_t { Dhcp, Ppp };

/// Per-link message fault model: independent Bernoulli faults plus an
/// optional Gilbert-Elliott burst-loss overlay (two-state Markov chain;
/// while in the Bad state messages drop with `burst_drop`).
struct MessageFaults {
    double drop = 0.0;          ///< P(message silently lost)
    double duplicate = 0.0;     ///< P(request processed twice)
    double delay = 0.0;         ///< P(exchange deferred by jitter)
    double delay_mean_s = 3.0;  ///< mean of the exponential jitter
    double corrupt = 0.0;       ///< P(wire bytes mutated in flight)
    double burst_p = 0.0;       ///< Good -> Bad transition probability
    double burst_r = 1.0;       ///< Bad -> Good transition probability
    double burst_drop = 0.9;    ///< drop probability while Bad

    [[nodiscard]] bool any() const {
        return drop > 0 || duplicate > 0 || delay > 0 || corrupt > 0 ||
               burst_p > 0;
    }
};

/// Component crash/restart model for one server class.
struct CrashFaults {
    double crashes_per_day = 0.0;   ///< Poisson arrival rate
    double downtime_mean_s = 600.0; ///< exponential downtime
    double amnesia = 0.0;           ///< P(state lost on a given crash)

    [[nodiscard]] bool any() const { return crashes_per_day > 0; }
};

/// Address-pool exhaustion windows: intervals during which allocation
/// fails as if every address were taken.
struct ExhaustionFaults {
    double windows_per_day = 0.0;
    double duration_mean_s = 3600.0;

    [[nodiscard]] bool any() const { return windows_per_day > 0; }
};

/// CPE power-cycle storms: at each storm a random subset of CPEs loses
/// power, spread over a short front, and comes back after a per-CPE
/// exponential downtime.
struct StormFaults {
    double storms_per_day = 0.0;
    double cpe_fraction = 0.25;   ///< P(a given CPE joins a given storm)
    double downtime_mean_s = 180; ///< per-CPE power-off time
    double spread_s = 900;        ///< storm front width (uniform offsets)

    [[nodiscard]] bool any() const { return storms_per_day > 0; }
};

/// Dataset input faults: rows truncated/garbled before parsing.
struct CsvFaults {
    double row_rate = 0.0;  ///< P(a given data row is mutilated)

    [[nodiscard]] bool any() const { return row_rate > 0; }
};

/// A full deterministic fault plan.
struct FaultPlan {
    std::uint64_t seed = 1;
    MessageFaults dhcp;  ///< DHCP client <-> server exchanges
    MessageFaults ppp;   ///< PPP/RADIUS exchanges
    CrashFaults dhcp_server;
    CrashFaults radius_server;
    ExhaustionFaults exhaustion;
    StormFaults storms;
    CsvFaults csv;
    /// Fraction of the scenario window during which faults fire, in
    /// (0, 1]. Chaos tests use < 1 so post-fault reconvergence can be
    /// asserted over the tail of the window.
    double active_fraction = 1.0;

    [[nodiscard]] bool any() const;

    /// Parses a plan spec: comma-separated profile names and/or
    /// `key=value` overrides, e.g. "lossy,crashy,dhcp.drop=0.3,seed=7".
    /// Profiles: lossy, bursty, flaky, crashy, storms, exhaustion,
    /// garbage, chaos. Throws Error on an unknown key or profile.
    static FaultPlan parse(const std::string& spec);

    /// Canonical spec of every non-default field (round-trips via parse).
    [[nodiscard]] std::string to_string() const;
};

/// The action a caller should take for one synchronous exchange.
struct MessageDecision {
    enum class Kind {
        Deliver,    ///< perform the exchange normally
        Drop,       ///< silence: retransmit with backoff
        Defer,      ///< exchange held by jitter; retry at `defer`, no backoff
        Corrupt,    ///< deliver, but round-trip wire bytes through corruption
        Duplicate,  ///< deliver, then replay the request once
    };
    Kind kind = Kind::Deliver;
    net::Duration defer{0};  ///< valid when kind == Defer
};

/// Turns a FaultPlan into concrete decisions and schedules. One injector
/// is installed process-globally (simulations are single-threaded); the
/// gates below are null checks when none is installed.
class FaultInjector {
public:
    explicit FaultInjector(FaultPlan plan);

    [[nodiscard]] const FaultPlan& plan() const { return plan_; }

    /// Restricts fault activity to plan.active_fraction of `window`
    /// (message gates go quiet and schedules stop past the horizon).
    void set_window(net::TimeInterval window);

    /// End of fault activity; TimePoint::max-like when no window was set.
    [[nodiscard]] net::TimePoint horizon() const { return horizon_; }

    /// Decision for one message exchange at a site. `entity` is the
    /// client/subscriber id owning the link.
    MessageDecision on_message(FaultSite site, std::uint64_t entity,
                               net::TimePoint now);

    /// Mutates wire bytes in flight (flip/truncate/extend), drawing from
    /// the same per-(link, entity) stream as on_message. Returns false
    /// when the buffer was left empty.
    bool corrupt_wire(FaultSite site, std::uint64_t entity,
                      std::vector<std::uint8_t>& bytes);

    /// Mutilates data rows of a CSV blob in place (header preserved):
    /// truncation, byte garbling, delimiter loss, row splicing.
    void corrupt_csv(std::string& text);

    /// Binary analogue of corrupt_csv: garbles bytes of `data` inside
    /// [begin, end) — the caller passes the block region so headers and
    /// footers survive, mirroring the CSV header-preserving contract.
    /// Intensity follows the same csv.row_rate knob, applied per 64-byte
    /// cell (roughly one encoded row).
    void corrupt_binary(std::string& data, std::size_t begin, std::size_t end);

    // -- component schedules (generated once per index; deterministic) ----
    struct CrashEvent {
        net::TimePoint at;
        net::Duration downtime;
        bool amnesia = false;
    };
    /// Crash/restart schedule for server `index` of a class over `window`.
    /// `site` must be DhcpServer or RadiusServer.
    std::vector<CrashEvent> crash_schedule(FaultSite site, std::uint64_t index,
                                           net::TimeInterval window);

    struct Window {
        net::TimePoint at;
        net::Duration duration;
    };
    /// Exhaustion windows for pool `index` over `window`.
    std::vector<Window> exhaustion_schedule(std::uint64_t index,
                                            net::TimeInterval window);

    /// Storm start times over `window`.
    std::vector<net::TimePoint> storm_schedule(net::TimeInterval window);

    struct StormHit {
        net::Duration offset;    ///< power-cut delay past the storm start
        net::Duration downtime;  ///< power-off duration
    };
    /// Whether CPE `cpe_index` joins storm `storm_index`, and how.
    std::optional<StormHit> storm_hit(std::uint64_t storm_index,
                                      std::uint64_t cpe_index);

    // -- test support -----------------------------------------------------
    /// Forces every decision at a site (overriding the stream) until
    /// cleared with nullopt. Deterministic unit tests use this to steer
    /// one exchange type at a time.
    void force_site(FaultSite site, std::optional<MessageDecision::Kind> kind);

private:
    struct LinkState {
        rng::Stream stream;
        bool burst_bad = false;
    };
    LinkState& link_state(FaultLink link, std::uint64_t entity);
    [[nodiscard]] const MessageFaults& faults_for(FaultLink link) const {
        return link == FaultLink::Dhcp ? plan_.dhcp : plan_.ppp;
    }

    FaultPlan plan_;
    rng::Stream root_;
    net::TimePoint horizon_;
    std::map<std::uint64_t, LinkState> dhcp_links_;
    std::map<std::uint64_t, LinkState> ppp_links_;
    std::map<FaultSite, MessageDecision::Kind> forced_;
};

/// The installed injector, or nullptr (the default: faults off).
[[nodiscard]] FaultInjector* fault_injector();

/// Installs/uninstalls the process-global injector (nullptr clears).
void install_fault_injector(FaultInjector* injector);

/// RAII install of an injector built from a plan.
class ScopedFaultInjector {
public:
    explicit ScopedFaultInjector(const FaultPlan& plan) : injector_(plan) {
        install_fault_injector(&injector_);
    }
    ~ScopedFaultInjector() { install_fault_injector(nullptr); }
    ScopedFaultInjector(const ScopedFaultInjector&) = delete;
    ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

    [[nodiscard]] FaultInjector& injector() { return injector_; }

private:
    FaultInjector injector_;
};

/// Gate for one synchronous exchange: Deliver when no injector is
/// installed, otherwise the injector's decision.
inline MessageDecision gate_message(FaultSite site, std::uint64_t entity,
                                    net::TimePoint now) {
    FaultInjector* injector = fault_injector();
    if (injector == nullptr) return {};
    return injector->on_message(site, entity, now);
}

}  // namespace dynaddr::sim

#pragma once

// Causal change-attribution ledger.
//
// A pure-observer subsystem that records, for every address change the
// simulator produces, the root cause that ended the old tenure: periodic
// session/lease expiry, DHCP server crash-restart amnesia, pool
// exhaustion, a CPE power cycle, a network outage window, administrative
// renumbering, a cross-AS move, or an injected fault site. Protocol and
// scenario code report what they see through the cause_* hooks below; the
// ledger folds those observations into exactly one CauseRecord per
// address change, emitted the instant the new address is acquired.
//
// Observer rules (mirroring sim/faults.hpp):
//   * With no ledger installed (the default) every hook is an inlined
//     null check: zero allocations, zero draws, zero behaviour change —
//     scenario fingerprints are byte-identical to a ledger-free build.
//   * The ledger never draws randomness, never schedules events and never
//     mutates protocol state; it only listens.
//   * One record per change, one root cause per record. The resolution
//     priority when several candidate causes coincide is documented in
//     DESIGN.md §11 and implemented in CauseLedger::acquired().
//
// The record stream is O(1) memory when a CauseSink is attached and
// keep_records is off: records flow to CSV or to the DCL1 columnar block
// format (a DAB2-style layout: delta/zigzag varint columns per block,
// footer block index, tail magic) and are never retained.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/time.hpp"

namespace dynaddr::sim {

/// Root-cause taxonomy. Every simulated address change gets exactly one.
enum class CauseKind : std::uint8_t {
    Unknown = 0,
    SessionExpiry,     ///< PPP session timeout enforced by the BRAS
    LeaseExpiry,       ///< DHCP lease ran out without a successful renew
    NightlyReconnect,  ///< CPE privacy feature: scheduled nightly redial
    MaxAgeEviction,    ///< DHCP server refused to extend past max address age
    AdminRenumbering,  ///< block retired by an administrative event
    CrossAsMove,       ///< subscriber moved to a different ISP backend
    ServerAmnesia,     ///< server crash-restart lost the lease/session state
    ServerDown,        ///< server unreachable long enough to end the tenure
    PoolExhausted,     ///< allocation failed: no free address
    PowerOutage,       ///< CPE lost power
    NetworkOutage,     ///< access network down at the CPE
    MessageFault,      ///< injected message fault broke the exchange
};
inline constexpr std::size_t kCauseKindCount = 13;

/// Exact origin of the root event — which code path or schedule fired.
enum class CauseSite : std::uint8_t {
    Unspecified = 0,
    PppSessionTimeout,    ///< ppp::Session::on_session_timeout
    DhcpLeaseTimer,       ///< dhcp::Client timer past lease_expiry
    CpeNightlyReconnect,  ///< atlas::Cpe daily reconnect schedule
    DhcpMaxAge,           ///< dhcp::Server::handle_renew age cap evict
    DhcpRetiredPrefix,    ///< dhcp::Server evict on a retired block
    DhcpAmnesiaCrash,     ///< dhcp::Server::crash(amnesia) dropped the lease
    DhcpServerOffline,    ///< dhcp::Client met a dead server (silence)
    DhcpPoolExhausted,    ///< DHCPDISCOVER went unanswered: pool empty
    RadiusServerOffline,  ///< ppp::Session dialed a dead BRAS
    RadiusPoolExhausted,  ///< Access-Reject: pool empty
    OutagePower,          ///< isp::schedule_outages planned power interval
    OutageNetwork,        ///< isp::schedule_outages planned network interval
    FaultStorm,           ///< sim::FaultInjector power-cycle storm
    FaultRadiusCrash,     ///< injected BRAS/RADIUS crash (network outage)
    FaultExhaustion,      ///< injected pool exhaustion window
    FaultMessage,         ///< injected message drop/corruption
    AdminEvent,           ///< scenario-level administrative renumbering
    ScenarioMover,        ///< cross-AS mover switch_backend
};
inline constexpr std::size_t kCauseSiteCount = 19;

[[nodiscard]] const char* cause_kind_name(CauseKind kind);
[[nodiscard]] const char* cause_site_name(CauseSite site);
/// Inverse of the name functions; nullopt for unrecognized tokens.
[[nodiscard]] std::optional<CauseKind> cause_kind_from_name(std::string_view name);
[[nodiscard]] std::optional<CauseSite> cause_site_from_name(std::string_view name);

/// One address change with its causal chain.
struct CauseRecord {
    std::uint64_t probe = 0;   ///< Atlas probe id behind the CPE (0: none)
    std::uint64_t client = 0;  ///< subscriber / pool client id
    net::TimePoint at;         ///< when the new address took effect
    net::TimePoint lost_at;    ///< when the old address was lost
    net::TimePoint root_at;    ///< when the root event happened
    CauseKind kind = CauseKind::Unknown;
    CauseSite site = CauseSite::Unspecified;
    net::IPv4Address old_addr;
    net::IPv4Address new_addr;
    /// Root-event extent: outage/episode length, 0 for instant events.
    net::Duration root_duration{0};

    friend bool operator==(const CauseRecord&, const CauseRecord&) = default;
};

/// Streaming consumer of ledger records (CSV writer, DCL1 writer, tests).
class CauseSink {
public:
    virtual ~CauseSink() = default;
    virtual void append(const CauseRecord& record) = 0;
    /// Flushes buffered state; called once when the run finishes.
    virtual void close() {}
};

struct CauseLedgerConfig {
    /// Retain records in memory (tests, `explain` without a file). Long
    /// runs stream to a sink instead and keep this off for O(1) memory.
    bool keep_records = true;
};

/// The ledger proper: per-client cause state machines plus the record
/// stream. Single-threaded, driven from simulation callbacks only.
class CauseLedger {
public:
    explicit CauseLedger(CauseLedgerConfig config = {});

    void set_sink(CauseSink* sink) { sink_ = sink; }

    // -- hooks (called through the cause_* free functions below) ----------
    /// Associates a subscriber with its Atlas probe id for the records.
    void register_client(std::uint64_t client, std::uint64_t probe);
    /// The WAN client bound `addr`. Emits a CauseRecord when it differs
    /// from the previous address, resolving the pending cause state.
    void acquired(std::uint64_t client, net::TimePoint t, net::IPv4Address addr);
    /// The WAN client lost its address. `kind`/`site` carry the protocol
    /// loss reason when it is itself definitive (expiry, nightly redial),
    /// CauseKind::Unknown otherwise.
    void lost(std::uint64_t client, net::TimePoint t, CauseKind kind,
              CauseSite site);
    /// A successful in-place renewal: the tenure continues, so pending
    /// blocking observations did not cause a change — forget them.
    void renew_ok(std::uint64_t client);
    /// Edge-triggered observation (server down, pool exhausted, amnesia,
    /// message fault, eviction). Latest note per kind wins.
    void note(std::uint64_t client, CauseKind kind, CauseSite site,
              net::TimePoint t);
    // Level-triggered environment episodes.
    void power_down(std::uint64_t client, net::TimePoint t, CauseSite site);
    void power_up(std::uint64_t client, net::TimePoint t);
    void net_down(std::uint64_t client, net::TimePoint t, CauseSite site);
    void net_up(std::uint64_t client, net::TimePoint t);
    /// Administrative renumbering: `prefix` retired at `when`. Changes
    /// leaving the block afterwards resolve as AdminRenumbering.
    void admin_retire(net::IPv4Prefix prefix, net::TimePoint when);

    // -- results ----------------------------------------------------------
    [[nodiscard]] const std::vector<CauseRecord>& records() const {
        return records_;
    }
    [[nodiscard]] std::uint64_t total_records() const { return total_; }

private:
    struct Note {
        net::TimePoint at;
        CauseSite site = CauseSite::Unspecified;
        bool set = false;
    };
    struct Episode {
        net::TimePoint begin;
        std::optional<net::TimePoint> end;
        CauseSite site = CauseSite::Unspecified;
        bool active() const { return !end.has_value(); }
    };
    struct ClientState {
        std::uint64_t probe = 0;
        bool has_addr = false;
        net::IPv4Address addr;
        net::TimePoint acquired_at;
        bool lost = false;
        net::TimePoint lost_at;
        CauseKind loss_kind = CauseKind::Unknown;
        CauseSite loss_site = CauseSite::Unspecified;
        // Strong notes: definitive server-side verdicts about this tenure.
        Note amnesia, max_age, admin, mover;
        // Blocking observations: why exchanges were failing.
        Note server_down, pool_exhausted, message_fault;
        // Environment: current-or-last power/network episode.
        std::optional<Episode> power, net;
    };

    ClientState& state(std::uint64_t client);
    void emit(const ClientState& s, std::uint64_t client, net::TimePoint t,
              net::IPv4Address addr, CauseKind kind, CauseSite site,
              net::TimePoint root_at, net::Duration root_duration);
    static void clear_tenure_state(ClientState& s);

    CauseLedgerConfig config_;
    CauseSink* sink_ = nullptr;
    std::uint64_t total_ = 0;
    std::vector<CauseRecord> records_;
    std::unordered_map<std::uint64_t, ClientState> clients_;
    std::vector<std::pair<net::IPv4Prefix, net::TimePoint>> retired_;
};

// -- global install (faults.hpp pattern) ---------------------------------

namespace detail {
extern CauseLedger* g_cause_ledger;
}

/// The installed ledger, or nullptr (the default: ledger off).
[[nodiscard]] inline CauseLedger* cause_ledger() {
    return detail::g_cause_ledger;
}

/// Installs/uninstalls the process-global ledger (nullptr clears).
void install_cause_ledger(CauseLedger* ledger);

/// RAII install of a fresh ledger.
class ScopedCauseLedger {
public:
    explicit ScopedCauseLedger(CauseLedgerConfig config = {})
        : ledger_(config) {
        install_cause_ledger(&ledger_);
    }
    ~ScopedCauseLedger() { install_cause_ledger(nullptr); }
    ScopedCauseLedger(const ScopedCauseLedger&) = delete;
    ScopedCauseLedger& operator=(const ScopedCauseLedger&) = delete;

    [[nodiscard]] CauseLedger& ledger() { return ledger_; }

private:
    CauseLedger ledger_;
};

// -- inline hook gates: a null check each when no ledger is installed ----

inline void cause_register_client(std::uint64_t client, std::uint64_t probe) {
    if (CauseLedger* l = cause_ledger()) l->register_client(client, probe);
}
inline void cause_acquired(std::uint64_t client, net::TimePoint t,
                           net::IPv4Address addr) {
    if (CauseLedger* l = cause_ledger()) l->acquired(client, t, addr);
}
inline void cause_lost(std::uint64_t client, net::TimePoint t,
                       CauseKind kind = CauseKind::Unknown,
                       CauseSite site = CauseSite::Unspecified) {
    if (CauseLedger* l = cause_ledger()) l->lost(client, t, kind, site);
}
inline void cause_renew_ok(std::uint64_t client) {
    if (CauseLedger* l = cause_ledger()) l->renew_ok(client);
}
inline void cause_note(std::uint64_t client, CauseKind kind, CauseSite site,
                       net::TimePoint t) {
    if (CauseLedger* l = cause_ledger()) l->note(client, kind, site, t);
}
inline void cause_power_down(std::uint64_t client, net::TimePoint t,
                             CauseSite site) {
    if (CauseLedger* l = cause_ledger()) l->power_down(client, t, site);
}
inline void cause_power_up(std::uint64_t client, net::TimePoint t) {
    if (CauseLedger* l = cause_ledger()) l->power_up(client, t);
}
inline void cause_net_down(std::uint64_t client, net::TimePoint t,
                           CauseSite site) {
    if (CauseLedger* l = cause_ledger()) l->net_down(client, t, site);
}
inline void cause_net_up(std::uint64_t client, net::TimePoint t) {
    if (CauseLedger* l = cause_ledger()) l->net_up(client, t);
}
inline void cause_admin_retire(net::IPv4Prefix prefix, net::TimePoint when) {
    if (CauseLedger* l = cause_ledger()) l->admin_retire(prefix, when);
}

// -- serialization --------------------------------------------------------

/// Decode accounting for the lenient paths.
struct CauseDecodeStats {
    std::size_t rows_rejected = 0;
    std::size_t blocks_rejected = 0;
};

/// CSV: header + one row per record, timestamps as unix seconds.
[[nodiscard]] std::string cause_ledger_to_csv(
    const std::vector<CauseRecord>& records);
/// Parses ledger CSV. Strict mode throws ParseError on any bad row;
/// lenient mode drops bad rows into `stats` and never throws.
[[nodiscard]] std::vector<CauseRecord> cause_ledger_from_csv(
    std::string_view text, bool strict, CauseDecodeStats* stats = nullptr);

/// DCL1 columnar block format (see the file header).
[[nodiscard]] std::string encode_cause_ledger(
    const std::vector<CauseRecord>& records);
/// Strict decode throws ParseError on any malformation; lenient decode
/// salvages intact blocks and counts the damage in `stats`.
[[nodiscard]] std::vector<CauseRecord> decode_cause_ledger(
    std::string_view bytes, bool strict, CauseDecodeStats* stats = nullptr);

/// True when `bytes` starts with the DCL1 magic.
[[nodiscard]] bool is_cause_ledger_binary(std::string_view bytes);

/// Reads a ledger file, sniffing CSV vs DCL1 (lenient: damaged blocks or
/// rows are dropped, not fatal). Throws Error when the file is unreadable.
[[nodiscard]] std::vector<CauseRecord> read_cause_ledger_file(
    const std::string& path, CauseDecodeStats* stats = nullptr);

/// Streaming CSV sink: one row appended per record, O(1) memory.
class CsvCauseWriter : public CauseSink {
public:
    explicit CsvCauseWriter(const std::string& path);
    ~CsvCauseWriter() override;
    void append(const CauseRecord& record) override;
    void close() override;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Streaming DCL1 sink: buffers `block_records` rows, flushes columnar
/// blocks, writes the footer index on close().
class BinaryCauseWriter : public CauseSink {
public:
    explicit BinaryCauseWriter(const std::string& path,
                               std::size_t block_records = 512);
    ~BinaryCauseWriter() override;
    void append(const CauseRecord& record) override;
    void close() override;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace dynaddr::sim

#pragma once

#include "isp/world.hpp"

namespace dynaddr::isp::presets {

/// The five ISPs of the paper's Figure 2, individually.
IspSpec orange();    ///< AS3215, FR — weekly periodic, renumber on any outage
IspSpec dtag();      ///< AS3320, DE — daily periodic, night-synchronized
IspSpec bt();        ///< AS2856, UK — 2-week periodic minority
IspSpec lgi();       ///< AS6830, pan-EU — DHCP, outage-proportional renumbering
IspSpec verizon();   ///< AS701, US — DHCP, very stable

/// Every AS the paper names in Tables 5-7 plus continental filler ISPs so
/// Figure 1's six curves are populated.
std::vector<IspSpec> paper_world();

/// Table-2 populations at roughly 1:10 of the paper's probe counts.
SpecialMix paper_specials();

/// The five firmware-release days the paper identifies in Figure 6.
std::vector<net::TimePoint> firmware_releases_2015();

/// Full-year scenario over the complete world. k-root emission is off —
/// periodicity/prefix/geography experiments only need connection logs.
ScenarioConfig paper_scenario();

/// Year-long scenario over the outage-relevant ASes (Table 6, Figures
/// 7-9) with k-root emission on and outage rates high enough that probes
/// clear the paper's >= 3-outages bar.
ScenarioConfig outage_scenario();

/// Small, fast scenario (a handful of ISPs, ~60 days) for tests, examples
/// and smoke runs; k-root on at full 240 s cadence.
ScenarioConfig quick_scenario();

/// Capacity-run derivation: multiplies every cohort's probe count by
/// `factor`, replaces each ISP's address blocks with one synthetic wide
/// block sized to the scaled population (disjoint /8s, admin events
/// dropped), and turns k-root emission off. `scaled_scenario(
/// quick_scenario(), 3334)` is the ~100k-CPE scenario the --mem-report
/// acceptance run uses; factor 1 returns `base` unchanged.
ScenarioConfig scaled_scenario(ScenarioConfig base, int factor);

}  // namespace dynaddr::isp::presets

#pragma once

#include "atlas/cpe.hpp"
#include "netcore/rng.hpp"
#include "netcore/time.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::isp {

/// Outage process parameters for one CPE.
///
/// Arrivals are Poisson; durations come from a two-component mixture:
/// with probability `short_fraction` a uniform "blip" (CPE reboot, cable
/// re-plug), otherwise a log-normal tail capped at `max_duration` — this
/// fills every bin of the paper's Figure 9 histogram, from <5 min to
/// >1 week.
struct OutageRates {
    double power_per_year = 6.0;  ///< mean number of power outages / year
    double net_per_year = 12.0;   ///< mean number of network outages / year
    double short_fraction = 0.6;
    net::Duration short_min = net::Duration::seconds(45);
    net::Duration short_max = net::Duration::minutes(8);
    double long_median_seconds = 3600.0;
    double long_sigma = 1.8;
    net::Duration max_duration = net::Duration::days(9);
};

/// One planned outage (ground truth; tests compare against detections).
struct PlannedOutage {
    enum class Kind { Power, Network };
    Kind kind = Kind::Power;
    net::TimeInterval when;
};

/// Draws an outage schedule over `window` and registers the fail/restore
/// events against the CPE. Outages of the same kind never overlap; power
/// and network outages may. Returns the planned schedule as ground truth.
std::vector<PlannedOutage> schedule_outages(sim::Simulation& sim, atlas::Cpe& cpe,
                                            const OutageRates& rates,
                                            net::TimeInterval window,
                                            rng::Stream rng);

}  // namespace dynaddr::isp

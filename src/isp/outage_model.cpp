#include "isp/outage_model.hpp"

#include <algorithm>

#include "netcore/error.hpp"

namespace dynaddr::isp {

namespace {

net::Duration draw_duration(const OutageRates& rates, rng::Stream& rng) {
    std::int64_t seconds;
    if (rng.bernoulli(rates.short_fraction)) {
        seconds = rng.uniform_int(rates.short_min.count(), rates.short_max.count());
    } else {
        seconds = std::int64_t(
            rng.lognormal(rates.long_median_seconds, rates.long_sigma));
    }
    seconds = std::clamp<std::int64_t>(seconds, 30, rates.max_duration.count());
    return net::Duration{seconds};
}

/// Draws non-overlapping (begin, duration) pairs across the window with
/// exponential gaps targeting `per_year` arrivals.
std::vector<net::TimeInterval> draw_schedule(double per_year,
                                             const OutageRates& rates,
                                             net::TimeInterval window,
                                             rng::Stream& rng) {
    std::vector<net::TimeInterval> schedule;
    if (per_year <= 0.0) return schedule;
    const double mean_gap_seconds = 365.0 * 86400.0 / per_year;
    net::TimePoint t = window.begin;
    for (;;) {
        t += net::Duration{std::int64_t(rng.exponential(mean_gap_seconds))};
        if (t >= window.end) break;
        const net::Duration duration = draw_duration(rates, rng);
        net::TimePoint end = t + duration;
        if (end > window.end) end = window.end;
        if (end > t) schedule.push_back({t, end});
        t = end;
    }
    return schedule;
}

}  // namespace

std::vector<PlannedOutage> schedule_outages(sim::Simulation& sim, atlas::Cpe& cpe,
                                            const OutageRates& rates,
                                            net::TimeInterval window,
                                            rng::Stream rng) {
    if (window.empty()) throw Error("empty outage window");
    std::vector<PlannedOutage> planned;

    auto power_rng = rng.child("power");
    for (const auto& ivl : draw_schedule(rates.power_per_year, rates, window, power_rng)) {
        planned.push_back({PlannedOutage::Kind::Power, ivl});
        sim.at(ivl.begin, [&cpe](net::TimePoint) {
            cpe.power_fail(sim::CauseSite::OutagePower);
        });
        sim.at(ivl.end, [&cpe](net::TimePoint) { cpe.power_restore(); });
    }
    auto net_rng = rng.child("net");
    for (const auto& ivl : draw_schedule(rates.net_per_year, rates, window, net_rng)) {
        planned.push_back({PlannedOutage::Kind::Network, ivl});
        sim.at(ivl.begin, [&cpe](net::TimePoint) {
            cpe.net_fail(sim::CauseSite::OutageNetwork);
        });
        sim.at(ivl.end, [&cpe](net::TimePoint) { cpe.net_restore(); });
    }
    std::sort(planned.begin(), planned.end(),
              [](const PlannedOutage& a, const PlannedOutage& b) {
                  return a.when.begin < b.when.begin;
              });
    return planned;
}

}  // namespace dynaddr::isp

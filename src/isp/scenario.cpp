#include <deque>
#include <unordered_map>

#include "atlas/controller.hpp"
#include "atlas/probe.hpp"
#include "dhcp/server.hpp"
#include "isp/world.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/progress.hpp"
#include "netcore/obs/trace.hpp"
#include "sim/cause_ledger.hpp"
#include "sim/simulation.hpp"

DYNADDR_LOG_MODULE(scenario);

namespace dynaddr::isp {

namespace {

/// All heap-pinned simulation objects; deques keep addresses stable.
struct World {
    explicit World(net::TimePoint start, rng::Stream rng)
        : sim(start), controller(sim, rng) {}

    sim::Simulation sim;
    atlas::Controller controller;
    std::deque<pool::AddressPool> pools;
    std::deque<dhcp::Server> dhcp_servers;
    std::deque<ppp::RadiusServer> radius_servers;
    std::deque<atlas::Timeline> timelines;
    std::deque<atlas::Probe> probes;
    std::deque<atlas::Cpe> cpes;
};

/// Per-(ISP, cohort) backend servers sharing the ISP's pool.
struct CohortBackend {
    dhcp::Server* dhcp = nullptr;
    ppp::RadiusServer* radius = nullptr;
};

void validate_isp(const IspSpec& isp) {
    if (isp.asn == 0) throw Error("ISP '" + isp.name + "' needs an ASN");
    if (isp.pool_prefixes.empty())
        throw Error("ISP '" + isp.name + "' needs pool prefixes");
    if (isp.cohorts.empty()) throw Error("ISP '" + isp.name + "' needs cohorts");
    for (const auto& event : isp.admin_events) {
        if (event.retire_pool_index >= isp.pool_prefixes.size() ||
            event.enable_pool_index >= isp.pool_prefixes.size() ||
            event.retire_pool_index == event.enable_pool_index)
            throw Error("bad admin renumbering indices for '" + isp.name + "'");
    }
    for (const auto& pool_prefix : isp.pool_prefixes) {
        int covering = 0;
        for (const auto& agg : isp.announced_prefixes)
            if (agg.contains(pool_prefix)) ++covering;
        if (covering != 1)
            throw Error("pool prefix " + pool_prefix.to_string() + " of '" +
                        isp.name + "' must lie inside exactly one announced prefix");
    }
}

atlas::ProbeVersion draw_version(const Cohort& cohort, rng::Stream& rng) {
    if (!rng.bernoulli(cohort.v1v2_fraction)) return atlas::ProbeVersion::V3;
    return rng.bernoulli(0.5) ? atlas::ProbeVersion::V1 : atlas::ProbeVersion::V2;
}

atlas::CpeConfig make_cpe_config(const Cohort& cohort, rng::Stream& rng) {
    atlas::CpeConfig config;
    config.wan = cohort.protocol;
    config.ppp.skip_renumber_probability = cohort.skip_renumber_probability;
    if (cohort.protocol == atlas::CpeConfig::Wan::Ppp &&
        rng.bernoulli(cohort.fraction_nightly_reconnect)) {
        config.daily_reconnect_hour =
            int(rng.uniform_int(cohort.nightly_hour_min, cohort.nightly_hour_max));
    }
    return config;
}

const char* kSpecialCountries[] = {"DE", "FR", "NL", "GB", "US", "IT", "RU",
                                   "SE", "CZ", "AT", "CH", "BE", "PL", "ES"};

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
    if (config.window.empty()) throw Error("scenario window is empty");
    for (const auto& isp : config.isps) validate_isp(isp);

    obs::ObsSpan scenario_span("scenario.run", "scenario",
                               &obs::latency_histogram("scenario.run"));
    // Plan horizon for the progress telemetry (/top, `dynaddr top`).
    obs::progress_begin_plan(config.window.begin, config.window.end);
    DYNADDR_LOG(Info, scenario, "scenario start: ", config.isps.size(),
                " ISPs, window ", config.window.begin.to_string(), " .. ",
                config.window.end.to_string());

    // Fault layer: a CLI-installed process-global injector wins; otherwise
    // one is scoped to this run when the config carries a plan. With
    // neither, every gate below stays a null check.
    std::optional<sim::ScopedFaultInjector> scoped_faults;
    if (config.faults && sim::fault_injector() == nullptr)
        scoped_faults.emplace(*config.faults);
    sim::FaultInjector* faults = sim::fault_injector();
    if (faults != nullptr) faults->set_window(config.window);

    rng::Stream root(config.seed);
    World world(config.window.begin, root.child("controller"));
    world.controller.set_sink(config.bundle_sink);
    ScenarioResult result;
    // Phase boundaries recorded manually: the build/run/emit phases are
    // sequential regions of this one function, not nested scopes.
    const std::uint64_t build_start_us = obs::trace_now_us();

    // -- BGP state ----------------------------------------------------------
    const bgp::MonthKey first_month = bgp::month_key_of(config.window.begin);
    const bgp::MonthKey last_month =
        bgp::month_key_of(config.window.end - net::Duration::seconds(1));
    for (const auto& isp : config.isps) {
        result.registry.add({isp.asn, isp.name,
                             isp.countries.empty() ? "" : isp.countries.front(),
                             isp.continent});
        for (const auto& announced : isp.announced_prefixes) {
            // Administrative renumbering moves aggregates in/out of the
            // routing table: a retired block's aggregate vanishes from the
            // event's month onward; the new block's appears there.
            bgp::MonthKey start = first_month;
            bgp::MonthKey end = last_month;
            for (const auto& event : isp.admin_events) {
                const bgp::MonthKey boundary = bgp::month_key_of(event.when);
                if (announced.contains(isp.pool_prefixes[event.retire_pool_index]))
                    end = std::min(end, boundary);
                if (announced.contains(isp.pool_prefixes[event.enable_pool_index]))
                    start = std::max(start, boundary);
            }
            if (start <= end)
                result.prefix_table.announce_range(start, end, announced, isp.asn);
        }
    }

    // -- build ISPs, cohorts, probes ----------------------------------------
    atlas::ProbeId next_probe = 1000;
    pool::ClientId next_client = 1;
    std::vector<std::vector<CohortBackend>> backends(config.isps.size());
    // CPEs behind each BRAS/RADIUS pair: a RADIUS crash is a network
    // outage for exactly these subscribers.
    std::unordered_map<ppp::RadiusServer*, std::vector<atlas::Cpe*>>
        cpes_by_radius;

    for (std::size_t i = 0; i < config.isps.size(); ++i) {
        const IspSpec& isp = config.isps[i];
        auto isp_rng = root.child("isp").child(isp.asn);
        std::vector<std::size_t> disabled;
        for (const auto& event : isp.admin_events)
            disabled.push_back(event.enable_pool_index);
        world.pools.emplace_back(
            pool::PoolConfig{isp.pool_prefixes, isp.strategy, isp.churn_per_hour,
                             isp.locality_bias, std::move(disabled)},
            isp_rng.child("pool"));
        pool::AddressPool& pool = world.pools.back();
        for (const auto& event : isp.admin_events) {
            const auto retire = event.retire_pool_index;
            const auto enable = event.enable_pool_index;
            const net::IPv4Prefix retired_pfx = isp.pool_prefixes[retire];
            world.sim.at(event.when,
                         [&pool, retire, enable, retired_pfx](net::TimePoint now) {
                             // PPP subscribers get no per-client evict signal;
                             // the ledger resolves their next change against
                             // this retired-prefix record instead.
                             sim::cause_admin_retire(retired_pfx, now);
                             pool.enable_prefix(enable);
                             pool.retire_prefix(retire);
                         });
        }

        for (std::size_t c = 0; c < isp.cohorts.size(); ++c) {
            const Cohort& cohort = isp.cohorts[c];
            CohortBackend backend;
            if (cohort.protocol == atlas::CpeConfig::Wan::Dhcp) {
                world.dhcp_servers.emplace_back(
                    dhcp::ServerConfig{cohort.dhcp_lease, cohort.dhcp_max_age,
                                       cohort.dhcp_max_age_jitter,
                                       cohort.dhcp_sweep_quantum},
                    pool, world.sim);
                backend.dhcp = &world.dhcp_servers.back();
            } else {
                world.radius_servers.emplace_back(
                    ppp::RadiusConfig{cohort.session_timeout}, pool, world.sim);
                backend.radius = &world.radius_servers.back();
            }
            backends[i].push_back(backend);

            for (int k = 0; k < cohort.probe_count; ++k) {
                auto probe_rng = isp_rng.child("probe").child(
                    std::uint64_t(c) << 32 | std::uint64_t(k));
                const atlas::ProbeId probe_id = next_probe++;
                const pool::ClientId client_id = next_client++;
                sim::cause_register_client(client_id, probe_id);

                world.timelines.emplace_back(probe_id);
                atlas::Timeline& timeline = world.timelines.back();

                atlas::ProbeConfig probe_config;
                probe_config.id = probe_id;
                probe_config.version = draw_version(cohort, probe_rng);
                world.probes.emplace_back(probe_config, world.sim,
                                          probe_rng.child("dev"), world.controller,
                                          timeline);
                atlas::Probe& probe = world.probes.back();
                world.controller.register_probe(probe);

                world.cpes.emplace_back(make_cpe_config(cohort, probe_rng),
                                        client_id, world.sim,
                                        probe_rng.child("cpe"), probe, timeline,
                                        backend.dhcp, backend.radius);
                atlas::Cpe& cpe = world.cpes.back();
                if (backend.radius != nullptr)
                    cpes_by_radius[backend.radius].push_back(&cpe);

                ProbeTruth truth;
                truth.probe = probe_id;
                truth.asn = isp.asn;
                truth.cohort = int(c);
                truth.protocol = cohort.protocol;
                if (cohort.protocol == atlas::CpeConfig::Wan::Ppp)
                    truth.configured_period = cohort.session_timeout;
                truth.outages = schedule_outages(world.sim, cpe, cohort.outages,
                                                 config.window,
                                                 probe_rng.child("outage"));
                result.truths.push_back(std::move(truth));

                // Stagger installs across the first day so free-running
                // periodic clocks de-synchronize.
                const net::Duration stagger{probe_rng.uniform_int(0, 86399)};
                world.sim.at(config.window.begin + stagger,
                             [&cpe](net::TimePoint) { cpe.start(); });

                // Probe metadata (archive dataset).
                atlas::ProbeMetadata meta;
                meta.probe = probe_id;
                meta.version = probe_config.version;
                const auto& countries =
                    isp.countries.empty()
                        ? std::vector<std::string>{std::string("DE")}
                        : isp.countries;
                meta.country_code = countries[std::size_t(probe_rng.uniform_int(
                    0, std::int64_t(countries.size()) - 1))];
                result.bundle.probes.push_back(std::move(meta));
            }
        }
    }

    // -- cross-AS movers ------------------------------------------------------
    if (config.cross_as_movers > 0 && config.isps.size() >= 2) {
        for (int m = 0; m < config.cross_as_movers; ++m) {
            const std::size_t from = std::size_t(m) % config.isps.size();
            const std::size_t to = (from + 1) % config.isps.size();
            const IspSpec& isp_a = config.isps[from];
            const IspSpec& isp_b = config.isps[to];
            const Cohort& cohort_a = isp_a.cohorts.front();
            const Cohort& cohort_b = isp_b.cohorts.front();
            auto probe_rng = root.child("mover").child(std::uint64_t(m));

            const atlas::ProbeId probe_id = next_probe++;
            const pool::ClientId client_id = next_client++;
            sim::cause_register_client(client_id, probe_id);
            world.timelines.emplace_back(probe_id);
            atlas::Timeline& timeline = world.timelines.back();

            atlas::ProbeConfig probe_config;
            probe_config.id = probe_id;
            world.probes.emplace_back(probe_config, world.sim,
                                      probe_rng.child("dev"), world.controller,
                                      timeline);
            atlas::Probe& probe = world.probes.back();
            world.controller.register_probe(probe);

            world.cpes.emplace_back(make_cpe_config(cohort_a, probe_rng),
                                    client_id, world.sim, probe_rng.child("cpe"),
                                    probe, timeline, backends[from][0].dhcp,
                                    backends[from][0].radius);
            atlas::Cpe& cpe = world.cpes.back();
            if (backends[from][0].radius != nullptr)
                cpes_by_radius[backends[from][0].radius].push_back(&cpe);

            world.sim.at(config.window.begin, [&cpe](net::TimePoint) { cpe.start(); });
            // Move house somewhere in the middle third of the window.
            const std::int64_t span = config.window.length().count();
            const net::Duration when{span / 3 +
                                     probe_rng.uniform_int(0, span / 3)};
            const auto wan_b = cohort_b.protocol;
            auto* dhcp_b = backends[to][0].dhcp;
            auto* radius_b = backends[to][0].radius;
            world.sim.at(config.window.begin + when,
                         [&cpe, dhcp_b, radius_b, wan_b](net::TimePoint) {
                             cpe.switch_backend(dhcp_b, radius_b, wan_b);
                         });

            ProbeTruth truth;
            truth.probe = probe_id;
            truth.asn = isp_a.asn;
            truth.cohort = 0;
            truth.protocol = cohort_a.protocol;
            truth.mover = true;
            truth.mover_second_asn = isp_b.asn;
            result.truths.push_back(std::move(truth));

            atlas::ProbeMetadata meta;
            meta.probe = probe_id;
            meta.version = probe_config.version;
            meta.country_code = isp_a.countries.empty() ? "DE" : isp_a.countries.front();
            result.bundle.probes.push_back(std::move(meta));
        }
    }

    // -- firmware -------------------------------------------------------------
    for (net::TimePoint release : config.firmware_releases)
        world.controller.schedule_firmware_release(release);

    // -- component fault schedules --------------------------------------------
    // Generated once per component, deterministically; scheduling order
    // cannot perturb the draws (each schedule has its own stream).
    if (faults != nullptr) {
        obs::Counter& dhcp_crashes = obs::counter("faults.dhcp_server.crashes");
        obs::Counter& radius_crashes =
            obs::counter("faults.radius_server.crashes");
        obs::Counter& exhaustions = obs::counter("faults.pool.exhaustions");
        obs::Counter& power_cycles = obs::counter("faults.cpe.power_cycles");

        std::uint64_t index = 0;
        for (auto& server : world.dhcp_servers) {
            // A DHCP server crash is silent for subscribers: held leases
            // keep working, and clients meet the dead server (as silence)
            // at their next exchange.
            for (const auto& event : faults->crash_schedule(
                     sim::FaultSite::DhcpServer, index, config.window)) {
                world.sim.at(event.at, [&server, &dhcp_crashes,
                                        amnesia = event.amnesia](net::TimePoint) {
                    dhcp_crashes.inc();
                    server.crash(amnesia);
                });
                world.sim.at(event.at + event.downtime,
                             [&server](net::TimePoint) { server.restart(); });
            }
            ++index;
        }
        index = 0;
        for (auto& server : world.radius_servers) {
            // A BRAS/RADIUS crash takes the access network down for its
            // subscribers: sessions drop (their Accounting-Stops go
            // nowhere — the server is dead) and redial on restore.
            std::vector<atlas::Cpe*> attached;
            if (auto it = cpes_by_radius.find(&server);
                it != cpes_by_radius.end())
                attached = it->second;
            for (const auto& event : faults->crash_schedule(
                     sim::FaultSite::RadiusServer, index, config.window)) {
                world.sim.at(event.at,
                             [&server, &radius_crashes, attached,
                              amnesia = event.amnesia](net::TimePoint) {
                                 radius_crashes.inc();
                                 server.crash(amnesia);
                                 for (atlas::Cpe* cpe : attached)
                                     cpe->net_fail(
                                         sim::CauseSite::FaultRadiusCrash);
                             });
                world.sim.at(event.at + event.downtime,
                             [&server, attached](net::TimePoint) {
                                 server.restart();
                                 for (atlas::Cpe* cpe : attached)
                                     cpe->net_restore();
                             });
            }
            ++index;
        }
        index = 0;
        for (auto& pool : world.pools) {
            for (const auto& window : faults->exhaustion_schedule(
                     index, config.window)) {
                world.sim.at(window.at, [&pool, &exhaustions](net::TimePoint) {
                    exhaustions.inc();
                    pool.set_fault_exhausted(true);
                });
                world.sim.at(window.at + window.duration, [&pool](net::TimePoint) {
                    pool.set_fault_exhausted(false);
                });
            }
            ++index;
        }
        const auto storms = faults->storm_schedule(config.window);
        for (std::size_t s = 0; s < storms.size(); ++s) {
            std::uint64_t cpe_index = 0;
            for (auto& cpe : world.cpes) {
                if (auto hit = faults->storm_hit(s, cpe_index)) {
                    world.sim.at(storms[s] + hit->offset,
                                 [&cpe, &power_cycles](net::TimePoint) {
                                     power_cycles.inc();
                                     cpe.power_fail(sim::CauseSite::FaultStorm);
                                 });
                    world.sim.at(storms[s] + hit->offset + hit->downtime,
                                 [&cpe](net::TimePoint) { cpe.power_restore(); });
                }
                ++cpe_index;
            }
        }
        if (!storms.empty())
            DYNADDR_LOG(Info, scenario, "fault layer scheduled ",
                        storms.size(), " power-cycle storms");
    }

    // -- run -------------------------------------------------------------------
    const std::uint64_t run_start_us = obs::trace_now_us();
    if (obs::trace_enabled())
        obs::record_complete_event("scenario.build", "scenario",
                                   build_start_us,
                                   run_start_us - build_start_us);
    world.sim.run_until(config.window.end);
    result.sim_events = world.sim.executed();
    const std::uint64_t emit_start_us = obs::trace_now_us();
    if (obs::trace_enabled())
        obs::record_complete_event("scenario.sim_run", "scenario",
                                   run_start_us, emit_start_us - run_start_us);
    DYNADDR_LOG(Info, scenario, "simulation ran ", result.sim_events,
                " events");

    // A log scrape at window end sees still-open connections too.
    for (auto& probe : world.probes) probe.flush_open_connection(config.window.end);

    for (auto& timeline : world.timelines) timeline.finalize(config.window.end);
    world.controller.drain_into(result.bundle);

    if (config.kroot) {
        for (const auto& timeline : world.timelines) {
            auto records = atlas::emit_kroot_records(
                timeline, config.window, *config.kroot,
                root.child("kroot").child(timeline.probe()));
            if (config.bundle_sink != nullptr)
                for (const auto& record : records)
                    config.bundle_sink->add_kroot(record);
            result.bundle.kroot_pings.insert(result.bundle.kroot_pings.end(),
                                             records.begin(), records.end());
        }
    }

    // -- special probes ---------------------------------------------------------
    auto add_specials = [&](int count, atlas::SpecialBehaviour behaviour,
                            const std::vector<std::string>& tags) {
        for (int k = 0; k < count; ++k) {
            auto sp_rng = root.child("special").child(
                (std::uint64_t(int(behaviour)) << 32) | std::uint64_t(k));
            atlas::SpecialProbeSpec spec;
            spec.id = next_probe++;
            spec.behaviour = behaviour;
            // Unannounced test range; these probes are filtered before any
            // AS mapping happens.
            spec.base_address =
                net::IPv4Address{std::uint32_t(0xC6120000u) |  // 198.18.0.0
                                 std::uint32_t(sp_rng.uniform_int(0, 0xFFFF))};
            // ~90 % of v6-capable hosts run RFC 4941 privacy extensions
            // (Plonka & Berger's ephemeral fraction, cited by the paper);
            // dual-stack probes also reconnect often, as the paper notes.
            spec.v6_privacy_extensions = sp_rng.bernoulli(0.9);
            if (behaviour == atlas::SpecialBehaviour::DualStack ||
                behaviour == atlas::SpecialBehaviour::Ipv6Only)
                spec.mean_session = net::Duration::hours(8);
            auto log = atlas::generate_special_probe_log(spec, config.window,
                                                         sp_rng.child("log"));
            if (config.bundle_sink != nullptr)
                for (const auto& entry : log)
                    config.bundle_sink->add_connection(entry);
            result.bundle.connection_log.insert(result.bundle.connection_log.end(),
                                                log.begin(), log.end());
            atlas::ProbeMetadata meta;
            meta.probe = spec.id;
            meta.version = atlas::ProbeVersion::V3;
            meta.country_code = kSpecialCountries[sp_rng.uniform_int(
                0, std::int64_t(std::size(kSpecialCountries)) - 1)];
            meta.tags = tags;
            result.bundle.probes.push_back(std::move(meta));

            ProbeTruth truth;
            truth.probe = spec.id;
            truth.special = true;
            result.truths.push_back(std::move(truth));
        }
    };
    const SpecialMix& mix = config.specials;
    add_specials(mix.never_changed, atlas::SpecialBehaviour::NeverChanged, {});
    add_specials(mix.dual_stack, atlas::SpecialBehaviour::DualStack, {});
    add_specials(mix.ipv6_only, atlas::SpecialBehaviour::Ipv6Only, {});
    add_specials(mix.tagged_alternating,
                 atlas::SpecialBehaviour::MultihomedAlternating, {"multihomed"});
    add_specials(mix.tagged_stable, atlas::SpecialBehaviour::NeverChanged,
                 {"datacentre"});
    add_specials(mix.untagged_alternating,
                 atlas::SpecialBehaviour::MultihomedAlternating, {});
    add_specials(mix.testing_then_stable,
                 atlas::SpecialBehaviour::TestingAddressThenStable, {});

    // -- RADIUS ground truth ------------------------------------------------
    {
        std::size_t server_index = 0;
        for (std::size_t i = 0; i < config.isps.size(); ++i) {
            (void)server_index;
            for (const auto& backend : backends[i]) {
                if (backend.radius == nullptr) continue;
                auto& sink = result.radius_records[config.isps[i].asn];
                const auto& records = backend.radius->records();
                sink.insert(sink.end(), records.begin(), records.end());
            }
        }
    }

    // -- ground-truth timelines ----------------------------------------------
    result.timelines.assign(world.timelines.begin(), world.timelines.end());

    // Metadata goes to the sink in one pass at the end (pushes above keep
    // ascending probe-id order), so the writer emits one block run per probe.
    if (config.bundle_sink != nullptr)
        for (const auto& meta : result.bundle.probes)
            config.bundle_sink->add_probe(meta);

    result.bundle.sort();
    if (obs::trace_enabled())
        obs::record_complete_event("scenario.emit", "scenario", emit_start_us,
                                   obs::trace_now_us() - emit_start_us);
    obs::counter("scenario.runs").inc();
    obs::counter("scenario.sim_events").inc(result.sim_events);
    // Freeze the capacity figures while every subsystem is still alive —
    // this is the snapshot --mem-report writes after teardown.
    obs::mem_capture_final();
    obs::progress_end_plan();
    return result;
}

}  // namespace dynaddr::isp
